//! Offline shim for `criterion`: a minimal wall-clock timing harness with
//! the same surface API (`criterion_group!`/`criterion_main!`, benchmark
//! groups, `Bencher::iter`/`iter_batched`, `BenchmarkId`, `Throughput`).
//!
//! Statistics are deliberately simple — each benchmark takes `sample_size`
//! samples (bounded by `measurement_time`) and reports min/median/mean.
//! That is enough to fill the EXPERIMENTS.md tables on this host; it makes
//! no attempt at criterion's outlier analysis or HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_secs(5),
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {} ==", name);
        let measurement_time = self.measurement_time;
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name,
            measurement_time,
            sample_size,
        }
    }
}

/// Benchmark throughput annotation (recorded for display only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// How `iter_batched` amortizes setup cost; the shim always runs the setup
/// once per timed invocation, which matches `PerIteration`.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    PerIteration,
    SmallInput,
    LargeInput,
    NumIterations(u64),
}

pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), param),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name (`&str`, `String`, `BenchmarkId`).
pub trait IntoBenchmarkId {
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_text(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_text(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time;
        // One untimed warm-up pass, then timed samples.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        loop {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed);
            if samples.len() >= self.sample_size || Instant::now() >= deadline {
                break;
            }
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{}/{}: min {:?}  median {:?}  mean {:?}  ({} samples)",
            self.name,
            id,
            min,
            median,
            mean,
            samples.len()
        );
    }
}

pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time one invocation of `routine` per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed = start.elapsed();
        drop(out);
    }

    /// Time `routine` on a fresh `setup()` input, excluding the setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed = start.elapsed();
        drop(out);
    }
}

/// Opaque value barrier (re-export of the std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); a bench
            // filter may also be given. The shim runs everything regardless.
            $($group();)+
        }
    };
}
