//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build container has no network access and no vendored registry, so
//! the real crate cannot be fetched. This shim implements the (small) subset
//! of the parking_lot API this workspace uses — `Mutex`, `RwLock`, `Condvar`
//! with non-poisoning, no-`Result` lock methods — on top of the standard
//! library primitives. Poisoned std locks are recovered via `into_inner` so
//! the parking_lot contract (no lock poisoning) holds.

use std::fmt;
use std::sync::{self, TryLockError};
use std::time::Duration;

// ------------------------------------------------------------------- Mutex

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(Some(g)),
            Err(p) => MutexGuard(Some(p.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard invariant")
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard invariant")
    }
}

// ------------------------------------------------------------------ RwLock

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(p) => RwLockReadGuard(p.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(p) => RwLockWriteGuard(p.into_inner()),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

// ----------------------------------------------------------------- Condvar

#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    /// parking_lot-style wait: re-acquires into the same guard slot.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard invariant");
        let inner = match self.0.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.0 = Some(inner);
    }

    /// Returns `true` when the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.0.take().expect("guard invariant");
        let (inner, timed_out) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r.timed_out())
            }
        };
        guard.0 = Some(inner);
        timed_out
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}
