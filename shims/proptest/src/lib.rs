//! Offline shim for `proptest`, providing the deterministic subset this
//! workspace's property tests use: the `proptest!` macro, integer/float
//! `any::<T>()`, range strategies, tuple strategies, `prop::collection::vec`,
//! a tiny `.{lo,hi}`-style string strategy, `ProptestConfig::with_cases`,
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! No shrinking: a failing case panics immediately with the test name and
//! case number. Generation is seeded from the test's name, so failures are
//! reproducible across runs.

pub mod test_runner {
    /// Runner configuration (subset: `cases`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic generator (splitmix64), seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Value generator (subset of proptest's `Strategy`; no shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    // Ranges over primitive integers are strategies, as in proptest.
    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Tuples of strategies are strategies.
    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }

    /// String "regex" strategy. Only the `.{lo,hi}` shape the workspace uses
    /// is honoured (random printable ASCII of length in `lo..=hi`); any other
    /// pattern generates itself literally.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            if let Some((lo, hi)) = parse_dot_repeat(self) {
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| (b' ' + rng.below(95) as u8) as char)
                    .collect()
            } else {
                self.to_string()
            }
        }
    }

    fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
        let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    /// `any::<T>()` — the full domain of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Types with a full-domain generator.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Arbitrary bit patterns: exercises NaN/inf/subnormals, matching
            // proptest's full-domain f64 in spirit.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty length range");
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace used inside tests (`prop::collection::vec`).
pub mod prop {
    pub use super::collection;
}

pub mod prelude {
    pub use super::prop;
    pub use super::strategy::{any, Arbitrary, Strategy};
    pub use super::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Run each embedded test body against `cases` generated inputs. Unlike the
/// real proptest there is no shrinking — the first failing case panics with
/// its case number (generation is deterministic per test name).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                let __run = || {
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strat), &mut __rng);)+
                    $body
                };
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(__run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest {}: failed at case {}/{}",
                        stringify!($name), __case + 1, __config.cases
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}
