//! Offline shim for `rand` 0.8, providing the deterministic subset this
//! workspace uses: `SmallRng` seeded from a `u64`, integer/float
//! `gen_range` over `Range`/`RangeInclusive`, and `gen_bool`.
//!
//! The generator is xoshiro256** (same family the real `SmallRng` uses on
//! 64-bit targets). Streams are *not* bit-compatible with the real crate —
//! the TPC-H generator only needs determinism across runs of this binary,
//! not cross-crate reproducibility.

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset: `seed_from_u64` + `from_seed`).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64-expand the u64 into the full seed, as rand does.
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm);
            for (b, out) in v.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Core generator trait (subset).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Types that can be uniformly sampled from a range (subset of
/// `rand::distributions::uniform::SampleUniform` + `SampleRange`).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform draw in `[0, span)` (span > 0) by rejection sampling.
fn uniform_u128(rng: &mut dyn RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Draws fit in u64 for every range the workspace uses; the u128 span
    // only guards the i64::MIN..=i64::MAX corner.
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        let zone = u64::MAX - (u64::MAX % span64);
        loop {
            let v = rng.next_u64();
            if v < zone {
                return (v % span64) as u128;
            }
        }
    }
    let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    v % span
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start() + unit * (self.end() - self.start())
    }
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — small, fast, decent-quality; mirrors the role of the
    /// real `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // Avoid the all-zero state, which xoshiro cannot leave.
            if s.iter().all(|&x| x == 0) {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}
