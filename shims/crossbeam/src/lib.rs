//! Offline shim for `crossbeam`, backed by `std::sync::mpsc`.
//!
//! The build container has no network access, so this provides the subset of
//! the crossbeam API the workspace uses: `channel::{bounded, unbounded}`
//! with clonable senders. Multi-consumer receive (which std mpsc lacks) is
//! emulated with a mutex around the receiver; the engine only ever attaches
//! one consumer per channel, so the lock is uncontended in practice.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(PartialEq, Eq, Clone, Copy, Debug)]
    pub struct RecvError;

    enum Tx<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Bounded(s) => Tx::Bounded(s.clone()),
                Tx::Unbounded(s) => Tx::Unbounded(s.clone()),
            }
        }
    }

    /// Sending half of a channel (clonable, like crossbeam's).
    pub struct Sender<T>(Tx<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Block until the value is enqueued, or fail when disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Tx::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                Tx::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half of a channel (clonable; clones share the queue).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(self.0.clone())
        }
    }

    impl<T> Receiver<T> {
        /// Block for the next value; fail once empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = match self.0.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            guard.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            let guard = match self.0.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            guard.try_recv()
        }
    }

    /// Channel with a fixed capacity (capacity 0 is a rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Tx::Bounded(tx)), Receiver(Arc::new(Mutex::new(rx))))
    }

    /// Channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender(Tx::Unbounded(tx)),
            Receiver(Arc::new(Mutex::new(rx))),
        )
    }
}
