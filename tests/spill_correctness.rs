//! Memory-governance property tests: any query that spills under a tiny
//! memory budget must produce *exactly* the rows it produces unbounded.
//!
//! The generated data keeps every float a multiple of 0.25 so SUM/AVG are
//! exact under re-association — results compare with `==`, not a tolerance,
//! even though spill drains and parallel partials change evaluation order.

mod common;

use common::canonical;
use proptest::prelude::*;
use vectorwise::common::rng::Xoshiro256;
use vectorwise::plan::{AggExpr, AggFunc, Expr, JoinKind, LogicalPlan, SortKey};
use vectorwise::sql::CatalogView;
use vectorwise::{DataType, Database, Field, Schema, Value};

/// Small enough that join builds, aggregate tables and sort buffers on a
/// few thousand rows all overflow (ISSUE bound: ≤ 1 MiB).
const TIGHT_BUDGET: usize = 32 << 10;

/// Random fact (k, g, f, s) + dim (dk, tag) tables. NULLs in the group key,
/// the summed float and the string column; half the fact keys unmatched.
fn spill_db(seed: u64, fact_rows: usize, dim_rows: usize) -> Database {
    let mut r = Xoshiro256::seeded(seed);
    let db = Database::new().unwrap();
    db.create_table(
        "fact",
        Schema::new(vec![
            Field::new("k", DataType::I64),
            Field::nullable("g", DataType::I64),
            Field::nullable("f", DataType::F64),
            Field::nullable("s", DataType::Str),
        ]),
    )
    .unwrap();
    db.bulk_load(
        "fact",
        (0..fact_rows).map(|i| {
            vec![
                Value::I64(r.range_i64(0, 2 * dim_rows as i64)),
                if r.chance(0.1) {
                    Value::Null
                } else {
                    Value::I64(r.range_i64(0, 2048))
                },
                if r.chance(0.1) {
                    Value::Null
                } else {
                    // Exact quarters: sums re-associate without rounding.
                    Value::F64(r.range_i64(-4000, 4000) as f64 / 4.0)
                },
                if r.chance(0.1) {
                    Value::Null
                } else {
                    Value::Str(format!("s{}-{}", i % 7, r.next_below(100)))
                },
            ]
        }),
    )
    .unwrap();
    db.create_table(
        "dim",
        Schema::new(vec![
            Field::new("dk", DataType::I64),
            Field::new("tag", DataType::Str),
        ]),
    )
    .unwrap();
    db.bulk_load(
        "dim",
        (0..dim_rows).map(|i| {
            vec![
                Value::I64(i as i64),
                Value::Str(format!("tag-{}-padding", i % 97)),
            ]
        }),
    )
    .unwrap();
    db
}

fn scan(db: &Database, name: &str) -> LogicalPlan {
    let (tid, schema) = db.resolve_table(name).unwrap();
    LogicalPlan::scan(name, tid, schema)
}

fn agg(func: AggFunc, col: Option<usize>, name: &str) -> AggExpr {
    AggExpr {
        func,
        arg: col.map(Expr::col),
        name: name.into(),
    }
}

/// Run under the given budget/dop; return rows + spill bytes observed.
fn run(
    db: &Database,
    plan: &LogicalPlan,
    dop: usize,
    budget: Option<usize>,
) -> (Vec<Vec<Value>>, u64) {
    db.set_parallelism(dop);
    db.set_mem_budget(budget);
    let rows = db.run_plan(plan.clone()).expect("plan run").rows;
    let prof = db.profile_last_query().expect("profiling on by default");
    (rows, prof.mem.spill_bytes)
}

/// The output rows must be ordered by the sort keys (spilled runs merge back
/// into one totally ordered stream).
fn assert_sorted(rows: &[Vec<Value>], keys: &[SortKey]) {
    for w in rows.windows(2) {
        for k in keys {
            match w[0][k.col].total_cmp(&w[1][k.col]) {
                std::cmp::Ordering::Equal => continue,
                o => {
                    let ok = if k.asc {
                        o == std::cmp::Ordering::Less
                    } else {
                        o == std::cmp::Ordering::Greater
                    };
                    assert!(
                        ok,
                        "rows out of order on key {:?}: {:?} vs {:?}",
                        k, w[0], w[1]
                    );
                    break;
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Join → aggregate → sort, aggregate-only and sort-heavy plans produce
    /// identical rows at a 32 KiB budget (dop 1 and 4) as unbounded, and the
    /// budgeted serial runs actually spill.
    #[test]
    fn tiny_budget_matches_unbounded(
        seed in any::<u64>(),
        fact_rows in 2500usize..4000,
        dim_rows in 1200usize..2000,
    ) {
        let db = spill_db(seed, fact_rows, dim_rows);

        // fact ⋈ dim (build = dim) → SUM/AVG/COUNT by nullable g → ordered.
        let join_keys = vec![SortKey::asc(0)];
        let join_plan = scan(&db, "fact")
            .join(scan(&db, "dim"), JoinKind::Inner, vec![(0, 0)])
            .aggregate(
                vec![1],
                vec![
                    agg(AggFunc::Sum, Some(2), "sum_f"),
                    agg(AggFunc::Avg, Some(2), "avg_f"),
                    agg(AggFunc::Count, Some(3), "cnt_s"),
                    agg(AggFunc::CountStar, None, "n"),
                ],
            )
            .sort(join_keys.clone());

        // ~2048 groups straight off the fact table (NULL group included).
        let agg_plan = scan(&db, "fact").aggregate(
            vec![1],
            vec![
                agg(AggFunc::Sum, Some(2), "sum_f"),
                agg(AggFunc::Avg, Some(2), "avg_f"),
                agg(AggFunc::Min, Some(0), "min_k"),
                agg(AggFunc::CountStar, None, "n"),
            ],
        );

        // Left join keeps unmatched fact rows (NULL-padded) and sorts the
        // whole ~fact_rows stream: external merge sort territory at 32 KiB.
        let sort_keys = vec![SortKey::asc(0), SortKey::desc(2)];
        let sort_plan = scan(&db, "fact")
            .join(scan(&db, "dim"), JoinKind::Left, vec![(0, 0)])
            .sort(sort_keys.clone());

        for (plan, sorted_by, label) in [
            (&join_plan, Some(&join_keys), "join+agg+sort"),
            (&agg_plan, None, "aggregate"),
            (&sort_plan, Some(&sort_keys), "left-join+sort"),
        ] {
            let (want, base_spill) = run(&db, plan, 1, None);
            prop_assert_eq!(base_spill, 0, "{}: unbounded run must not spill", label);
            let want = canonical(want);
            for dop in [1usize, 4] {
                let (got, spill) = run(&db, plan, dop, Some(TIGHT_BUDGET));
                if dop == 1 {
                    prop_assert!(spill > 0, "{}: 32 KiB budget should force a spill", label);
                }
                if let Some(keys) = sorted_by {
                    assert_sorted(&got, keys);
                }
                prop_assert_eq!(
                    canonical(got),
                    want.clone(),
                    "{} at dop {} under budget diverged",
                    label,
                    dop
                );
            }
        }
    }
}
