//! Morsel-driven parallelism: determinism, skew balance, shared builds.
//!
//! Exchange workers pull row-group morsels from a shared work-stealing queue
//! and share a single hash-join build. These tests pin the correctness
//! contract: identical results at every degree of parallelism, exact-once
//! morsel coverage under extreme group-size skew, and build-once semantics.

mod common;

use common::{assert_rows_match, canonical, run_vectorized, tpch_db};
use std::collections::HashMap;
use std::sync::Arc;
use vectorwise::common::config::EngineConfig;
use vectorwise::common::TableId;
use vectorwise::engine::operators::collect_rows;
use vectorwise::engine::{compile_plan, ExecContext, TableProvider};
use vectorwise::pdt::Pdt;
use vectorwise::plan::rewrite::parallelize;
use vectorwise::plan::{AggExpr, AggFunc, BinOp, Expr, JoinKind, LogicalPlan};
use vectorwise::storage::{NullableColumn, SimDisk, SimDiskConfig, TableStorage};
use vectorwise::tpch::queries;
use vectorwise::{DataType, Field, Schema, Value};

/// TPC-H Q1 and Q6 must return identical rows at every dop; per-group F64
/// sums may differ only by float addition order (tolerance in
/// `assert_rows_match`).
#[test]
fn tpch_q1_q6_deterministic_across_dop() {
    let (db, cat) = tpch_db(0.01);
    for (name, plan) in [("q1", queries::q1(&cat)), ("q6", queries::q6(&cat))] {
        db.set_parallelism(1);
        let want = canonical(run_vectorized(&db, &plan));
        assert!(!want.is_empty(), "{}: serial run returned no rows", name);
        for dop in [2, 4, 8] {
            db.set_parallelism(dop);
            let got = canonical(run_vectorized(&db, &plan));
            assert_rows_match(&format!("{} dop={}", name, dop), &got, &want);
        }
    }
}

const SKEW: TableId = TableId(1);
const DIM: TableId = TableId(2);

fn i64_col(vals: impl Iterator<Item = i64>) -> NullableColumn {
    NullableColumn::from_values(DataType::I64, &vals.map(Value::I64).collect::<Vec<_>>()).unwrap()
}

/// A table with pathological group-size skew: one 3000-row group followed by
/// forty 50-row groups. Static `g % P` assignment would serialize the giant
/// group behind one worker; the morsel queue hands it to whoever is free.
fn skew_ctx() -> (ExecContext, usize, i64) {
    let disk = Arc::new(SimDisk::new(SimDiskConfig::default()));
    let schema = Schema::new(vec![
        Field::new("k", DataType::I64),
        Field::new("v", DataType::I64),
    ]);
    // Group size = giant chunk size so the first chunk stays ONE group.
    let mut storage = TableStorage::with_group_size(schema.clone(), disk.clone(), 3000);
    let mut next = 0i64;
    let chunk = |n: i64, next: &mut i64| {
        let lo = *next;
        *next += n;
        vec![i64_col((lo..*next).map(|i| i % 10)), i64_col(lo..*next)]
    };
    storage.append_chunk(&chunk(3000, &mut next)).unwrap();
    for _ in 0..40 {
        storage.append_chunk(&chunk(50, &mut next)).unwrap();
    }
    assert_eq!(storage.group_count(), 41);
    let n_rows = storage.n_rows() as usize;
    let total: i64 = (0..n_rows as i64).sum();

    // Small dimension table joined below.
    let dim_schema = Schema::new(vec![
        Field::new("k", DataType::I64),
        Field::new("tag", DataType::I64),
    ]);
    let mut dim = TableStorage::with_group_size(dim_schema, disk, 64);
    dim.append_chunk(&[i64_col(0..10), i64_col((0..10).map(|k| k * 100))])
        .unwrap();

    let mut tables = HashMap::new();
    tables.insert(
        SKEW,
        TableProvider {
            pdt: Arc::new(Pdt::new(storage.n_rows())),
            storage: Arc::new(parking_lot::RwLock::new(storage)),
        },
    );
    tables.insert(
        DIM,
        TableProvider {
            pdt: Arc::new(Pdt::new(dim.n_rows())),
            storage: Arc::new(parking_lot::RwLock::new(dim)),
        },
    );
    (
        ExecContext::new(tables, EngineConfig::default()),
        n_rows,
        total,
    )
}

fn skew_scan(ctx: &ExecContext) -> LogicalPlan {
    let schema = ctx.tables[&SKEW].storage.read().schema().clone();
    LogicalPlan::scan("skew", SKEW, schema)
}

fn dim_scan(ctx: &ExecContext) -> LogicalPlan {
    let schema = ctx.tables[&DIM].storage.read().schema().clone();
    LogicalPlan::scan("dim", DIM, schema)
}

fn count_sum(input: LogicalPlan, sum_col: usize) -> LogicalPlan {
    input.aggregate(
        vec![],
        vec![
            AggExpr {
                func: AggFunc::CountStar,
                arg: None,
                name: "n".into(),
            },
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(Expr::col(sum_col)),
                name: "s".into(),
            },
        ],
    )
}

/// Under skew, every morsel is claimed exactly once and the result is exact
/// at every dop — no unit lost (a worker quitting early) or double-counted.
#[test]
fn skewed_groups_covered_exactly_once() {
    for dop in [1, 2, 4, 8] {
        let (ctx, n_rows, total) = skew_ctx();
        let plan = parallelize(count_sum(skew_scan(&ctx), 1), dop);
        let mut op = compile_plan(&plan, &ctx).unwrap();
        let rows = collect_rows(op.as_mut()).unwrap();
        assert_eq!(
            rows,
            vec![vec![Value::I64(n_rows as i64), Value::I64(total)]],
            "dop={}",
            dop
        );
        if dop > 1 {
            // 41 groups, no PDT appends, no filter pruning: 41 units total
            // across all workers, each claimed exactly once.
            assert_eq!(ctx.stats.morsels_claimed(), 41, "dop={}", dop);
        }
    }
}

/// The hash-join build side executes exactly once at dop=4 (shared build
/// slot), and the join result matches the serial plan.
#[test]
fn join_build_executes_once_at_dop_4() {
    let (ctx, n_rows, _) = skew_ctx();
    // skew ⋈ dim on k, then COUNT(*) + SUM(tag): every probe row matches.
    let base = count_sum(
        skew_scan(&ctx).join(dim_scan(&ctx), JoinKind::Inner, vec![(0, 0)]),
        3,
    );
    let mut serial = compile_plan(&base, &ctx).unwrap();
    let want = collect_rows(serial.as_mut()).unwrap();
    assert_eq!(want[0][0], Value::I64(n_rows as i64));

    let (ctx, _, _) = skew_ctx();
    let par = parallelize(
        count_sum(
            skew_scan(&ctx).join(dim_scan(&ctx), JoinKind::Inner, vec![(0, 0)]),
            3,
        ),
        4,
    );
    let mut op = compile_plan(&par, &ctx).unwrap();
    let got = collect_rows(op.as_mut()).unwrap();
    assert_eq!(got, want);
    assert_eq!(
        ctx.stats.builds_executed(),
        1,
        "build side must run once, not once per worker"
    );
}

/// Filters push work into the queue-construction path (zone-map pruning
/// happens once, when the queue is created): still exact at every dop.
#[test]
fn filtered_skew_scan_matches_serial() {
    let (ctx, _, _) = skew_ctx();
    let filtered = |ctx: &ExecContext| {
        count_sum(
            skew_scan(ctx).filter(Expr::binary(
                BinOp::Ge,
                Expr::col(1),
                Expr::lit(Value::I64(3500)),
            )),
            1,
        )
    };
    let mut serial = compile_plan(&filtered(&ctx), &ctx).unwrap();
    let want = collect_rows(serial.as_mut()).unwrap();
    for dop in [2, 4, 8] {
        let (ctx, _, _) = skew_ctx();
        let par = parallelize(filtered(&ctx), dop);
        let mut op = compile_plan(&par, &ctx).unwrap();
        let got = collect_rows(op.as_mut()).unwrap();
        assert_eq!(got, want, "dop={}", dop);
    }
}
