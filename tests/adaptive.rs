//! Adaptive execution must be a pure performance feature: micro-adaptive
//! conjunct reordering, history-corrected cardinalities and the self-tuning
//! aggregation path may change *how* a query runs, never *what* it returns.
//!
//! Three angles:
//! * a property test that adaptive conjunct ordering is byte-identical to the
//!   static order across NULL/NaN edge data, serial and parallel;
//! * all 22 TPC-H queries compared cold, history-warmed, and parallel against
//!   an adaptivity-off reference;
//! * an end-to-end check that accumulated history actually surfaces (the
//!   `vw_plan_feedback` EXPLAIN ANALYZE line and the metrics counter) and
//!   that the adaptive scan order really cuts predicate work.
mod common;

use std::sync::Arc;

use common::{assert_rows_match, canonical, tpch_db};
use proptest::prelude::*;
use vectorwise::engine::OpProfile;
use vectorwise::tpch::{all_queries, TPCH_TABLES};
use vectorwise::{Database, Value};

/// Byte-identical row comparison: doubles compare by bit pattern, so NaN
/// equals NaN and `-0.0` differs from `0.0`. Stricter than
/// `common::assert_rows_match` — adaptive conjunct ordering never re-computes
/// a value, so no tolerance is owed.
fn assert_rows_bitwise(tag: &str, got: &[Vec<Value>], want: &[Vec<Value>]) {
    assert_eq!(got.len(), want.len(), "{}: row count", tag);
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.len(), w.len(), "{}: row {} arity", tag, i);
        for (c, (gv, wv)) in g.iter().zip(w).enumerate() {
            let ok = match (gv, wv) {
                (Value::F64(a), Value::F64(b)) => a.to_bits() == b.to_bits(),
                _ => gv == wv,
            };
            assert!(ok, "{}: row {} col {}: {:?} vs {:?}", tag, i, c, gv, wv);
        }
    }
}

/// A table with a nullable double column seeded with NULLs and NaNs, loaded
/// with a tiny vector size so the re-rank cadence triggers within a few
/// hundred rows.
fn filter_db(rows: &[(i64, u8, i64, i64)]) -> Database {
    let db = Database::new().unwrap();
    db.execute("CREATE TABLE t (a BIGINT NOT NULL, v DOUBLE, b BIGINT NOT NULL)")
        .unwrap();
    db.bulk_load(
        "t",
        rows.iter().map(|&(a, tag, vraw, b)| {
            let v = match tag {
                0 => Value::Null,
                1 => Value::F64(f64::NAN),
                _ => Value::F64((vraw - 500) as f64 / 10.0),
            };
            vec![Value::I64(a), v, Value::I64(b)]
        }),
    )
    .unwrap();
    db.execute("SET vector_size = 16").unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn adaptive_conjunct_order_is_byte_identical(
        rows in prop::collection::vec((0..100i64, 0..8u8, 0..1000i64, 0..100i64), 1..500),
        ka in 1..101i64,
        kb in 1..101i64,
    ) {
        let db = filter_db(&rows);
        // One query whose conjuncts drop the NULL/NaN rows (3VL: both fail
        // `v > -20`), one whose output still carries them.
        let queries = [
            format!(
                "SELECT a, v, b FROM t \
                 WHERE a < {} AND v > -20.0 AND b >= {} AND a + b < 150",
                ka, kb
            ),
            format!("SELECT a, v FROM t WHERE a < {} AND b >= {}", ka, kb),
        ];
        for sql in &queries {
            for dop in [1usize, 4] {
                db.set_parallelism(dop);
                db.execute("SET adaptivity = 'off'").unwrap();
                let want = db.execute(sql).unwrap().rows;
                db.execute("SET adaptivity = 'on'").unwrap();
                // Repeat runs let observed selectivities accumulate and the
                // conjunct order re-rank; every run must stay identical.
                for round in 0..3 {
                    let got = db.execute(sql).unwrap().rows;
                    let tag = format!("dop {} round {}: {}", dop, round, sql);
                    if dop == 1 {
                        // Filters preserve scan order: exact sequence match.
                        assert_rows_bitwise(&tag, &got, &want);
                    } else {
                        assert_rows_bitwise(
                            &tag,
                            &canonical(got),
                            &canonical(want.clone()),
                        );
                    }
                }
            }
        }
    }
}

/// All 22 TPC-H queries, compared against an adaptivity-off reference: cold,
/// after history has accumulated, and at dop 4 with warm history. A
/// history-driven plan change (e.g. a flipped join build side) may re-order
/// float summation, so this uses the repo-standard tolerant comparator.
#[test]
fn tpch_results_stable_as_history_accumulates() {
    let (db, cat) = tpch_db(0.01);
    for table in TPCH_TABLES {
        db.analyze(table).unwrap();
    }
    let queries = all_queries(&cat);
    db.execute("SET adaptivity = 'off'").unwrap();
    let reference: Vec<_> = queries
        .iter()
        .map(|(_, plan)| canonical(db.run_plan(plan.clone()).unwrap().rows))
        .collect();
    db.execute("SET adaptivity = 'on'").unwrap();
    for (round, dop) in [(0, 1), (1, 1), (2, 4)] {
        db.set_parallelism(dop);
        for ((n, plan), want) in queries.iter().zip(&reference) {
            let got = canonical(db.run_plan(plan.clone()).unwrap().rows);
            assert_rows_match(&format!("Q{} round {} dop {}", n, round, dop), &got, want);
        }
    }
}

/// With no ANALYZE the static estimator works from defaults and grossly
/// overestimates a selective filter; repeated runs must teach the planner,
/// surface the correction in EXPLAIN ANALYZE and bump the metrics counter —
/// all without changing results.
#[test]
fn history_corrections_surface_in_explain_analyze() {
    let db = Database::new().unwrap();
    db.execute("CREATE TABLE big (a BIGINT NOT NULL, b BIGINT NOT NULL)")
        .unwrap();
    db.bulk_load(
        "big",
        (0..4000).map(|i| vec![Value::I64(i % 50), Value::I64(i)]),
    )
    .unwrap();
    db.execute("CREATE TABLE small (a BIGINT NOT NULL)")
        .unwrap();
    db.bulk_load("small", (0..40).map(|i| vec![Value::I64(i)]))
        .unwrap();
    let q = "SELECT COUNT(*) FROM big, small WHERE big.a = small.a AND big.b < 10";
    db.execute("SET adaptivity = 'off'").unwrap();
    let want = db.execute(q).unwrap().rows;
    db.execute("SET adaptivity = 'on'").unwrap();
    for _ in 0..4 {
        assert_eq!(db.execute(q).unwrap().rows, want, "history changed results");
    }
    let r = db.execute(&format!("EXPLAIN ANALYZE {}", q)).unwrap();
    let text: String = r
        .rows
        .iter()
        .map(|row| row[0].as_str().unwrap())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        text.contains("vw_plan_feedback"),
        "no feedback line after warm history:\n{}",
        text
    );
    let m = db
        .execute("SELECT value FROM vw_metrics WHERE name = 'plan_corrections_total'")
        .unwrap();
    assert!(
        matches!(m.rows[0][0], Value::F64(v) if v >= 1.0),
        "plan_corrections_total not bumped: {:?}",
        m.rows
    );
}

/// The acceptance benchmark in miniature: a skewed conjunct pair written
/// cheap-first in the SQL text. Adaptivity must learn to evaluate the
/// selective conjunct first, cutting predicate evaluations ≥1.3x (measured
/// via the existing `enc_evals` profile counter, so it is deterministic).
#[test]
fn adaptive_scan_order_cuts_predicate_work() {
    let db = Database::new().unwrap();
    // PARTITIONS 1 pins single-extent storage even under a VW_PARTITIONS
    // default: range-partitioning on `hot` would cluster its values so zone
    // maps drop the cheap conjunct statically — this benchmark measures the
    // *adaptive* reordering win, which needs the skew left in place.
    db.execute(
        "CREATE TABLE s (hot BIGINT NOT NULL, cold BIGINT NOT NULL)          PARTITION BY RANGE(hot) PARTITIONS 1",
    )
    .unwrap();
    // `hot <= 8` passes 90% of rows; `cold < 40` passes 1%.
    db.bulk_load(
        "s",
        (0..4000).map(|i| vec![Value::I64(i % 10), Value::I64(i)]),
    )
    .unwrap();
    db.execute("SET vector_size = 64").unwrap();
    let q = "SELECT COUNT(*) FROM s WHERE hot <= 8 AND cold < 40";
    fn enc_evals(n: &Arc<OpProfile>) -> u64 {
        let own: u64 = n
            .extras()
            .iter()
            .filter(|&&(k, _)| k == "enc_evals")
            .map(|&(_, v)| v)
            .sum();
        own + n.children().iter().map(enc_evals).sum::<u64>()
    }
    let mut measured = [0u64; 2];
    for (i, adapt) in ["off", "on"].iter().enumerate() {
        db.execute(&format!("SET adaptivity = '{}'", adapt))
            .unwrap();
        let r = db.execute(q).unwrap();
        assert_eq!(r.rows[0][0], Value::I64(36));
        let prof = db.profile_last_query().expect("profiling on by default");
        measured[i] = enc_evals(&prof.root);
    }
    let [off, on] = measured;
    assert!(
        off as f64 >= 1.3 * on as f64,
        "adaptive order did not cut predicate work: enc_evals off={} on={}",
        off,
        on
    );
}
