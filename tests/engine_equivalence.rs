//! Three-engine equivalence on the full TPC-H workload.
//!
//! The paper's performance claims (E1/E2/E3) only mean something if the
//! engines compute the same answers. This suite runs all 22 TPC-H queries on
//! a small generated database through:
//!
//! * the vectorized engine (raw plans, optimized plans, parallel plans,
//!   tiny vector sizes, naive-NULL mode),
//! * the tuple-at-a-time baseline,
//! * the full-materialization baseline,
//!
//! and requires identical results everywhere.

mod common;

use common::*;
use vectorwise::tpch::all_queries;

const SF: f64 = 0.002;

#[test]
fn all_queries_return_plausible_results() {
    // Larger scale than the equivalence runs so selective queries find rows.
    let (db, cat) = tpch_db(0.01);
    let mut empty = Vec::new();
    for (n, plan) in all_queries(&cat) {
        let rows = run_vectorized(&db, &plan);
        if rows.is_empty() {
            empty.push(n);
        }
    }
    // Highly selective / threshold queries may legitimately come up empty at
    // this tiny scale; anything else empty is a bug.
    let allowed = [17u8, 18, 20];
    assert!(
        empty.iter().all(|n| allowed.contains(n)),
        "unexpectedly empty queries: {:?}",
        empty
    );
}

#[test]
fn vectorized_matches_row_engine_on_all_queries() {
    let (db, cat) = tpch_db(SF);
    for (n, plan) in all_queries(&cat) {
        let want = canonical(run_row_engine(&db, &plan));
        let got = canonical(run_vectorized_raw(&db, &plan));
        assert_rows_match(&format!("Q{} vectorized-vs-row", n), &got, &want);
    }
}

#[test]
fn vectorized_matches_materialized_engine_on_all_queries() {
    let (db, cat) = tpch_db(SF);
    for (n, plan) in all_queries(&cat) {
        let want = canonical(run_vectorized_raw(&db, &plan));
        let got = canonical(run_materialized(&db, &plan));
        assert_rows_match(&format!("Q{} materialized-vs-vectorized", n), &got, &want);
    }
}

#[test]
fn optimizer_and_rewriter_preserve_results() {
    let (db, cat) = tpch_db(SF);
    db.analyze("lineitem").unwrap();
    db.analyze("orders").unwrap();
    db.analyze("customer").unwrap();
    db.analyze("part").unwrap();
    for (n, plan) in all_queries(&cat) {
        let want = canonical(run_vectorized_raw(&db, &plan));
        let got = canonical(run_vectorized(&db, &plan)); // optimize + rewrite
        assert_rows_match(&format!("Q{} optimized-vs-raw", n), &got, &want);
    }
}

#[test]
fn parallel_plans_preserve_results() {
    let (db, cat) = tpch_db(SF);
    let serial: Vec<_> = all_queries(&cat)
        .into_iter()
        .map(|(n, p)| (n, canonical(run_vectorized(&db, &p)), p))
        .collect();
    db.set_parallelism(3);
    for (n, want, plan) in serial {
        let got = canonical(run_vectorized(&db, &plan));
        assert_rows_match(&format!("Q{} parallel-vs-serial", n), &got, &want);
    }
}

#[test]
fn vector_size_is_result_invariant() {
    let (db, cat) = tpch_db(SF);
    // Representative queries across operator shapes.
    let interesting = [1u8, 3, 6, 13, 16, 21];
    let baseline: Vec<_> = all_queries(&cat)
        .into_iter()
        .filter(|(n, _)| interesting.contains(n))
        .map(|(n, p)| (n, canonical(run_vectorized(&db, &p)), p))
        .collect();
    for vs in [1usize, 7, 64, 100_000] {
        db.set_vector_size(vs);
        for (n, want, plan) in &baseline {
            let got = canonical(run_vectorized(&db, plan));
            assert_rows_match(&format!("Q{} vs={}", n, vs), &got, want);
        }
    }
}

#[test]
fn naive_null_mode_is_result_invariant() {
    let (db, cat) = tpch_db(SF);
    let interesting = [1u8, 6, 12, 13, 14, 22];
    let baseline: Vec<_> = all_queries(&cat)
        .into_iter()
        .filter(|(n, _)| interesting.contains(n))
        .map(|(n, p)| (n, canonical(run_vectorized(&db, &p)), p))
        .collect();
    db.set_rewrite_nulls(false);
    for (n, want, plan) in &baseline {
        let got = canonical(run_vectorized(&db, plan));
        assert_rows_match(&format!("Q{} naive-nulls", n), &got, want);
    }
}

#[test]
fn q1_aggregates_are_internally_consistent() {
    let (db, cat) = tpch_db(SF);
    let plan = vectorwise::tpch::queries::q1(&cat);
    let rows = run_vectorized(&db, &plan);
    for row in &rows {
        let sum_qty = row[2].as_f64().unwrap();
        let avg_qty = row[6].as_f64().unwrap();
        let count = row[9].as_i64().unwrap() as f64;
        assert!((sum_qty / count - avg_qty).abs() < 1e-6);
        let sum_base = row[3].as_f64().unwrap();
        let sum_disc = row[4].as_f64().unwrap();
        let sum_charge = row[5].as_f64().unwrap();
        assert!(sum_disc <= sum_base);
        assert!(sum_charge >= sum_disc);
    }
    // Total row count matches an independent COUNT(*).
    let total: i64 = rows.iter().map(|r| r[9].as_i64().unwrap()).sum();
    let r = db
        .execute("SELECT COUNT(*) FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'")
        .unwrap();
    assert_eq!(r.rows[0][0].as_i64().unwrap(), total);
}

#[test]
fn sql_text_matches_plan_builder_for_q6() {
    let (db, cat) = tpch_db(SF);
    let plan_rows = run_vectorized(&db, &vectorwise::tpch::queries::q6(&cat));
    let sql_rows = db
        .execute(
            "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem \
             WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
             AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
        )
        .unwrap()
        .rows;
    assert_rows_match("Q6 sql-vs-plan", &sql_rows, &plan_rows);
}

#[test]
fn sql_text_matches_plan_builder_for_q1() {
    let (db, cat) = tpch_db(SF);
    let plan_rows = run_vectorized(&db, &vectorwise::tpch::queries::q1(&cat));
    let sql_rows = db
        .execute(
            "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, \
             SUM(l_extendedprice) AS sum_base_price, \
             SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
             SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
             AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, \
             AVG(l_discount) AS avg_disc, COUNT(*) AS count_order \
             FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
             GROUP BY l_returnflag, l_linestatus \
             ORDER BY l_returnflag, l_linestatus",
        )
        .unwrap()
        .rows;
    assert_rows_match("Q1 sql-vs-plan", &sql_rows, &plan_rows);
}
