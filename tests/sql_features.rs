//! End-to-end coverage of every SQL dialect feature, through the full stack
//! (parse → bind → optimize → rewrite → vectorized execution).

mod common;

use vectorwise::{Database, Value};

fn db() -> Database {
    let db = Database::new().unwrap();
    db.execute(
        "CREATE TABLE emp (
            id BIGINT NOT NULL,
            name VARCHAR NOT NULL,
            dept VARCHAR,
            salary DOUBLE NOT NULL,
            hired DATE NOT NULL,
            boss BIGINT
        )",
    )
    .unwrap();
    db.execute(
        "INSERT INTO emp VALUES
            (1, 'ann',   'eng',   100.0, '2020-01-15', NULL),
            (2, 'bob',   'eng',    80.0, '2021-03-01', 1),
            (3, 'cat',   'sales',  90.0, '2019-07-20', 1),
            (4, 'dan',   NULL,     70.0, '2022-11-05', 3),
            (5, 'eve',   'sales', 120.0, '2018-02-28', NULL),
            (6, 'fay',   'eng',    95.0, '2023-06-17', 2)",
    )
    .unwrap();
    db.execute("CREATE TABLE dept (name VARCHAR NOT NULL, floor BIGINT NOT NULL)")
        .unwrap();
    db.execute("INSERT INTO dept VALUES ('eng', 3), ('sales', 1), ('legal', 9)")
        .unwrap();
    db
}

fn one(db: &Database, sql: &str) -> Value {
    let r = db.execute(sql).unwrap();
    assert_eq!(r.rows.len(), 1, "{}", sql);
    r.rows[0][0].clone()
}

fn col(db: &Database, sql: &str) -> Vec<Value> {
    db.execute(sql)
        .unwrap()
        .rows
        .into_iter()
        .map(|mut r| r.remove(0))
        .collect()
}

#[test]
fn arithmetic_and_precedence() {
    let d = db();
    assert_eq!(
        one(&d, "SELECT salary + 10 * 2 FROM emp WHERE id = 2"),
        Value::F64(100.0)
    );
    assert_eq!(
        one(&d, "SELECT (salary + 10) * 2 FROM emp WHERE id = 2"),
        Value::F64(180.0)
    );
    assert_eq!(
        one(&d, "SELECT -salary FROM emp WHERE id = 1"),
        Value::F64(-100.0)
    );
    assert_eq!(
        one(&d, "SELECT salary / 4 FROM emp WHERE id = 2"),
        Value::F64(20.0)
    );
}

#[test]
fn comparison_operators_and_boolean_logic() {
    let d = db();
    assert_eq!(
        one(
            &d,
            "SELECT COUNT(*) FROM emp WHERE salary >= 90 AND salary <= 100"
        ),
        Value::I64(3)
    );
    assert_eq!(
        one(
            &d,
            "SELECT COUNT(*) FROM emp WHERE dept = 'eng' OR dept = 'sales'"
        ),
        Value::I64(5)
    );
    assert_eq!(
        one(&d, "SELECT COUNT(*) FROM emp WHERE NOT (salary < 90)"),
        Value::I64(4)
    );
    assert_eq!(
        one(&d, "SELECT COUNT(*) FROM emp WHERE salary <> 100"),
        Value::I64(5)
    );
}

#[test]
fn null_predicates_and_three_valued_logic() {
    let d = db();
    assert_eq!(
        one(&d, "SELECT COUNT(*) FROM emp WHERE dept IS NULL"),
        Value::I64(1)
    );
    assert_eq!(
        one(&d, "SELECT COUNT(*) FROM emp WHERE dept IS NOT NULL"),
        Value::I64(5)
    );
    // dept = NULL never matches (not even the NULL row)
    assert_eq!(
        one(&d, "SELECT COUNT(*) FROM emp WHERE dept = NULL"),
        Value::I64(0)
    );
    // boss > 0 OR TRUE-branch logic with NULL boss
    assert_eq!(
        one(
            &d,
            "SELECT COUNT(*) FROM emp WHERE boss > 0 OR salary > 110"
        ),
        Value::I64(5)
    );
}

#[test]
fn between_in_like() {
    let d = db();
    assert_eq!(
        one(
            &d,
            "SELECT COUNT(*) FROM emp WHERE salary BETWEEN 80 AND 100"
        ),
        Value::I64(4)
    );
    assert_eq!(
        one(
            &d,
            "SELECT COUNT(*) FROM emp WHERE salary NOT BETWEEN 80 AND 100"
        ),
        Value::I64(2)
    );
    assert_eq!(
        one(
            &d,
            "SELECT COUNT(*) FROM emp WHERE name IN ('ann', 'eve', 'zzz')"
        ),
        Value::I64(2)
    );
    assert_eq!(
        one(
            &d,
            "SELECT COUNT(*) FROM emp WHERE name NOT IN ('ann', 'eve')"
        ),
        Value::I64(4)
    );
    assert_eq!(
        one(&d, "SELECT COUNT(*) FROM emp WHERE name LIKE '%a%'"),
        Value::I64(4) // ann, cat, dan, fay
    );
    assert_eq!(
        one(&d, "SELECT COUNT(*) FROM emp WHERE name LIKE '_a_'"),
        Value::I64(3) // cat, dan, fay
    );
    assert_eq!(
        one(&d, "SELECT COUNT(*) FROM emp WHERE name NOT LIKE '%a%'"),
        Value::I64(2)
    );
}

#[test]
fn case_expressions() {
    let d = db();
    let bands = col(
        &d,
        "SELECT CASE WHEN salary >= 100 THEN 'high' WHEN salary >= 85 THEN 'mid' \
         ELSE 'low' END FROM emp ORDER BY id",
    );
    assert_eq!(
        bands,
        vec![
            Value::Str("high".into()),
            Value::Str("low".into()),
            Value::Str("mid".into()),
            Value::Str("low".into()),
            Value::Str("high".into()),
            Value::Str("mid".into()),
        ]
    );
    // CASE without ELSE → NULL
    assert_eq!(
        one(
            &d,
            "SELECT CASE WHEN salary > 1000 THEN 1 END FROM emp WHERE id = 1"
        ),
        Value::Null
    );
}

#[test]
fn dates_extract_and_intervals() {
    let d = db();
    assert_eq!(
        one(
            &d,
            "SELECT COUNT(*) FROM emp WHERE hired >= DATE '2021-01-01'"
        ),
        Value::I64(3)
    );
    assert_eq!(
        one(
            &d,
            "SELECT COUNT(*) FROM emp WHERE hired < DATE '2020-01-01' + INTERVAL '2' YEAR"
        ),
        Value::I64(4) // 2018, 2019, 2020-01-15, 2021-03-01 < 2022-01-01
    );
    let years = col(
        &d,
        "SELECT EXTRACT(YEAR FROM hired) FROM emp ORDER BY hired",
    );
    assert_eq!(years[0], Value::I32(2018));
    assert_eq!(years[5], Value::I32(2023));
    assert_eq!(
        one(&d, "SELECT EXTRACT(MONTH FROM hired) FROM emp WHERE id = 4"),
        Value::I32(11)
    );
}

#[test]
fn string_functions_and_cast() {
    let d = db();
    assert_eq!(
        one(
            &d,
            "SELECT SUBSTRING(name FROM 1 FOR 2) FROM emp WHERE id = 3"
        ),
        Value::Str("ca".into())
    );
    assert_eq!(
        one(&d, "SELECT CAST(salary AS BIGINT) FROM emp WHERE id = 2"),
        Value::I64(80)
    );
    assert_eq!(
        one(&d, "SELECT CAST(id AS DOUBLE) / 2 FROM emp WHERE id = 5"),
        Value::F64(2.5)
    );
}

#[test]
fn aggregates_group_having_order() {
    let d = db();
    let r = d
        .execute(
            "SELECT dept, COUNT(*) AS n, SUM(salary) AS total, AVG(salary) AS mean, \
             MIN(salary) AS lo, MAX(salary) AS hi \
             FROM emp WHERE dept IS NOT NULL GROUP BY dept ORDER BY dept",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(
        r.rows[0],
        vec![
            Value::Str("eng".into()),
            Value::I64(3),
            Value::F64(275.0),
            Value::F64(275.0 / 3.0),
            Value::F64(80.0),
            Value::F64(100.0),
        ]
    );
    // HAVING over aggregates
    let names = col(
        &d,
        "SELECT dept FROM emp GROUP BY dept HAVING COUNT(*) >= 2 AND dept IS NOT NULL ORDER BY dept",
    );
    assert_eq!(
        names,
        vec![Value::Str("eng".into()), Value::Str("sales".into())]
    );
    // expressions over aggregates in the SELECT list
    assert_eq!(
        one(&d, "SELECT MAX(salary) - MIN(salary) FROM emp"),
        Value::F64(50.0)
    );
    // COUNT of a nullable column skips NULLs
    assert_eq!(one(&d, "SELECT COUNT(dept) FROM emp"), Value::I64(5));
    assert_eq!(one(&d, "SELECT COUNT(*) FROM emp"), Value::I64(6));
}

#[test]
fn group_by_expression_and_aliases() {
    let d = db();
    let r = d
        .execute(
            "SELECT EXTRACT(YEAR FROM hired) AS yr, COUNT(*) AS n FROM emp \
             GROUP BY EXTRACT(YEAR FROM hired) ORDER BY yr",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 6);
    assert_eq!(r.rows[0], vec![Value::I32(2018), Value::I64(1)]);
    assert_eq!(r.schema.field(0).name, "yr");
}

#[test]
fn distinct() {
    let d = db();
    let depts = col(&d, "SELECT DISTINCT dept FROM emp ORDER BY dept");
    assert_eq!(depts.len(), 3); // NULL, eng, sales
    assert_eq!(depts[0], Value::Null);
}

#[test]
fn joins_inner_left_self() {
    let d = db();
    // inner
    let r = d
        .execute(
            "SELECT e.name, d.floor FROM emp e JOIN dept d ON e.dept = d.name \
             ORDER BY e.id",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 5); // dan has NULL dept
    assert_eq!(r.rows[0], vec![Value::Str("ann".into()), Value::I64(3)]);
    // left join pads
    let r = d
        .execute(
            "SELECT e.name, d.floor FROM emp e LEFT JOIN dept d ON e.dept = d.name \
             WHERE e.id = 4",
        )
        .unwrap();
    assert_eq!(r.rows[0], vec![Value::Str("dan".into()), Value::Null]);
    // self join (boss relationship) with aliases
    let r = d
        .execute("SELECT e.name, b.name FROM emp e JOIN emp b ON e.boss = b.id ORDER BY e.id")
        .unwrap();
    assert_eq!(r.rows.len(), 4);
    assert_eq!(
        r.rows[0],
        vec![Value::Str("bob".into()), Value::Str("ann".into())]
    );
    // comma join with WHERE condition
    let r = d
        .execute("SELECT COUNT(*) FROM emp, dept WHERE emp.dept = dept.name")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::I64(5));
}

#[test]
fn in_subquery_semi_anti() {
    let d = db();
    // employees in departments that exist in dept table
    assert_eq!(
        one(
            &d,
            "SELECT COUNT(*) FROM emp WHERE dept IN (SELECT name FROM dept)"
        ),
        Value::I64(5)
    );
    // anti: nobody is in legal
    let names = col(
        &d,
        "SELECT name FROM emp WHERE id NOT IN (SELECT boss FROM emp WHERE boss IS NOT NULL) \
         ORDER BY name",
    );
    // bosses are 1, 2, 3 → non-bosses 4, 5, 6
    assert_eq!(
        names,
        vec![
            Value::Str("dan".into()),
            Value::Str("eve".into()),
            Value::Str("fay".into())
        ]
    );
    // subquery with its own WHERE
    assert_eq!(
        one(
            &d,
            "SELECT COUNT(*) FROM emp WHERE dept IN (SELECT name FROM dept WHERE floor > 2)"
        ),
        Value::I64(3)
    );
}

#[test]
fn order_by_variants_limit_offset() {
    let d = db();
    let ids = col(&d, "SELECT id FROM emp ORDER BY salary DESC, id LIMIT 3");
    assert_eq!(ids, vec![Value::I64(5), Value::I64(1), Value::I64(6)]);
    let ids = col(&d, "SELECT id FROM emp ORDER BY 1 DESC LIMIT 2 OFFSET 1");
    assert_eq!(ids, vec![Value::I64(5), Value::I64(4)]);
    let ids = col(&d, "SELECT id FROM emp ORDER BY id LIMIT 100 OFFSET 5");
    assert_eq!(ids, vec![Value::I64(6)]);
}

#[test]
fn insert_variants() {
    let d = db();
    // column subset, remaining nullable columns default to NULL
    d.execute("INSERT INTO emp (id, name, salary, hired) VALUES (7, 'gil', 60.0, '2024-01-01')")
        .unwrap();
    let r = d
        .execute("SELECT dept, boss FROM emp WHERE id = 7")
        .unwrap();
    assert_eq!(r.rows[0], vec![Value::Null, Value::Null]);
    // multi-row insert
    d.execute(
        "INSERT INTO emp (id, name, salary, hired) VALUES \
         (8, 'hal', 61.0, '2024-01-02'), (9, 'ivy', 62.0, '2024-01-03')",
    )
    .unwrap();
    assert_eq!(one(&d, "SELECT COUNT(*) FROM emp"), Value::I64(9));
    // integer literal into DOUBLE column coerces
    d.execute("INSERT INTO emp (id, name, salary, hired) VALUES (10, 'joe', 55, '2024-02-01')")
        .unwrap();
    assert_eq!(
        one(&d, "SELECT salary FROM emp WHERE id = 10"),
        Value::F64(55.0)
    );
}

#[test]
fn update_with_expressions_and_delete() {
    let d = db();
    d.execute("UPDATE emp SET salary = salary * 1.5, dept = 'exec' WHERE boss IS NULL")
        .unwrap();
    assert_eq!(
        one(&d, "SELECT SUM(salary) FROM emp WHERE dept = 'exec'"),
        Value::F64((100.0 + 120.0) * 1.5)
    );
    // assignments see pre-update values
    d.execute("CREATE TABLE swapt (a BIGINT NOT NULL, b BIGINT NOT NULL)")
        .unwrap();
    d.execute("INSERT INTO swapt VALUES (1, 2)").unwrap();
    d.execute("UPDATE swapt SET a = b, b = a").unwrap();
    let r = d.execute("SELECT a, b FROM swapt").unwrap();
    assert_eq!(r.rows[0], vec![Value::I64(2), Value::I64(1)]);
    // delete with predicate
    d.execute("DELETE FROM emp WHERE dept = 'exec'").unwrap();
    assert_eq!(one(&d, "SELECT COUNT(*) FROM emp"), Value::I64(4));
    // delete everything
    d.execute("DELETE FROM swapt").unwrap();
    assert_eq!(one(&d, "SELECT COUNT(*) FROM swapt"), Value::I64(0));
}

#[test]
fn wildcard_and_qualified_wildcard_order() {
    let d = db();
    let r = d.execute("SELECT * FROM dept ORDER BY floor").unwrap();
    assert_eq!(r.schema.field(0).name, "name");
    assert_eq!(r.schema.field(1).name, "floor");
    assert_eq!(r.rows[0][0], Value::Str("sales".into()));
}

#[test]
fn error_messages_are_helpful() {
    let d = db();
    let e = d.execute("SELECT nope FROM emp").unwrap_err();
    assert!(e.to_string().contains("nope"), "{}", e);
    let e = d.execute("SELECT name FROM emp GROUP BY dept").unwrap_err();
    assert!(e.to_string().contains("GROUP BY"), "{}", e);
    let e = d.execute("SELECT * FROM emp WHERE salary").unwrap_err();
    assert!(e.to_string().contains("BOOLEAN"), "{}", e);
    let e = d.execute("INSERT INTO emp (id) VALUES (99)").unwrap_err();
    assert!(e.to_string().contains("NOT NULL"), "{}", e);
    let e = d.execute("SELECT ( FROM emp").unwrap_err();
    assert_eq!(e.kind(), "parse");
}

#[test]
fn parser_never_panics_on_garbage() {
    use vectorwise::common::rng::Xoshiro256;
    let d = db();
    let tokens = [
        "SELECT", "FROM", "WHERE", "emp", "dept", "(", ")", ",", "*", "+", "-", "/", "=", "<", ">",
        "'x'", "42", "3.5", "AND", "OR", "NOT", "GROUP", "BY", "ORDER", "LIMIT", "JOIN", "ON",
        "IN", "LIKE", "BETWEEN", "CASE", "WHEN", "NULL", "AS", "name", ";",
    ];
    let mut r = Xoshiro256::seeded(99);
    for _ in 0..500 {
        let n = r.next_below(12) + 1;
        let sql: Vec<&str> = (0..n)
            .map(|_| tokens[r.next_below(tokens.len() as u64) as usize])
            .collect();
        // must never panic; errors are fine
        let _ = d.execute(&sql.join(" "));
    }
}

#[test]
fn explain_all_feature_shapes() {
    let d = db();
    for sql in [
        "EXPLAIN SELECT * FROM emp",
        "EXPLAIN SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 1",
        "EXPLAIN SELECT e.name FROM emp e JOIN dept d ON e.dept = d.name WHERE d.floor > 1",
        "EXPLAIN SELECT name FROM emp WHERE dept IN (SELECT name FROM dept) ORDER BY name LIMIT 1",
    ] {
        let r = d.execute(sql).unwrap();
        assert!(!r.rows.is_empty(), "{}", sql);
    }
}
