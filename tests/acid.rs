//! ACID and concurrency integration tests: snapshot isolation, optimistic
//! conflict detection, WAL durability/recovery, checkpointing, and
//! query-during-update behaviour — §I-B's transactional machinery end to end.

mod common;

use std::sync::Arc;
use vectorwise::{Database, Value};

fn bank_db(accounts: i64) -> Database {
    let db = Database::new().unwrap();
    db.execute("CREATE TABLE accounts (id BIGINT NOT NULL, balance BIGINT NOT NULL)")
        .unwrap();
    db.bulk_load(
        "accounts",
        (0..accounts).map(|i| vec![Value::I64(i), Value::I64(100)]),
    )
    .unwrap();
    db
}

fn total_balance(db: &Database) -> i64 {
    db.execute("SELECT SUM(balance) FROM accounts")
        .unwrap()
        .rows[0][0]
        .as_i64()
        .unwrap()
}

#[test]
fn transfers_preserve_total_balance() {
    let db = bank_db(10);
    let initial = total_balance(&db);
    for i in 0..20 {
        let from = i % 10;
        let to = (i + 3) % 10;
        let mut t = db.begin();
        db.execute_in(
            &mut t,
            &format!(
                "UPDATE accounts SET balance = balance - 10 WHERE id = {}",
                from
            ),
        )
        .unwrap();
        db.execute_in(
            &mut t,
            &format!(
                "UPDATE accounts SET balance = balance + 10 WHERE id = {}",
                to
            ),
        )
        .unwrap();
        db.commit(t).unwrap();
    }
    assert_eq!(total_balance(&db), initial);
}

#[test]
fn aborted_transaction_leaves_no_trace() {
    let db = bank_db(4);
    let mut t = db.begin();
    db.execute_in(&mut t, "UPDATE accounts SET balance = 0")
        .unwrap();
    db.execute_in(&mut t, "DELETE FROM accounts WHERE id = 0")
        .unwrap();
    db.execute_in(&mut t, "INSERT INTO accounts VALUES (99, 1)")
        .unwrap();
    // Inside: changes visible.
    let r = db
        .execute_in(&mut t, "SELECT COUNT(*) FROM accounts")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::I64(4)); // 4 - 1 + 1
    db.abort(t);
    assert_eq!(total_balance(&db), 400);
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM accounts").unwrap().rows[0][0],
        Value::I64(4)
    );
}

#[test]
fn readers_see_stable_snapshot_during_writes() {
    let db = bank_db(8);
    let reader = db.begin();
    db.execute("UPDATE accounts SET balance = 999").unwrap();
    // Snapshot still sees old values.
    let r = db
        .run_plan_in(
            {
                use vectorwise::sql::CatalogView;
                let (tid, schema) = db.resolve_table("accounts").unwrap();
                vectorwise::plan::LogicalPlan::scan("accounts", tid, schema)
            },
            Some(&reader),
        )
        .unwrap();
    assert!(r.rows.iter().all(|row| row[1] == Value::I64(100)));
    // Fresh query sees new values.
    let r2 = db.execute("SELECT MIN(balance) FROM accounts").unwrap();
    assert_eq!(r2.rows[0][0], Value::I64(999));
}

#[test]
fn write_write_conflicts_abort_exactly_one() {
    let db = bank_db(5);
    let mut a = db.begin();
    let mut b = db.begin();
    db.execute_in(&mut a, "UPDATE accounts SET balance = 1 WHERE id = 2")
        .unwrap();
    db.execute_in(&mut b, "UPDATE accounts SET balance = 2 WHERE id = 2")
        .unwrap();
    assert!(db.commit(a).is_ok());
    let err = db.commit(b).unwrap_err();
    assert_eq!(err.kind(), "txn_conflict");
    let r = db
        .execute("SELECT balance FROM accounts WHERE id = 2")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::I64(1));
}

#[test]
fn disjoint_writers_all_commit() {
    let db = Arc::new(bank_db(64));
    let mut handles = Vec::new();
    for w in 0..4i64 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            let mut commits = 0;
            for k in 0..8 {
                let id = w * 16 + k; // disjoint ranges → no conflicts
                let mut t = db.begin();
                db.execute_in(
                    &mut t,
                    &format!(
                        "UPDATE accounts SET balance = balance + 1 WHERE id = {}",
                        id
                    ),
                )
                .unwrap();
                if db.commit(t).is_ok() {
                    commits += 1;
                }
            }
            commits
        }));
    }
    let total: i32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 32);
    assert_eq!(total_balance(&db), 64 * 100 + 32);
}

#[test]
fn contended_writers_serialize_correctly() {
    // All threads increment the same row with retries: final value must be
    // exactly the number of successful commits.
    let db = Arc::new(bank_db(1));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            let mut committed = 0;
            for _ in 0..10 {
                loop {
                    let mut t = db.begin();
                    db.execute_in(
                        &mut t,
                        "UPDATE accounts SET balance = balance + 1 WHERE id = 0",
                    )
                    .unwrap();
                    match db.commit(t) {
                        Ok(()) => {
                            committed += 1;
                            break;
                        }
                        Err(e) => assert_eq!(e.kind(), "txn_conflict"),
                    }
                }
            }
            committed
        }));
    }
    let total: i64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 40);
    let r = db
        .execute("SELECT balance FROM accounts WHERE id = 0")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::I64(100 + 40));
}

#[test]
fn recovery_replays_all_committed_work() {
    let db = bank_db(10);
    db.execute("UPDATE accounts SET balance = balance + 5 WHERE id < 5")
        .unwrap();
    db.execute("DELETE FROM accounts WHERE id = 9").unwrap();
    db.execute("INSERT INTO accounts VALUES (100, 777)")
        .unwrap();
    let before: Vec<_> = db
        .execute("SELECT id, balance FROM accounts ORDER BY id")
        .unwrap()
        .rows;
    db.simulate_crash_and_recover().unwrap();
    let after: Vec<_> = db
        .execute("SELECT id, balance FROM accounts ORDER BY id")
        .unwrap()
        .rows;
    assert_eq!(before, after);
}

#[test]
fn recovery_after_checkpoint_and_more_commits() {
    let db = bank_db(10);
    db.execute("UPDATE accounts SET balance = 0 WHERE id = 0")
        .unwrap();
    db.checkpoint("accounts").unwrap();
    db.execute("UPDATE accounts SET balance = 1 WHERE id = 1")
        .unwrap();
    db.execute("INSERT INTO accounts VALUES (50, 50)").unwrap();
    db.simulate_crash_and_recover().unwrap();
    let r = db
        .execute("SELECT id, balance FROM accounts WHERE id IN (0, 1, 50) ORDER BY id")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::I64(0), Value::I64(0)],
            vec![Value::I64(1), Value::I64(1)],
            vec![Value::I64(50), Value::I64(50)],
        ]
    );
}

#[test]
fn checkpoint_preserves_totals_and_allows_further_updates() {
    let db = bank_db(100);
    db.execute("UPDATE accounts SET balance = balance * 2 WHERE id < 50")
        .unwrap();
    let before = total_balance(&db);
    db.checkpoint("accounts").unwrap();
    assert_eq!(total_balance(&db), before);
    // further updates after checkpoint work
    db.execute("UPDATE accounts SET balance = balance + 1")
        .unwrap();
    assert_eq!(total_balance(&db), before + 100);
}

#[test]
fn many_small_commits_then_recover_matches_oracle() {
    let db = bank_db(20);
    let mut oracle: Vec<i64> = vec![100; 20];
    for i in 0..50i64 {
        let id = (i * 7) % 20;
        let delta = (i % 5) - 2;
        db.execute(&format!(
            "UPDATE accounts SET balance = balance + {} WHERE id = {}",
            delta, id
        ))
        .unwrap();
        oracle[id as usize] += delta;
    }
    db.simulate_crash_and_recover().unwrap();
    let rows = db
        .execute("SELECT id, balance FROM accounts ORDER BY id")
        .unwrap()
        .rows;
    for row in rows {
        let id = row[0].as_i64().unwrap() as usize;
        assert_eq!(row[1].as_i64().unwrap(), oracle[id], "account {}", id);
    }
}

#[test]
fn snapshot_query_sees_pdt_merged_updates() {
    // Mixed stable + delta reads through the vectorized scan.
    let db = bank_db(1000);
    db.execute("UPDATE accounts SET balance = 0 WHERE id < 10")
        .unwrap();
    db.execute("DELETE FROM accounts WHERE id >= 990").unwrap();
    db.execute("INSERT INTO accounts VALUES (5000, 123)")
        .unwrap();
    let r = db
        .execute("SELECT COUNT(*), SUM(balance) FROM accounts")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::I64(1000 - 10 + 1));
    assert_eq!(
        r.rows[0][1],
        Value::I64(1000 * 100 - 10 * 100 - 10 * 100 + 123)
    );
}
