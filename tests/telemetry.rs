//! Observability end-to-end: system tables in both engines, per-worker
//! trace export, metrics registry consistency.

mod common;

use common::*;
use vectorwise::engine::operators::collect_rows;
use vectorwise::engine::{compile_plan, validate_chrome_json};
use vectorwise::sql::{compile_sql, BoundStatement};
use vectorwise::tpch::all_queries;
use vectorwise::{Database, Value};

/// Bind a SQL query against the database's catalog (no execution).
fn bind_query(db: &Database, sql: &str) -> vectorwise::plan::LogicalPlan {
    match compile_sql(sql, db).expect("bind") {
        BoundStatement::Query(plan) => plan,
        other => panic!("expected a query, got {:?}", std::mem::discriminant(&other)),
    }
}

#[test]
fn vw_queries_counts_match_in_both_engines() {
    let db = Database::new().unwrap();
    db.execute("CREATE TABLE t (a BIGINT NOT NULL)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    db.execute("SELECT SUM(a) FROM t").unwrap();
    db.execute("SELECT COUNT(*) FROM t WHERE a > 1").unwrap();

    // Both engines must see the same history snapshot: bind once, build one
    // context (one materialization), run through both compilers.
    let plan = bind_query(&db, "SELECT COUNT(*) FROM vw_queries");
    let ctx = db.plan_exec_context(&plan).unwrap();

    let mut vec_op = compile_plan(&plan, &ctx).expect("vectorized compile");
    let vectorized = collect_rows(vec_op.as_mut()).expect("vectorized run");

    let mut mat_op =
        vectorwise::baselines::compile_materialized(&plan, &ctx).expect("materialized compile");
    let materialized = collect_rows(mat_op.as_mut()).expect("materialized run");

    assert_eq!(vectorized, materialized);
    assert_eq!(vectorized[0][0], Value::I64(2), "two session queries ran");

    // And through the ordinary SQL path the count keeps tracking queries.
    let r = db.execute("SELECT COUNT(*) FROM vw_queries").unwrap();
    assert_eq!(r.rows[0][0], Value::I64(2));
    let r = db.execute("SELECT COUNT(*) FROM vw_queries").unwrap();
    assert_eq!(r.rows[0][0], Value::I64(3));
}

#[test]
fn tpch_q1_dop4_trace_covers_all_workers() {
    let (db, cat) = tpch_db(0.01);
    db.set_parallelism(4);
    let q1 = all_queries(&cat)
        .into_iter()
        .find(|(n, _)| *n == 1)
        .map(|(_, plan)| plan)
        .expect("TPC-H Q1");
    let rows = db.run_plan(q1).expect("Q1 run").rows;
    assert!(!rows.is_empty());

    let json = db.export_trace().expect("trace recorded");
    let events = validate_chrome_json(&json).expect("valid chrome://tracing JSON");
    assert!(events > 0);

    let trace = db.last_trace().unwrap();
    let workers = trace.worker_ids();
    for w in 1..=4 {
        assert!(
            workers.contains(&w),
            "no trace events from worker {w}: saw {workers:?}"
        );
        assert!(
            trace
                .events()
                .iter()
                .any(|e| e.worker == w && e.dur_ns.is_some()),
            "worker {w} recorded no spans"
        );
    }
}

#[test]
fn every_system_table_is_queryable_after_a_workload() {
    let (db, cat) = tpch_db(0.002);
    db.set_parallelism(2);
    for (_, plan) in all_queries(&cat).into_iter().take(4) {
        db.run_plan(plan).expect("workload query");
    }
    for name in [
        "vw_queries",
        "vw_operator_stats",
        "vw_metrics",
        "vw_io",
        "vw_cache",
    ] {
        let r = db
            .execute(&format!("SELECT COUNT(*) FROM {}", name))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let n = match r.rows[0][0] {
            Value::I64(n) => n,
            ref other => panic!("{name}: unexpected count type {other:?}"),
        };
        assert!(n > 0, "{name} is empty after a workload");
    }
    // Registry sanity: morsel/build counters flowed in from the scheduler.
    let r = db
        .execute("SELECT value FROM vw_metrics WHERE name = 'morsels_claimed_total'")
        .unwrap();
    assert!(matches!(r.rows[0][0], Value::F64(v) if v > 0.0));
    // The flattened query-latency histogram counted the workload queries.
    let r = db
        .execute("SELECT value FROM vw_metrics WHERE name = 'query_wall_ns_count'")
        .unwrap();
    assert!(
        matches!(r.rows[0][0], Value::F64(v) if v >= 4.0),
        "histogram count missing or too low: {:?}",
        r.rows
    );
}
