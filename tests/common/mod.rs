//! Shared helpers for the integration test suites.
//!
//! Each integration test binary compiles this module separately and uses a
//! different subset of it.
#![allow(dead_code)]

use std::collections::HashMap;
use std::sync::Arc;
use vectorwise::engine::compile_plan;
use vectorwise::engine::operators::collect_rows;
use vectorwise::plan::LogicalPlan;
use vectorwise::tpch::{tpch_schema, TpchCatalog, TpchGenerator, TPCH_TABLES};
use vectorwise::{Database, Value};

/// Load a full TPC-H database at the given scale factor.
pub fn tpch_db(sf: f64) -> (Database, TpchCatalog) {
    let db = Database::new().expect("db");
    let generator = TpchGenerator::new(sf);
    for table in TPCH_TABLES {
        let schema = tpch_schema(table).unwrap();
        db.create_table(table, schema).unwrap();
        db.bulk_load(table, generator.rows(table)).unwrap();
    }
    let cat = TpchCatalog::new(|name| {
        use vectorwise::sql::CatalogView;
        db.resolve_table(name)
    })
    .unwrap();
    (db, cat)
}

/// Run a plan on the vectorized engine (optionally through the optimizer /
/// rewriter with the database's current config).
pub fn run_vectorized(db: &Database, plan: &LogicalPlan) -> Vec<Vec<Value>> {
    db.run_plan(plan.clone()).expect("vectorized run").rows
}

/// Run a raw (un-rewritten) plan on the vectorized engine.
pub fn run_vectorized_raw(db: &Database, plan: &LogicalPlan) -> Vec<Vec<Value>> {
    let ctx = db.exec_context(None).unwrap();
    let mut op = compile_plan(plan, &ctx).expect("compile");
    collect_rows(op.as_mut()).expect("run")
}

/// Run a plan on the tuple-at-a-time baseline.
pub fn run_row_engine(db: &Database, plan: &LogicalPlan) -> Vec<Vec<Value>> {
    let ctx = db.exec_context(None).unwrap();
    let tables: HashMap<_, _> = ctx
        .tables
        .iter()
        .map(|(id, p)| (*id, Arc::clone(&p.storage)))
        .collect();
    let mut op = vectorwise::baselines::compile_row(plan, &tables).expect("row compile");
    vectorwise::baselines::collect_row_engine(op.as_mut()).expect("row run")
}

/// Run a plan on the full-materialization baseline.
pub fn run_materialized(db: &Database, plan: &LogicalPlan) -> Vec<Vec<Value>> {
    let ctx = db.exec_context(None).unwrap();
    let mut op =
        vectorwise::baselines::compile_materialized(plan, &ctx).expect("materialized compile");
    collect_rows(op.as_mut()).expect("materialized run")
}

/// Canonicalize: sort rows with the total order so engine outputs compare
/// independent of tie order.
pub fn canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}

/// Approximate row-set equality: exact for non-floats, relative tolerance
/// for doubles (parallel plans sum in different orders).
pub fn assert_rows_match(tag: &str, got: &[Vec<Value>], want: &[Vec<Value>]) {
    assert_eq!(
        got.len(),
        want.len(),
        "{}: row count {} vs {}",
        tag,
        got.len(),
        want.len()
    );
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.len(), w.len(), "{}: row {} arity", tag, i);
        for (c, (gv, wv)) in g.iter().zip(w.iter()).enumerate() {
            let ok = match (gv, wv) {
                (Value::F64(a), Value::F64(b)) => {
                    let scale = a.abs().max(b.abs()).max(1.0);
                    (a - b).abs() <= scale * 1e-9
                }
                _ => gv == wv,
            };
            assert!(
                ok,
                "{}: row {} col {}: {} vs {}\n got: {:?}\nwant: {:?}",
                tag, i, c, gv, wv, g, w
            );
        }
    }
}
