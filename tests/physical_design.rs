//! Physical design: declared sort orders, range-partitioned storage and
//! order-aware streaming plans.
//!
//! The contract under test is strict: a table's physical design (ORDER BY,
//! PARTITION BY RANGE) is an *optimization hint*, never a semantics change.
//! Every query must return byte-identical results on an ordered/partitioned
//! layout and on the plain insertion-order single-disk layout, at any
//! parallelism — while serial plans get cheaper (dropped Sorts, streaming
//! MergeJoins) and range queries skip whole partitions (and their disks).

mod common;

use common::*;
use vectorwise::common::{RangePartitionSpec, SortSpec, TableLayout};
use vectorwise::sql::CatalogView;
use vectorwise::tpch::{all_queries, tpch_schema, TpchCatalog, TpchGenerator, TPCH_TABLES};
use vectorwise::{Database, Value};

const SF: f64 = 0.003;

/// Load TPC-H twice from the same generator: once with the trivial layout,
/// once with a declared physical design (big tables sorted on their join
/// key, lineitem + orders range-partitioned on it across 4 devices).
fn tpch_pair(sf: f64) -> (Database, Database, TpchCatalog) {
    let plain = Database::new().expect("plain db");
    let physical = Database::new().expect("physical db");
    for table in TPCH_TABLES {
        let schema = tpch_schema(table).unwrap();
        plain.create_table(table, schema.clone()).unwrap();
        let layout = declared_layout(table, &schema);
        physical
            .create_table_with_layout(table, schema, layout)
            .unwrap();
        let generator = TpchGenerator::new(sf);
        plain.bulk_load(table, generator.rows(table)).unwrap();
        let generator = TpchGenerator::new(sf);
        physical.bulk_load(table, generator.rows(table)).unwrap();
    }
    let cat = TpchCatalog::new(|name| plain.resolve_table(name)).unwrap();
    (plain, physical, cat)
}

fn declared_layout(table: &str, schema: &vectorwise::Schema) -> TableLayout {
    let key = |name: &str| schema.index_of(name).unwrap();
    match table {
        "lineitem" => TableLayout {
            order: vec![SortSpec::new(key("l_orderkey"), true)],
            partition: Some(RangePartitionSpec {
                col: key("l_orderkey"),
                partitions: 4,
            }),
        },
        "orders" => TableLayout {
            order: vec![SortSpec::new(key("o_orderkey"), true)],
            partition: Some(RangePartitionSpec {
                col: key("o_orderkey"),
                partitions: 4,
            }),
        },
        "customer" => TableLayout::ordered(vec![SortSpec::new(key("c_custkey"), true)]),
        _ => TableLayout::default(),
    }
}

/// Exact row-stream equality (order included). `total_cmp` instead of `==`
/// so float NaN/-0.0 cannot produce a spurious mismatch.
fn assert_identical(a: &[Vec<Value>], b: &[Vec<Value>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: row counts differ");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.len(), y.len(), "{what}: row {i} widths differ");
        for (c, (vx, vy)) in x.iter().zip(y.iter()).enumerate() {
            assert!(
                vx.total_cmp(vy) == std::cmp::Ordering::Equal,
                "{what}: row {i} col {c}: {vx:?} != {vy:?}"
            );
        }
    }
}

fn explain(db: &Database, sql: &str) -> String {
    db.execute(sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"))
        .rows
        .into_iter()
        .map(|r| match &r[0] {
            Value::Str(s) => s.clone(),
            other => panic!("EXPLAIN row is not text: {other:?}"),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn all_tpch_queries_byte_identical_across_layouts() {
    let (plain, physical, cat) = tpch_pair(SF);
    // Serial plans must be byte-identical: the ordering pass only rewrites
    // when the rewritten plan streams the exact same rows in the exact same
    // order. At dop > 1 the layouts still agree row-for-row, but float
    // aggregates may differ in the last ULPs — partitioned storage draws
    // different row-group boundaries, so parallel partials combine in a
    // different order (the same tolerance every parallel suite here uses).
    for dop in [1usize, 4] {
        plain.set_parallelism(dop);
        physical.set_parallelism(dop);
        for (n, plan) in all_queries(&cat) {
            let a = run_vectorized(&plain, &plan);
            let b = run_vectorized(&physical, &plan);
            let what = format!("Q{n} dop={dop}");
            if dop == 1 {
                assert_identical(&a, &b, &what);
            } else {
                assert_rows_match(&what, &b, &a);
            }
        }
    }
}

#[test]
fn redundant_sort_dropped_on_declared_order() {
    let (plain, physical, _) = tpch_pair(0.001);
    let sql = "EXPLAIN SELECT o_orderkey, o_totalprice FROM orders \
               WHERE o_totalprice > 0.0 ORDER BY o_orderkey";
    plain.set_parallelism(1);
    physical.set_parallelism(1);
    let baseline = explain(&plain, sql);
    assert!(
        baseline.contains("Sort"),
        "unordered layout must sort:\n{baseline}"
    );
    let ordered = explain(&physical, sql);
    assert!(
        !ordered.contains("Sort"),
        "declared order should elide the Sort:\n{ordered}"
    );
    // The streaming plan still returns the exact same rows.
    let q = "SELECT o_orderkey, o_totalprice FROM orders \
             WHERE o_totalprice > 0.0 ORDER BY o_orderkey";
    assert_identical(
        &plain.execute(q).unwrap().rows,
        &physical.execute(q).unwrap().rows,
        "sort-elision query",
    );
    // Parallel plans keep the Sort on both layouts (delivered order does not
    // survive morsel interleaving).
    physical.set_parallelism(4);
    let parallel = explain(&physical, sql);
    assert!(parallel.contains("Sort"), "dop>1 must keep the Sort");
}

#[test]
fn co_ordered_tables_join_with_streaming_merge() {
    let (plain, physical, _) = tpch_pair(0.001);
    let sql = "SELECT o_orderkey, l_extendedprice FROM orders, lineitem \
               WHERE o_orderkey = l_orderkey";
    plain.set_parallelism(1);
    physical.set_parallelism(1);
    let baseline = explain(&plain, &format!("EXPLAIN {sql}"));
    assert!(
        baseline.contains("Join") && !baseline.contains("MergeJoin"),
        "unordered layout should hash-join:\n{baseline}"
    );
    let merged = explain(&physical, &format!("EXPLAIN {sql}"));
    assert!(
        merged.contains("MergeJoin"),
        "co-ordered inputs should merge-join:\n{merged}"
    );
    assert_identical(
        &plain.execute(sql).unwrap().rows,
        &physical.execute(sql).unwrap().rows,
        "merge-join query",
    );
}

#[test]
fn range_predicate_prunes_partitions_and_their_disks() {
    let (plain, physical, _) = tpch_pair(SF);
    plain.set_parallelism(1);
    physical.set_parallelism(1);
    // Partition bounds are equal-count quantiles of l_orderkey, so a
    // predicate below the first internal bound rules out partitions 1..3.
    let sql = "SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem WHERE l_orderkey < 50";
    let analyzed = explain(&physical, &format!("EXPLAIN ANALYZE {sql}"));
    let pruned: u64 = analyzed
        .lines()
        .find_map(|l| {
            l.split([' ', ','])
                .find_map(|tok| tok.strip_prefix("partitions_pruned="))
                .map(|v| v.parse().unwrap())
        })
        .unwrap_or_else(|| panic!("no partitions_pruned counter in:\n{analyzed}"));
    assert!(
        pruned >= 2,
        "expected at least half of 4 partitions pruned, got {pruned}:\n{analyzed}"
    );
    // The avoided partitions' own devices recorded the skipped bytes.
    let io = physical
        .execute("SELECT disk, bytes_skipped FROM vw_io")
        .unwrap()
        .rows;
    let part_disks: Vec<(&str, i64)> = io
        .iter()
        .map(|r| match (&r[0], &r[1]) {
            (Value::Str(d), Value::I64(b)) => (d.as_str(), *b),
            other => panic!("unexpected vw_io row {other:?}"),
        })
        .filter(|(d, _)| d.starts_with("lineitem.p"))
        .collect();
    assert_eq!(part_disks.len(), 4, "one vw_io row per partition: {io:?}");
    assert!(
        part_disks.iter().filter(|(_, b)| *b > 0).count() >= 2,
        "pruned partitions should charge skipped bytes to their disks: {part_disks:?}"
    );
    // And the answer itself is unchanged by all that skipping.
    assert_identical(
        &plain.execute(sql).unwrap().rows,
        &physical.execute(sql).unwrap().rows,
        "pruning query",
    );
}

/// Checkpoint-under-churn property: an ORDER BY table stays value-identical
/// to a plain-layout table fed the same DML, across interleaved inserts,
/// deletes, updates and checkpoints — and once checkpointed, its scan
/// delivers the declared order with no Sort in the plan.
#[test]
fn checkpoint_under_churn_preserves_order_and_values() {
    let ordered = Database::new().unwrap();
    let plain = Database::new().unwrap();
    ordered
        .execute(
            "CREATE TABLE t (k BIGINT, v BIGINT) \
             ORDER BY (k) PARTITION BY RANGE(k) PARTITIONS 3",
        )
        .unwrap();
    plain
        .execute("CREATE TABLE t (k BIGINT, v BIGINT)")
        .unwrap();
    // Deterministic pseudo-random churn (LCG; no external deps).
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut rng = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut next_v = 0i64;
    for round in 0..8 {
        for _ in 0..40 {
            let k = (rng() % 1000) as i64;
            next_v += 1;
            let stmt = format!("INSERT INTO t VALUES ({k}, {next_v})");
            ordered.execute(&stmt).unwrap();
            plain.execute(&stmt).unwrap();
        }
        let dk = (rng() % 1000) as i64;
        let del = format!("DELETE FROM t WHERE k = {dk}");
        ordered.execute(&del).unwrap();
        plain.execute(&del).unwrap();
        let (ulo, uhi) = ((rng() % 900) as i64, 100i64);
        let upd = format!(
            "UPDATE t SET v = v + 1000000 WHERE k >= {ulo} AND k < {}",
            ulo + uhi
        );
        ordered.execute(&upd).unwrap();
        plain.execute(&upd).unwrap();
        if round % 2 == 1 {
            ordered.checkpoint("t").unwrap();
            plain.checkpoint("t").unwrap();
        }
        // Same multiset of rows, checkpointed or not, serial or parallel.
        let q = "SELECT k, v FROM t ORDER BY k, v";
        for dop in [1usize, 3] {
            ordered.set_parallelism(dop);
            plain.set_parallelism(dop);
            assert_identical(
                &ordered.execute(q).unwrap().rows,
                &plain.execute(q).unwrap().rows,
                &format!("churn round {round} dop {dop}"),
            );
        }
    }
    // Settle: after a final checkpoint the PDT is empty again, so the
    // declared order is delivered physically and the Sort disappears.
    ordered.checkpoint("t").unwrap();
    ordered.set_parallelism(1);
    let plan = explain(&ordered, "EXPLAIN SELECT k, v FROM t ORDER BY k");
    assert!(
        !plan.contains("Sort"),
        "checkpointed ORDER BY table should scan in order:\n{plan}"
    );
    // The bare scan (no ORDER BY at all) really is sorted on k.
    let rows = ordered.execute("SELECT k FROM t").unwrap().rows;
    assert!(
        rows.windows(2)
            .all(|w| { matches!((&w[0][0], &w[1][0]), (Value::I64(a), Value::I64(b)) if a <= b) }),
        "physical scan order violates the declared ORDER BY"
    );
}

/// An un-checkpointed PDT suspends order-based rewrites: correctness first.
#[test]
fn dirty_pdt_suspends_sort_elision() {
    let db = Database::new().unwrap();
    db.execute("CREATE TABLE t (k BIGINT, v BIGINT) ORDER BY (k)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (5, 1)").unwrap();
    db.set_parallelism(1);
    let dirty = explain(&db, "EXPLAIN SELECT k FROM t ORDER BY k");
    assert!(
        dirty.contains("Sort"),
        "uncheckpointed churn must keep the Sort:\n{dirty}"
    );
    db.checkpoint("t").unwrap();
    let clean = explain(&db, "EXPLAIN SELECT k FROM t ORDER BY k");
    assert!(
        !clean.contains("Sort"),
        "after checkpoint the Sort is redundant again:\n{clean}"
    );
}
