//! Property-based integration tests (proptest): core invariants hold for
//! *arbitrary* data, not just the hand-picked cases of the unit suites.

mod common;

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;
use vectorwise::common::rng::Xoshiro256;
use vectorwise::pdt::Pdt;
use vectorwise::plan::{AggExpr, AggFunc, BinOp, Expr, LogicalPlan};
use vectorwise::storage::{compress_data, decompress_data, ColumnData, StrColumn};
use vectorwise::{DataType, Database, Field, Schema, Value};

// ------------------------------------------------------------- compression

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compression_roundtrips_arbitrary_i64(values in prop::collection::vec(any::<i64>(), 0..300)) {
        let col = ColumnData::I64(values);
        let (_, bytes) = compress_data(&col);
        prop_assert_eq!(decompress_data(&bytes).unwrap(), col);
    }

    #[test]
    fn compression_roundtrips_skewed_i64(
        base in -1000i64..1000,
        deltas in prop::collection::vec(0i64..50, 0..300),
        outliers in prop::collection::vec((0usize..300, any::<i64>()), 0..10),
    ) {
        let mut values: Vec<i64> = deltas.iter().map(|d| base + d).collect();
        for (pos, v) in outliers {
            if !values.is_empty() {
                let idx = pos % values.len();
                values[idx] = v;
            }
        }
        let col = ColumnData::I64(values);
        let (_, bytes) = compress_data(&col);
        prop_assert_eq!(decompress_data(&bytes).unwrap(), col);
    }

    #[test]
    fn compression_roundtrips_i32(values in prop::collection::vec(any::<i32>(), 0..300)) {
        let col = ColumnData::I32(values);
        let (_, bytes) = compress_data(&col);
        prop_assert_eq!(decompress_data(&bytes).unwrap(), col);
    }

    #[test]
    fn compression_roundtrips_f64(values in prop::collection::vec(any::<f64>(), 0..200)) {
        let col = ColumnData::F64(values);
        let (_, bytes) = compress_data(&col);
        // NaNs compare by bits through ColumnData's PartialEq on f64? They
        // don't — compare bit patterns manually.
        let back = decompress_data(&bytes).unwrap();
        match (&back, &col) {
            (ColumnData::F64(a), ColumnData::F64(b)) => {
                prop_assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(b.iter()) {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            _ => prop_assert!(false, "wrong type back"),
        }
    }

    #[test]
    fn compression_roundtrips_strings(values in prop::collection::vec(".{0,12}", 0..200)) {
        let col = ColumnData::Str(StrColumn::from_iter(values.iter().map(|s| s.as_str())));
        let (_, bytes) = compress_data(&col);
        prop_assert_eq!(decompress_data(&bytes).unwrap(), col);
    }
}

// -------------------------------------------------------------------- PDT

#[derive(Debug, Clone)]
enum PdtOp {
    Insert(u64, i64),
    Delete(u64),
    Modify(u64, i64),
}

fn pdt_ops() -> impl Strategy<Value = Vec<(u8, u64, i64)>> {
    prop::collection::vec((0u8..3, any::<u64>(), any::<i64>()), 0..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pdt_matches_vec_oracle(raw_ops in pdt_ops(), stable in 0u64..60) {
        let mut pdt = Pdt::new(stable);
        let mut oracle: Vec<Vec<Value>> =
            (0..stable).map(|i| vec![Value::I64(i as i64)]).collect();
        let mut ops = Vec::new();
        for (kind, pos, val) in raw_ops {
            let len = oracle.len() as u64;
            let op = match kind {
                0 => PdtOp::Insert(pos % (len + 1), val),
                1 if len > 0 => PdtOp::Delete(pos % len),
                2 if len > 0 => PdtOp::Modify(pos % len, val),
                _ => continue,
            };
            match &op {
                PdtOp::Insert(rid, v) => {
                    pdt.insert_at(*rid, vec![Value::I64(*v)]).unwrap();
                    oracle.insert(*rid as usize, vec![Value::I64(*v)]);
                }
                PdtOp::Delete(rid) => {
                    pdt.delete_at(*rid).unwrap();
                    oracle.remove(*rid as usize);
                }
                PdtOp::Modify(rid, v) => {
                    pdt.modify_at(*rid, 0, Value::I64(*v)).unwrap();
                    oracle[*rid as usize][0] = Value::I64(*v);
                }
            }
            ops.push(op);
        }
        pdt.check_invariants().unwrap();
        prop_assert_eq!(pdt.current_rows() as usize, oracle.len());
        let mut fetch = |sid: u64| vec![Value::I64(sid as i64)];
        for rid in 0..pdt.current_rows() {
            prop_assert_eq!(
                pdt.row_at(rid, &mut fetch).unwrap(),
                oracle[rid as usize].clone()
            );
        }
        // translate + propagate reproduces the same image (commit path)
        let snap = Pdt::new(stable);
        let translated = vectorwise::pdt::translate(&snap, &pdt).unwrap();
        let rebuilt = vectorwise::pdt::propagate(&snap, &translated).unwrap();
        prop_assert_eq!(rebuilt.current_rows() as usize, oracle.len());
        let mut fetch2 = |sid: u64| vec![Value::I64(sid as i64)];
        for rid in 0..rebuilt.current_rows() {
            prop_assert_eq!(
                rebuilt.row_at(rid, &mut fetch2).unwrap(),
                oracle[rid as usize].clone()
            );
        }
        // WAL round-trip of the translated ops
        let bytes = vectorwise::pdt::serialize_ops(&translated);
        let back = vectorwise::pdt::deserialize_ops(&bytes).unwrap();
        prop_assert_eq!(back, translated);
    }
}

// ------------------------------------------- random plans, engine equality

/// A deterministic random table + a set of random plans, evaluated on the
/// vectorized engine and the row-engine oracle.
fn random_table_db(seed: u64, rows: usize) -> (Database, LogicalPlan) {
    let mut r = Xoshiro256::seeded(seed);
    let db = Database::new().unwrap();
    let schema = Schema::new(vec![
        Field::new("k", DataType::I64),
        Field::nullable("v", DataType::I64),
        Field::new("f", DataType::F64),
        Field::nullable("s", DataType::Str),
    ]);
    db.create_table("t", schema.clone()).unwrap();
    let tags = ["aa", "bb", "cc", "dd"];
    db.bulk_load(
        "t",
        (0..rows).map(|i| {
            vec![
                Value::I64(i as i64),
                if r.chance(0.2) {
                    Value::Null
                } else {
                    Value::I64(r.range_i64(-50, 50))
                },
                Value::F64(r.range_i64(-1000, 1000) as f64 / 4.0),
                if r.chance(0.1) {
                    Value::Null
                } else {
                    Value::Str(tags[r.next_below(4) as usize].to_string())
                },
            ]
        }),
    )
    .unwrap();
    use vectorwise::sql::CatalogView;
    let (tid, schema) = db.resolve_table("t").unwrap();
    (db, LogicalPlan::scan("t", tid, schema))
}

fn random_predicate(r: &mut Xoshiro256) -> Expr {
    let leaf = |r: &mut Xoshiro256| -> Expr {
        match r.next_below(5) {
            0 => Expr::binary(
                BinOp::Lt,
                Expr::col(0),
                Expr::lit(Value::I64(r.range_i64(0, 200))),
            ),
            1 => Expr::binary(
                BinOp::Ge,
                Expr::col(1),
                Expr::lit(Value::I64(r.range_i64(-50, 50))),
            ),
            2 => Expr::binary(
                BinOp::Gt,
                Expr::col(2),
                Expr::lit(Value::F64(r.range_i64(-250, 250) as f64)),
            ),
            3 => Expr::eq(Expr::col(3), Expr::lit(Value::Str("aa".into()))),
            _ => Expr::Unary {
                op: vectorwise::plan::UnOp::IsNull,
                e: Box::new(Expr::col(1)),
            },
        }
    };
    let a = leaf(r);
    let b = leaf(r);
    match r.next_below(3) {
        0 => a,
        1 => Expr::and(a, b),
        _ => Expr::or(a, Expr::not(b)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn vectorized_equals_row_engine_on_random_plans(seed in 0u64..10_000) {
        let mut r = Xoshiro256::seeded(seed ^ 0xabcdef);
        let (db, scan) = random_table_db(seed, 150 + (seed % 100) as usize);
        // filter (+ maybe aggregate)
        let mut plan = scan.filter(random_predicate(&mut r));
        if r.chance(0.6) {
            let agg_fn = match r.next_below(4) {
                0 => AggFunc::Sum,
                1 => AggFunc::Count,
                2 => AggFunc::Min,
                _ => AggFunc::Avg,
            };
            let group = if r.chance(0.5) { vec![3usize] } else { vec![] };
            plan = plan.aggregate(
                group,
                vec![
                    AggExpr {
                        func: agg_fn,
                        arg: Some(Expr::col(1)),
                        name: "a1".into(),
                    },
                    AggExpr {
                        func: AggFunc::CountStar,
                        arg: None,
                        name: "n".into(),
                    },
                ],
            );
        }
        let want = common::canonical(common::run_row_engine(&db, &plan));
        let got = common::canonical(common::run_vectorized_raw(&db, &plan));
        common::assert_rows_match(&format!("seed {}", seed), &got, &want);
    }

    #[test]
    fn updates_deletes_match_inmemory_oracle(seed in 0u64..5_000) {
        let mut r = Xoshiro256::seeded(seed);
        let db = Database::new().unwrap();
        db.execute("CREATE TABLE t (id BIGINT NOT NULL, x BIGINT NOT NULL)").unwrap();
        let n = 40 + (seed % 30) as i64;
        db.bulk_load("t", (0..n).map(|i| vec![Value::I64(i), Value::I64(0)])).unwrap();
        let mut oracle: HashMap<i64, i64> = (0..n).map(|i| (i, 0)).collect();
        for _ in 0..12 {
            let id = r.range_i64(0, n - 1);
            match r.next_below(3) {
                0 => {
                    let v = r.range_i64(-99, 99);
                    db.execute(&format!("UPDATE t SET x = {} WHERE id = {}", v, id)).unwrap();
                    if let Some(x) = oracle.get_mut(&id) { *x = v; }
                }
                1 => {
                    db.execute(&format!("DELETE FROM t WHERE id = {}", id)).unwrap();
                    oracle.remove(&id);
                }
                _ => {
                    let newid = n + r.range_i64(0, 500);
                    oracle.entry(newid).or_insert_with(|| {
                        db.execute(&format!("INSERT INTO t VALUES ({}, 7)", newid)).unwrap();
                        7
                    });
                }
            }
        }
        // compare (including through a crash/recovery cycle)
        db.simulate_crash_and_recover().unwrap();
        let rows = db.execute("SELECT id, x FROM t ORDER BY id").unwrap().rows;
        prop_assert_eq!(rows.len(), oracle.len());
        for row in rows {
            let id = row[0].as_i64().unwrap();
            prop_assert_eq!(row[1].as_i64().unwrap(), oracle[&id], "id {}", id);
        }
    }
}

// ------------------------------------------------ misc cross-crate checks

#[test]
fn coop_scans_never_lose_blocks_under_threading() {
    use vectorwise::bufman::Abm;
    use vectorwise::storage::{SimDisk, SimDiskConfig};
    let disk = Arc::new(SimDisk::new(SimDiskConfig::default()));
    let ids: Vec<_> = (0..40)
        .map(|i| disk.write_block(vec![i as u8; 32]))
        .collect();
    for trial in 0..10 {
        let abm = Abm::new(disk.clone(), (trial % 5 + 1) * 256);
        let mut handles = Vec::new();
        for _ in 0..3 {
            let mut scan = abm.register_scan(ids.clone());
            handles.push(std::thread::spawn(move || {
                let mut seen = std::collections::HashSet::new();
                while let Some((id, _)) = scan.next().unwrap() {
                    assert!(seen.insert(id), "duplicate block");
                }
                seen.len()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 40);
        }
    }
}
