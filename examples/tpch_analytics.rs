//! TPC-H analytics session: load a scale factor, run a selection of the 22
//! queries on the vectorized engine, and compare against the baselines —
//! the workload of the paper's evaluation (§I-C) at laptop scale.
//!
//! ```sh
//! cargo run --release --example tpch_analytics            # SF 0.01
//! TPCH_SF=0.05 cargo run --release --example tpch_analytics
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use vectorwise::engine::compile_plan;
use vectorwise::engine::operators::collect_rows;
use vectorwise::sql::CatalogView;
use vectorwise::tpch::{all_queries, tpch_schema, TpchCatalog, TpchGenerator, TPCH_TABLES};
use vectorwise::Database;

fn main() -> Result<(), vectorwise::VwError> {
    let sf: f64 = std::env::var("TPCH_SF")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);

    println!("loading TPC-H at SF {} ...", sf);
    let t0 = Instant::now();
    let db = Database::new()?;
    let generator = TpchGenerator::new(sf);
    for table in TPCH_TABLES {
        db.create_table(table, tpch_schema(table).unwrap())?;
        let n = db.bulk_load(table, generator.rows(table))?;
        println!("  {:10} {:>8} rows", table, n);
    }
    println!("loaded in {:.2?}", t0.elapsed());
    println!("on-disk (compressed) bytes: {}", db.disk().stored_bytes());
    for t in ["lineitem", "orders", "customer", "part"] {
        db.analyze(t)?;
    }

    let cat = TpchCatalog::new(|name| db.resolve_table(name))?;

    println!("\n== power run: all 22 queries (vectorized engine) ==");
    let mut total = std::time::Duration::ZERO;
    for (n, plan) in all_queries(&cat) {
        let t = Instant::now();
        let rows = db.run_plan(plan)?.rows;
        let dt = t.elapsed();
        total += dt;
        println!("  Q{:<2} {:>10.2?}  ({} rows)", n, dt, rows.len());
    }
    println!("power run total: {:.2?}", total);

    println!("\n== Q1 result (pricing summary) ==");
    let q1 = vectorwise::tpch::queries::q1(&cat);
    let r = db.run_plan(q1.clone())?;
    print!("{}", r.format_table());

    println!("\n== engine comparison on Q1 and Q6 ==");
    let ctx = db.exec_context(None)?;
    let row_tables: HashMap<_, _> = ctx
        .tables
        .iter()
        .map(|(id, p)| (*id, Arc::clone(&p.storage)))
        .collect();
    for (name, plan) in [("Q1", q1), ("Q6", vectorwise::tpch::queries::q6(&cat))] {
        // One optimized plan (pushdown + column pruning), three engines.
        let plan = db.optimize_plan(plan);
        let t = Instant::now();
        let mut op = compile_plan(&plan, &ctx)?;
        let _ = collect_rows(op.as_mut())?;
        let vec_t = t.elapsed();

        let t = Instant::now();
        let mut op = vectorwise::baselines::compile_materialized(&plan, &ctx)?;
        let _ = collect_rows(op.as_mut())?;
        let mat_t = t.elapsed();

        let t = Instant::now();
        let mut op = vectorwise::baselines::compile_row(&plan, &row_tables)?;
        let _ = vectorwise::baselines::collect_row_engine(op.as_mut())?;
        let row_t = t.elapsed();

        println!(
            "  {}: vectorized {:>9.2?} | materialized {:>9.2?} ({:.1}x) | tuple-at-a-time {:>9.2?} ({:.1}x)",
            name,
            vec_t,
            mat_t,
            mat_t.as_secs_f64() / vec_t.as_secs_f64(),
            row_t,
            row_t.as_secs_f64() / vec_t.as_secs_f64(),
        );
    }

    println!("\n== the rewriter parallelizes plans (EXPLAIN of Q6 at DOP 4) ==");
    db.set_parallelism(4);
    let r = db.execute(
        "EXPLAIN SELECT SUM(l_extendedprice * l_discount) FROM lineitem \
         WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01'",
    )?;
    for row in &r.rows {
        println!("{}", row[0]);
    }

    Ok(())
}
