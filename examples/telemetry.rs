//! The observability surface: system tables, metrics and trace export.
//!
//! Runs a short workload at dop 4, then inspects it the way an operator
//! would — `SELECT ... FROM vw_queries` / `vw_operator_stats` / `vw_metrics`
//! / `vw_io` / `vw_cache`, and a chrome://tracing export of the per-worker
//! timeline. Doubles as the CI telemetry smoke: it asserts every system
//! table returns rows and that the exported trace JSON parses with spans
//! from every Exchange worker.
//!
//! ```sh
//! cargo run --release --example telemetry
//! ```

use vectorwise::engine::validate_chrome_json;
use vectorwise::{Database, Value};

fn main() -> Result<(), vectorwise::VwError> {
    let db = Database::new()?;
    db.execute("CREATE TABLE events (user_id BIGINT NOT NULL, kind BIGINT NOT NULL, amount DOUBLE NOT NULL)")?;
    db.bulk_load(
        "events",
        (0..500_000i64).map(|i| {
            vec![
                Value::I64(i % 10_000),
                Value::I64(i % 7),
                Value::F64((i % 500) as f64 * 0.5),
            ]
        }),
    )?;

    // A short mixed workload, parallel so the trace has several workers.
    db.set_parallelism(4);
    db.execute("SELECT kind, COUNT(*) AS n, SUM(amount) AS total FROM events GROUP BY kind")?;
    db.execute("SELECT COUNT(*) FROM events WHERE amount > 100.0")?;
    db.execute(
        "SELECT user_id, SUM(amount) AS s FROM events GROUP BY user_id ORDER BY s DESC LIMIT 5",
    )?;

    // -------------------------------------------------------- query history
    println!("== vw_queries: the session's query history ==");
    let r = db.execute(
        "SELECT query_id, wall_ms, rows, dop, peak_mem_bytes FROM vw_queries ORDER BY query_id",
    )?;
    print!("{}", r.format_table());
    assert!(
        r.rows.len() >= 3,
        "history should hold the workload queries"
    );

    // ------------------------------------------------------ operator stats
    println!("\n== vw_operator_stats: slowest operators across the session ==");
    let r = db
        .execute("SELECT op, time_ms, rows FROM vw_operator_stats ORDER BY time_ms DESC LIMIT 5")?;
    print!("{}", r.format_table());
    assert!(!r.rows.is_empty());

    // ------------------------------------------------------------- metrics
    println!("\n== vw_metrics: registry excerpt ==");
    let r = db.execute(
        "SELECT name, kind, value FROM vw_metrics \
         WHERE name = 'queries_total' OR name = 'morsels_claimed_total' \
            OR name = 'query_wall_ns_count' OR name = 'disk_reads'",
    )?;
    print!("{}", r.format_table());
    assert_eq!(r.rows.len(), 4, "expected the four selected metrics");

    println!("\n== vw_io / vw_cache ==");
    let io = db.execute("SELECT * FROM vw_io")?;
    print!("{}", io.format_table());
    assert_eq!(io.rows.len(), 1);
    let cache = db.execute("SELECT * FROM vw_cache")?;
    print!("{}", cache.format_table());
    assert!(!cache.rows.is_empty());

    // ------------------------------------------- wait attribution + event log
    // Re-run the heavy query under a 1ns slow-query threshold and a tiny
    // memory budget: it must surface in vw_log as a slow_query, its forced
    // sort/aggregate spills as spill events, and vw_waits must attribute
    // both the admission acquire and the spill I/O it was blocked on.
    println!("\n== vw_log / vw_waits under a tiny threshold and budget ==");
    db.execute("SET log_min_duration = 1")?;
    db.execute("SET memory_budget = '256KiB'")?;
    db.execute(
        "SELECT user_id, SUM(amount) AS s FROM events GROUP BY user_id ORDER BY s DESC LIMIT 5",
    )?;
    db.execute("SET memory_budget = unbounded")?;
    db.execute("SET log_min_duration = 'off'")?;

    let log = db.execute("SELECT severity, event, query_id, detail FROM vw_log")?;
    let tail: Vec<_> = log.rows.iter().rev().take(8).rev().cloned().collect();
    for row in &tail {
        println!(
            "  [{}] {:<14} q{} {}",
            row[0].as_str().unwrap_or("?"),
            row[1].as_str().unwrap_or("?"),
            row[2].as_i64().unwrap_or(0),
            row[3].as_str().unwrap_or("")
        );
    }
    let has_event = |name: &str| log.rows.iter().any(|r| r[1].as_str() == Some(name));
    assert!(
        has_event("slow_query"),
        "a 1ns log_min_duration must flag the query as slow"
    );
    assert!(
        has_event("spill"),
        "a 256KiB budget must make the sort/aggregate spill (and log it)"
    );

    let waits = db.execute("SELECT wait_class, wait_ms, wait_count FROM vw_waits")?;
    let class_ms = |class: &str| -> f64 {
        waits
            .rows
            .iter()
            .filter(|r| r[0].as_str() == Some(class))
            .map(|r| r[1].as_f64().unwrap_or(0.0))
            .sum()
    };
    println!(
        "vw_waits: admission {:.3}ms, spill_write {:.3}ms, spill_read {:.3}ms \
         across {} rows",
        class_ms("admission"),
        class_ms("spill_write"),
        class_ms("spill_read"),
        waits.rows.len()
    );
    assert!(
        class_ms("admission") > 0.0,
        "every query's admission acquire is attributed in vw_waits"
    );
    assert!(
        class_ms("spill_write") > 0.0,
        "the spilling query's blocked write time lands in vw_waits"
    );

    // drain_events is the tail -f API: a cursor past everything above means
    // a fresh query produces exactly its own events.
    let drained = db.drain_events();
    assert!(!drained.is_empty(), "undrained events were pending");
    assert!(db.drain_events().is_empty(), "drain cursor advanced");

    // --------------------------------------------------------- trace export
    println!("\n== per-worker trace (chrome://tracing JSON) ==");
    db.execute("SELECT kind, SUM(amount) FROM events GROUP BY kind")?;
    let json = db.export_trace().expect("profiling is on by default");
    let events = validate_chrome_json(&json).expect("trace JSON must parse");
    let trace = db.last_trace().expect("trace retained");
    let workers = trace.worker_ids();
    println!(
        "{} events from workers {:?} ({} bytes of JSON)",
        events,
        workers,
        json.len()
    );
    for w in 1..=4 {
        assert!(
            workers.contains(&w),
            "expected trace events from worker {w}, saw {workers:?}"
        );
    }
    if let Ok(path) = std::env::var("TRACE_OUT") {
        std::fs::write(&path, &json).expect("write trace");
        println!("wrote {} — open it in chrome://tracing or Perfetto", path);
    }

    // The TRACE statement returns the same document as SQL rows.
    let r = db.execute("TRACE SELECT COUNT(*) FROM events")?;
    let sql_json: String = r
        .rows
        .iter()
        .map(|row| row[0].as_str().unwrap())
        .collect::<Vec<_>>()
        .join("\n");
    validate_chrome_json(&sql_json).expect("TRACE output must parse");
    println!("TRACE statement returned {} JSON lines", r.rows.len());

    println!("\ntelemetry smoke OK");
    Ok(())
}
