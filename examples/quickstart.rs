//! Quickstart: the embedded SQL surface of vectorwise-rs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vectorwise::Database;

fn main() -> Result<(), vectorwise::VwError> {
    let db = Database::new()?;

    println!("== create & load ==");
    db.execute(
        "CREATE TABLE orders_demo (
            id        BIGINT NOT NULL,
            customer  VARCHAR NOT NULL,
            amount    DOUBLE NOT NULL,
            placed    DATE NOT NULL,
            note      VARCHAR
        )",
    )?;
    db.execute(
        "INSERT INTO orders_demo VALUES
            (1, 'acme',  120.0, '2024-01-03', 'rush'),
            (2, 'acme',   80.5, '2024-01-10', NULL),
            (3, 'globex', 500.0, '2024-02-01', 'bulk'),
            (4, 'initech', 42.0, '2024-02-14', NULL),
            (5, 'globex', 250.0, '2024-03-01', 'bulk'),
            (6, 'acme',   10.0, '2024-03-08', NULL)",
    )?;

    println!("== filter + projection ==");
    let r = db.execute(
        "SELECT id, customer, amount FROM orders_demo \
         WHERE amount >= 50 AND placed < DATE '2024-03-01' ORDER BY amount DESC",
    )?;
    print!("{}", r.format_table());

    println!("\n== aggregation ==");
    let r = db.execute(
        "SELECT customer, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS mean \
         FROM orders_demo GROUP BY customer ORDER BY total DESC",
    )?;
    print!("{}", r.format_table());

    println!("\n== updates go through Positional Delta Trees ==");
    db.execute("UPDATE orders_demo SET amount = amount * 1.1 WHERE customer = 'acme'")?;
    db.execute("DELETE FROM orders_demo WHERE amount < 20")?;
    let r = db.execute("SELECT COUNT(*) AS remaining, SUM(amount) AS total FROM orders_demo")?;
    print!("{}", r.format_table());

    println!("\n== EXPLAIN shows the optimized plan (filter pushed into scan) ==");
    let r = db.execute(
        "EXPLAIN SELECT customer, SUM(amount) FROM orders_demo \
         WHERE placed >= DATE '2024-02-01' GROUP BY customer",
    )?;
    for row in &r.rows {
        println!("{}", row[0]);
    }

    println!("\n== crash recovery from the WAL ==");
    db.simulate_crash_and_recover()?;
    let r = db.execute("SELECT COUNT(*) AS rows_after_recovery FROM orders_demo")?;
    print!("{}", r.format_table());

    Ok(())
}
