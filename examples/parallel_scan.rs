//! Multi-core execution and cooperative scans.
//!
//! Shows (a) the rewriter's Volcano-style parallelization — Exchange
//! operators with partial/final aggregation — and (b) the Active Buffer
//! Manager sharing one disk pass between concurrent scans (§I-A/§I-B).
//!
//! ```sh
//! cargo run --release --example parallel_scan
//! ```

use std::sync::Arc;
use std::time::Instant;
use vectorwise::bufman::{Abm, BlockReader, LruPool};
use vectorwise::storage::{SimDisk, SimDiskConfig};
use vectorwise::{Database, Value};

fn main() -> Result<(), vectorwise::VwError> {
    // ---------------------------------------------------------------- part A
    println!("== A. the parallelize rewrite ==");
    let db = Database::new()?;
    db.execute("CREATE TABLE m (k BIGINT NOT NULL, grp BIGINT NOT NULL, x DOUBLE NOT NULL)")?;
    db.bulk_load(
        "m",
        (0..2_000_000i64).map(|i| {
            vec![
                Value::I64(i),
                Value::I64(i % 16),
                Value::F64((i % 1000) as f64 * 0.25),
            ]
        }),
    )?;
    let sql = "SELECT grp, SUM(x) AS total, AVG(x) AS mean, COUNT(*) AS n \
               FROM m WHERE k >= 250000 GROUP BY grp ORDER BY grp";

    println!("serial plan:");
    for row in &db.execute(&format!("EXPLAIN {}", sql))?.rows {
        println!("  {}", row[0]);
    }
    let t = Instant::now();
    let serial = db.execute(sql)?;
    let serial_t = t.elapsed();

    db.set_parallelism(4);
    println!("\nparallel plan (DOP 4) — Exchange + partial/final aggregation:");
    for row in &db.execute(&format!("EXPLAIN {}", sql))?.rows {
        println!("  {}", row[0]);
    }
    let t = Instant::now();
    let parallel = db.execute(sql)?;
    let parallel_t = t.elapsed();

    assert_eq!(serial.rows.len(), parallel.rows.len());
    println!(
        "\nidentical results; serial {:.2?} vs parallel {:.2?} \
         (wall-clock speedup needs >1 core; work is split 4 ways regardless)",
        serial_t, parallel_t
    );

    // ---------------------------------------------------------------- part B
    println!("\n== B. cooperative scans vs LRU ==");
    // A 'table' of 256 blocks on a simulated disk; buffer = 25% of it.
    let disk = Arc::new(SimDisk::new(SimDiskConfig::hdd()));
    let blocks: Vec<_> = (0..256)
        .map(|_| disk.write_block(vec![0u8; 64 * 1024]))
        .collect();
    let n_scans = 8;

    // LRU: each scan at its own offset re-reads everything.
    disk.reset_stats();
    let pool = Arc::new(LruPool::new(disk.clone(), 64 * 64 * 1024));
    let mut handles = Vec::new();
    for s in 0..n_scans {
        let pool = pool.clone();
        let blocks = blocks.clone();
        handles.push(std::thread::spawn(move || {
            // stagger starting offsets like real concurrent queries
            for i in 0..blocks.len() {
                let idx = (i + s * 32) % blocks.len();
                pool.read(blocks[idx]).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let lru = disk.stats();

    // ABM: relevance-ordered shared loading.
    disk.reset_stats();
    let abm = Abm::new(disk.clone(), 64 * 64 * 1024);
    let mut handles = Vec::new();
    for _ in 0..n_scans {
        let mut scan = abm.register_scan(blocks.clone());
        handles.push(std::thread::spawn(move || {
            let mut n = 0;
            while scan.next().unwrap().is_some() {
                n += 1;
            }
            n
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), blocks.len());
    }
    let coop = disk.stats();

    println!(
        "{} concurrent full scans over {} blocks, buffer = 25% of table:",
        n_scans,
        blocks.len()
    );
    println!(
        "  LRU buffer manager : {:>5} disk reads, {:>7.3}s virtual I/O time",
        lru.reads,
        lru.virtual_read_ns as f64 / 1e9
    );
    println!(
        "  cooperative scans  : {:>5} disk reads, {:>7.3}s virtual I/O time  ({:.1}x less I/O)",
        coop.reads,
        coop.virtual_read_ns as f64 / 1e9,
        lru.reads as f64 / coop.reads as f64
    );
    println!(
        "  (ABM stats: {} loads, {} shared hits)",
        abm.stats().loads,
        abm.stats().shared_hits
    );

    Ok(())
}
