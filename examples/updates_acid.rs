//! Updates & ACID: Positional Delta Trees, snapshot isolation, optimistic
//! conflicts, the WAL, and checkpoint propagation — §I-B of the paper, live.
//!
//! ```sh
//! cargo run --release --example updates_acid
//! ```

use vectorwise::{Database, Value};

fn main() -> Result<(), vectorwise::VwError> {
    let db = Database::new()?;
    db.execute("CREATE TABLE inventory (sku BIGINT NOT NULL, qty BIGINT NOT NULL, label VARCHAR)")?;
    db.bulk_load(
        "inventory",
        (0..10_000).map(|i| {
            vec![
                Value::I64(i),
                Value::I64(100),
                Value::Str(format!("sku-{}", i)),
            ]
        }),
    )?;
    println!("bulk-loaded 10_000 rows into columnar stable storage");

    // ---- updates accumulate in PDTs, not in place --------------------------
    db.execute("UPDATE inventory SET qty = 0 WHERE sku < 5")?;
    db.execute("DELETE FROM inventory WHERE sku = 7")?;
    db.execute("INSERT INTO inventory VALUES (999999, 55, 'hot-item')")?;
    let r = db.execute("SELECT COUNT(*) AS rows, SUM(qty) AS total_qty FROM inventory")?;
    print!("{}", r.format_table());
    println!("(scans merged those deltas positionally — no key columns were read)");

    // ---- snapshot isolation ------------------------------------------------
    println!("\n== snapshot isolation ==");
    let mut writer = db.begin();
    db.execute_in(&mut writer, "UPDATE inventory SET qty = 77 WHERE sku = 100")?;
    let inside = db.execute_in(&mut writer, "SELECT qty FROM inventory WHERE sku = 100")?;
    let outside = db.execute("SELECT qty FROM inventory WHERE sku = 100")?;
    println!(
        "writer sees qty = {}, concurrent readers still see qty = {}",
        inside.rows[0][0], outside.rows[0][0]
    );
    db.commit(writer)?;
    let after = db.execute("SELECT qty FROM inventory WHERE sku = 100")?;
    println!("after commit everyone sees qty = {}", after.rows[0][0]);

    // ---- optimistic write-write conflicts ----------------------------------
    println!("\n== optimistic concurrency control ==");
    let mut a = db.begin();
    let mut b = db.begin();
    db.execute_in(&mut a, "UPDATE inventory SET qty = 1 WHERE sku = 500")?;
    db.execute_in(&mut b, "UPDATE inventory SET qty = 2 WHERE sku = 500")?;
    db.commit(a)?;
    match db.commit(b) {
        Err(e) => println!("second writer aborted as expected: {}", e),
        Ok(()) => unreachable!("conflict missed!"),
    }
    println!(
        "commits so far: {}, aborts: {}",
        db.commit_count(),
        db.abort_count()
    );

    // ---- WAL crash recovery ------------------------------------------------
    println!("\n== WAL crash recovery ==");
    db.execute("UPDATE inventory SET label = 'recovered' WHERE sku = 42")?;
    let mut doomed = db.begin();
    db.execute_in(&mut doomed, "DELETE FROM inventory WHERE sku >= 0")?; // never committed
    println!("simulating a crash with one committed update and one in-flight wipe...");
    drop(doomed);
    db.simulate_crash_and_recover()?;
    let r = db.execute("SELECT label FROM inventory WHERE sku = 42")?;
    println!("committed update survived: label = {}", r.rows[0][0]);
    let r = db.execute("SELECT COUNT(*) FROM inventory")?;
    println!(
        "uncommitted wipe did not: {} rows still present",
        r.rows[0][0]
    );

    // ---- checkpoint: fold PDTs into stable storage --------------------------
    println!("\n== checkpoint ==");
    let before = db.execute("SELECT COUNT(*), SUM(qty) FROM inventory")?;
    let stable_rows = db.checkpoint("inventory")?;
    let after = db.execute("SELECT COUNT(*), SUM(qty) FROM inventory")?;
    println!(
        "stable image rebuilt with {} rows; aggregates unchanged: {:?} == {:?}",
        stable_rows, before.rows[0], after.rows[0]
    );
    println!("WAL truncated; PDT empty; future scans pay zero merge cost");

    Ok(())
}
