//! Compression tour: which lightweight scheme each TPC-H column gets, the
//! ratios achieved, and why decompression is cheap relative to I/O (§I-A,
//! the PFOR family of reference [2]).
//!
//! ```sh
//! cargo run --release --example compression_tour
//! ```

use std::time::Instant;
use vectorwise::storage::{compress_data, decompress_data, ColumnData, NullableColumn, StrColumn};
use vectorwise::tpch::{tpch_schema, TpchGenerator};
use vectorwise::Value;

fn to_column(ty: vectorwise::DataType, values: Vec<Value>) -> ColumnData {
    NullableColumn::from_values(ty, &values).unwrap().data
}

fn main() {
    let generator = TpchGenerator::new(0.02);
    let schema = tpch_schema("lineitem").unwrap();
    let rows = generator.rows("lineitem");
    println!("lineitem at SF 0.02: {} rows\n", rows.len());
    println!(
        "{:<16} {:>12} {:>12} {:>7}  {:<10} {:>12}",
        "column", "raw bytes", "compressed", "ratio", "scheme", "decomp MB/s"
    );

    let mut total_raw = 0usize;
    let mut total_comp = 0usize;
    for (c, field) in schema.fields().iter().enumerate() {
        let values: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
        let col = to_column(field.ty, values);
        let raw = col.uncompressed_bytes();
        let (scheme, bytes) = compress_data(&col);
        // decompression throughput
        let t = Instant::now();
        let reps = 20;
        for _ in 0..reps {
            let back = decompress_data(&bytes).unwrap();
            assert_eq!(back.len(), col.len());
        }
        let dt = t.elapsed().as_secs_f64() / reps as f64;
        let mbps = raw as f64 / dt / 1e6;
        println!(
            "{:<16} {:>12} {:>12} {:>6.2}x  {:<10} {:>12.0}",
            field.name,
            raw,
            bytes.len(),
            raw as f64 / bytes.len() as f64,
            scheme.name(),
            mbps
        );
        total_raw += raw;
        total_comp += bytes.len();
    }
    println!(
        "\ntable total: {} -> {} bytes ({:.2}x)",
        total_raw,
        total_comp,
        total_raw as f64 / total_comp as f64
    );

    println!("\n== scheme showcase on synthetic shapes ==");
    let sorted_keys = ColumnData::I64((0..100_000).collect());
    let (s, b) = compress_data(&sorted_keys);
    println!(
        "sorted keys       -> {:<10} ({:.1}x)",
        s.name(),
        800_000.0 / b.len() as f64
    );
    let constants = ColumnData::I64(vec![42; 100_000]);
    let (s, b) = compress_data(&constants);
    println!(
        "constant column   -> {:<10} ({:.0}x)",
        s.name(),
        800_000.0 / b.len() as f64
    );
    let flags = ColumnData::Str(StrColumn::from_iter((0..100_000).map(|i| {
        if i % 3 == 0 {
            "A"
        } else {
            "R"
        }
    })));
    let raw = flags.uncompressed_bytes();
    let (s, b) = compress_data(&flags);
    println!(
        "two-value strings -> {:<10} ({:.1}x)",
        s.name(),
        raw as f64 / b.len() as f64
    );
    let mut r = vectorwise::common::rng::Xoshiro256::seeded(1);
    let noise = ColumnData::I64((0..100_000).map(|_| r.next_u64() as i64).collect());
    let (s, b) = compress_data(&noise);
    println!(
        "incompressible    -> {:<10} ({:.2}x — falls back gracefully)",
        s.name(),
        800_000.0 / b.len() as f64
    );
}
