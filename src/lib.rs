//! **vectorwise-rs** — a vectorized analytical DBMS.
//!
//! A from-scratch Rust reproduction of *"Vectorwise: a Vectorized Analytical
//! DBMS"* (Zukowski, van de Wiel, Boncz — ICDE 2012): the X100 vectorized
//! execution engine plus every substrate the paper describes — compressed
//! columnar storage with PAX row groups and zone maps, a cooperative-scan
//! buffer manager, Positional Delta Trees for differential updates, a WAL
//! with optimistic concurrency control, a rule-based rewriter with a
//! Volcano-style multi-core parallelizer, a SQL front-end, and
//! tuple-at-a-time / full-materialization baseline engines for the paper's
//! comparisons.
//!
//! # Quickstart
//!
//! ```
//! use vectorwise::Database;
//!
//! let db = Database::new().unwrap();
//! db.execute("CREATE TABLE t (id BIGINT NOT NULL, price DOUBLE NOT NULL)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 10.0), (2, 20.0), (3, 30.0)").unwrap();
//! let r = db.execute("SELECT COUNT(*), SUM(price) FROM t WHERE id >= 2").unwrap();
//! assert_eq!(r.rows[0][0], vectorwise::Value::I64(2));
//! ```
//!
//! The crate is a workspace facade: each subsystem lives in its own crate
//! (re-exported below) and `DESIGN.md` maps every paper component to its
//! module.

pub use vw_baselines as baselines;
pub use vw_bufman as bufman;
pub use vw_common as common;
pub use vw_core as engine;
pub use vw_pdt as pdt;
pub use vw_plan as plan;
pub use vw_sql as sql;
pub use vw_storage as storage;
pub use vw_tpch as tpch;
pub use vw_txn as txn;

pub use vw_common::{DataType, Field, Schema, Value, VwError};
pub use vw_core::{Database, QueryRecord, QueryResult};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_quickstart_works() {
        let db = Database::new().unwrap();
        db.execute("CREATE TABLE t (id BIGINT NOT NULL)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let r = db.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::I64(2));
    }
}
