//! `vw-bufman` — buffer management: classic LRU and Cooperative Scans.
//!
//! §I-A of the paper cites Cooperative Scans [4] ("dynamic bandwidth sharing
//! in a DBMS") among the I/O innovations that keep the vectorized engine fed.
//! The idea: when several scans of the same table run concurrently, a normal
//! LRU buffer pool makes each of them read every block from disk (they are at
//! different offsets, so nothing is reused). The *Active Buffer Manager*
//! (ABM) instead treats scans as consumers of *sets* of blocks: it loads the
//! block relevant to the most waiting scans next, hands it to all of them,
//! and lets each scan consume blocks out of order. One disk pass serves all
//! scans.
//!
//! * [`LruPool`] — the baseline: capacity-bounded, least-recently-used.
//! * [`Abm`] — cooperative scans with a relevance policy and a starvation
//!   bound.
//! * [`BlockReader`] — the trait the execution engine's scans read through.

pub mod coop;
pub mod decode;
pub mod lru;

pub use coop::{Abm, AbmStats, CoopScanHandle, ScanProgress};
pub use decode::{DecodeCache, DecodeCacheStats};
pub use lru::{LruPool, PoolStats};

use std::sync::Arc;
use vw_common::{BlockId, Result};
use vw_storage::SimDisk;

/// How a scan obtains block bytes. Implementations decide caching policy.
pub trait BlockReader: Send + Sync {
    fn read(&self, id: BlockId) -> Result<Arc<Vec<u8>>>;
}

/// No caching: every read goes to the (simulated) disk.
pub struct DirectReader {
    disk: Arc<SimDisk>,
}

impl DirectReader {
    pub fn new(disk: Arc<SimDisk>) -> Self {
        DirectReader { disk }
    }
}

impl BlockReader for DirectReader {
    fn read(&self, id: BlockId) -> Result<Arc<Vec<u8>>> {
        self.disk.read_block(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_storage::SimDiskConfig;

    #[test]
    fn direct_reader_passes_through() {
        let disk = Arc::new(SimDisk::new(SimDiskConfig::default()));
        let id = disk.write_block(vec![1, 2, 3]);
        let r = DirectReader::new(disk.clone());
        assert_eq!(&**r.read(id).unwrap(), &[1, 2, 3]);
        r.read(id).unwrap();
        assert_eq!(disk.stats().reads, 2); // no caching
    }
}
