//! Decoded-slice cache for the compressed-execution scan path.
//!
//! Lazy scans decode one ~1K-row vector slice of a column block at a time.
//! When several cooperative scans (or repeated queries) walk the same table,
//! each would otherwise re-decode the same slices; this cache shares that
//! work. Entries are keyed by `(block, from, to)` — the vector boundaries a
//! scan uses are deterministic per table, so concurrent scans produce
//! identical keys and hit each other's work.
//!
//! Memory-accounted LRU: entries are charged their uncompressed size and the
//! least-recently-used entries are evicted once the configured capacity is
//! exceeded. Stable-image blocks are immutable (checkpoints write new blocks
//! and free old ids), so entries never go stale.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use vw_common::BlockId;
use vw_storage::NullableColumn;

/// Key: one decoded vector slice of one block.
pub type SliceKey = (BlockId, u32, u32);

struct Slot {
    col: Arc<NullableColumn>,
    bytes: usize,
    last_use: u64,
}

struct Inner {
    map: HashMap<SliceKey, Slot>,
    bytes: usize,
    clock: u64,
}

/// Cumulative counters; snapshot with [`DecodeCache::stats`], diff with
/// [`DecodeCacheStats::since`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Currently resident decoded bytes (a gauge, not a counter).
    pub resident_bytes: u64,
}

impl DecodeCacheStats {
    /// Counters accumulated since `earlier`. `resident_bytes` is carried
    /// over as-is (it is a gauge).
    pub fn since(&self, earlier: &DecodeCacheStats) -> DecodeCacheStats {
        DecodeCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            resident_bytes: self.resident_bytes,
        }
    }

    /// Hit rate over the window, or `None` with no lookups.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// A shared, memory-bounded cache of decoded vector slices.
pub struct DecodeCache {
    inner: Mutex<Inner>,
    capacity_bytes: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl DecodeCache {
    pub fn new(capacity_bytes: usize) -> Self {
        DecodeCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                bytes: 0,
                clock: 0,
            }),
            capacity_bytes: AtomicUsize::new(capacity_bytes),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes.load(Ordering::Relaxed)
    }

    /// Resize the cache at runtime (`SET decode_cache = ...`), evicting LRU
    /// entries down to the new capacity.
    pub fn set_capacity(&self, capacity_bytes: usize) {
        self.capacity_bytes.store(capacity_bytes, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        self.evict_past_capacity(&mut inner, capacity_bytes);
    }

    fn evict_past_capacity(&self, inner: &mut Inner, capacity: usize) {
        while inner.bytes > capacity {
            // O(n) victim scan; the cache holds at most a few thousand
            // vector slices, and eviction only runs once the pool is full.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, s)| s.last_use)
                .map(|(k, _)| *k)
                .expect("bytes > 0 implies non-empty");
            let slot = inner.map.remove(&victim).unwrap();
            inner.bytes -= slot.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Look up a decoded slice, refreshing its recency on hit.
    pub fn get(&self, key: &SliceKey) -> Option<Arc<NullableColumn>> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(key) {
            Some(slot) => {
                slot.last_use = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.col))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a freshly decoded slice, evicting LRU entries past capacity.
    /// Slices larger than the whole capacity are not cached.
    pub fn insert(&self, key: SliceKey, col: Arc<NullableColumn>) {
        let bytes = slice_bytes(&col);
        let capacity = self.capacity_bytes();
        if bytes > capacity {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.map.insert(
            key,
            Slot {
                col,
                bytes,
                last_use: clock,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        self.evict_past_capacity(&mut inner, capacity);
    }

    pub fn stats(&self) -> DecodeCacheStats {
        let resident = self.inner.lock().unwrap().bytes as u64;
        DecodeCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: resident,
        }
    }

    /// Expose this cache's counters in a metrics registry as polled gauges
    /// (read at snapshot time; the get/insert hot paths are untouched).
    pub fn register_metrics(self: &Arc<Self>, registry: &vw_common::MetricsRegistry) {
        type PolledStat = (&'static str, fn(&DecodeCacheStats) -> u64);
        let polled: [PolledStat; 4] = [
            ("decode_cache_hits", |s| s.hits),
            ("decode_cache_misses", |s| s.misses),
            ("decode_cache_evictions", |s| s.evictions),
            ("decode_cache_resident_bytes", |s| s.resident_bytes),
        ];
        for (name, get) in polled {
            let cache = Arc::clone(self);
            registry.register_polled(name, "", move || get(&cache.stats()) as f64);
        }
        let cache = Arc::clone(self);
        registry.register_polled("decode_cache_capacity_bytes", "", move || {
            cache.capacity_bytes() as f64
        });
    }

    /// Drop all entries (tests, benchmark phase boundaries).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.bytes = 0;
    }
}

fn slice_bytes(col: &NullableColumn) -> usize {
    col.data.uncompressed_bytes() + col.nulls.as_ref().map_or(0, |b| b.len().div_ceil(8))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_storage::ColumnData;

    fn col(vals: Vec<i64>) -> Arc<NullableColumn> {
        Arc::new(NullableColumn::not_null(ColumnData::I64(vals)))
    }

    fn key(b: u64, from: u32) -> SliceKey {
        (BlockId::new(b), from, from + 4)
    }

    #[test]
    fn hit_miss_and_stats() {
        let cache = DecodeCache::new(1 << 20);
        assert!(cache.get(&key(1, 0)).is_none());
        cache.insert(key(1, 0), col(vec![1, 2, 3, 4]));
        let hit = cache.get(&key(1, 0)).unwrap();
        assert_eq!(hit.len(), 4);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.resident_bytes, 32);
        assert_eq!(s.hit_rate(), Some(0.5));
        let later = cache.stats().since(&s);
        assert_eq!(later.hits, 0);
        assert_eq!(later.resident_bytes, 32);
    }

    #[test]
    fn evicts_least_recently_used() {
        // Capacity fits exactly two 32-byte slices.
        let cache = DecodeCache::new(64);
        cache.insert(key(1, 0), col(vec![1, 2, 3, 4]));
        cache.insert(key(2, 0), col(vec![5, 6, 7, 8]));
        cache.get(&key(1, 0)).unwrap(); // refresh 1 → victim is 2
        cache.insert(key(3, 0), col(vec![9, 9, 9, 9]));
        assert!(cache.get(&key(1, 0)).is_some());
        assert!(cache.get(&key(2, 0)).is_none());
        assert!(cache.get(&key(3, 0)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().resident_bytes, 64);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache = DecodeCache::new(16);
        cache.insert(key(1, 0), col(vec![0; 100]));
        assert!(cache.get(&key(1, 0)).is_none());
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    #[test]
    fn reinsert_same_key_replaces() {
        let cache = DecodeCache::new(1 << 10);
        cache.insert(key(1, 0), col(vec![1, 2, 3, 4]));
        cache.insert(key(1, 0), col(vec![4, 3, 2, 1]));
        assert_eq!(cache.stats().resident_bytes, 32);
        match &cache.get(&key(1, 0)).unwrap().data {
            ColumnData::I64(v) => assert_eq!(v[0], 4),
            _ => panic!(),
        }
        cache.clear();
        assert!(cache.get(&key(1, 0)).is_none());
        assert_eq!(cache.stats().resident_bytes, 0);
    }

    #[test]
    fn shrinking_capacity_evicts_down() {
        let cache = DecodeCache::new(128);
        for b in 0..4 {
            cache.insert(key(b, 0), col(vec![1, 2, 3, 4]));
        }
        assert_eq!(cache.stats().resident_bytes, 128);
        cache.get(&key(3, 0)).unwrap(); // most recent survives
        cache.set_capacity(32);
        assert_eq!(cache.capacity_bytes(), 32);
        assert_eq!(cache.stats().resident_bytes, 32);
        assert!(cache.get(&key(3, 0)).is_some());
        assert!(cache.get(&key(0, 0)).is_none());
    }

    #[test]
    fn concurrent_access() {
        let cache = Arc::new(DecodeCache::new(1 << 16));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let k = key(1 + i % 8, (t * 4) as u32);
                    if c.get(&k).is_none() {
                        c.insert(k, col(vec![i as i64; 4]));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert!(s.hits + s.misses >= 800);
    }
}
