//! Cooperative Scans: the Active Buffer Manager (ABM).
//!
//! After "Cooperative scans: dynamic bandwidth sharing in a DBMS"
//! (Zukowski et al., VLDB 2007 — reference [4] of the Vectorwise paper).
//!
//! Scans *register* the set of blocks they need and then repeatedly ask the
//! ABM for "any block I still need". The ABM:
//!
//! * serves a cached block first if the scan still needs one (free);
//! * otherwise *chooses* which block to load next by **relevance**: the block
//!   needed by the most currently-active scans, so one disk read feeds many
//!   consumers;
//! * breaks relevance ties in favour of the scan that has made the least
//!   progress (a starvation bound, keeping slow scans from being left
//!   behind);
//! * keeps a block cached while any registered scan still needs it, evicting
//!   fully-consumed blocks first.
//!
//! Consumption is deliberately out-of-order ("relaxed" scans): callers get
//! `(BlockId, bytes)` pairs and must not assume table order.

use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vw_common::waits::{WaitClass, WaitStats, WaitTimer};
use vw_common::{BlockId, Result, VwError};
use vw_storage::SimDisk;

type ScanId = u64;

/// Externally-driven progress counter for one *logical* scan.
///
/// When an Exchange splits a table scan across P workers, the workers share
/// one registration (cloned [`CoopScanHandle`]s) and bump this counter as
/// they claim work (e.g. per morsel claimed from the shared morsel queue).
/// The ABM's starvation tiebreak then sees the scan's true overall progress
/// instead of P unrelated block counts.
#[derive(Debug, Default)]
pub struct ScanProgress(AtomicU64);

impl ScanProgress {
    pub fn new() -> Arc<ScanProgress> {
        Arc::new(ScanProgress(AtomicU64::new(0)))
    }

    /// Record `n` more units of progress (blocks, morsels, ...).
    pub fn advance(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct CachedBlock {
    data: Arc<Vec<u8>>,
    /// Scans that still need to consume this block.
    needed_by: HashSet<ScanId>,
}

struct ScanState {
    /// Blocks this scan has not yet consumed.
    remaining: HashSet<BlockId>,
    /// Blocks consumed so far (for the starvation/fairness tiebreak).
    consumed: usize,
    /// Live handles sharing this registration (workers of one logical scan).
    handles: usize,
    /// External progress override: when present, the starvation tiebreak
    /// reads this instead of `consumed`.
    progress: Option<Arc<ScanProgress>>,
}

impl ScanState {
    /// Progress figure used by the fairness tiebreak.
    fn progress_units(&self) -> usize {
        match &self.progress {
            Some(p) => p.get() as usize,
            None => self.consumed,
        }
    }
}

#[derive(Default)]
struct AbmState {
    scans: HashMap<ScanId, ScanState>,
    cache: HashMap<BlockId, CachedBlock>,
    cache_bytes: usize,
    next_scan: ScanId,
    loads: u64,
    shared_hits: u64,
}

/// The Active Buffer Manager.
pub struct Abm {
    disk: Arc<SimDisk>,
    capacity_bytes: usize,
    state: Mutex<AbmState>,
}

/// ABM-wide counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbmStats {
    /// Blocks loaded from disk.
    pub loads: u64,
    /// Block consumptions served from cache (another scan's load).
    pub shared_hits: u64,
}

impl AbmStats {
    /// Counters accumulated since `earlier` (per-query deltas for profiling).
    pub fn since(&self, earlier: &AbmStats) -> AbmStats {
        AbmStats {
            loads: self.loads.saturating_sub(earlier.loads),
            shared_hits: self.shared_hits.saturating_sub(earlier.shared_hits),
        }
    }
}

impl Abm {
    pub fn new(disk: Arc<SimDisk>, capacity_bytes: usize) -> Arc<Abm> {
        Arc::new(Abm {
            disk,
            capacity_bytes,
            state: Mutex::new(AbmState::default()),
        })
    }

    pub fn stats(&self) -> AbmStats {
        let g = self.state.lock();
        AbmStats {
            loads: g.loads,
            shared_hits: g.shared_hits,
        }
    }

    /// Expose the ABM's counters in a metrics registry as polled gauges.
    pub fn register_metrics(self: &Arc<Self>, registry: &vw_common::MetricsRegistry) {
        let abm = Arc::clone(self);
        registry.register_polled("abm_loads", "", move || abm.stats().loads as f64);
        let abm = Arc::clone(self);
        registry.register_polled("abm_shared_hits", "", move || {
            abm.stats().shared_hits as f64
        });
    }

    /// Register a scan over `blocks`. Returns a handle to pull blocks from.
    pub fn register_scan(
        self: &Arc<Self>,
        blocks: impl IntoIterator<Item = BlockId>,
    ) -> CoopScanHandle {
        self.register_scan_with_progress(blocks, None)
    }

    /// Register one *logical* scan over `blocks`, optionally tracked by an
    /// external [`ScanProgress`]. Clone the returned handle to share the
    /// registration among P parallel workers: the ABM's relevance policy
    /// counts them as a single scan, and dropping the last clone
    /// unregisters it.
    pub fn register_scan_with_progress(
        self: &Arc<Self>,
        blocks: impl IntoIterator<Item = BlockId>,
        progress: Option<Arc<ScanProgress>>,
    ) -> CoopScanHandle {
        let mut g = self.state.lock();
        let id = g.next_scan;
        g.next_scan += 1;
        let remaining: HashSet<BlockId> = blocks.into_iter().collect();
        // Blocks already cached become immediately relevant to this scan.
        for (bid, cb) in g.cache.iter_mut() {
            if remaining.contains(bid) {
                cb.needed_by.insert(id);
            }
        }
        g.scans.insert(
            id,
            ScanState {
                remaining,
                consumed: 0,
                handles: 1,
                progress,
            },
        );
        CoopScanHandle {
            abm: self.clone(),
            id,
            done: false,
            waits: None,
        }
    }

    /// Produce the next block for scan `id`: cached-and-needed first, else
    /// load the globally most relevant block this scan needs.
    fn next_for(&self, id: ScanId) -> Result<Option<(BlockId, Arc<Vec<u8>>)>> {
        let chosen: BlockId;
        {
            let mut g = self.state.lock();
            let scan = g
                .scans
                .get(&id)
                .ok_or_else(|| VwError::Invalid("scan not registered".into()))?;
            if scan.remaining.is_empty() {
                return Ok(None);
            }
            // 1. A cached block we still need?
            let cached_hit = scan
                .remaining
                .iter()
                .find(|b| g.cache.contains_key(b))
                .copied();
            if let Some(bid) = cached_hit {
                let data = {
                    let cb = g.cache.get_mut(&bid).unwrap();
                    cb.needed_by.remove(&id);
                    cb.data.clone()
                };
                g.shared_hits += 1;
                let scan = g.scans.get_mut(&id).unwrap();
                scan.remaining.remove(&bid);
                scan.consumed += 1;
                Self::evict_consumed(&mut g, self.capacity_bytes);
                return Ok(Some((bid, data)));
            }
            // 2. Choose what to load: relevance = number of active scans that
            // still need the block; ties broken toward blocks needed by the
            // least-progressed scan (starvation bound), then by id for
            // determinism.
            let candidates: Vec<BlockId> = scan.remaining.iter().copied().collect();
            let mut best: Option<(usize, usize, u64, BlockId)> = None;
            for bid in candidates {
                let relevance = g
                    .scans
                    .values()
                    .filter(|s| s.remaining.contains(&bid))
                    .count();
                let min_progress = g
                    .scans
                    .values()
                    .filter(|s| s.remaining.contains(&bid))
                    .map(|s| s.progress_units())
                    .min()
                    .unwrap_or(usize::MAX);
                // maximize relevance, minimize progress, then smallest id
                let key = (
                    relevance,
                    usize::MAX - min_progress,
                    u64::MAX - bid.as_u64(),
                    bid,
                );
                if best
                    .as_ref()
                    .is_none_or(|b| (key.0, key.1, key.2) > (b.0, b.1, b.2))
                {
                    best = Some(key);
                }
            }
            chosen = best.unwrap().3;
        }
        // Load outside the lock (charges virtual I/O time).
        let data = self.disk.read_block(chosen)?;
        let mut g = self.state.lock();
        g.loads += 1;
        // All scans that still need it share the load.
        let needed_by: HashSet<ScanId> = g
            .scans
            .iter()
            .filter(|(sid, s)| **sid != id && s.remaining.contains(&chosen))
            .map(|(sid, _)| *sid)
            .collect();
        g.cache_bytes += data.len();
        g.cache.insert(
            chosen,
            CachedBlock {
                data: data.clone(),
                needed_by,
            },
        );
        let scan = g.scans.get_mut(&id).unwrap();
        scan.remaining.remove(&chosen);
        scan.consumed += 1;
        Self::evict_consumed(&mut g, self.capacity_bytes);
        Ok(Some((chosen, data)))
    }

    /// Serve a *specific* block for scan `id` (demand fetch — the table-order
    /// access path of executor scans, as opposed to the relevance-order
    /// [`next_for`](Self::next_for) pull loop). A cache hit left behind by
    /// another overlapping scan counts as a shared hit: that is the
    /// bandwidth sharing cooperative scans exist for. Blocks outside the
    /// scan's registered set are served too (graceful degradation), they
    /// just don't participate in relevance accounting.
    fn fetch_for(
        &self,
        id: ScanId,
        block: BlockId,
        waits: Option<&WaitStats>,
    ) -> Result<Arc<Vec<u8>>> {
        {
            let mut g = self.state.lock();
            if let Some(cb) = g.cache.get_mut(&block) {
                cb.needed_by.remove(&id);
                let data = cb.data.clone();
                g.shared_hits += 1;
                if let Some(scan) = g.scans.get_mut(&id) {
                    if scan.remaining.remove(&block) {
                        scan.consumed += 1;
                    }
                }
                Self::evict_consumed(&mut g, self.capacity_bytes);
                return Ok(data);
            }
        }
        // Miss: load outside the lock (charges virtual I/O time). This is
        // the scan's block-I/O wait; cache hits above cost no wait.
        let io_timer = waits.map(|w| WaitTimer::start(w, WaitClass::BlockIo));
        let data = self.disk.read_block(block)?;
        drop(io_timer);
        let mut g = self.state.lock();
        g.loads += 1;
        if let Some(scan) = g.scans.get_mut(&id) {
            if scan.remaining.remove(&block) {
                scan.consumed += 1;
            }
        }
        // Retain for the other scans that still need this block; if none do
        // it is evicted right away by the dead-block sweep below.
        let needed_by: HashSet<ScanId> = g
            .scans
            .iter()
            .filter(|(sid, s)| **sid != id && s.remaining.contains(&block))
            .map(|(sid, _)| *sid)
            .collect();
        if let Some(old) = g.cache.insert(
            block,
            CachedBlock {
                data: data.clone(),
                needed_by,
            },
        ) {
            // Concurrent double-load of the same block: don't double-count
            // the replaced entry's bytes.
            g.cache_bytes -= old.data.len();
        }
        g.cache_bytes += data.len();
        Self::evict_consumed(&mut g, self.capacity_bytes);
        Ok(data)
    }

    /// Evict blocks no scan needs; if still over capacity, evict the blocks
    /// with the fewest remaining consumers.
    fn evict_consumed(g: &mut AbmState, capacity: usize) {
        let dead: Vec<BlockId> = g
            .cache
            .iter()
            .filter(|(_, cb)| cb.needed_by.is_empty())
            .map(|(b, _)| *b)
            .collect();
        for b in dead {
            let cb = g.cache.remove(&b).unwrap();
            g.cache_bytes -= cb.data.len();
        }
        while g.cache_bytes > capacity && !g.cache.is_empty() {
            let victim = *g
                .cache
                .iter()
                .min_by_key(|(b, cb)| (cb.needed_by.len(), b.as_u64()))
                .map(|(b, _)| b)
                .unwrap();
            let cb = g.cache.remove(&victim).unwrap();
            g.cache_bytes -= cb.data.len();
        }
    }

    /// Another handle now shares registration `id`.
    fn retain(&self, id: ScanId) {
        let mut g = self.state.lock();
        if let Some(s) = g.scans.get_mut(&id) {
            s.handles += 1;
        }
    }

    /// A handle for `id` was dropped; unregister once the last one is gone.
    fn release(&self, id: ScanId) {
        let mut g = self.state.lock();
        let last = match g.scans.get_mut(&id) {
            Some(s) => {
                s.handles -= 1;
                s.handles == 0
            }
            None => false,
        };
        if last {
            g.scans.remove(&id);
            for cb in g.cache.values_mut() {
                cb.needed_by.remove(&id);
            }
            Self::evict_consumed(&mut g, self.capacity_bytes);
        }
    }
}

/// Handle for one registered cooperative scan.
///
/// Cloning shares the registration: all clones pull from the same remaining
/// set (each block is delivered to exactly one of them) and count as ONE scan
/// for the relevance policy. The registration is released when the last
/// clone drops.
pub struct CoopScanHandle {
    abm: Arc<Abm>,
    id: ScanId,
    done: bool,
    /// Wait-state sink: demand-fetch misses record their disk time here as
    /// `block_io` waits (set by the executor per plan node; `None` costs
    /// nothing).
    waits: Option<Arc<WaitStats>>,
}

impl Clone for CoopScanHandle {
    fn clone(&self) -> Self {
        self.abm.retain(self.id);
        CoopScanHandle {
            abm: self.abm.clone(),
            id: self.id,
            done: false,
            waits: self.waits.clone(),
        }
    }
}

impl CoopScanHandle {
    /// Next `(block, bytes)` this scan needs, in relevance order — NOT table
    /// order. `None` once every registered block was consumed.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(BlockId, Arc<Vec<u8>>)>> {
        if self.done {
            return Ok(None);
        }
        let r = self.abm.next_for(self.id)?;
        if r.is_none() {
            self.done = true;
        }
        Ok(r)
    }

    /// Fetch a specific block through the ABM (demand fetch, table order).
    /// Overlapping scans of the same blocks share loads: whoever reads a
    /// block first leaves it cached for the others ("shared hits").
    pub fn fetch(&self, block: BlockId) -> Result<Arc<Vec<u8>>> {
        self.abm.fetch_for(self.id, block, self.waits.as_deref())
    }

    /// Attribute this handle's demand-fetch misses to `waits` as `block_io`.
    pub fn set_waits(&mut self, waits: Arc<WaitStats>) {
        self.waits = Some(waits);
    }
}

impl Drop for CoopScanHandle {
    fn drop(&mut self) {
        self.abm.release(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_storage::SimDiskConfig;

    fn setup(n_blocks: usize, block_bytes: usize) -> (Arc<SimDisk>, Vec<BlockId>) {
        let disk = Arc::new(SimDisk::new(SimDiskConfig::default()));
        let ids = (0..n_blocks)
            .map(|i| disk.write_block(vec![i as u8; block_bytes]))
            .collect();
        (disk, ids)
    }

    #[test]
    fn single_scan_sees_every_block_once() {
        let (disk, ids) = setup(10, 50);
        let abm = Abm::new(disk.clone(), 10_000);
        let mut scan = abm.register_scan(ids.clone());
        let mut seen = HashSet::new();
        while let Some((bid, data)) = scan.next().unwrap() {
            assert_eq!(data.len(), 50);
            assert!(seen.insert(bid), "block delivered twice");
        }
        assert_eq!(seen.len(), 10);
        assert_eq!(disk.stats().reads, 10);
        assert!(scan.next().unwrap().is_none());
    }

    #[test]
    fn demand_fetch_shares_blocks_between_overlapping_scans() {
        let (disk, ids) = setup(10, 100);
        let abm = Abm::new(disk.clone(), 10 * 100);
        let a = abm.register_scan(ids.clone());
        let b = abm.register_scan(ids.clone());
        // a fetches everything in table order, paying the loads; b then
        // fetches the same blocks and is served from cache.
        for &bid in &ids {
            a.fetch(bid).unwrap();
        }
        for &bid in &ids {
            b.fetch(bid).unwrap();
        }
        let s = abm.stats();
        assert_eq!(s.loads, 10, "one disk pass for two scans");
        assert_eq!(s.shared_hits, 10, "second scan rode the first's loads");
        assert_eq!(disk.stats().reads, 10);
    }

    #[test]
    fn demand_fetch_miss_records_block_io_wait() {
        let (disk, ids) = setup(4, 100);
        let abm = Abm::new(disk.clone(), 4 * 100);
        let mut a = abm.register_scan(ids.clone());
        let mut b = abm.register_scan(ids.clone());
        let waits = Arc::new(WaitStats::new());
        a.set_waits(waits.clone());
        for &bid in &ids {
            a.fetch(bid).unwrap();
        }
        // Every fetch was a miss: one block_io wait event per block.
        assert_eq!(waits.count(WaitClass::BlockIo), 4);

        // The overlapping scan rides a's loads: no new block_io waits.
        let bw = Arc::new(WaitStats::new());
        b.set_waits(bw.clone());
        for &bid in &ids {
            b.fetch(bid).unwrap();
        }
        assert_eq!(bw.count(WaitClass::BlockIo), 0, "cache hits are not waits");
        // Clones share the sink.
        let c = b.clone();
        drop(c);
    }

    #[test]
    fn demand_fetch_evicts_blocks_nobody_else_needs() {
        let (disk, ids) = setup(8, 100);
        let abm = Abm::new(disk.clone(), 8 * 100);
        let a = abm.register_scan(ids.clone());
        for &bid in &ids {
            a.fetch(bid).unwrap();
        }
        // No other scan needs these blocks: cache must be empty, not pinned.
        assert_eq!(abm.state.lock().cache_bytes, 0);
        // Re-fetching after consumption still works (graceful re-load).
        a.fetch(ids[0]).unwrap();
        assert_eq!(abm.stats().loads, 9);
    }

    #[test]
    fn demand_fetch_of_unregistered_block_is_served() {
        let (disk, ids) = setup(4, 64);
        let abm = Abm::new(disk.clone(), 1024);
        let a = abm.register_scan(ids[..2].iter().copied());
        let data = a.fetch(ids[3]).unwrap();
        assert_eq!(data.len(), 64);
        // The out-of-set fetch didn't corrupt the scan's remaining set.
        assert_eq!(abm.state.lock().scans[&a.id].remaining.len(), 2);
    }

    #[test]
    fn two_interleaved_scans_share_one_disk_pass() {
        let (disk, ids) = setup(20, 100);
        let abm = Abm::new(disk.clone(), 20 * 100);
        let mut a = abm.register_scan(ids.clone());
        let mut b = abm.register_scan(ids.clone());
        let mut done_a = false;
        let mut done_b = false;
        let (mut got_a, mut got_b) = (0, 0);
        while !done_a || !done_b {
            if !done_a {
                match a.next().unwrap() {
                    Some(_) => got_a += 1,
                    None => done_a = true,
                }
            }
            if !done_b {
                match b.next().unwrap() {
                    Some(_) => got_b += 1,
                    None => done_b = true,
                }
            }
        }
        assert_eq!(got_a, 20);
        assert_eq!(got_b, 20);
        // The headline effect: 2 scans, ~1 table's worth of disk reads.
        assert_eq!(disk.stats().reads, 20);
        assert_eq!(abm.stats().shared_hits, 20);
    }

    #[test]
    fn late_joining_scan_shares_remaining_blocks() {
        let (disk, ids) = setup(10, 100);
        let abm = Abm::new(disk.clone(), 10 * 100);
        let mut a = abm.register_scan(ids.clone());
        // A consumes half the table alone.
        for _ in 0..5 {
            a.next().unwrap().unwrap();
        }
        let mut b = abm.register_scan(ids.clone());
        let mut done_a = false;
        let mut done_b = false;
        while !done_a || !done_b {
            if !done_a && a.next().unwrap().is_none() {
                done_a = true;
            }
            if !done_b && b.next().unwrap().is_none() {
                done_b = true;
            }
        }
        // A: 10 loads. B shares A's remaining 5 loads if cached, plus
        // re-reads the 5 blocks A consumed before B joined (cache may still
        // hold some). Total reads strictly less than 20.
        assert!(disk.stats().reads < 20, "reads {}", disk.stats().reads);
        assert!(abm.stats().shared_hits >= 5);
    }

    #[test]
    fn capacity_bound_still_completes() {
        let (disk, ids) = setup(50, 100);
        let abm = Abm::new(disk.clone(), 300); // tiny: 3 blocks
        let mut a = abm.register_scan(ids.clone());
        let mut b = abm.register_scan(ids.clone());
        let mut remaining = 2;
        let mut guard = 0;
        while remaining > 0 {
            guard += 1;
            assert!(guard < 10_000, "livelock");
            if a.next().unwrap().is_none() && remaining == 2 {
                remaining -= 1;
            }
            if b.next().unwrap().is_none() && remaining >= 1 && b.next().unwrap().is_none() {
                // b is done; drain a
                while a.next().unwrap().is_some() {}
                remaining = 0;
            }
        }
        // With a 3-block cache, sharing is partial but must beat 2 full passes
        // only when interleaved tightly; here we just require completion and
        // read count within 2 passes.
        assert!(disk.stats().reads <= 100);
    }

    #[test]
    fn disjoint_scans_do_not_interfere() {
        let (disk, ids) = setup(10, 10);
        let abm = Abm::new(disk.clone(), 1000);
        let mut a = abm.register_scan(ids[..5].to_vec());
        let mut b = abm.register_scan(ids[5..].to_vec());
        let mut got_a: Vec<BlockId> = Vec::new();
        let mut got_b: Vec<BlockId> = Vec::new();
        loop {
            let ra = a.next().unwrap();
            let rb = b.next().unwrap();
            if let Some((id, _)) = ra {
                got_a.push(id);
            }
            if let Some((id, _)) = rb {
                got_b.push(id);
            }
            if ra.is_none() && rb.is_none() {
                break;
            }
        }
        assert_eq!(got_a.len(), 5);
        assert_eq!(got_b.len(), 5);
        assert!(got_a.iter().all(|id| ids[..5].contains(id)));
        assert!(got_b.iter().all(|id| ids[5..].contains(id)));
    }

    #[test]
    fn dropping_handle_releases_cache() {
        let (disk, ids) = setup(5, 100);
        let abm = Abm::new(disk.clone(), 10_000);
        {
            let mut a = abm.register_scan(ids.clone());
            a.next().unwrap();
            // drop mid-scan
        }
        let g = abm.state.lock();
        assert!(g.scans.is_empty());
        assert_eq!(g.cache_bytes, 0, "cache retained after unregister");
    }

    #[test]
    fn cloned_handles_form_one_logical_scan() {
        let (disk, ids) = setup(24, 64);
        let abm = Abm::new(disk.clone(), 24 * 64);
        let progress = ScanProgress::new();
        let scan = abm.register_scan_with_progress(ids.clone(), Some(progress.clone()));
        // P workers share the registration.
        let mut handles = Vec::new();
        for _ in 0..4 {
            let mut worker = scan.clone();
            let progress = progress.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some((bid, _)) = worker.next().unwrap() {
                    progress.advance(1);
                    got.push(bid);
                }
                got
            }));
        }
        drop(scan);
        let mut all: Vec<BlockId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_by_key(|b| b.as_u64());
        all.dedup();
        // One logical scan: every block delivered exactly once across ALL
        // workers, one disk pass total, and the shared counter saw them all.
        assert_eq!(all.len(), 24, "blocks lost or duplicated across workers");
        assert_eq!(disk.stats().reads, 24);
        assert_eq!(progress.get(), 24);
        // Last clone gone -> registration fully released.
        assert!(abm.state.lock().scans.is_empty());
    }

    #[test]
    fn shared_registration_counts_once_for_relevance() {
        let (disk, ids) = setup(6, 64);
        let abm = Abm::new(disk.clone(), 6 * 64);
        let shared = abm.register_scan(ids.clone());
        let _w1 = shared.clone();
        let _w2 = shared.clone();
        // Three handles, one registration: the policy sees a single scan.
        assert_eq!(abm.state.lock().scans.len(), 1);
        drop(shared);
        assert_eq!(abm.state.lock().scans.len(), 1, "released too early");
    }

    #[test]
    fn external_progress_drives_starvation_tiebreak() {
        let (disk, ids) = setup(3, 64);
        let abm = Abm::new(disk.clone(), 6 * 64);
        let (lag_block, ahead_block, probe_block) = (ids[0], ids[1], ids[2]);
        let lagging = ScanProgress::new();
        let ahead = ScanProgress::new();
        ahead.advance(100);
        let _s1 = abm.register_scan_with_progress(vec![lag_block], Some(lagging));
        let _s2 = abm.register_scan_with_progress(vec![ahead_block], Some(ahead));
        let probe_progress = ScanProgress::new();
        probe_progress.advance(50);
        let mut probe = abm.register_scan_with_progress(
            vec![lag_block, ahead_block, probe_block],
            Some(probe_progress),
        );
        // Both shared candidates have relevance 2; the tiebreak must pick the
        // block needed by the least-progressed scan (the lagging one).
        let (first, _) = probe.next().unwrap().unwrap();
        assert_eq!(
            first, lag_block,
            "starvation bound ignored external progress"
        );
    }

    #[test]
    fn threaded_scans_share() {
        let (disk, ids) = setup(30, 64);
        let abm = Abm::new(disk.clone(), 30 * 64);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let mut scan = abm.register_scan(ids.clone());
            handles.push(std::thread::spawn(move || {
                let mut n = 0;
                while scan.next().unwrap().is_some() {
                    n += 1;
                    std::thread::yield_now();
                }
                n
            }));
        }
        let counts: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(counts.iter().all(|&c| c == 30));
        // 4 scans over 30 blocks: perfect sharing = 30 reads; allow slack for
        // scheduling skew but demand clearly better than 4 passes.
        assert!(
            disk.stats().reads < 60,
            "reads {} — no sharing happened",
            disk.stats().reads
        );
    }
}
