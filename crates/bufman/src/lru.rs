//! Capacity-bounded LRU buffer pool — the baseline policy Cooperative Scans
//! is compared against (experiment E6).

use crate::BlockReader;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use vw_common::{BlockId, Result};
use vw_storage::SimDisk;

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

struct Slot {
    data: Arc<Vec<u8>>,
    last_use: u64,
}

struct LruInner {
    slots: HashMap<BlockId, Slot>,
    bytes: usize,
    clock: u64,
    stats: PoolStats,
}

/// An LRU pool over the simulated disk, bounded in bytes.
pub struct LruPool {
    disk: Arc<SimDisk>,
    capacity_bytes: usize,
    inner: Mutex<LruInner>,
}

impl LruPool {
    pub fn new(disk: Arc<SimDisk>, capacity_bytes: usize) -> Self {
        LruPool {
            disk,
            capacity_bytes,
            inner: Mutex::new(LruInner {
                slots: HashMap::new(),
                bytes: 0,
                clock: 0,
                stats: PoolStats::default(),
            }),
        }
    }

    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    pub fn cached_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Drop everything (between benchmark phases).
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.slots.clear();
        g.bytes = 0;
    }

    fn evict_to_fit(inner: &mut LruInner, incoming: usize, capacity: usize) {
        while inner.bytes + incoming > capacity && !inner.slots.is_empty() {
            // O(n) min-scan: pools hold at most a few thousand blocks here,
            // and eviction is off the hot (hit) path.
            let victim = *inner
                .slots
                .iter()
                .min_by_key(|(_, s)| s.last_use)
                .map(|(id, _)| id)
                .unwrap();
            let s = inner.slots.remove(&victim).unwrap();
            inner.bytes -= s.data.len();
            inner.stats.evictions += 1;
        }
    }
}

impl BlockReader for LruPool {
    fn read(&self, id: BlockId) -> Result<Arc<Vec<u8>>> {
        {
            let mut g = self.inner.lock();
            g.clock += 1;
            let clock = g.clock;
            if let Some(slot) = g.slots.get_mut(&id) {
                slot.last_use = clock;
                let data = slot.data.clone();
                g.stats.hits += 1;
                return Ok(data);
            }
            g.stats.misses += 1;
        }
        // Miss: read outside the lock (charges virtual I/O), then install.
        let data = self.disk.read_block(id)?;
        let mut g = self.inner.lock();
        g.clock += 1;
        let clock = g.clock;
        if data.len() <= self.capacity_bytes {
            Self::evict_to_fit(&mut g, data.len(), self.capacity_bytes);
            if !g.slots.contains_key(&id) {
                g.bytes += data.len();
                g.slots.insert(
                    id,
                    Slot {
                        data: data.clone(),
                        last_use: clock,
                    },
                );
            }
        }
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_storage::SimDiskConfig;

    fn setup(n_blocks: usize, block_bytes: usize) -> (Arc<SimDisk>, Vec<BlockId>) {
        let disk = Arc::new(SimDisk::new(SimDiskConfig::default()));
        let ids = (0..n_blocks)
            .map(|i| disk.write_block(vec![i as u8; block_bytes]))
            .collect();
        (disk, ids)
    }

    #[test]
    fn hits_after_first_read() {
        let (disk, ids) = setup(3, 100);
        let pool = LruPool::new(disk.clone(), 1000);
        for &id in &ids {
            pool.read(id).unwrap();
        }
        for &id in &ids {
            pool.read(id).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 3);
        assert_eq!(disk.stats().reads, 3);
    }

    #[test]
    fn evicts_least_recently_used() {
        let (disk, ids) = setup(3, 100);
        let pool = LruPool::new(disk.clone(), 250); // fits 2 blocks
        pool.read(ids[0]).unwrap();
        pool.read(ids[1]).unwrap();
        pool.read(ids[0]).unwrap(); // refresh 0
        pool.read(ids[2]).unwrap(); // evicts 1
        assert_eq!(pool.stats().evictions, 1);
        pool.read(ids[0]).unwrap(); // still cached
        assert_eq!(pool.stats().hits, 2);
        pool.read(ids[1]).unwrap(); // was evicted → miss
        assert_eq!(pool.stats().misses, 4);
    }

    #[test]
    fn sequential_scan_thrash_no_reuse() {
        // The pathology cooperative scans fix: table 10 blocks, pool 5.
        let (disk, ids) = setup(10, 100);
        let pool = LruPool::new(disk.clone(), 500);
        for _pass in 0..3 {
            for &id in &ids {
                pool.read(id).unwrap();
            }
        }
        // Strict LRU + sequential order: zero reuse across passes.
        assert_eq!(pool.stats().hits, 0);
        assert_eq!(disk.stats().reads, 30);
    }

    #[test]
    fn oversized_block_bypasses_cache() {
        let (disk, _) = setup(0, 0);
        let big = disk.write_block(vec![0u8; 1000]);
        let pool = LruPool::new(disk.clone(), 100);
        pool.read(big).unwrap();
        pool.read(big).unwrap();
        assert_eq!(pool.stats().misses, 2);
        assert_eq!(pool.cached_bytes(), 0);
    }

    #[test]
    fn clear_resets_contents_not_stats() {
        let (disk, ids) = setup(2, 10);
        let pool = LruPool::new(disk, 100);
        pool.read(ids[0]).unwrap();
        pool.clear();
        assert_eq!(pool.cached_bytes(), 0);
        pool.read(ids[0]).unwrap();
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let (disk, ids) = setup(8, 64);
        let pool = Arc::new(LruPool::new(disk, 4 * 64));
        let mut handles = Vec::new();
        for t in 0..4 {
            let p = pool.clone();
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let id = ids[(t + i) % ids.len()];
                    assert_eq!(p.read(id).unwrap().len(), 64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.hits + s.misses, 400);
    }
}
