//! Perfect-hash aggregation equivalence suite.
//!
//! The direct-array aggregation path (`operators::perfect`) must be
//! observationally identical to the generic hash path for every input it
//! accepts — including the inputs that make it bail out halfway. Each
//! property runs the same random aggregate twice, once with
//! `AggPath::Generic` forced and once with `AggPath::Auto`, and compares
//! rows:
//!
//! * random group keys (low-cardinality strings with NULLs, small ints,
//!   bools) under COUNT/SUM/MIN/MAX/AVG, at dop 1 and dop 4;
//! * f64 edge cases: ±0.0 and NaN flowing through SUM/AVG/MIN/MAX (dop 1,
//!   where accumulation order is deterministic);
//! * a 32 KiB execution-memory budget, which refuses the flat table's
//!   reservation and must degrade to the generic path, not fail;
//! * a key domain that blows past the perfect coder's string cap
//!   mid-stream, forcing the runtime fallback merge.

use proptest::prelude::*;
use vw_common::config::AggPath;
use vw_common::rng::Xoshiro256;
use vw_common::{DataType, Field, Schema, Value};
use vw_core::Database;
use vw_plan::{AggExpr, AggFunc, Expr, LogicalPlan};

fn agg(func: AggFunc, col: Option<usize>, name: &str) -> AggExpr {
    AggExpr {
        func,
        arg: col.map(Expr::col),
        name: name.into(),
    }
}

/// NaN-tolerant row equality: both-NaN is equal, otherwise `==` (which
/// already treats -0.0 and +0.0 as equal, matching SQL semantics).
fn rows_equiv(a: &[Vec<Value>], b: &[Vec<Value>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(va, vb)| match (va, vb) {
                    (Value::F64(x), Value::F64(y)) => (x.is_nan() && y.is_nan()) || x == y,
                    _ => va == vb,
                })
        })
}

fn sort_canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| format!("{:?}", a).cmp(&format!("{:?}", b)));
    rows
}

/// Run the plan with one aggregation path forced.
fn run_path(db: &Database, plan: &LogicalPlan, path: AggPath, dop: usize) -> Vec<Vec<Value>> {
    let mut cfg = db.config();
    cfg.agg_path = path;
    cfg.parallelism = dop;
    db.set_config(cfg);
    db.run_plan(plan.clone()).expect("aggregate runs").rows
}

fn load(db: &Database, schema: Schema, rows: Vec<Vec<Value>>) -> (vw_common::TableId, Schema) {
    let tid = db.create_table("t", schema.clone()).unwrap();
    db.bulk_load("t", rows).unwrap();
    (tid, schema)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn perfect_path_matches_generic(seed in 0u64..1_000_000) {
        let mut r = Xoshiro256::seeded(seed);
        let dict = ["AA", "BB", "CC", "DD", "EE", "FF"];
        let n = 800 + r.next_below(2500) as usize;
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| {
                vec![
                    if r.chance(0.06) {
                        Value::Null
                    } else {
                        Value::Str(dict[r.next_below(dict.len() as u64) as usize].into())
                    },
                    Value::I64(r.range_i64(3, 17)),
                    Value::Bool(r.chance(0.5)),
                    if r.chance(0.04) {
                        Value::Null
                    } else {
                        // Multiples of 0.25: f64-exact, so dop-4 combine
                        // order cannot perturb sums.
                        Value::F64(r.range_i64(-400, 400) as f64 / 4.0)
                    },
                    Value::I64(r.range_i64(-1000, 1000)),
                ]
            })
            .collect();
        let schema = Schema::new(vec![
            Field::nullable("g", DataType::Str),
            Field::new("h", DataType::I64),
            Field::new("b", DataType::Bool),
            Field::nullable("x", DataType::F64),
            Field::new("y", DataType::I64),
        ]);
        let db = Database::new().unwrap();
        let (tid, schema) = load(&db, schema, rows);
        // Random subset of the three key columns (possibly empty = scalar).
        let mut group_by = Vec::new();
        for k in 0..3usize {
            if r.chance(0.6) {
                group_by.push(k);
            }
        }
        let plan = LogicalPlan::scan("t", tid, schema).aggregate(
            group_by,
            vec![
                agg(AggFunc::CountStar, None, "n"),
                agg(AggFunc::Count, Some(3), "nx"),
                agg(AggFunc::Sum, Some(3), "sx"),
                agg(AggFunc::Sum, Some(4), "sy"),
                agg(AggFunc::Avg, Some(3), "ax"),
                agg(AggFunc::Min, Some(4), "mn"),
                agg(AggFunc::Max, Some(3), "mx"),
            ],
        );
        for dop in [1usize, 4] {
            let want = sort_canonical(run_path(&db, &plan, AggPath::Generic, dop));
            let got = sort_canonical(run_path(&db, &plan, AggPath::Auto, dop));
            prop_assert!(
                rows_equiv(&got, &want),
                "dop={} perfect diverged:\n  got  {:?}\n  want {:?}",
                dop, got, want
            );
        }
    }

    #[test]
    fn f64_zero_and_nan_edges_match(seed in 0u64..1_000_000) {
        let mut r = Xoshiro256::seeded(seed ^ 0x5eed);
        let n = 200 + r.next_below(800) as usize;
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|_| {
                let x = match r.next_below(5) {
                    0 => 0.0,
                    1 => -0.0,
                    2 => f64::NAN,
                    3 => r.range_i64(-100, 100) as f64 / 4.0,
                    _ => return vec![
                        Value::Bool(r.chance(0.5)),
                        Value::Null,
                    ],
                };
                vec![Value::Bool(r.chance(0.5)), Value::F64(x)]
            })
            .collect();
        let schema = Schema::new(vec![
            Field::new("g", DataType::Bool),
            Field::nullable("x", DataType::F64),
        ]);
        let db = Database::new().unwrap();
        let (tid, schema) = load(&db, schema, rows);
        let plan = LogicalPlan::scan("t", tid, schema).aggregate(
            vec![0],
            vec![
                agg(AggFunc::Sum, Some(1), "s"),
                agg(AggFunc::Avg, Some(1), "a"),
                agg(AggFunc::Min, Some(1), "mn"),
                agg(AggFunc::Max, Some(1), "mx"),
            ],
        );
        let want = sort_canonical(run_path(&db, &plan, AggPath::Generic, 1));
        let got = sort_canonical(run_path(&db, &plan, AggPath::Auto, 1));
        prop_assert!(
            rows_equiv(&got, &want),
            "NaN/±0.0 edges diverged:\n  got  {:?}\n  want {:?}",
            got, want
        );
    }
}

/// A 32 KiB execution budget cannot host the flat accumulator table for a
/// string×int key; the perfect path must decline its reservation and the
/// query must still answer correctly through the generic (spilling) path.
#[test]
fn tiny_budget_degrades_to_generic_and_matches() {
    let dict = ["a", "b", "c", "d", "e", "f", "g", "h"];
    let mut r = Xoshiro256::seeded(99);
    let rows: Vec<Vec<Value>> = (0..4000)
        .map(|_| {
            vec![
                Value::Str(dict[r.next_below(8) as usize].into()),
                Value::I64(r.range_i64(0, 30)),
                Value::F64(r.range_i64(0, 1000) as f64 / 4.0),
            ]
        })
        .collect();
    let schema = Schema::new(vec![
        Field::new("g", DataType::Str),
        Field::new("h", DataType::I64),
        Field::new("x", DataType::F64),
    ]);
    let db = Database::new().unwrap();
    let (tid, schema) = load(&db, schema, rows);
    let plan = LogicalPlan::scan("t", tid, schema).aggregate(
        vec![0, 1],
        vec![
            agg(AggFunc::CountStar, None, "n"),
            agg(AggFunc::Sum, Some(2), "s"),
            agg(AggFunc::Avg, Some(2), "a"),
        ],
    );
    let want = sort_canonical(run_path(&db, &plan, AggPath::Generic, 1));
    db.set_mem_budget(Some(32 * 1024));
    let got = sort_canonical(run_path(&db, &plan, AggPath::Auto, 1));
    assert!(
        rows_equiv(&got, &want),
        "budgeted run diverged:\n  got  {:?}\n  want {:?}",
        got,
        want
    );
}

/// More distinct group strings than the perfect coder's per-key cap: the
/// flat table starts absorbing, hits an out-of-domain code mid-stream, and
/// must hand its partial state to the generic table without losing or
/// double-counting any group.
#[test]
fn over_cap_key_domain_falls_back_mid_stream() {
    let mut r = Xoshiro256::seeded(7);
    // First half uses 8 strings (absorbed by the flat table), second half
    // introduces 100 more (over the 32-distinct cap).
    let rows: Vec<Vec<Value>> = (0..6000)
        .map(|i| {
            let g = if i < 3000 {
                format!("g{}", r.next_below(8))
            } else {
                format!("g{}", r.next_below(100))
            };
            vec![Value::Str(g), Value::F64(r.range_i64(0, 100) as f64)]
        })
        .collect();
    let schema = Schema::new(vec![
        Field::new("g", DataType::Str),
        Field::nullable("x", DataType::F64),
    ]);
    let db = Database::new().unwrap();
    let (tid, schema) = load(&db, schema, rows);
    let plan = LogicalPlan::scan("t", tid, schema).aggregate(
        vec![0],
        vec![
            agg(AggFunc::CountStar, None, "n"),
            agg(AggFunc::Sum, Some(1), "s"),
            agg(AggFunc::Avg, Some(1), "a"),
        ],
    );
    let want = sort_canonical(run_path(&db, &plan, AggPath::Generic, 1));
    let got = sort_canonical(run_path(&db, &plan, AggPath::Auto, 1));
    assert_eq!(got.len(), 100, "one row per distinct group");
    assert!(
        rows_equiv(&got, &want),
        "fallback run diverged:\n  got  {:?}\n  want {:?}",
        got,
        want
    );
    // The profile must admit what happened.
    let prof = db.profile_last_query().expect("profiling on by default");
    let extras: Vec<_> = prof
        .nodes()
        .into_iter()
        .filter(|n| n.op_name() == "Aggregate")
        .flat_map(|n| n.extras())
        .collect();
    assert!(
        extras.iter().any(|&(k, _)| k == "agg_fallback"),
        "fallback should be reported in extras: {:?}",
        extras
    );
}
