//! Compressed-execution integration tests: predicate pushdown into the
//! lazy, codec-aware scan must be invisible to query results, and a
//! selective scan over clustered data must demonstrably avoid decoding.
//!
//! The property test compares three executions of the same predicate on
//! randomly generated tables whose column shapes drive every codec the
//! storage layer picks (sorted ints → PFOR-delta, small-domain ints → PFOR,
//! runs → RLE, low-cardinality strings → PDICT, near-unique strings →
//! plain, plus f64 and date columns with NULLs sprinkled in):
//!
//! 1. `Scan` with no filter + a vectorized `Filter` on top (the unpushed
//!    reference — predicate runs on decoded vectors);
//! 2. `Scan` with the predicate embedded (the lazy path — predicate runs
//!    on encoded data where the codec supports it);
//! 3. the full `Database::run_plan` pipeline at dop 4 (optimizer pushdown
//!    plus the morsel-parallel scan).

use proptest::prelude::*;
use vw_common::rng::Xoshiro256;
use vw_common::{DataType, Field, Schema, Value};
use vw_core::compile::compile_plan;
use vw_core::operators::collect_rows;
use vw_core::Database;
use vw_plan::{AggExpr, AggFunc, BinOp, Expr, LogicalPlan};

/// Random table whose columns steer the codec chooser in different
/// directions. Column 0 is a strictly increasing key used to canonicalize
/// row order when comparing parallel runs.
fn gen_rows(r: &mut Xoshiro256, n: usize) -> Vec<Vec<Value>> {
    let dict = ["alpha", "bravo", "charlie", "delta"];
    let mut key = 0i64;
    let mut run_val = 0i64;
    (0..n)
        .map(|i| {
            key += 1 + r.range_i64(0, 2);
            if i % 97 == 0 {
                run_val = r.range_i64(0, 3);
            }
            vec![
                Value::I64(key),
                if r.chance(0.05) {
                    Value::Null
                } else {
                    Value::I64(r.range_i64(0, 15))
                },
                Value::I64(run_val),
                if r.chance(0.05) {
                    Value::Null
                } else {
                    Value::Str(dict[r.next_below(dict.len() as u64) as usize].to_string())
                },
                Value::Str(format!("u{:07}", r.next_below(1 << 40))),
                Value::F64(r.range_i64(-500, 500) as f64 / 8.0),
                Value::Date(8000 + r.range_i64(0, 400) as i32),
            ]
        })
        .collect()
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("sk", DataType::I64),
        Field::nullable("sm", DataType::I64),
        Field::new("rl", DataType::I64),
        Field::nullable("dc", DataType::Str),
        Field::new("us", DataType::Str),
        Field::new("f", DataType::F64),
        Field::new("dt", DataType::Date),
    ])
}

/// One random comparison on a random column, with the literal drawn from
/// the column's domain so selectivity varies across the whole range.
fn gen_pred(r: &mut Xoshiro256, n: usize) -> Expr {
    let ops = [
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ];
    let op = ops[r.next_below(ops.len() as u64) as usize];
    let dict = ["alpha", "bravo", "charlie", "delta", "echo"];
    let (col, lit) = match r.next_below(7) {
        0 => (0, Value::I64(r.range_i64(0, 2 * n as i64))),
        1 => (1, Value::I64(r.range_i64(-1, 16))),
        2 => (2, Value::I64(r.range_i64(0, 3))),
        3 => (
            3,
            Value::Str(dict[r.next_below(dict.len() as u64) as usize].to_string()),
        ),
        4 => (4, Value::Str(format!("u{:07}", r.next_below(1 << 40)))),
        5 => (5, Value::F64(r.range_i64(-500, 500) as f64 / 8.0)),
        // F64 literal against an int column exercises the float compare
        // path of the encoded evaluator.
        _ => {
            if r.chance(0.5) {
                (6, Value::Date(8000 + r.range_i64(-10, 410) as i32))
            } else {
                (1, Value::F64(r.range_i64(0, 30) as f64 / 2.0))
            }
        }
    };
    Expr::binary(op, Expr::col(col), Expr::lit(lit))
}

fn sort_canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by_key(|row| match row[0] {
        Value::I64(k) => k,
        _ => i64::MIN,
    });
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn pushed_predicate_matches_vectorized_filter(seed in 0u64..1_000_000) {
        let mut r = Xoshiro256::seeded(seed);
        let n = 1500 + r.next_below(2000) as usize;
        let rows = gen_rows(&mut r, n);
        let mut pred = gen_pred(&mut r, n);
        if r.chance(0.4) {
            pred = Expr::and(pred, gen_pred(&mut r, n));
        }

        let db = Database::new().unwrap();
        let schema = schema();
        let tid = db.create_table("t", schema.clone()).unwrap();
        db.bulk_load("t", rows).unwrap();
        let ctx = db.exec_context(None).unwrap();

        // Reference: bare scan + vectorized filter (no pushdown).
        let unpushed = LogicalPlan::scan("t", tid, schema.clone()).filter(pred.clone());
        let mut op = compile_plan(&unpushed, &ctx).unwrap();
        let want = collect_rows(op.as_mut()).unwrap();

        // Lazy path: same predicate embedded in the scan node.
        let pushed = LogicalPlan::Scan {
            table: "t".into(),
            table_id: tid,
            schema: schema.clone(),
            projection: None,
            filter: Some(pred.clone()),
        };
        let mut op = compile_plan(&pushed, &ctx).unwrap();
        let got = collect_rows(op.as_mut()).unwrap();
        prop_assert_eq!(&got, &want, "pushed scan diverged (pred {:?})", pred);

        // Full pipeline at dop 4: optimizer pushdown + morsel parallelism.
        db.set_parallelism(4);
        let plan = LogicalPlan::scan("t", tid, schema).filter(pred.clone());
        let par = db.run_plan(plan).unwrap().rows;
        prop_assert_eq!(
            sort_canonical(par),
            sort_canonical(want),
            "dop-4 run diverged (pred {:?})",
            pred
        );
    }
}

/// Acceptance: on a clustered key, a selective predicate must let the scan
/// reject whole vectors in encoded form — decoded vectors < scanned
/// vectors, observable through the new profile counters.
#[test]
fn selective_scan_decodes_fewer_vectors_than_it_scans() {
    let db = Database::new().unwrap();
    let schema = Schema::new(vec![
        Field::new("k", DataType::I64),
        Field::new("payload", DataType::F64),
    ]);
    let tid = db.create_table("t", schema.clone()).unwrap();
    let n: i64 = 20_000;
    db.bulk_load(
        "t",
        (0..n).map(|i| vec![Value::I64(i), Value::F64(i as f64 * 0.25)]),
    )
    .unwrap();
    let plan = LogicalPlan::scan("t", tid, schema)
        .filter(Expr::binary(
            BinOp::Lt,
            Expr::col(0),
            Expr::lit(Value::I64(512)),
        ))
        .aggregate(
            vec![],
            vec![
                AggExpr {
                    func: AggFunc::CountStar,
                    arg: None,
                    name: "n".into(),
                },
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(Expr::col(1)),
                    name: "s".into(),
                },
            ],
        );
    let result = db.run_plan(plan).unwrap();
    assert_eq!(result.rows[0][0], Value::I64(512));

    let prof = db.profile_last_query().expect("profiling is on by default");
    let scan = prof
        .nodes()
        .into_iter()
        .find(|node| node.op_name() == "Scan")
        .expect("scan node");
    let extras: std::collections::BTreeMap<_, _> = scan.extras().into_iter().collect();
    let decoded = extras.get("vec_decoded").copied().unwrap_or(0);
    let skipped = extras.get("vec_skipped").copied().unwrap_or(0);
    // 20_000 rows / 1024-row vectors x 2 projected columns ≈ 40 column
    // vectors total; only the first vector of the key column (plus the
    // matching payload slice) should ever be decoded.
    assert!(skipped > 0, "no vectors skipped (decoded={})", decoded);
    assert!(
        decoded < decoded + skipped,
        "scan decoded every vector it covered"
    );
    assert!(
        decoded <= 4,
        "selective scan decoded {} column-vectors, expected at most 4",
        decoded
    );
}

/// Non-selective predicates must keep every row: the lazy scan degenerates
/// to decode-everything and the result matches a plain full scan.
#[test]
fn non_selective_pushdown_keeps_all_rows() {
    let db = Database::new().unwrap();
    let schema = Schema::new(vec![
        Field::new("k", DataType::I64),
        Field::new("v", DataType::I64),
    ]);
    let tid = db.create_table("t", schema.clone()).unwrap();
    db.bulk_load(
        "t",
        (0..5000i64).map(|i| vec![Value::I64(i), Value::I64(i % 7)]),
    )
    .unwrap();
    let plan = LogicalPlan::scan("t", tid, schema).filter(Expr::binary(
        BinOp::Ge,
        Expr::col(0),
        Expr::lit(Value::I64(0)),
    ));
    let rows = db.run_plan(plan).unwrap().rows;
    assert_eq!(rows.len(), 5000);
}
