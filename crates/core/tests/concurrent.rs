//! Concurrent multi-query serving: N sessions over one shared `Database`.
//!
//! The single-query assumptions this PR removed are exactly what these tests
//! attack: results under concurrency must be identical to serial execution,
//! the query-history ring must attribute every query to the session that ran
//! it, admission control must keep the sum of grants within the global
//! memory ledger, overlapping scans must share disk bandwidth through the
//! cooperative buffer manager, and an in-flight query must never observe a
//! concurrent `SET`.
//!
//! All queries here are integer-exact (COUNT/SUM/MIN/MAX over BIGINT with
//! ORDER BY), so "identical" means `==` on the row values regardless of
//! thread interleaving or degree of parallelism.

use std::sync::{Arc, Barrier};
use std::thread;

use vw_common::{DataType, Field, Schema, Value};
use vw_core::{Database, QueryResult};

/// `t(k BIGINT, v BIGINT, g BIGINT)` with `rows` bulk-loaded rows:
/// `k` unique ascending, `v = k % 100`, `g = k % 8`.
fn stress_db(rows: i64) -> Arc<Database> {
    let db = Database::new().unwrap();
    db.create_table(
        "t",
        Schema::new(vec![
            Field::new("k", DataType::I64),
            Field::new("v", DataType::I64),
            Field::new("g", DataType::I64),
        ]),
    )
    .unwrap();
    db.bulk_load(
        "t",
        (0..rows).map(|k| vec![Value::I64(k), Value::I64(k % 100), Value::I64(k % 8)]),
    )
    .unwrap();
    Arc::new(db)
}

/// The mixed workload each session replays. Every query is deterministic.
const WORKLOAD: &[&str] = &[
    "SELECT COUNT(*) FROM t",
    "SELECT SUM(v) FROM t",
    "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g ORDER BY g",
    "SELECT COUNT(*) FROM t WHERE v < 50",
    "SELECT g, MIN(k) AS mn, MAX(k) AS mx FROM t GROUP BY g ORDER BY g",
];

fn rows_of(r: QueryResult) -> Vec<Vec<Value>> {
    r.rows
}

#[test]
fn concurrent_sessions_match_serial_and_attribute_history() {
    const SESSIONS: usize = 4;
    let db = stress_db(20_000);
    // Serial reference, sessionless.
    let expected: Vec<Vec<Vec<Value>>> = WORKLOAD
        .iter()
        .map(|q| rows_of(db.execute(q).unwrap()))
        .collect();
    let barrier = Arc::new(Barrier::new(SESSIONS));
    let mut handles = Vec::new();
    let mut session_ids = Vec::new();
    for i in 0..SESSIONS {
        let session = db.session();
        session_ids.push(session.id());
        // Mixed dop across sessions: parallelism must not change results.
        session.set_parallelism(1 + (i % 2) * 3);
        let expected = expected.clone();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            barrier.wait();
            for (q, want) in WORKLOAD.iter().zip(&expected) {
                let got = rows_of(session.execute(q).unwrap());
                assert_eq!(&got, want, "concurrent result diverged for {q}");
            }
            session.queries_run()
        }));
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), WORKLOAD.len() as u64);
    }
    // History: the serial reference ran sessionless, then SESSIONS × workload
    // with correct attribution.
    let history = db.query_history();
    assert_eq!(history.len(), (SESSIONS + 1) * WORKLOAD.len());
    for sid in session_ids {
        let n = history.iter().filter(|r| r.session == sid).count();
        assert_eq!(n, WORKLOAD.len(), "history miscounts session {sid}");
    }
    assert_eq!(
        history.iter().filter(|r| r.session == 0).count(),
        WORKLOAD.len()
    );
    // Query ids are unique even under concurrent allocation.
    let mut ids: Vec<u64> = history.iter().map(|r| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), history.len(), "duplicate query ids in history");
}

#[test]
fn constrained_budget_admits_all_without_violations() {
    const SESSIONS: usize = 4;
    const ROUNDS: usize = 3;
    let db = stress_db(30_000);
    db.execute("SET GLOBAL memory_budget = '128KiB'").unwrap();
    let limit = 128u64 << 10;
    let q = "SELECT g, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY g ORDER BY s";
    let expected = rows_of(db.execute(q).unwrap());
    let before = db.admission_stats();
    let barrier = Arc::new(Barrier::new(SESSIONS));
    let mut handles = Vec::new();
    for _ in 0..SESSIONS {
        let session = db.session();
        let expected = expected.clone();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            barrier.wait();
            for _ in 0..ROUNDS {
                let got = rows_of(session.execute(q).unwrap());
                assert_eq!(got, expected, "result diverged under memory pressure");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let st = db.admission_stats();
    assert_eq!(
        st.admitted - before.admitted,
        (SESSIONS * ROUNDS) as u64,
        "every query passes admission exactly once"
    );
    assert_eq!(st.violations, 0, "grants exceeded the ledger");
    assert!(st.peak_granted > 0);
    assert!(
        st.peak_granted <= limit,
        "peak granted {} > ledger {}",
        st.peak_granted,
        limit
    );
}

#[test]
fn overlapping_scans_share_bandwidth_through_abm() {
    // > BLOCK_VALUES rows so the table spans several row groups (several
    // blocks per column), giving concurrent scans something to share.
    let db = stress_db(160_000);
    let abm = db.enable_cooperative_scans(64 << 20);
    let q = "SELECT SUM(v), SUM(k), COUNT(*) FROM t";
    let expected = rows_of(db.execute(q).unwrap());
    // Overlap two scan streams; sharing is timing-dependent, so retry a
    // bounded number of rounds until the ABM reports a shared hit.
    let mut shared = 0;
    for _round in 0..30 {
        let before = abm.stats();
        let barrier = Arc::new(Barrier::new(2));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let session = db.session();
            let expected = expected.clone();
            let barrier = barrier.clone();
            handles.push(thread::spawn(move || {
                barrier.wait();
                let got = rows_of(session.execute(q).unwrap());
                assert_eq!(got, expected, "coop-scan result diverged");
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        shared = (abm.stats().shared_hits - before.shared_hits).max(shared);
        if shared > 0 {
            break;
        }
    }
    assert!(
        shared > 0,
        "overlapping scans never shared a block through the ABM"
    );
}

#[test]
fn in_flight_queries_survive_a_set_hammer() {
    let db = stress_db(20_000);
    let q = "SELECT g, SUM(v) AS s FROM t GROUP BY g ORDER BY g";
    let expected = rows_of(db.execute(q).unwrap());
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    // One thread flips global config as fast as it can; queries snapshot
    // their config at admission, so results and profiles stay coherent.
    let hammer = {
        let db = db.clone();
        let stop = stop.clone();
        thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                db.execute(&format!("SET GLOBAL vector_size = {}", 64 << (i % 5)))
                    .unwrap();
                db.execute(&format!("SET GLOBAL parallelism = {}", 1 + i % 4))
                    .unwrap();
                db.execute(if i.is_multiple_of(2) {
                    "SET GLOBAL memory_budget = '256KiB'"
                } else {
                    "SET GLOBAL memory_budget = unbounded"
                })
                .unwrap();
                i += 1;
            }
        })
    };
    let session = db.session();
    for _ in 0..40 {
        let got = rows_of(session.execute(q).unwrap());
        assert_eq!(got, expected, "concurrent SET corrupted a query");
        // The session's profile reflects the config its own query ran with.
        let prof = session.profile_last_query().unwrap();
        assert_eq!(prof.session, session.id());
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    hammer.join().unwrap();
    assert_eq!(db.admission_stats().violations, 0);
}
