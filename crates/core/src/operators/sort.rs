//! Vectorized sort: drain, order indexes by key columns, emit gathered
//! batches. NULLs order first on ascending keys (consistent with
//! `Value::total_cmp`, which all engines share).
//!
//! Under a [`MemTracker`] budget this becomes an **external merge sort**:
//! input batches accumulate until the budget pressures, at which point the
//! buffered rows are sorted into a *run* and spilled (run = a spill file of
//! sorted chunks). At end of input, zero runs means the classic in-memory
//! path ran unchanged; otherwise the runs are k-way merged with one resident
//! chunk per run (the minimal working unit, force-reserved). Runs partition
//! the input sequentially and ties prefer the lower run index, so the merge
//! reproduces the in-memory sort's stable input-order tiebreak exactly.

use std::sync::Arc;

use crate::batch::Batch;
use crate::mem::MemTracker;
use crate::spill::{batch_bytes, read_batch, spill_disk, write_batch};
use crate::trace::TraceHandle;
use vw_common::waits::WaitStats;
use vw_common::{Result, Schema};
use vw_plan::SortKey;
use vw_storage::{SimDisk, SpillFile};

use super::{concat_batches, BoxedOperator, Operator, VecLimit};

/// Sort operator.
pub struct VecSort {
    input: BoxedOperator,
    keys: Vec<SortKey>,
    schema: Schema,
    vector_size: usize,
    mem: MemTracker,
    disk: Option<Arc<SimDisk>>,
    state: State,
    trace: Option<TraceHandle>,
    /// Wait-state sink of the owning plan node (None = profiling off).
    waits: Option<Arc<WaitStats>>,
}

enum State {
    Pending,
    InMem(Vec<Batch>),
    Merge(MergeState),
}

impl VecSort {
    pub fn new(input: BoxedOperator, keys: Vec<SortKey>, vector_size: usize) -> VecSort {
        let schema = input.schema().clone();
        VecSort {
            input,
            keys,
            schema,
            vector_size: vector_size.max(1),
            mem: MemTracker::detached(),
            disk: None,
            state: State::Pending,
            trace: None,
            waits: None,
        }
    }

    /// Attribute run spill reads/writes as blocked time.
    pub fn set_waits(&mut self, waits: Arc<WaitStats>) {
        self.waits = Some(waits);
    }

    /// Record run spills into the query trace timeline.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Attach a tracker onto the query's shared memory budget.
    pub fn set_mem_tracker(&mut self, mem: MemTracker) {
        self.mem = mem;
    }

    /// Spill to this disk (the database's SimDisk, so spill I/O is counted).
    pub fn set_spill_disk(&mut self, disk: Arc<SimDisk>) {
        self.disk = Some(disk);
    }

    /// Sort `batch`'s rows, returning the gathered output chunks in emission
    /// order (the shared kernel of both the in-memory and the spill path).
    fn sorted_chunks(&self, batch: &Batch) -> Vec<Batch> {
        let mut idx: Vec<u32> = (0..batch.rows as u32).collect();
        let cols = &batch.columns;
        idx.sort_by(|&a, &b| {
            for k in &self.keys {
                let c = &cols[k.col];
                let ord = super::sort_key_cmp(k, c, a as usize, c, b as usize);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            // stable tiebreak on input order for determinism
            a.cmp(&b)
        });
        idx.chunks(self.vector_size)
            .map(|chunk| Batch::new(batch.columns.iter().map(|c| c.gather(chunk)).collect()))
            .collect()
    }

    /// Sort the buffered batches into one run and spill it.
    fn flush_run(
        &mut self,
        pending: &mut Vec<Batch>,
        pending_bytes: &mut usize,
        runs: &mut Vec<SpillFile>,
    ) -> Result<()> {
        let span = self.trace.as_ref().map(|t| t.start());
        let batch = concat_batches(std::mem::take(pending), self.schema.len());
        let mut file = SpillFile::new(spill_disk(&self.disk));
        for chunk in self.sorted_chunks(&batch) {
            write_batch(&mut file, &chunk, self.waits.as_deref())?;
        }
        self.mem.note_spill(file.bytes());
        if let (Some(t), Some(start)) = (&self.trace, span) {
            t.span_arg("spill write", "spill", start, Some(("bytes", file.bytes())));
        }
        self.mem.shrink(*pending_bytes);
        *pending_bytes = 0;
        runs.push(file);
        Ok(())
    }

    fn run(&mut self) -> Result<State> {
        let mut pending: Vec<Batch> = Vec::new();
        let mut pending_bytes = 0usize;
        let mut runs: Vec<SpillFile> = Vec::new();
        while let Some(b) = self.input.next()? {
            let b = b.compact();
            if b.rows == 0 {
                continue;
            }
            let bytes = batch_bytes(&b);
            if !self.mem.try_grow(bytes) {
                if !pending.is_empty() {
                    self.flush_run(&mut pending, &mut pending_bytes, &mut runs)?;
                }
                if !self.mem.try_grow(bytes) {
                    // A single input batch larger than the whole budget is
                    // the minimal working unit — take it anyway.
                    self.mem.force_grow(bytes);
                }
            }
            pending_bytes += bytes;
            pending.push(b);
        }
        if runs.is_empty() {
            if pending.is_empty() {
                return Ok(State::InMem(Vec::new()));
            }
            // Never pressured: the classic in-memory sort.
            let batch = concat_batches(pending, self.schema.len());
            let mut out = self.sorted_chunks(&batch);
            out.reverse();
            return Ok(State::InMem(out));
        }
        if !pending.is_empty() {
            self.flush_run(&mut pending, &mut pending_bytes, &mut runs)?;
        }
        let waits = self.waits.clone();
        let cursors = runs
            .into_iter()
            .map(|file| RunCursor::open(file, &mut self.mem, waits.as_deref()))
            .collect::<Result<Vec<_>>>()?;
        Ok(State::Merge(MergeState { cursors }))
    }
}

/// One sorted run being merged: the resident chunk plus a read position.
struct RunCursor {
    file: SpillFile,
    next_chunk: usize,
    batch: Option<Batch>,
    pos: usize,
    resident_bytes: usize,
}

impl RunCursor {
    fn open(file: SpillFile, mem: &mut MemTracker, waits: Option<&WaitStats>) -> Result<RunCursor> {
        let mut c = RunCursor {
            file,
            next_chunk: 0,
            batch: None,
            pos: 0,
            resident_bytes: 0,
        };
        c.load_next(mem, waits)?;
        Ok(c)
    }

    fn load_next(&mut self, mem: &mut MemTracker, waits: Option<&WaitStats>) -> Result<()> {
        mem.shrink(self.resident_bytes);
        self.resident_bytes = 0;
        self.batch = None;
        if self.next_chunk < self.file.chunk_count() {
            let b = read_batch(&self.file, self.next_chunk, waits)?;
            self.next_chunk += 1;
            self.resident_bytes = batch_bytes(&b);
            // One chunk per run is the merge's minimal working unit.
            mem.force_grow(self.resident_bytes);
            self.pos = 0;
            self.batch = Some(b);
        }
        Ok(())
    }

    fn current(&self) -> Option<(&Batch, usize)> {
        self.batch.as_ref().map(|b| (b, self.pos))
    }

    fn advance(&mut self, mem: &mut MemTracker, waits: Option<&WaitStats>) -> Result<()> {
        self.pos += 1;
        if self.batch.as_ref().is_some_and(|b| self.pos >= b.rows) {
            self.load_next(mem, waits)?;
        }
        Ok(())
    }
}

struct MergeState {
    cursors: Vec<RunCursor>,
}

impl MergeState {
    /// Emit the next merged output batch (row-assembled; this path only runs
    /// after a spill, where I/O dominates).
    fn next_batch(
        &mut self,
        keys: &[SortKey],
        schema: &Schema,
        vector_size: usize,
        mem: &mut MemTracker,
        waits: Option<&WaitStats>,
    ) -> Result<Option<Batch>> {
        let mut rows: Vec<Vec<vw_common::Value>> = Vec::new();
        while rows.len() < vector_size {
            let mut best: Option<usize> = None;
            for (ci, cur) in self.cursors.iter().enumerate() {
                let Some((b, i)) = cur.current() else {
                    continue;
                };
                let better = match best {
                    None => true,
                    Some(bi) => {
                        let (bb, bj) = self.cursors[bi].current().unwrap();
                        // Lower run index wins ties: runs hold sequential
                        // input segments, so this preserves stability.
                        cmp_rows(keys, b, i, bb, bj).is_lt()
                    }
                };
                if better {
                    best = Some(ci);
                }
            }
            let Some(bi) = best else {
                break;
            };
            let (b, i) = self.cursors[bi].current().unwrap();
            rows.push(
                b.columns
                    .iter()
                    .zip(schema.fields())
                    .map(|(c, f)| c.get_value(i, f.ty))
                    .collect(),
            );
            self.cursors[bi].advance(mem, waits)?;
        }
        if rows.is_empty() {
            return Ok(None);
        }
        Ok(Some(Batch::from_rows(schema, &rows)?))
    }
}

fn cmp_rows(keys: &[SortKey], a: &Batch, i: usize, b: &Batch, j: usize) -> std::cmp::Ordering {
    for k in keys {
        let ord = super::sort_key_cmp(k, &a.columns[k.col], i, &b.columns[k.col], j);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

impl Operator for VecSort {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if matches!(self.state, State::Pending) {
            self.state = self.run()?;
        }
        match &mut self.state {
            State::Pending => unreachable!(),
            State::InMem(out) => Ok(out.pop()),
            State::Merge(m) => {
                let keys = std::mem::take(&mut self.keys);
                let waits = self.waits.clone();
                let r = m.next_batch(
                    &keys,
                    &self.schema,
                    self.vector_size,
                    &mut self.mem,
                    waits.as_deref(),
                );
                self.keys = keys;
                r
            }
        }
    }

    fn profile_extras(&self) -> Vec<(&'static str, u64)> {
        let mut ex = vec![("peak_bytes", self.mem.peak())];
        if self.mem.spill_events() > 0 {
            ex.push(("spill_runs", self.mem.spill_events()));
            ex.push(("spill_bytes", self.mem.spill_bytes()));
        }
        ex
    }
}

/// Bounded Top-N: the fused form of `Limit(offset, fetch)` over
/// `Sort(keys)`. Instead of materializing and sorting the whole input it
/// keeps only the best `offset + fetch` rows, periodically compacting a
/// 2N-row buffer with the same stable comparator as [`VecSort`] — entries
/// carry their input sequence number, so ties keep the first arrivals and
/// the kept prefix is exactly what a full stable sort would emit first.
///
/// Memory-safe: the buffer is charged to the query's [`MemTracker`]; if the
/// reservation fails the operator falls back to a full external [`VecSort`]
/// (fed the buffered rows plus the rest of the input) under [`VecLimit`],
/// preserving exact output equivalence.
pub struct TopN {
    input: Option<BoxedOperator>,
    keys: Vec<SortKey>,
    schema: Schema,
    vector_size: usize,
    offset: usize,
    n: usize,
    mem: MemTracker,
    disk: Option<Arc<SimDisk>>,
    trace: Option<TraceHandle>,
    /// Wait-state sink of the owning plan node (None = profiling off).
    waits: Option<Arc<WaitStats>>,
    state: TopNState,
    fell_back: bool,
}

enum TopNState {
    Pending,
    InMem(Vec<Batch>),
    Fallback(BoxedOperator),
}

impl TopN {
    /// Largest `offset + fetch` the planner fuses into a heap Top-N; above
    /// this a full sort pipes into a plain limit.
    pub const MAX_N: u64 = 8192;

    pub fn new(
        input: BoxedOperator,
        keys: Vec<SortKey>,
        offset: u64,
        fetch: u64,
        vector_size: usize,
    ) -> TopN {
        let schema = input.schema().clone();
        let n = offset.saturating_add(fetch) as usize;
        TopN {
            input: Some(input),
            keys,
            schema,
            vector_size: vector_size.max(1),
            offset: offset as usize,
            n,
            mem: MemTracker::detached(),
            disk: None,
            trace: None,
            waits: None,
            state: TopNState::Pending,
            fell_back: false,
        }
    }

    /// Attribute fallback-sort spill I/O as blocked time.
    pub fn set_waits(&mut self, waits: Arc<WaitStats>) {
        self.waits = Some(waits);
    }

    pub fn set_mem_tracker(&mut self, mem: MemTracker) {
        self.mem = mem;
    }

    pub fn set_spill_disk(&mut self, disk: Arc<SimDisk>) {
        self.disk = Some(disk);
    }

    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    fn cmp_entries(
        keys: &[SortKey],
        a: &(Vec<vw_common::Value>, u64),
        b: &(Vec<vw_common::Value>, u64),
    ) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        for k in keys {
            let (x, y) = (&a.0[k.col], &b.0[k.col]);
            let ord = match (x.is_null(), y.is_null()) {
                (true, true) => Ordering::Equal,
                (true, false) => {
                    if k.nulls_first {
                        Ordering::Less
                    } else {
                        Ordering::Greater
                    }
                }
                (false, true) => {
                    if k.nulls_first {
                        Ordering::Greater
                    } else {
                        Ordering::Less
                    }
                }
                (false, false) => {
                    let o = x.total_cmp(y);
                    if k.asc {
                        o
                    } else {
                        o.reverse()
                    }
                }
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        a.1.cmp(&b.1) // stable: earlier input wins ties
    }

    fn run(&mut self) -> Result<TopNState> {
        let mut input = self.input.take().expect("TopN input consumed twice");
        let cap = (2 * self.n).max(1024);
        let mut buf: Vec<(Vec<vw_common::Value>, u64)> = Vec::new();
        let mut seq = 0u64;
        let mut reserved = 0usize;
        let est_bytes = |buf: &Vec<(Vec<vw_common::Value>, u64)>| -> usize {
            // Rough accounting: per-row overhead + values (strings by length).
            buf.iter()
                .map(|(r, _)| {
                    32 + r
                        .iter()
                        .map(|v| match v {
                            vw_common::Value::Str(s) => 32 + s.len(),
                            _ => 16,
                        })
                        .sum::<usize>()
                })
                .sum()
        };
        while let Some(b) = input.next()? {
            let b = b.compact();
            for i in 0..b.rows {
                let row: Vec<vw_common::Value> = b
                    .columns
                    .iter()
                    .zip(self.schema.fields())
                    .map(|(c, f)| c.get_value(i, f.ty))
                    .collect();
                buf.push((row, seq));
                seq += 1;
            }
            if buf.len() >= cap {
                buf.sort_by(|a, b| Self::cmp_entries(&self.keys, a, b));
                buf.truncate(self.n);
            }
            let want = est_bytes(&buf);
            if want > reserved {
                if !self.mem.try_grow(want - reserved) {
                    // Budget pressure: hand everything to an external sort.
                    self.mem.shrink(reserved);
                    self.fell_back = true;
                    buf.sort_by_key(|x| x.1); // restore arrival order
                    let rows: Vec<Vec<vw_common::Value>> =
                        buf.into_iter().map(|(r, _)| r).collect();
                    let buffered = Box::new(super::BatchSource::from_rows(
                        self.schema.clone(),
                        &rows,
                        self.vector_size,
                    )?);
                    let chained: BoxedOperator = Box::new(ChainOp {
                        schema: self.schema.clone(),
                        first: Some(buffered),
                        rest: input,
                    });
                    let mut sort = VecSort::new(chained, self.keys.clone(), self.vector_size);
                    sort.set_mem_tracker(std::mem::replace(&mut self.mem, MemTracker::detached()));
                    if let Some(d) = &self.disk {
                        sort.set_spill_disk(d.clone());
                    }
                    if let Some(t) = &self.trace {
                        sort.set_trace(t.clone());
                    }
                    if let Some(w) = &self.waits {
                        sort.set_waits(w.clone());
                    }
                    let limited = VecLimit::new(
                        Box::new(sort),
                        self.offset as u64,
                        (self.n - self.offset) as u64,
                    );
                    return Ok(TopNState::Fallback(Box::new(limited)));
                }
                reserved = want;
            }
        }
        buf.sort_by(|a, b| Self::cmp_entries(&self.keys, a, b));
        buf.truncate(self.n);
        let rows: Vec<Vec<vw_common::Value>> =
            buf.into_iter().skip(self.offset).map(|(r, _)| r).collect();
        let mut out = Vec::new();
        for chunk in rows.chunks(self.vector_size) {
            out.push(Batch::from_rows(&self.schema, chunk)?);
        }
        out.reverse();
        Ok(TopNState::InMem(out))
    }
}

/// Emit a buffered prefix, then drain an inner operator (TopN's fallback
/// feed: the rows it had already absorbed, followed by the rest of the
/// input stream).
struct ChainOp {
    schema: Schema,
    first: Option<BoxedOperator>,
    rest: BoxedOperator,
}

impl Operator for ChainOp {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if let Some(f) = &mut self.first {
            if let Some(b) = f.next()? {
                return Ok(Some(b));
            }
            self.first = None;
        }
        self.rest.next()
    }
}

impl Operator for TopN {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if matches!(self.state, TopNState::Pending) {
            self.state = self.run()?;
        }
        match &mut self.state {
            TopNState::Pending => unreachable!(),
            TopNState::InMem(out) => Ok(out.pop()),
            TopNState::Fallback(op) => op.next(),
        }
    }

    fn profile_extras(&self) -> Vec<(&'static str, u64)> {
        let mut ex = vec![("topn", 1u64)];
        if self.fell_back {
            ex.push(("topn_fallback", 1));
        } else {
            ex.push(("peak_bytes", self.mem.peak()));
        }
        ex
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemBudget;
    use crate::operators::{collect_rows, BatchSource};
    use vw_common::{DataType, Field, Value};

    fn source() -> BoxedOperator {
        let schema = Schema::new(vec![
            Field::new("a", DataType::I64),
            Field::nullable("s", DataType::Str),
        ]);
        let rows = vec![
            vec![Value::I64(3), Value::Str("c".into())],
            vec![Value::I64(1), Value::Str("b".into())],
            vec![Value::I64(1), Value::Null],
            vec![Value::I64(2), Value::Str("a".into())],
        ];
        Box::new(BatchSource::from_rows(schema, &rows, 2).unwrap())
    }

    #[test]
    fn single_key_ascending() {
        let mut s = VecSort::new(source(), vec![SortKey::asc(0)], 1024);
        let rows = collect_rows(&mut s).unwrap();
        let keys: Vec<Value> = rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(
            keys,
            vec![Value::I64(1), Value::I64(1), Value::I64(2), Value::I64(3)]
        );
    }

    #[test]
    fn multi_key_with_nulls_first() {
        let mut s = VecSort::new(source(), vec![SortKey::asc(0), SortKey::asc(1)], 1024);
        let rows = collect_rows(&mut s).unwrap();
        // a=1 group: NULL sorts before "b"
        assert_eq!(rows[0], vec![Value::I64(1), Value::Null]);
        assert_eq!(rows[1], vec![Value::I64(1), Value::Str("b".into())]);
    }

    #[test]
    fn descending() {
        let mut s = VecSort::new(source(), vec![SortKey::desc(0)], 1024);
        let rows = collect_rows(&mut s).unwrap();
        assert_eq!(rows[0][0], Value::I64(3));
        assert_eq!(rows[3][0], Value::I64(1));
    }

    #[test]
    fn chunked_output_preserves_order() {
        let schema = Schema::new(vec![Field::new("x", DataType::I64)]);
        let rows: Vec<Vec<Value>> = (0..50).rev().map(|i| vec![Value::I64(i)]).collect();
        let src = Box::new(BatchSource::from_rows(schema, &rows, 8).unwrap());
        let mut s = VecSort::new(src, vec![SortKey::asc(0)], 7);
        let out = collect_rows(&mut s).unwrap();
        let keys: Vec<i64> = out
            .iter()
            .map(|r| match r[0] {
                Value::I64(k) => k,
                _ => panic!(),
            })
            .collect();
        assert_eq!(keys, (0..50).collect::<Vec<i64>>());
    }

    #[test]
    fn empty_input() {
        let schema = Schema::new(vec![Field::new("x", DataType::I64)]);
        let src = Box::new(BatchSource::from_rows(schema, &[], 8).unwrap());
        let mut s = VecSort::new(src, vec![SortKey::asc(0)], 8);
        assert!(s.next().unwrap().is_none());
    }

    /// External sort under a tiny budget matches the in-memory sort exactly,
    /// including the stable input-order tiebreak on duplicate keys.
    #[test]
    fn external_sort_matches_in_memory() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::I64),
            Field::nullable("v", DataType::Str),
        ]);
        let rows: Vec<Vec<Value>> = (0..500)
            .map(|i| {
                let k = (i * 37) % 11;
                let v = if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Str(format!("v{}", i))
                };
                vec![Value::I64(k), v]
            })
            .collect();
        let keys = vec![SortKey::asc(0)];

        let src = Box::new(BatchSource::from_rows(schema.clone(), &rows, 32).unwrap());
        let mut unbounded = VecSort::new(src, keys.clone(), 64);
        let want = collect_rows(&mut unbounded).unwrap();

        let src = Box::new(BatchSource::from_rows(schema, &rows, 32).unwrap());
        let mut tiny = VecSort::new(src, keys, 64);
        tiny.set_mem_tracker(MemTracker::new(Arc::new(MemBudget::new(Some(2048)))));
        let got = collect_rows(&mut tiny).unwrap();

        assert_eq!(got, want, "spilled sort must match in-memory sort exactly");
        let extras: std::collections::BTreeMap<_, _> = tiny.profile_extras().into_iter().collect();
        assert!(extras["spill_runs"] >= 2, "tiny budget must produce runs");
        assert!(extras["spill_bytes"] > 0);
    }

    /// Descending + multi-key external merge also matches.
    #[test]
    fn external_sort_multi_key_desc() {
        let schema = Schema::new(vec![
            Field::nullable("a", DataType::I64),
            Field::new("b", DataType::F64),
        ]);
        let rows: Vec<Vec<Value>> = (0..300)
            .map(|i| {
                let a = if i % 13 == 0 {
                    Value::Null
                } else {
                    Value::I64((i % 5) as i64)
                };
                vec![a, Value::F64((i % 17) as f64 * 0.25)]
            })
            .collect();
        let keys = vec![SortKey::desc(0), SortKey::asc(1)];
        let src = Box::new(BatchSource::from_rows(schema.clone(), &rows, 16).unwrap());
        let mut unbounded = VecSort::new(src, keys.clone(), 50);
        let want = collect_rows(&mut unbounded).unwrap();

        let src = Box::new(BatchSource::from_rows(schema, &rows, 16).unwrap());
        let mut tiny = VecSort::new(src, keys, 50);
        tiny.set_mem_tracker(MemTracker::new(Arc::new(MemBudget::new(Some(1024)))));
        let got = collect_rows(&mut tiny).unwrap();
        assert_eq!(got, want);
    }

    fn topn_rows() -> (Schema, Vec<Vec<Value>>) {
        let schema = Schema::new(vec![
            Field::nullable("k", DataType::I64),
            Field::new("v", DataType::Str),
        ]);
        let rows: Vec<Vec<Value>> = (0..400)
            .map(|i| {
                let k = if i % 19 == 0 {
                    Value::Null
                } else {
                    Value::I64((i * 31) % 13)
                };
                vec![k, Value::Str(format!("r{}", i))]
            })
            .collect();
        (schema, rows)
    }

    fn sort_then_limit(
        schema: Schema,
        rows: &[Vec<Value>],
        keys: Vec<SortKey>,
        offset: u64,
        fetch: u64,
    ) -> Vec<Vec<Value>> {
        let src = Box::new(BatchSource::from_rows(schema, rows, 32).unwrap());
        let sort = VecSort::new(src, keys, 64);
        let mut lim = VecLimit::new(Box::new(sort), offset, fetch);
        collect_rows(&mut lim).unwrap()
    }

    /// TopN matches Sort+Limit exactly, including the stable tiebreak on
    /// duplicate keys and offset handling.
    #[test]
    fn topn_matches_sort_plus_limit() {
        let (schema, rows) = topn_rows();
        for (keys, offset, fetch) in [
            (vec![SortKey::asc(0)], 0u64, 25u64),
            (vec![SortKey::desc(0)], 7, 40),
            (vec![SortKey::asc(0)], 390, 50), // offset past most of the input
        ] {
            let want = sort_then_limit(schema.clone(), &rows, keys.clone(), offset, fetch);
            let src = Box::new(BatchSource::from_rows(schema.clone(), &rows, 32).unwrap());
            let mut topn = TopN::new(src, keys.clone(), offset, fetch, 64);
            let got = collect_rows(&mut topn).unwrap();
            assert_eq!(
                got, want,
                "keys={:?} offset={} fetch={}",
                keys, offset, fetch
            );
            let extras: std::collections::BTreeMap<_, _> =
                topn.profile_extras().into_iter().collect();
            assert_eq!(extras["topn"], 1);
            assert!(!extras.contains_key("topn_fallback"));
        }
    }

    /// NULLS LAST keys flow through TopN's comparator too.
    #[test]
    fn topn_respects_nulls_last() {
        let (schema, rows) = topn_rows();
        let keys = vec![SortKey {
            col: 0,
            asc: true,
            nulls_first: false,
        }];
        let want = sort_then_limit(schema.clone(), &rows, keys.clone(), 0, 395);
        let src = Box::new(BatchSource::from_rows(schema, &rows, 32).unwrap());
        let mut topn = TopN::new(src, keys, 0, 395, 64);
        let got = collect_rows(&mut topn).unwrap();
        assert_eq!(got, want);
        assert!(got.iter().take(300).all(|r| r[0] != Value::Null));
    }

    /// Under a budget too small for the heap buffer, TopN falls back to the
    /// external sort + limit pipeline and still matches exactly.
    #[test]
    fn topn_fallback_under_budget_matches() {
        let (schema, rows) = topn_rows();
        let keys = vec![SortKey::asc(0)];
        let want = sort_then_limit(schema.clone(), &rows, keys.clone(), 5, 30);
        let src = Box::new(BatchSource::from_rows(schema, &rows, 32).unwrap());
        let mut topn = TopN::new(src, keys, 5, 30, 64);
        topn.set_mem_tracker(MemTracker::new(Arc::new(MemBudget::new(Some(512)))));
        let got = collect_rows(&mut topn).unwrap();
        assert_eq!(got, want, "fallback path must match sort+limit");
        let extras: std::collections::BTreeMap<_, _> = topn.profile_extras().into_iter().collect();
        assert_eq!(extras["topn_fallback"], 1);
    }

    /// fetch = 0 and empty input are both fine.
    #[test]
    fn topn_degenerate_cases() {
        let schema = Schema::new(vec![Field::new("x", DataType::I64)]);
        let src = Box::new(BatchSource::from_rows(schema.clone(), &[], 8).unwrap());
        let mut empty = TopN::new(src, vec![SortKey::asc(0)], 0, 10, 8);
        assert!(collect_rows(&mut empty).unwrap().is_empty());

        let rows: Vec<Vec<Value>> = (0..20).map(|i| vec![Value::I64(i)]).collect();
        let src = Box::new(BatchSource::from_rows(schema, &rows, 8).unwrap());
        let mut zero = TopN::new(src, vec![SortKey::asc(0)], 0, 0, 8);
        assert!(collect_rows(&mut zero).unwrap().is_empty());
    }
}
