//! Vectorized sort: drain, order indexes by key columns, emit gathered
//! batches. NULLs order first on ascending keys (consistent with
//! `Value::total_cmp`, which all engines share).

use crate::batch::Batch;
use vw_common::{Result, Schema};
use vw_plan::SortKey;

use super::{drain_to_single_batch, lanes_cmp, BoxedOperator, Operator};

/// Sort operator.
pub struct VecSort {
    input: BoxedOperator,
    keys: Vec<SortKey>,
    schema: Schema,
    vector_size: usize,
    output: Option<Vec<Batch>>,
}

impl VecSort {
    pub fn new(input: BoxedOperator, keys: Vec<SortKey>, vector_size: usize) -> VecSort {
        let schema = input.schema().clone();
        VecSort {
            input,
            keys,
            schema,
            vector_size: vector_size.max(1),
            output: None,
        }
    }

    fn run(&mut self) -> Result<Vec<Batch>> {
        let batch = drain_to_single_batch(self.input.as_mut())?;
        let mut idx: Vec<u32> = (0..batch.rows as u32).collect();
        let keys = self.keys.clone();
        let cols = &batch.columns;
        idx.sort_by(|&a, &b| {
            for k in &keys {
                let c = &cols[k.col];
                let ord = lanes_cmp(c, a as usize, c, b as usize);
                let ord = if k.asc { ord } else { ord.reverse() };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            // stable tiebreak on input order for determinism
            a.cmp(&b)
        });
        let mut out = Vec::new();
        for chunk in idx.chunks(self.vector_size) {
            let columns = batch.columns.iter().map(|c| c.gather(chunk)).collect();
            out.push(Batch::new(columns));
        }
        out.reverse();
        Ok(out)
    }
}

impl Operator for VecSort {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.output.is_none() {
            self.output = Some(self.run()?);
        }
        Ok(self.output.as_mut().unwrap().pop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{collect_rows, BatchSource};
    use vw_common::{DataType, Field, Value};

    fn source() -> BoxedOperator {
        let schema = Schema::new(vec![
            Field::new("a", DataType::I64),
            Field::nullable("s", DataType::Str),
        ]);
        let rows = vec![
            vec![Value::I64(3), Value::Str("c".into())],
            vec![Value::I64(1), Value::Str("b".into())],
            vec![Value::I64(1), Value::Null],
            vec![Value::I64(2), Value::Str("a".into())],
        ];
        Box::new(BatchSource::from_rows(schema, &rows, 2).unwrap())
    }

    #[test]
    fn single_key_ascending() {
        let mut s = VecSort::new(source(), vec![SortKey { col: 0, asc: true }], 1024);
        let rows = collect_rows(&mut s).unwrap();
        let keys: Vec<Value> = rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(
            keys,
            vec![Value::I64(1), Value::I64(1), Value::I64(2), Value::I64(3)]
        );
    }

    #[test]
    fn multi_key_with_nulls_first() {
        let mut s = VecSort::new(
            source(),
            vec![SortKey { col: 0, asc: true }, SortKey { col: 1, asc: true }],
            1024,
        );
        let rows = collect_rows(&mut s).unwrap();
        // a=1 group: NULL sorts before "b"
        assert_eq!(rows[0], vec![Value::I64(1), Value::Null]);
        assert_eq!(rows[1], vec![Value::I64(1), Value::Str("b".into())]);
    }

    #[test]
    fn descending() {
        let mut s = VecSort::new(source(), vec![SortKey { col: 0, asc: false }], 1024);
        let rows = collect_rows(&mut s).unwrap();
        assert_eq!(rows[0][0], Value::I64(3));
        assert_eq!(rows[3][0], Value::I64(1));
    }

    #[test]
    fn chunked_output_preserves_order() {
        let schema = Schema::new(vec![Field::new("x", DataType::I64)]);
        let rows: Vec<Vec<Value>> = (0..50).rev().map(|i| vec![Value::I64(i)]).collect();
        let src = Box::new(BatchSource::from_rows(schema, &rows, 8).unwrap());
        let mut s = VecSort::new(src, vec![SortKey { col: 0, asc: true }], 7);
        let out = collect_rows(&mut s).unwrap();
        let keys: Vec<i64> = out
            .iter()
            .map(|r| match r[0] {
                Value::I64(k) => k,
                _ => panic!(),
            })
            .collect();
        assert_eq!(keys, (0..50).collect::<Vec<i64>>());
    }

    #[test]
    fn empty_input() {
        let schema = Schema::new(vec![Field::new("x", DataType::I64)]);
        let src = Box::new(BatchSource::from_rows(schema, &[], 8).unwrap());
        let mut s = VecSort::new(src, vec![SortKey { col: 0, asc: true }], 8);
        assert!(s.next().unwrap().is_none());
    }
}
