//! The vectorized projection: evaluates output expressions per batch.
//!
//! Compacts its input first (string-producing kernels want dense lanes), so
//! a `Filter → Project` pipeline materializes survivors exactly once.

use crate::batch::Batch;
use crate::vexpr::ExprEvaluator;
use vw_common::{Field, Result, Schema};
use vw_plan::Expr;

use super::{BoxedOperator, Operator};

/// Projection operator.
pub struct VecProject {
    input: BoxedOperator,
    exprs: Vec<ExprEvaluator>,
    schema: Schema,
}

impl VecProject {
    pub fn new(
        input: BoxedOperator,
        exprs: Vec<(Expr, String)>,
        naive_nulls: bool,
    ) -> Result<VecProject> {
        let in_schema = input.schema().clone();
        let mut evaluators = Vec::with_capacity(exprs.len());
        let mut fields = Vec::with_capacity(exprs.len());
        for (e, name) in exprs {
            let nullable = e.nullable(&in_schema);
            let ev = ExprEvaluator::new(e, &in_schema, naive_nulls)?;
            fields.push(Field {
                name,
                ty: ev.output_type(),
                nullable,
            });
            evaluators.push(ev);
        }
        Ok(VecProject {
            input,
            exprs: evaluators,
            schema: Schema::new(fields),
        })
    }
}

impl Operator for VecProject {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let Some(batch) = self.input.next()? else {
            return Ok(None);
        };
        let dense = batch.compact();
        let mut columns = Vec::with_capacity(self.exprs.len());
        for ev in &self.exprs {
            columns.push(ev.eval(&dense)?);
        }
        let mut out = Batch::new(columns);
        out.rows = dense.rows; // zero-column projections keep row counts
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{collect_rows, BatchSource, VecFilter};
    use vw_common::{DataType, Value};
    use vw_plan::BinOp;

    fn source() -> BoxedOperator {
        let schema = Schema::new(vec![
            Field::new("a", DataType::I64),
            Field::new("b", DataType::F64),
        ]);
        let rows: Vec<Vec<Value>> = (0..10)
            .map(|i| vec![Value::I64(i), Value::F64(i as f64 / 2.0)])
            .collect();
        Box::new(BatchSource::from_rows(schema, &rows, 4).unwrap())
    }

    #[test]
    fn computes_expressions() {
        let mut p = VecProject::new(
            source(),
            vec![
                (
                    Expr::binary(BinOp::Mul, Expr::col(0), Expr::lit(Value::I64(10))),
                    "a10".into(),
                ),
                (Expr::col(1), "b".into()),
            ],
            false,
        )
        .unwrap();
        assert_eq!(p.schema().field(0).name, "a10");
        assert_eq!(p.schema().field(0).ty, DataType::I64);
        let rows = collect_rows(&mut p).unwrap();
        assert_eq!(rows[3], vec![Value::I64(30), Value::F64(1.5)]);
    }

    #[test]
    fn compacts_filtered_input() {
        let f = VecFilter::new(
            source(),
            Expr::binary(BinOp::Ge, Expr::col(0), Expr::lit(Value::I64(8))),
            false,
        )
        .unwrap();
        let mut p = VecProject::new(
            Box::new(f),
            vec![(
                Expr::binary(BinOp::Add, Expr::col(0), Expr::lit(Value::I64(1))),
                "a1".into(),
            )],
            false,
        )
        .unwrap();
        let rows = collect_rows(&mut p).unwrap();
        assert_eq!(rows, vec![vec![Value::I64(9)], vec![Value::I64(10)]]);
    }
}
