//! Vectorized hash aggregation, with the partial/final split used by the
//! Volcano parallelizer (see `vw_plan::rewrite::parallel`).
//!
//! Group lookup is allocation-free on the hot path: hash lanes directly from
//! the key columns, verify candidates by lane comparison, and only when a
//! *new* group is born are its key values materialized. Aggregate arguments
//! are evaluated vector-at-a-time with the batch's selection vector, so the
//! classic `Scan → Filter → Aggregate` pipeline never materializes survivors.

use crate::batch::{Batch, ExecVector};
use crate::vexpr::ExprEvaluator;
use vw_common::hash::FxHashMap;
use vw_common::{DataType, Field, Result, Schema, Value, VwError};
use vw_plan::plan::AggPhase;
use vw_plan::rewrite::parallel::partial_avg_count_columns;
use vw_plan::{AggExpr, AggFunc};
use vw_storage::ColumnData;

use super::{hash_lane, BoxedOperator, Operator};

/// One aggregate's running state.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    SumI { sum: i64, seen: bool },
    SumF { sum: f64, seen: bool },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, count: i64 },
}

impl AggState {
    fn new(func: AggFunc, arg_ty: Option<DataType>) -> AggState {
        match func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => match arg_ty {
                Some(DataType::F64) => AggState::SumF {
                    sum: 0.0,
                    seen: false,
                },
                _ => AggState::SumI {
                    sum: 0,
                    seen: false,
                },
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Single-phase update from one lane of the argument vector.
    fn update(&mut self, arg: Option<(&ExecVector, usize, DataType)>) -> Result<()> {
        match self {
            AggState::Count(n) => match arg {
                None => *n += 1, // COUNT(*)
                Some((v, i, _)) => {
                    if !v.is_null(i) {
                        *n += 1;
                    }
                }
            },
            AggState::SumI { sum, seen } => {
                let (v, i, _) = arg.ok_or_else(|| VwError::Exec("SUM needs arg".into()))?;
                if !v.is_null(i) {
                    *sum = sum.wrapping_add(lane_i64(v, i)?);
                    *seen = true;
                }
            }
            AggState::SumF { sum, seen } => {
                let (v, i, _) = arg.ok_or_else(|| VwError::Exec("SUM needs arg".into()))?;
                if !v.is_null(i) {
                    *sum += lane_f64(v, i)?;
                    *seen = true;
                }
            }
            AggState::Min(cur) => {
                let (v, i, ty) = arg.ok_or_else(|| VwError::Exec("MIN needs arg".into()))?;
                if !v.is_null(i) {
                    let val = v.get_value(i, ty);
                    if cur.as_ref().is_none_or(|c| val.total_cmp(c).is_lt()) {
                        *cur = Some(val);
                    }
                }
            }
            AggState::Max(cur) => {
                let (v, i, ty) = arg.ok_or_else(|| VwError::Exec("MAX needs arg".into()))?;
                if !v.is_null(i) {
                    let val = v.get_value(i, ty);
                    if cur.as_ref().is_none_or(|c| val.total_cmp(c).is_gt()) {
                        *cur = Some(val);
                    }
                }
            }
            AggState::Avg { sum, count } => {
                let (v, i, _) = arg.ok_or_else(|| VwError::Exec("AVG needs arg".into()))?;
                if !v.is_null(i) {
                    *sum += lane_f64(v, i)?;
                    *count += 1;
                }
            }
        }
        Ok(())
    }

    /// Final-phase update: combine a partial value (and hidden count for AVG).
    fn combine(
        &mut self,
        arg: (&ExecVector, usize, DataType),
        hidden_count: Option<(&ExecVector, usize)>,
    ) -> Result<()> {
        let (v, i, ty) = arg;
        if v.is_null(i) {
            return Ok(());
        }
        match self {
            AggState::Count(n) => *n += lane_i64(v, i)?,
            AggState::SumI { sum, seen } => {
                *sum = sum.wrapping_add(lane_i64(v, i)?);
                *seen = true;
            }
            AggState::SumF { sum, seen } => {
                *sum += lane_f64(v, i)?;
                *seen = true;
            }
            AggState::Min(cur) => {
                let val = v.get_value(i, ty);
                if cur.as_ref().is_none_or(|c| val.total_cmp(c).is_lt()) {
                    *cur = Some(val);
                }
            }
            AggState::Max(cur) => {
                let val = v.get_value(i, ty);
                if cur.as_ref().is_none_or(|c| val.total_cmp(c).is_gt()) {
                    *cur = Some(val);
                }
            }
            AggState::Avg { sum, count } => {
                *sum += lane_f64(v, i)?;
                let (hc, hi) =
                    hidden_count.ok_or_else(|| VwError::Exec("AVG final needs count".into()))?;
                *count += lane_i64(hc, hi)?;
            }
        }
        Ok(())
    }

    /// Finish into the output value for the given phase.
    fn finish(&self, phase: AggPhase) -> Value {
        match self {
            AggState::Count(n) => Value::I64(*n),
            AggState::SumI { sum, seen } => {
                if *seen {
                    Value::I64(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::SumF { sum, seen } => {
                if *seen {
                    Value::F64(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else if phase == AggPhase::Partial {
                    Value::F64(*sum) // partial carries raw sum + hidden count
                } else {
                    Value::F64(*sum / *count as f64)
                }
            }
        }
    }

    /// The hidden count value (partial AVG output).
    fn hidden_count(&self) -> Value {
        match self {
            AggState::Avg { count, .. } => Value::I64(*count),
            _ => Value::Null,
        }
    }
}

#[inline]
fn lane_i64(v: &ExecVector, i: usize) -> Result<i64> {
    match &v.data {
        ColumnData::I64(x) => Ok(x[i]),
        ColumnData::I32(x) => Ok(x[i] as i64),
        ColumnData::Bool(x) => Ok(x[i] as i64),
        other => Err(VwError::Exec(format!(
            "integer aggregate over {}",
            other.type_name()
        ))),
    }
}

#[inline]
fn lane_f64(v: &ExecVector, i: usize) -> Result<f64> {
    match &v.data {
        ColumnData::F64(x) => Ok(x[i]),
        ColumnData::I64(x) => Ok(x[i] as f64),
        ColumnData::I32(x) => Ok(x[i] as f64),
        other => Err(VwError::Exec(format!(
            "numeric aggregate over {}",
            other.type_name()
        ))),
    }
}

/// Hash aggregation operator.
pub struct HashAggregate {
    input: BoxedOperator,
    group_by: Vec<usize>,
    aggs: Vec<AggExpr>,
    arg_evals: Vec<Option<ExprEvaluator>>,
    arg_types: Vec<Option<DataType>>,
    phase: AggPhase,
    out_schema: Schema,
    in_schema: Schema,
    vector_size: usize,
    /// Columns in the (partial) input carrying hidden AVG counts:
    /// `(agg index, input column)`.
    hidden_in: Vec<(usize, usize)>,
    done: bool,
    output: Vec<Batch>,
}

impl HashAggregate {
    pub fn new(
        input: BoxedOperator,
        group_by: Vec<usize>,
        aggs: Vec<AggExpr>,
        phase: AggPhase,
        vector_size: usize,
        naive_nulls: bool,
    ) -> Result<HashAggregate> {
        let in_schema = input.schema().clone();
        let mut arg_evals = Vec::with_capacity(aggs.len());
        let mut arg_types = Vec::with_capacity(aggs.len());
        for a in &aggs {
            match &a.arg {
                Some(e) => {
                    let ev = ExprEvaluator::new(e.clone(), &in_schema, naive_nulls)?;
                    arg_types.push(Some(ev.output_type()));
                    arg_evals.push(Some(ev));
                }
                None => {
                    arg_evals.push(None);
                    arg_types.push(None);
                }
            }
        }
        let mut fields: Vec<Field> = group_by
            .iter()
            .map(|&g| in_schema.field(g).clone())
            .collect();
        for (a, ty) in aggs.iter().zip(&arg_types) {
            let out_ty = output_type(a.func, *ty, phase);
            fields.push(Field {
                name: a.name.clone(),
                ty: out_ty,
                nullable: true,
            });
        }
        if phase == AggPhase::Partial {
            for a in &aggs {
                if a.func == AggFunc::Avg {
                    fields.push(Field::new(format!("__{}_count", a.name), DataType::I64));
                }
            }
        }
        // For the Final phase, locate hidden count columns in the partial
        // input layout.
        let hidden_in = if phase == AggPhase::Final {
            partial_avg_count_columns(group_by.len(), &aggs)
        } else {
            Vec::new()
        };
        Ok(HashAggregate {
            input,
            group_by,
            aggs,
            arg_evals,
            arg_types,
            phase,
            out_schema: Schema::new(fields),
            in_schema,
            vector_size: vector_size.max(1),
            hidden_in,
            done: false,
            output: Vec::new(),
        })
    }

    fn run(&mut self) -> Result<()> {
        // group hash table: hash -> group ids; group id -> (keys, states)
        let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut group_keys: Vec<Vec<Value>> = Vec::new();
        let mut states: Vec<Vec<AggState>> = Vec::new();
        let key_types: Vec<DataType> = self
            .group_by
            .iter()
            .map(|&g| self.in_schema.field(g).ty)
            .collect();

        while let Some(batch) = self.input.next()? {
            // Evaluate aggregate argument expressions with the selection.
            let args: Vec<Option<ExecVector>> = self
                .arg_evals
                .iter()
                .map(|ev| ev.as_ref().map(|e| e.eval(&batch)).transpose())
                .collect::<Result<_>>()?;
            let sel_owned: Vec<u32>;
            let lanes: &[u32] = match &batch.sel {
                Some(s) => s,
                None => {
                    sel_owned = (0..batch.rows as u32).collect();
                    &sel_owned
                }
            };
            for &lane in lanes {
                let i = lane as usize;
                // group lookup
                let mut h = 0u64;
                for &g in &self.group_by {
                    h = hash_lane(&batch.columns[g], i, h);
                }
                let bucket = buckets.entry(h).or_default();
                let mut gid: Option<u32> = None;
                for &cand in bucket.iter() {
                    let keys = &group_keys[cand as usize];
                    let ok = self
                        .group_by
                        .iter()
                        .enumerate()
                        .all(|(k, &g)| value_lane_eq(&keys[k], &batch.columns[g], i));
                    if ok {
                        gid = Some(cand);
                        break;
                    }
                }
                let gid = match gid {
                    Some(g) => g as usize,
                    None => {
                        let id = group_keys.len();
                        bucket.push(id as u32);
                        group_keys.push(
                            self.group_by
                                .iter()
                                .zip(&key_types)
                                // Store the canonical key (folds -0.0 to 0.0,
                                // canonicalizes NaN) so the emitted group key
                                // matches the row-engine's normalized keys.
                                .map(|(&g, &ty)| batch.columns[g].get_value(i, ty).normalize_key())
                                .collect(),
                        );
                        states.push(
                            self.aggs
                                .iter()
                                .zip(&self.arg_types)
                                .map(|(a, ty)| AggState::new(a.func, *ty))
                                .collect(),
                        );
                        id
                    }
                };
                // update states
                for (k, st) in states[gid].iter_mut().enumerate() {
                    if self.phase == AggPhase::Final {
                        let arg = args[k]
                            .as_ref()
                            .ok_or_else(|| VwError::Exec("final agg needs arg".into()))?;
                        let hidden = self
                            .hidden_in
                            .iter()
                            .find(|(ai, _)| *ai == k)
                            .map(|(_, col)| (&batch.columns[*col], i));
                        st.combine((arg, i, self.arg_types[k].unwrap_or(DataType::F64)), hidden)?;
                    } else {
                        let arg = args[k]
                            .as_ref()
                            .map(|v| (v, i, self.arg_types[k].unwrap_or(DataType::I64)));
                        st.update(arg)?;
                    }
                }
            }
        }

        // Scalar aggregate over empty input still yields one row.
        if group_keys.is_empty() && self.group_by.is_empty() {
            group_keys.push(vec![]);
            states.push(
                self.aggs
                    .iter()
                    .zip(&self.arg_types)
                    .map(|(a, ty)| AggState::new(a.func, *ty))
                    .collect(),
            );
        }

        // Emit result rows chunked at vector size.
        let schema = self.out_schema.clone();
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(group_keys.len());
        for (keys, sts) in group_keys.into_iter().zip(&states) {
            let mut row = keys;
            for st in sts {
                row.push(st.finish(self.phase));
            }
            if self.phase == AggPhase::Partial {
                for (k, a) in self.aggs.iter().enumerate() {
                    if a.func == AggFunc::Avg {
                        row.push(sts[k].hidden_count());
                    }
                }
            }
            rows.push(row);
        }
        for chunk in rows.chunks(self.vector_size) {
            self.output.push(Batch::from_rows(&schema, chunk)?);
        }
        self.output.reverse(); // pop() from the back in order
        Ok(())
    }
}

fn output_type(func: AggFunc, arg_ty: Option<DataType>, _phase: AggPhase) -> DataType {
    match func {
        AggFunc::CountStar | AggFunc::Count => DataType::I64,
        AggFunc::Avg => DataType::F64,
        AggFunc::Sum => match arg_ty {
            Some(DataType::F64) => DataType::F64,
            _ => DataType::I64,
        },
        AggFunc::Min | AggFunc::Max => arg_ty.unwrap_or(DataType::I64),
    }
}

/// Allocation-free comparison between a stored key `Value` and a column lane.
fn value_lane_eq(key: &Value, col: &ExecVector, i: usize) -> bool {
    if col.is_null(i) {
        return key.is_null();
    }
    match (key, &col.data) {
        (Value::Null, _) => false,
        (Value::Bool(k), ColumnData::Bool(v)) => *k == v[i],
        (Value::I32(k), ColumnData::I32(v)) => *k == v[i],
        (Value::Date(k), ColumnData::I32(v)) => *k == v[i],
        (Value::I64(k), ColumnData::I64(v)) => *k == v[i],
        // Stored keys are already normalized; normalize the probe side so
        // -0.0 matches the 0.0 group and NaN matches the NaN group.
        (Value::F64(k), ColumnData::F64(v)) => {
            k.to_bits() == vw_common::normalize_key_f64(v[i]).to_bits()
        }
        (Value::Str(k), ColumnData::Str(v)) => k.as_bytes() == v.get_bytes(i),
        _ => false,
    }
}

impl Operator for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if !self.done {
            self.run()?;
            self.done = true;
        }
        Ok(self.output.pop())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{collect_rows, BatchSource};
    use vw_plan::Expr;

    fn source(rows: Vec<Vec<Value>>) -> BoxedOperator {
        let schema = Schema::new(vec![
            Field::new("grp", DataType::Str),
            Field::nullable("x", DataType::I64),
            Field::new("f", DataType::F64),
        ]);
        Box::new(BatchSource::from_rows(schema, &rows, 3).unwrap())
    }

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Str("a".into()), Value::I64(1), Value::F64(0.5)],
            vec![Value::Str("b".into()), Value::I64(2), Value::F64(1.0)],
            vec![Value::Str("a".into()), Value::I64(3), Value::F64(1.5)],
            vec![Value::Str("a".into()), Value::Null, Value::F64(2.0)],
            vec![Value::Str("b".into()), Value::I64(4), Value::F64(2.5)],
        ]
    }

    fn agg(func: AggFunc, arg: Option<Expr>, name: &str) -> AggExpr {
        AggExpr {
            func,
            arg,
            name: name.into(),
        }
    }

    fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        rows
    }

    #[test]
    fn grouped_aggregates() {
        let mut op = HashAggregate::new(
            source(rows()),
            vec![0],
            vec![
                agg(AggFunc::CountStar, None, "n"),
                agg(AggFunc::Count, Some(Expr::col(1)), "nx"),
                agg(AggFunc::Sum, Some(Expr::col(1)), "sx"),
                agg(AggFunc::Avg, Some(Expr::col(1)), "ax"),
                agg(AggFunc::Min, Some(Expr::col(2)), "mn"),
                agg(AggFunc::Max, Some(Expr::col(2)), "mx"),
            ],
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        let out = sorted(collect_rows(&mut op).unwrap());
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0],
            vec![
                Value::Str("a".into()),
                Value::I64(3),
                Value::I64(2),
                Value::I64(4),
                Value::F64(2.0),
                Value::F64(0.5),
                Value::F64(2.0),
            ]
        );
        assert_eq!(
            out[1],
            vec![
                Value::Str("b".into()),
                Value::I64(2),
                Value::I64(2),
                Value::I64(6),
                Value::F64(3.0),
                Value::F64(1.0),
                Value::F64(2.5),
            ]
        );
    }

    #[test]
    fn f64_group_keys_fold_signed_zero_and_nan() {
        // Group by the f64 column: 0.0 and -0.0 are SQL-equal and must form
        // one group; the two distinct NaN payloads must form one group too.
        let payload_nan = f64::from_bits(0x7ff8_0000_0000_0001);
        let rows = vec![
            vec![Value::Str("a".into()), Value::I64(1), Value::F64(0.0)],
            vec![Value::Str("a".into()), Value::I64(2), Value::F64(-0.0)],
            vec![Value::Str("a".into()), Value::I64(3), Value::F64(f64::NAN)],
            vec![
                Value::Str("a".into()),
                Value::I64(4),
                Value::F64(payload_nan),
            ],
            vec![Value::Str("a".into()), Value::I64(5), Value::F64(1.0)],
        ];
        let mut op = HashAggregate::new(
            source(rows),
            vec![2],
            vec![agg(AggFunc::CountStar, None, "n")],
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        let mut out = collect_rows(&mut op).unwrap();
        out.sort_by(|a, b| a[1].total_cmp(&b[1]));
        assert_eq!(out.len(), 3, "expected 3 groups, got {:?}", out);
        // counts sorted: 1 (1.0), 2 (zero group), 2 (NaN group)
        let counts: Vec<Value> = out.iter().map(|r| r[1].clone()).collect();
        assert_eq!(counts, vec![Value::I64(1), Value::I64(2), Value::I64(2)]);
        // The zero group's emitted key is canonical +0.0.
        let zero = out
            .iter()
            .find(|r| matches!(r[0], Value::F64(f) if f == 0.0))
            .expect("zero group present");
        assert_eq!(zero[0], Value::F64(0.0), "key must be normalized to +0.0");
        assert_eq!(zero[1], Value::I64(2));
    }

    #[test]
    fn scalar_aggregate_empty_input() {
        let mut op = HashAggregate::new(
            source(vec![]),
            vec![],
            vec![
                agg(AggFunc::CountStar, None, "n"),
                agg(AggFunc::Sum, Some(Expr::col(1)), "s"),
            ],
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        let out = collect_rows(&mut op).unwrap();
        assert_eq!(out, vec![vec![Value::I64(0), Value::Null]]);
    }

    #[test]
    fn grouped_aggregate_empty_input_no_rows() {
        let mut op = HashAggregate::new(
            source(vec![]),
            vec![0],
            vec![agg(AggFunc::CountStar, None, "n")],
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        assert!(collect_rows(&mut op).unwrap().is_empty());
    }

    #[test]
    fn computed_argument_expressions() {
        // SUM(x * 2)
        let mut op = HashAggregate::new(
            source(rows()),
            vec![],
            vec![agg(
                AggFunc::Sum,
                Some(Expr::binary(
                    vw_plan::BinOp::Mul,
                    Expr::col(1),
                    Expr::lit(Value::I64(2)),
                )),
                "s2",
            )],
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        let out = collect_rows(&mut op).unwrap();
        assert_eq!(out, vec![vec![Value::I64(20)]]);
    }

    #[test]
    fn partial_final_roundtrip_equals_single() {
        let aggs = vec![
            agg(AggFunc::CountStar, None, "n"),
            agg(AggFunc::Sum, Some(Expr::col(1)), "s"),
            agg(AggFunc::Avg, Some(Expr::col(1)), "a"),
            agg(AggFunc::Min, Some(Expr::col(2)), "mn"),
        ];
        // Single-phase reference.
        let mut single = HashAggregate::new(
            source(rows()),
            vec![0],
            aggs.clone(),
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        let want = sorted(collect_rows(&mut single).unwrap());

        // Partial over two halves, then Final over the union.
        let all = rows();
        let (h1, h2) = all.split_at(2);
        let mut parts: Vec<Vec<Value>> = Vec::new();
        let mut partial_schema = None;
        for half in [h1.to_vec(), h2.to_vec()] {
            let mut p = HashAggregate::new(
                source(half),
                vec![0],
                aggs.clone(),
                AggPhase::Partial,
                1024,
                false,
            )
            .unwrap();
            partial_schema = Some(p.schema().clone());
            parts.extend(collect_rows(&mut p).unwrap());
        }
        let pschema = partial_schema.unwrap();
        assert_eq!(pschema.len(), 1 + 4 + 1); // group + aggs + hidden avg count
        let final_aggs: Vec<AggExpr> = aggs
            .iter()
            .enumerate()
            .map(|(i, a)| AggExpr {
                func: a.func,
                arg: Some(Expr::col(1 + i)),
                name: a.name.clone(),
            })
            .collect();
        let src = Box::new(BatchSource::from_rows(pschema, &parts, 2).unwrap());
        let mut fin =
            HashAggregate::new(src, vec![0], final_aggs, AggPhase::Final, 1024, false).unwrap();
        let got = sorted(collect_rows(&mut fin).unwrap());
        assert_eq!(got, want);
    }

    #[test]
    fn null_group_keys_form_one_group() {
        let schema = Schema::new(vec![
            Field::nullable("g", DataType::I64),
            Field::new("x", DataType::I64),
        ]);
        let rows = vec![
            vec![Value::Null, Value::I64(1)],
            vec![Value::I64(5), Value::I64(2)],
            vec![Value::Null, Value::I64(3)],
        ];
        let src = Box::new(BatchSource::from_rows(schema, &rows, 2).unwrap());
        let mut op = HashAggregate::new(
            src,
            vec![0],
            vec![agg(AggFunc::Sum, Some(Expr::col(1)), "s")],
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        let mut out = collect_rows(&mut op).unwrap();
        out.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], vec![Value::Null, Value::I64(4)]);
        assert_eq!(out[1], vec![Value::I64(5), Value::I64(2)]);
    }

    #[test]
    fn respects_selection_from_filter() {
        use crate::operators::VecFilter;
        let f = VecFilter::new(
            source(rows()),
            Expr::binary(vw_plan::BinOp::Gt, Expr::col(2), Expr::lit(Value::F64(0.9))),
            false,
        )
        .unwrap();
        let mut op = HashAggregate::new(
            Box::new(f),
            vec![],
            vec![agg(AggFunc::CountStar, None, "n")],
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        let out = collect_rows(&mut op).unwrap();
        assert_eq!(out, vec![vec![Value::I64(4)]]);
    }

    #[test]
    fn many_groups_chunk_output() {
        let schema = Schema::new(vec![Field::new("g", DataType::I64)]);
        let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::I64(i)]).collect();
        let src = Box::new(BatchSource::from_rows(schema, &rows, 7).unwrap());
        let mut op = HashAggregate::new(
            src,
            vec![0],
            vec![agg(AggFunc::CountStar, None, "n")],
            AggPhase::Single,
            16,
            false,
        )
        .unwrap();
        let mut batches = 0;
        let mut total = 0;
        while let Some(b) = op.next().unwrap() {
            batches += 1;
            total += b.len();
            assert!(b.len() <= 16);
        }
        assert_eq!(total, 100);
        assert!(batches >= 7);
    }
}
