//! Vectorized hash aggregation, with the partial/final split used by the
//! Volcano parallelizer (see `vw_plan::rewrite::parallel`).
//!
//! Group lookup is allocation-free on the hot path: hash lanes directly from
//! the key columns, verify candidates by lane comparison, and only when a
//! *new* group is born are its key values materialized — into a flat
//! interned key buffer ([`KeyStore`]: one `Vec<Value>` with a fixed stride,
//! not one allocation per group).
//! Aggregate arguments are evaluated vector-at-a-time with the batch's
//! selection vector, so the classic `Scan → Filter → Aggregate` pipeline
//! never materializes survivors.
//!
//! Under a [`MemTracker`] budget the table **spills**: when reserving more
//! group state fails, every resident group is serialized as a
//! partial-aggregate row (group keys, per-aggregate partial value, hidden
//! AVG counts) into one of [`SPILL_PARTITIONS`] spill files chosen by the
//! top bits of the group hash, and the table restarts empty. A group's hash
//! is deterministic in its (normalized) key values, so every fragment of
//! one group lands in the same partition. At end of input the partitions
//! drain one at a time: fragments re-aggregate with the same `combine`
//! semantics the Final phase uses, then finish for the operator's own phase
//! — correct for Single, Partial and Final alike.

use std::sync::Arc;
use std::time::Instant;

use crate::adapt::{AggFeedback, AggShapeKey};
use crate::batch::{Batch, ExecVector};
use crate::mem::MemTracker;
use crate::profile::OpProfile;
use crate::spill::{read_batch, spill_disk, write_batch};
use crate::trace::TraceHandle;
use crate::vexpr::ExprEvaluator;
use vw_common::hash::FxHashMap;
use vw_common::waits::WaitStats;
use vw_common::{DataType, Field, Histogram, Result, Schema, Value, VwError};
use vw_plan::plan::AggPhase;
use vw_plan::rewrite::parallel::partial_avg_count_columns;
use vw_plan::{AggExpr, AggFunc};
use vw_storage::{ColumnData, SimDisk, SpillFile, StrColumn};

use super::perfect::{self, BatchKey, KeyCoderSpec, PerfectTable};
use super::scan::KeyCodes;
use super::{hash_lane, BoxedOperator, Operator, VecScan};

/// Spill fan-out: partitions are selected by the top 3 bits of the group
/// hash, so re-spilled fragments of one group always meet again.
const SPILL_PARTITIONS: usize = 8;

/// One aggregate's running state.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    SumI { sum: i64, seen: bool },
    SumF { sum: f64, seen: bool },
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, count: i64 },
}

impl AggState {
    fn new(func: AggFunc, arg_ty: Option<DataType>) -> AggState {
        match func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => match arg_ty {
                Some(DataType::F64) => AggState::SumF {
                    sum: 0.0,
                    seen: false,
                },
                _ => AggState::SumI {
                    sum: 0,
                    seen: false,
                },
            },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
        }
    }

    /// Single-phase update from one lane of the argument vector.
    fn update(&mut self, arg: Option<(&ExecVector, usize, DataType)>) -> Result<()> {
        match self {
            AggState::Count(n) => match arg {
                None => *n += 1, // COUNT(*)
                Some((v, i, _)) => {
                    if !v.is_null(i) {
                        *n += 1;
                    }
                }
            },
            AggState::SumI { sum, seen } => {
                let (v, i, _) = arg.ok_or_else(|| VwError::Exec("SUM needs arg".into()))?;
                if !v.is_null(i) {
                    *sum = sum.wrapping_add(lane_i64(v, i)?);
                    *seen = true;
                }
            }
            AggState::SumF { sum, seen } => {
                let (v, i, _) = arg.ok_or_else(|| VwError::Exec("SUM needs arg".into()))?;
                if !v.is_null(i) {
                    *sum += lane_f64(v, i)?;
                    *seen = true;
                }
            }
            AggState::Min(cur) => {
                let (v, i, ty) = arg.ok_or_else(|| VwError::Exec("MIN needs arg".into()))?;
                if !v.is_null(i) {
                    let val = v.get_value(i, ty);
                    if cur.as_ref().is_none_or(|c| val.total_cmp(c).is_lt()) {
                        *cur = Some(val);
                    }
                }
            }
            AggState::Max(cur) => {
                let (v, i, ty) = arg.ok_or_else(|| VwError::Exec("MAX needs arg".into()))?;
                if !v.is_null(i) {
                    let val = v.get_value(i, ty);
                    if cur.as_ref().is_none_or(|c| val.total_cmp(c).is_gt()) {
                        *cur = Some(val);
                    }
                }
            }
            AggState::Avg { sum, count } => {
                let (v, i, _) = arg.ok_or_else(|| VwError::Exec("AVG needs arg".into()))?;
                if !v.is_null(i) {
                    *sum += lane_f64(v, i)?;
                    *count += 1;
                }
            }
        }
        Ok(())
    }

    /// Final-phase update: combine a partial value (and hidden count for AVG).
    fn combine(
        &mut self,
        arg: (&ExecVector, usize, DataType),
        hidden_count: Option<(&ExecVector, usize)>,
    ) -> Result<()> {
        let (v, i, ty) = arg;
        if v.is_null(i) {
            return Ok(());
        }
        match self {
            AggState::Count(n) => *n += lane_i64(v, i)?,
            AggState::SumI { sum, seen } => {
                *sum = sum.wrapping_add(lane_i64(v, i)?);
                *seen = true;
            }
            AggState::SumF { sum, seen } => {
                *sum += lane_f64(v, i)?;
                *seen = true;
            }
            AggState::Min(cur) => {
                let val = v.get_value(i, ty);
                if cur.as_ref().is_none_or(|c| val.total_cmp(c).is_lt()) {
                    *cur = Some(val);
                }
            }
            AggState::Max(cur) => {
                let val = v.get_value(i, ty);
                if cur.as_ref().is_none_or(|c| val.total_cmp(c).is_gt()) {
                    *cur = Some(val);
                }
            }
            AggState::Avg { sum, count } => {
                *sum += lane_f64(v, i)?;
                let (hc, hi) =
                    hidden_count.ok_or_else(|| VwError::Exec("AVG final needs count".into()))?;
                *count += lane_i64(hc, hi)?;
            }
        }
        Ok(())
    }

    /// Finish into the output value for the given phase.
    fn finish(&self, phase: AggPhase) -> Value {
        match self {
            AggState::Count(n) => Value::I64(*n),
            AggState::SumI { sum, seen } => {
                if *seen {
                    Value::I64(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::SumF { sum, seen } => {
                if *seen {
                    Value::F64(*sum)
                } else {
                    Value::Null
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.clone().unwrap_or(Value::Null),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else if phase == AggPhase::Partial {
                    Value::F64(*sum) // partial carries raw sum + hidden count
                } else {
                    Value::F64(*sum / *count as f64)
                }
            }
        }
    }

    /// The hidden count value (partial AVG output).
    fn hidden_count(&self) -> Value {
        match self {
            AggState::Avg { count, .. } => Value::I64(*count),
            _ => Value::Null,
        }
    }
}

#[inline]
pub(crate) fn lane_i64(v: &ExecVector, i: usize) -> Result<i64> {
    match &v.data {
        ColumnData::I64(x) => Ok(x[i]),
        ColumnData::I32(x) => Ok(x[i] as i64),
        ColumnData::Bool(x) => Ok(x[i] as i64),
        other => Err(VwError::Exec(format!(
            "integer aggregate over {}",
            other.type_name()
        ))),
    }
}

#[inline]
pub(crate) fn lane_f64(v: &ExecVector, i: usize) -> Result<f64> {
    match &v.data {
        ColumnData::F64(x) => Ok(x[i]),
        ColumnData::I64(x) => Ok(x[i] as f64),
        ColumnData::I32(x) => Ok(x[i] as f64),
        other => Err(VwError::Exec(format!(
            "numeric aggregate over {}",
            other.type_name()
        ))),
    }
}

/// Interned group keys: one flat buffer with a fixed stride of
/// `width = group_by.len()` values per group (the keys of group `g` live at
/// `flat[g*width..(g+1)*width]`), instead of a `Vec<Value>` per group.
struct KeyStore {
    flat: Vec<Value>,
    width: usize,
    groups: usize,
}

impl KeyStore {
    fn new(width: usize) -> KeyStore {
        KeyStore {
            flat: Vec::new(),
            width,
            groups: 0,
        }
    }

    fn len(&self) -> usize {
        self.groups
    }

    fn is_empty(&self) -> bool {
        self.groups == 0
    }

    fn keys(&self, g: usize) -> &[Value] {
        &self.flat[g * self.width..(g + 1) * self.width]
    }

    /// Intern one group's keys; returns its id.
    fn push(&mut self, keys: impl Iterator<Item = Value>) -> usize {
        self.flat.extend(keys);
        debug_assert_eq!(self.flat.len(), (self.groups + 1) * self.width);
        self.groups += 1;
        self.groups - 1
    }

    fn clear(&mut self) {
        self.flat.clear();
        self.groups = 0;
    }
}

/// The resident aggregation state: hash table, interned keys, group hashes
/// (kept for spill partitioning) and per-group aggregate states.
struct GroupTable {
    buckets: FxHashMap<u64, Vec<u32>>,
    keys: KeyStore,
    hashes: Vec<u64>,
    states: Vec<Vec<AggState>>,
}

impl GroupTable {
    fn new(width: usize) -> GroupTable {
        GroupTable {
            buckets: FxHashMap::default(),
            keys: KeyStore::new(width),
            hashes: Vec::new(),
            states: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.buckets.clear();
        self.keys.clear();
        self.hashes.clear();
        self.states.clear();
    }
}

/// A scan fused directly under the aggregate: the aggregate pulls from the
/// scan with a plain method call instead of a boxed-operator hop, and the
/// scan's PDICT key codes ride along uncopied. The scan's profile node and
/// latency histogram are still fed — fusing an operator out of the tree must
/// not fuse it out of `EXPLAIN ANALYZE`.
pub struct FusedScan {
    scan: VecScan,
    /// The scan's node in the plan profile tree, when profiling is on.
    node: Option<Arc<OpProfile>>,
    /// The scan's `operator_next_ns` histogram, when metrics are wired.
    hist: Option<Arc<Histogram>>,
    /// Scan extras are flushed into the node once, at first end-of-stream
    /// (mirrors the profiling wrapper the fusion replaced).
    flushed: bool,
}

impl FusedScan {
    pub fn new(
        scan: VecScan,
        node: Option<Arc<OpProfile>>,
        hist: Option<Arc<Histogram>>,
    ) -> FusedScan {
        FusedScan {
            scan,
            node,
            hist,
            flushed: false,
        }
    }

    fn next(&mut self) -> Result<Option<(Batch, Vec<Option<KeyCodes>>)>> {
        let t0 = Instant::now();
        let r = self.scan.next();
        let elapsed = t0.elapsed();
        let produced = match &r {
            Ok(Some(b)) => Some(b.len()),
            _ => None,
        };
        if let Some(n) = &self.node {
            n.record_next(elapsed, produced);
        }
        if let Some(h) = &self.hist {
            h.record(elapsed.as_nanos() as u64);
        }
        if !matches!(&r, Ok(Some(_))) && !self.flushed {
            self.flushed = true;
            if let Some(n) = &self.node {
                for (k, v) in self.scan.profile_extras() {
                    n.add_extra(k, v);
                }
            }
        }
        match r? {
            Some(b) => {
                let codes = self.scan.take_key_codes();
                Ok(Some((b, codes)))
            }
            None => Ok(None),
        }
    }
}

/// Where the aggregate's input comes from: a boxed child operator (the
/// general case) or a fused scan.
pub enum AggInput {
    Op(BoxedOperator),
    Fused(Box<FusedScan>),
}

impl AggInput {
    fn schema(&self) -> &Schema {
        match self {
            AggInput::Op(op) => op.schema(),
            AggInput::Fused(f) => f.scan.schema(),
        }
    }

    fn next(&mut self) -> Result<Option<(Batch, Vec<Option<KeyCodes>>)>> {
        match self {
            AggInput::Op(op) => Ok(op.next()?.map(|b| (b, Vec::new()))),
            AggInput::Fused(f) => f.next(),
        }
    }

    fn disable_capture(&mut self) {
        if let AggInput::Fused(f) = self {
            f.scan.disable_capture();
        }
    }

    fn is_fused(&self) -> bool {
        matches!(self, AggInput::Fused(_))
    }
}

/// Hash aggregation operator.
pub struct HashAggregate {
    input: AggInput,
    group_by: Vec<usize>,
    aggs: Vec<AggExpr>,
    arg_evals: Vec<Option<ExprEvaluator>>,
    arg_types: Vec<Option<DataType>>,
    phase: AggPhase,
    out_schema: Schema,
    in_schema: Schema,
    vector_size: usize,
    /// Columns in the (partial) input carrying hidden AVG counts:
    /// `(agg index, input column)`.
    hidden_in: Vec<(usize, usize)>,
    /// Layout of spilled group rows: keys, partial aggregate values, hidden
    /// AVG counts (the Partial-phase output layout, whatever `phase` is).
    spill_schema: Schema,
    /// Indices (into `aggs`) of the AVG aggregates, in order.
    avg_idxs: Vec<usize>,
    mem: MemTracker,
    disk: Option<Arc<SimDisk>>,
    /// Spill partitions, created on first pressure.
    partitions: Option<Vec<SpillFile>>,
    /// Partitions still to drain (popped from the back).
    drain: Vec<SpillFile>,
    done: bool,
    output: Vec<Batch>,
    /// Query trace: table spills become timeline events.
    trace: Option<TraceHandle>,
    /// Wait-state sink of the owning plan node (None = profiling off).
    waits: Option<Arc<WaitStats>>,
    /// Perfect-hash coder plan, when `enable_perfect` accepted the key set.
    perfect_specs: Option<Vec<KeyCoderSpec>>,
    /// The run completed entirely on the perfect-hash path.
    ran_perfect: bool,
    /// The perfect-hash path started but fell back to the generic table.
    perfect_fallback: bool,
    /// Cross-query aggregation-path feedback store and this aggregate's
    /// shape key, when the database attached one (adaptivity on).
    feedback: Option<(Arc<AggFeedback>, AggShapeKey)>,
}

impl HashAggregate {
    pub fn new(
        input: BoxedOperator,
        group_by: Vec<usize>,
        aggs: Vec<AggExpr>,
        phase: AggPhase,
        vector_size: usize,
        naive_nulls: bool,
    ) -> Result<HashAggregate> {
        Self::build(
            AggInput::Op(input),
            group_by,
            aggs,
            phase,
            vector_size,
            naive_nulls,
        )
    }

    /// Build an aggregate fused directly over a scan (no boxed hop, PDICT
    /// key codes ride along). `node`/`hist` keep the scan visible to the
    /// profile tree and the `operator_next_ns` metrics despite the fusion.
    #[allow(clippy::too_many_arguments)]
    pub fn new_fused(
        scan: VecScan,
        node: Option<Arc<OpProfile>>,
        hist: Option<Arc<Histogram>>,
        group_by: Vec<usize>,
        aggs: Vec<AggExpr>,
        phase: AggPhase,
        vector_size: usize,
        naive_nulls: bool,
    ) -> Result<HashAggregate> {
        Self::build(
            AggInput::Fused(Box::new(FusedScan::new(scan, node, hist))),
            group_by,
            aggs,
            phase,
            vector_size,
            naive_nulls,
        )
    }

    fn build(
        input: AggInput,
        group_by: Vec<usize>,
        aggs: Vec<AggExpr>,
        phase: AggPhase,
        vector_size: usize,
        naive_nulls: bool,
    ) -> Result<HashAggregate> {
        let in_schema = input.schema().clone();
        let mut arg_evals = Vec::with_capacity(aggs.len());
        let mut arg_types = Vec::with_capacity(aggs.len());
        for a in &aggs {
            match &a.arg {
                Some(e) => {
                    let ev = ExprEvaluator::new(e.clone(), &in_schema, naive_nulls)?;
                    arg_types.push(Some(ev.output_type()));
                    arg_evals.push(Some(ev));
                }
                None => {
                    arg_evals.push(None);
                    arg_types.push(None);
                }
            }
        }
        let mut fields: Vec<Field> = group_by
            .iter()
            .map(|&g| in_schema.field(g).clone())
            .collect();
        for (a, ty) in aggs.iter().zip(&arg_types) {
            let out_ty = output_type(a.func, *ty, phase);
            fields.push(Field {
                name: a.name.clone(),
                ty: out_ty,
                nullable: true,
            });
        }
        if phase == AggPhase::Partial {
            for a in &aggs {
                if a.func == AggFunc::Avg {
                    fields.push(Field::new(format!("__{}_count", a.name), DataType::I64));
                }
            }
        }
        // For the Final phase, locate hidden count columns in the partial
        // input layout.
        let hidden_in = if phase == AggPhase::Final {
            partial_avg_count_columns(group_by.len(), &aggs)
        } else {
            Vec::new()
        };
        // Spill rows use the Partial output layout regardless of phase.
        let mut spill_fields: Vec<Field> = group_by
            .iter()
            .map(|&g| {
                let f = in_schema.field(g);
                Field {
                    name: f.name.clone(),
                    ty: f.ty,
                    nullable: true,
                }
            })
            .collect();
        for (a, ty) in aggs.iter().zip(&arg_types) {
            spill_fields.push(Field {
                name: a.name.clone(),
                ty: output_type(a.func, *ty, AggPhase::Partial),
                nullable: true,
            });
        }
        let avg_idxs: Vec<usize> = aggs
            .iter()
            .enumerate()
            .filter(|(_, a)| a.func == AggFunc::Avg)
            .map(|(i, _)| i)
            .collect();
        for &i in &avg_idxs {
            spill_fields.push(Field {
                name: format!("__{}_count", aggs[i].name),
                ty: DataType::I64,
                nullable: true,
            });
        }
        Ok(HashAggregate {
            input,
            group_by,
            aggs,
            arg_evals,
            arg_types,
            phase,
            out_schema: Schema::new(fields),
            in_schema,
            vector_size: vector_size.max(1),
            hidden_in,
            spill_schema: Schema::new(spill_fields),
            avg_idxs,
            mem: MemTracker::detached(),
            disk: None,
            partitions: None,
            drain: Vec::new(),
            done: false,
            output: Vec::new(),
            trace: None,
            waits: None,
            perfect_specs: None,
            ran_perfect: false,
            perfect_fallback: false,
            feedback: None,
        })
    }

    /// Attach a tracker onto the query's shared memory budget.
    pub fn set_mem_tracker(&mut self, mem: MemTracker) {
        self.mem = mem;
    }

    /// Allow the perfect-hash (direct-array) path when the group-key domain
    /// admits one. `hints[k]` is the folded MinMax range of group key `k`
    /// when it is a stored integer column with stats. Returns whether the
    /// path was armed; the run still falls back to the generic table if the
    /// observed data escapes the planned domain or the budget refuses the
    /// table.
    pub fn enable_perfect(&mut self, hints: &[Option<(i64, i64)>]) -> bool {
        let key_types: Vec<DataType> = self
            .group_by
            .iter()
            .map(|&g| self.in_schema.field(g).ty)
            .collect();
        match perfect::plan_specs(&key_types, hints) {
            Some(specs) => {
                self.perfect_specs = Some(specs);
                true
            }
            None => false,
        }
    }

    /// Report this aggregate's outcomes (path refusals/successes, observed
    /// group counts) into the cross-query feedback store under the given
    /// `(table, key columns)` shape key.
    pub fn set_agg_feedback(&mut self, fb: Arc<AggFeedback>, table: u64, keys: Vec<usize>) {
        self.feedback = Some((fb, (table, keys)));
    }

    fn feedback_refusal(&self) {
        if let Some((fb, (t, k))) = &self.feedback {
            fb.record_refusal(*t, k.clone());
        }
    }

    fn feedback_success(&self) {
        if let Some((fb, (t, k))) = &self.feedback {
            fb.record_success(*t, k.clone());
        }
    }

    fn feedback_groups(&self, groups: u64) {
        if let Some((fb, (t, k))) = &self.feedback {
            fb.record_groups(*t, k.clone(), groups);
        }
    }

    /// Spill to this disk (the database's SimDisk, so spill I/O is counted).
    pub fn set_spill_disk(&mut self, disk: Arc<SimDisk>) {
        self.disk = Some(disk);
    }

    /// Record table spills into the query trace timeline.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Attribute partial-aggregate spill I/O as blocked time.
    pub fn set_waits(&mut self, waits: Arc<WaitStats>) {
        self.waits = Some(waits);
    }

    fn run(&mut self) -> Result<()> {
        let mut table = GroupTable::new(self.group_by.len());
        // Bytes currently reserved against the budget for `table`.
        let mut table_bytes = 0usize;
        let key_types: Vec<DataType> = self
            .group_by
            .iter()
            .map(|&g| self.in_schema.field(g).ty)
            .collect();

        // Arm the direct-array table. A refused reservation means the
        // generic path from batch one — and no key-code capture either,
        // since only the perfect table can consume codes.
        let mut pt: Option<PerfectTable> = self.perfect_specs.as_ref().and_then(|specs| {
            PerfectTable::try_new(
                specs,
                &key_types,
                &self.aggs,
                &self.arg_types,
                &mut self.mem,
            )
        });
        if pt.is_none() {
            self.input.disable_capture();
            // A planned-but-refused table (budget said no) is a refusal the
            // feedback store should remember; never having planned one isn't.
            if self.perfect_specs.is_some() {
                self.feedback_refusal();
            }
        }

        while let Some((mut batch, key_codes)) = self.input.next()? {
            // Evaluate aggregate argument expressions with the selection.
            let args: Vec<Option<ExecVector>> = self
                .arg_evals
                .iter()
                .map(|ev| ev.as_ref().map(|e| e.eval(&batch)).transpose())
                .collect::<Result<_>>()?;

            // Direct-array fast path: compose slots, accumulate, next batch.
            if let Some(t) = pt.as_mut() {
                let sel_owned: Vec<u32>;
                let lanes: &[u32] = match &batch.sel {
                    Some(s) => s,
                    None => {
                        sel_owned = (0..batch.rows as u32).collect();
                        &sel_owned
                    }
                };
                let keys: Vec<BatchKey<'_>> = self
                    .group_by
                    .iter()
                    .enumerate()
                    .map(|(k, &g)| match key_codes.get(k).and_then(|c| c.as_ref()) {
                        Some(kc) => BatchKey::Dict {
                            block: kc.block,
                            codes: &kc.codes,
                            nulls: kc.nulls.as_deref(),
                            dict: &kc.dict,
                        },
                        None => BatchKey::Column(&batch.columns[g]),
                    })
                    .collect();
                let hidden: Vec<Option<&ExecVector>> = (0..self.aggs.len())
                    .map(|k| {
                        self.hidden_in
                            .iter()
                            .find(|(ai, _)| *ai == k)
                            .map(|(_, col)| &batch.columns[*col])
                    })
                    .collect();
                if t.absorb(&keys, lanes, &args, self.phase, &hidden)? {
                    continue;
                }
            }

            // Captured-but-undecoded key columns must be materialized before
            // the generic path (or a falling-back perfect table) touches the
            // batch.
            patch_key_columns(&mut batch, &key_codes, &self.group_by);

            if let Some(t) = pt.take() {
                // Out-of-domain key: graceful fallback. Re-emit the resident
                // direct-array state as partial rows and merge them into the
                // generic table with combine() semantics, then continue
                // generically (capture off).
                self.perfect_fallback = true;
                self.feedback_refusal();
                self.input.disable_capture();
                let rows = t.rows(AggPhase::Partial, &self.avg_idxs);
                let reserved = t.reserved_bytes;
                drop(t);
                self.mem.shrink(reserved);
                if !rows.is_empty() {
                    let pb = Batch::from_rows(&self.spill_schema, &rows)?;
                    let nb = self.merge_partial_batch(&mut table, &pb)?;
                    if nb > 0 {
                        if self.mem.try_grow(nb) {
                            table_bytes += nb;
                        } else {
                            self.spill_table(&mut table, &mut table_bytes)?;
                        }
                    }
                }
            }

            let sel_owned: Vec<u32>;
            let lanes: &[u32] = match &batch.sel {
                Some(s) => s,
                None => {
                    sel_owned = (0..batch.rows as u32).collect();
                    &sel_owned
                }
            };
            // Memory cost of groups born in this batch (accounted per batch,
            // not per row, to keep the fast path cheap).
            let mut new_bytes = 0usize;
            for &lane in lanes {
                let i = lane as usize;
                // group lookup
                let mut h = 0u64;
                for &g in &self.group_by {
                    h = hash_lane(&batch.columns[g], i, h);
                }
                let bucket = table.buckets.entry(h).or_default();
                let mut gid: Option<u32> = None;
                for &cand in bucket.iter() {
                    let keys = table.keys.keys(cand as usize);
                    let ok = self
                        .group_by
                        .iter()
                        .enumerate()
                        .all(|(k, &g)| value_lane_eq(&keys[k], &batch.columns[g], i));
                    if ok {
                        gid = Some(cand);
                        break;
                    }
                }
                let gid = match gid {
                    Some(g) => g as usize,
                    None => {
                        let id = table.keys.push(
                            self.group_by
                                .iter()
                                .zip(&key_types)
                                // Store the canonical key (folds -0.0 to 0.0,
                                // canonicalizes NaN) so the emitted group key
                                // matches the row-engine's normalized keys.
                                .map(|(&g, &ty)| batch.columns[g].get_value(i, ty).normalize_key()),
                        );
                        bucket.push(id as u32);
                        new_bytes += group_cost(table.keys.keys(id), self.aggs.len());
                        table.hashes.push(h);
                        table.states.push(
                            self.aggs
                                .iter()
                                .zip(&self.arg_types)
                                .map(|(a, ty)| AggState::new(a.func, *ty))
                                .collect(),
                        );
                        id
                    }
                };
                // update states
                for (k, st) in table.states[gid].iter_mut().enumerate() {
                    if self.phase == AggPhase::Final {
                        let arg = args[k]
                            .as_ref()
                            .ok_or_else(|| VwError::Exec("final agg needs arg".into()))?;
                        let hidden = self
                            .hidden_in
                            .iter()
                            .find(|(ai, _)| *ai == k)
                            .map(|(_, col)| (&batch.columns[*col], i));
                        st.combine((arg, i, self.arg_types[k].unwrap_or(DataType::F64)), hidden)?;
                    } else {
                        let arg = args[k]
                            .as_ref()
                            .map(|v| (v, i, self.arg_types[k].unwrap_or(DataType::I64)));
                        st.update(arg)?;
                    }
                }
            }
            if new_bytes > 0 {
                if self.mem.try_grow(new_bytes) {
                    table_bytes += new_bytes;
                } else {
                    // Pressure: spill every resident group (including this
                    // batch's) as partial rows and restart the table empty.
                    self.spill_table(&mut table, &mut table_bytes)?;
                }
            }
        }

        // The whole input fit the direct-array domain: finish straight from
        // the flat accumulators (spilling can never have happened).
        if let Some(t) = pt.take() {
            self.ran_perfect = true;
            self.feedback_success();
            let rows = t.rows(self.phase, &self.avg_idxs);
            self.feedback_groups(rows.len() as u64);
            let reserved = t.reserved_bytes;
            drop(t);
            self.mem.shrink(reserved);
            for chunk in rows.chunks(self.vector_size) {
                self.output.push(Batch::from_rows(&self.out_schema, chunk)?);
            }
            self.output.reverse(); // pop() from the back in order
            return Ok(());
        }

        if self.partitions.is_some() {
            // Spilled at least once: flush the remainder and drain
            // partition-at-a-time from `next()`.
            if !table.keys.is_empty() {
                self.spill_table(&mut table, &mut table_bytes)?;
            }
            let parts = self.partitions.take().unwrap();
            self.drain = parts.into_iter().filter(|f| !f.is_empty()).collect();
            self.drain.reverse(); // popped from the back in order
            return Ok(());
        }

        // Scalar aggregate over empty input still yields one row.
        if table.keys.is_empty() && self.group_by.is_empty() {
            table.keys.push(std::iter::empty());
            table.hashes.push(0);
            table.states.push(
                self.aggs
                    .iter()
                    .zip(&self.arg_types)
                    .map(|(a, ty)| AggState::new(a.func, *ty))
                    .collect(),
            );
        }

        // Emit result rows chunked at vector size.
        let rows = self.result_rows(&table);
        self.feedback_groups(rows.len() as u64);
        for chunk in rows.chunks(self.vector_size) {
            self.output.push(Batch::from_rows(&self.out_schema, chunk)?);
        }
        self.output.reverse(); // pop() from the back in order
        Ok(())
    }

    /// Output rows for the operator's own phase (group keys, finished
    /// aggregates, hidden AVG counts when emitting partials).
    fn result_rows(&self, table: &GroupTable) -> Vec<Vec<Value>> {
        let mut rows = Vec::with_capacity(table.keys.len());
        for g in 0..table.keys.len() {
            let mut row: Vec<Value> = table.keys.keys(g).to_vec();
            let sts = &table.states[g];
            for st in sts {
                row.push(st.finish(self.phase));
            }
            if self.phase == AggPhase::Partial {
                for &k in &self.avg_idxs {
                    row.push(sts[k].hidden_count());
                }
            }
            rows.push(row);
        }
        rows
    }

    /// Serialize every resident group as a partial row into its hash
    /// partition, then restart the table empty and release its reservation.
    fn spill_table(&mut self, table: &mut GroupTable, table_bytes: &mut usize) -> Result<()> {
        if self.partitions.is_none() {
            let disk = spill_disk(&self.disk);
            self.partitions = Some(
                (0..SPILL_PARTITIONS)
                    .map(|_| SpillFile::new(disk.clone()))
                    .collect(),
            );
        }
        let mut part_rows: Vec<Vec<Vec<Value>>> = vec![Vec::new(); SPILL_PARTITIONS];
        for g in 0..table.keys.len() {
            let p = (table.hashes[g] >> 61) as usize;
            let mut row: Vec<Value> = table.keys.keys(g).to_vec();
            let sts = &table.states[g];
            for st in sts {
                row.push(st.finish(AggPhase::Partial));
            }
            for &k in &self.avg_idxs {
                row.push(sts[k].hidden_count());
            }
            part_rows[p].push(row);
        }
        let parts = self.partitions.as_mut().unwrap();
        let span = self.trace.as_ref().map(|t| t.start());
        let mut spilled = 0u64;
        for (p, rows) in part_rows.into_iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let b = Batch::from_rows(&self.spill_schema, &rows)?;
            let bytes = write_batch(&mut parts[p], &b, self.waits.as_deref())?;
            self.mem.note_spill(bytes);
            spilled += bytes as u64;
        }
        if let (Some(t), Some(start)) = (&self.trace, span) {
            t.span_arg("spill write", "spill", start, Some(("bytes", spilled)));
        }
        table.clear();
        self.mem.shrink(*table_bytes);
        *table_bytes = 0;
        Ok(())
    }

    /// Merge one batch of partial-aggregate rows (the [`Self::spill_schema`]
    /// layout: keys, partial values, hidden AVG counts) into `table` with
    /// combine() semantics — exactly like the Final phase merges worker
    /// partials. Returns the estimated resident cost of the groups born
    /// here, so callers can account against the budget.
    fn merge_partial_batch(&self, table: &mut GroupTable, batch: &Batch) -> Result<usize> {
        let width = self.group_by.len();
        let naggs = self.aggs.len();
        let key_types: Vec<DataType> = self.spill_schema.fields()[..width]
            .iter()
            .map(|f| f.ty)
            .collect();
        // Hidden-count column per aggregate in the spill layout.
        let hidden_col: Vec<Option<usize>> = (0..naggs)
            .map(|k| {
                self.avg_idxs
                    .iter()
                    .position(|&a| a == k)
                    .map(|pos| width + naggs + pos)
            })
            .collect();
        let mut new_bytes = 0usize;
        for i in 0..batch.rows {
            let mut h = 0u64;
            for col in &batch.columns[..width] {
                h = hash_lane(col, i, h);
            }
            let bucket = table.buckets.entry(h).or_default();
            let mut gid: Option<u32> = None;
            for &cand in bucket.iter() {
                let keys = table.keys.keys(cand as usize);
                let ok = (0..width).all(|k| value_lane_eq(&keys[k], &batch.columns[k], i));
                if ok {
                    gid = Some(cand);
                    break;
                }
            }
            let gid = match gid {
                Some(g) => g as usize,
                None => {
                    let id = table.keys.push(
                        key_types
                            .iter()
                            .enumerate()
                            .map(|(k, &ty)| batch.columns[k].get_value(i, ty).normalize_key()),
                    );
                    bucket.push(id as u32);
                    new_bytes += group_cost(table.keys.keys(id), naggs);
                    table.hashes.push(h);
                    table.states.push(
                        self.aggs
                            .iter()
                            .zip(&self.arg_types)
                            .map(|(a, ty)| AggState::new(a.func, *ty))
                            .collect(),
                    );
                    id
                }
            };
            for (k, st) in table.states[gid].iter_mut().enumerate() {
                let ty = self.spill_schema.field(width + k).ty;
                let hidden = hidden_col[k].map(|c| (&batch.columns[c], i));
                st.combine((&batch.columns[width + k], i, ty), hidden)?;
            }
        }
        Ok(new_bytes)
    }

    /// Re-aggregate one spilled partition and queue its output batches.
    /// Only this partition is resident (the drain's minimal working unit).
    fn drain_partition(&mut self, file: SpillFile) -> Result<()> {
        let resident = file.bytes() as usize;
        self.mem.force_grow(resident);
        let mut table = GroupTable::new(self.group_by.len());
        for c in 0..file.chunk_count() {
            let batch = read_batch(&file, c, self.waits.as_deref())?;
            self.merge_partial_batch(&mut table, &batch)?;
        }
        let rows = self.result_rows(&table);
        for chunk in rows.chunks(self.vector_size).rev() {
            self.output.push(Batch::from_rows(&self.out_schema, chunk)?);
        }
        self.mem.shrink(resident);
        Ok(())
    }
}

/// Rebuild captured-but-undecoded key columns from their PDICT codes (the
/// placeholder the scan shipped must never reach a generic consumer).
fn patch_key_columns(batch: &mut Batch, key_codes: &[Option<KeyCodes>], group_by: &[usize]) {
    for (k, kc) in key_codes.iter().enumerate() {
        let Some(kc) = kc else { continue };
        let g = group_by[k];
        let mut col = StrColumn::with_capacity(kc.codes.len(), kc.codes.len() * 8);
        for &code in &kc.codes {
            col.push(kc.dict.get(code as usize));
        }
        batch.columns[g] = ExecVector::new(ColumnData::Str(col), kc.nulls.clone());
    }
}

/// Estimated resident cost of one group: interned keys + aggregate states +
/// bucket bookkeeping.
fn group_cost(keys: &[Value], naggs: usize) -> usize {
    let key_bytes: usize = keys
        .iter()
        .map(|v| match v {
            Value::Str(s) => 24 + s.len(),
            _ => 16,
        })
        .sum();
    key_bytes + naggs * 48 + 32
}

fn output_type(func: AggFunc, arg_ty: Option<DataType>, _phase: AggPhase) -> DataType {
    match func {
        AggFunc::CountStar | AggFunc::Count => DataType::I64,
        AggFunc::Avg => DataType::F64,
        AggFunc::Sum => match arg_ty {
            Some(DataType::F64) => DataType::F64,
            _ => DataType::I64,
        },
        AggFunc::Min | AggFunc::Max => arg_ty.unwrap_or(DataType::I64),
    }
}

/// Allocation-free comparison between a stored key `Value` and a column lane.
fn value_lane_eq(key: &Value, col: &ExecVector, i: usize) -> bool {
    if col.is_null(i) {
        return key.is_null();
    }
    match (key, &col.data) {
        (Value::Null, _) => false,
        (Value::Bool(k), ColumnData::Bool(v)) => *k == v[i],
        (Value::I32(k), ColumnData::I32(v)) => *k == v[i],
        (Value::Date(k), ColumnData::I32(v)) => *k == v[i],
        (Value::I64(k), ColumnData::I64(v)) => *k == v[i],
        // Stored keys are already normalized; normalize the probe side so
        // -0.0 matches the 0.0 group and NaN matches the NaN group.
        (Value::F64(k), ColumnData::F64(v)) => {
            k.to_bits() == vw_common::normalize_key_f64(v[i]).to_bits()
        }
        (Value::Str(k), ColumnData::Str(v)) => k.as_bytes() == v.get_bytes(i),
        _ => false,
    }
}

impl Operator for HashAggregate {
    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if !self.done {
            self.run()?;
            self.done = true;
        }
        loop {
            if let Some(b) = self.output.pop() {
                return Ok(Some(b));
            }
            let Some(file) = self.drain.pop() else {
                return Ok(None);
            };
            self.drain_partition(file)?;
        }
    }

    fn profile_extras(&self) -> Vec<(&'static str, u64)> {
        let mut ex = vec![("peak_bytes", self.mem.peak())];
        if self.done {
            if self.ran_perfect {
                ex.push(("agg_path_perfect", 1));
            } else {
                ex.push(("agg_path_generic", 1));
            }
            if self.perfect_fallback {
                ex.push(("agg_fallback", 1));
            }
        }
        if self.input.is_fused() {
            ex.push(("fused_scan", 1));
        }
        if self.mem.spill_events() > 0 {
            ex.push(("spill_parts", self.mem.spill_events()));
            ex.push(("spill_bytes", self.mem.spill_bytes()));
        }
        ex
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{collect_rows, BatchSource};
    use vw_plan::Expr;

    fn source(rows: Vec<Vec<Value>>) -> BoxedOperator {
        let schema = Schema::new(vec![
            Field::new("grp", DataType::Str),
            Field::nullable("x", DataType::I64),
            Field::new("f", DataType::F64),
        ]);
        Box::new(BatchSource::from_rows(schema, &rows, 3).unwrap())
    }

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Str("a".into()), Value::I64(1), Value::F64(0.5)],
            vec![Value::Str("b".into()), Value::I64(2), Value::F64(1.0)],
            vec![Value::Str("a".into()), Value::I64(3), Value::F64(1.5)],
            vec![Value::Str("a".into()), Value::Null, Value::F64(2.0)],
            vec![Value::Str("b".into()), Value::I64(4), Value::F64(2.5)],
        ]
    }

    fn agg(func: AggFunc, arg: Option<Expr>, name: &str) -> AggExpr {
        AggExpr {
            func,
            arg,
            name: name.into(),
        }
    }

    fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        rows
    }

    #[test]
    fn grouped_aggregates() {
        let mut op = HashAggregate::new(
            source(rows()),
            vec![0],
            vec![
                agg(AggFunc::CountStar, None, "n"),
                agg(AggFunc::Count, Some(Expr::col(1)), "nx"),
                agg(AggFunc::Sum, Some(Expr::col(1)), "sx"),
                agg(AggFunc::Avg, Some(Expr::col(1)), "ax"),
                agg(AggFunc::Min, Some(Expr::col(2)), "mn"),
                agg(AggFunc::Max, Some(Expr::col(2)), "mx"),
            ],
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        let out = sorted(collect_rows(&mut op).unwrap());
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0],
            vec![
                Value::Str("a".into()),
                Value::I64(3),
                Value::I64(2),
                Value::I64(4),
                Value::F64(2.0),
                Value::F64(0.5),
                Value::F64(2.0),
            ]
        );
        assert_eq!(
            out[1],
            vec![
                Value::Str("b".into()),
                Value::I64(2),
                Value::I64(2),
                Value::I64(6),
                Value::F64(3.0),
                Value::F64(1.0),
                Value::F64(2.5),
            ]
        );
    }

    #[test]
    fn f64_group_keys_fold_signed_zero_and_nan() {
        // Group by the f64 column: 0.0 and -0.0 are SQL-equal and must form
        // one group; the two distinct NaN payloads must form one group too.
        let payload_nan = f64::from_bits(0x7ff8_0000_0000_0001);
        let rows = vec![
            vec![Value::Str("a".into()), Value::I64(1), Value::F64(0.0)],
            vec![Value::Str("a".into()), Value::I64(2), Value::F64(-0.0)],
            vec![Value::Str("a".into()), Value::I64(3), Value::F64(f64::NAN)],
            vec![
                Value::Str("a".into()),
                Value::I64(4),
                Value::F64(payload_nan),
            ],
            vec![Value::Str("a".into()), Value::I64(5), Value::F64(1.0)],
        ];
        let mut op = HashAggregate::new(
            source(rows),
            vec![2],
            vec![agg(AggFunc::CountStar, None, "n")],
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        let mut out = collect_rows(&mut op).unwrap();
        out.sort_by(|a, b| a[1].total_cmp(&b[1]));
        assert_eq!(out.len(), 3, "expected 3 groups, got {:?}", out);
        // counts sorted: 1 (1.0), 2 (zero group), 2 (NaN group)
        let counts: Vec<Value> = out.iter().map(|r| r[1].clone()).collect();
        assert_eq!(counts, vec![Value::I64(1), Value::I64(2), Value::I64(2)]);
        // The zero group's emitted key is canonical +0.0.
        let zero = out
            .iter()
            .find(|r| matches!(r[0], Value::F64(f) if f == 0.0))
            .expect("zero group present");
        assert_eq!(zero[0], Value::F64(0.0), "key must be normalized to +0.0");
        assert_eq!(zero[1], Value::I64(2));
    }

    #[test]
    fn scalar_aggregate_empty_input() {
        let mut op = HashAggregate::new(
            source(vec![]),
            vec![],
            vec![
                agg(AggFunc::CountStar, None, "n"),
                agg(AggFunc::Sum, Some(Expr::col(1)), "s"),
            ],
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        let out = collect_rows(&mut op).unwrap();
        assert_eq!(out, vec![vec![Value::I64(0), Value::Null]]);
    }

    #[test]
    fn grouped_aggregate_empty_input_no_rows() {
        let mut op = HashAggregate::new(
            source(vec![]),
            vec![0],
            vec![agg(AggFunc::CountStar, None, "n")],
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        assert!(collect_rows(&mut op).unwrap().is_empty());
    }

    #[test]
    fn computed_argument_expressions() {
        // SUM(x * 2)
        let mut op = HashAggregate::new(
            source(rows()),
            vec![],
            vec![agg(
                AggFunc::Sum,
                Some(Expr::binary(
                    vw_plan::BinOp::Mul,
                    Expr::col(1),
                    Expr::lit(Value::I64(2)),
                )),
                "s2",
            )],
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        let out = collect_rows(&mut op).unwrap();
        assert_eq!(out, vec![vec![Value::I64(20)]]);
    }

    #[test]
    fn partial_final_roundtrip_equals_single() {
        let aggs = vec![
            agg(AggFunc::CountStar, None, "n"),
            agg(AggFunc::Sum, Some(Expr::col(1)), "s"),
            agg(AggFunc::Avg, Some(Expr::col(1)), "a"),
            agg(AggFunc::Min, Some(Expr::col(2)), "mn"),
        ];
        // Single-phase reference.
        let mut single = HashAggregate::new(
            source(rows()),
            vec![0],
            aggs.clone(),
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        let want = sorted(collect_rows(&mut single).unwrap());

        // Partial over two halves, then Final over the union.
        let all = rows();
        let (h1, h2) = all.split_at(2);
        let mut parts: Vec<Vec<Value>> = Vec::new();
        let mut partial_schema = None;
        for half in [h1.to_vec(), h2.to_vec()] {
            let mut p = HashAggregate::new(
                source(half),
                vec![0],
                aggs.clone(),
                AggPhase::Partial,
                1024,
                false,
            )
            .unwrap();
            partial_schema = Some(p.schema().clone());
            parts.extend(collect_rows(&mut p).unwrap());
        }
        let pschema = partial_schema.unwrap();
        assert_eq!(pschema.len(), 1 + 4 + 1); // group + aggs + hidden avg count
        let final_aggs: Vec<AggExpr> = aggs
            .iter()
            .enumerate()
            .map(|(i, a)| AggExpr {
                func: a.func,
                arg: Some(Expr::col(1 + i)),
                name: a.name.clone(),
            })
            .collect();
        let src = Box::new(BatchSource::from_rows(pschema, &parts, 2).unwrap());
        let mut fin =
            HashAggregate::new(src, vec![0], final_aggs, AggPhase::Final, 1024, false).unwrap();
        let got = sorted(collect_rows(&mut fin).unwrap());
        assert_eq!(got, want);
    }

    #[test]
    fn null_group_keys_form_one_group() {
        let schema = Schema::new(vec![
            Field::nullable("g", DataType::I64),
            Field::new("x", DataType::I64),
        ]);
        let rows = vec![
            vec![Value::Null, Value::I64(1)],
            vec![Value::I64(5), Value::I64(2)],
            vec![Value::Null, Value::I64(3)],
        ];
        let src = Box::new(BatchSource::from_rows(schema, &rows, 2).unwrap());
        let mut op = HashAggregate::new(
            src,
            vec![0],
            vec![agg(AggFunc::Sum, Some(Expr::col(1)), "s")],
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        let mut out = collect_rows(&mut op).unwrap();
        out.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], vec![Value::Null, Value::I64(4)]);
        assert_eq!(out[1], vec![Value::I64(5), Value::I64(2)]);
    }

    #[test]
    fn respects_selection_from_filter() {
        use crate::operators::VecFilter;
        let f = VecFilter::new(
            source(rows()),
            Expr::binary(vw_plan::BinOp::Gt, Expr::col(2), Expr::lit(Value::F64(0.9))),
            false,
        )
        .unwrap();
        let mut op = HashAggregate::new(
            Box::new(f),
            vec![],
            vec![agg(AggFunc::CountStar, None, "n")],
            AggPhase::Single,
            1024,
            false,
        )
        .unwrap();
        let out = collect_rows(&mut op).unwrap();
        assert_eq!(out, vec![vec![Value::I64(4)]]);
    }

    /// Spilling aggregation under a tiny budget produces exactly the same
    /// groups as the unbounded run, for every phase, AVG and NULLs included.
    #[test]
    fn spilled_aggregate_matches_unbounded_all_phases() {
        use crate::mem::{MemBudget, MemTracker};
        let schema = Schema::new(vec![
            Field::nullable("g", DataType::Str),
            Field::nullable("x", DataType::I64),
            Field::new("f", DataType::F64),
        ]);
        let data: Vec<Vec<Value>> = (0..800)
            .map(|i| {
                let g = if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::Str(format!("g{}", i % 37))
                };
                let x = if i % 5 == 0 {
                    Value::Null
                } else {
                    Value::I64(i as i64)
                };
                vec![g, x, Value::F64((i % 13) as f64 * 0.25)]
            })
            .collect();
        let aggs = vec![
            agg(AggFunc::CountStar, None, "n"),
            agg(AggFunc::Count, Some(Expr::col(1)), "nx"),
            agg(AggFunc::Sum, Some(Expr::col(1)), "sx"),
            agg(AggFunc::Avg, Some(Expr::col(2)), "af"),
            agg(AggFunc::Min, Some(Expr::col(2)), "mn"),
            agg(AggFunc::Max, Some(Expr::col(1)), "mx"),
        ];
        for phase in [AggPhase::Single, AggPhase::Partial] {
            let src = Box::new(BatchSource::from_rows(schema.clone(), &data, 64).unwrap());
            let mut unbounded =
                HashAggregate::new(src, vec![0], aggs.clone(), phase, 32, false).unwrap();
            let want = sorted(collect_rows(&mut unbounded).unwrap());

            let src = Box::new(BatchSource::from_rows(schema.clone(), &data, 64).unwrap());
            let mut tiny =
                HashAggregate::new(src, vec![0], aggs.clone(), phase, 32, false).unwrap();
            tiny.set_mem_tracker(MemTracker::new(std::sync::Arc::new(MemBudget::new(Some(
                2048,
            )))));
            let got = sorted(collect_rows(&mut tiny).unwrap());
            assert_eq!(got, want, "phase {:?}", phase);
            let extras: std::collections::BTreeMap<_, _> =
                tiny.profile_extras().into_iter().collect();
            assert!(extras["spill_parts"] > 0, "tiny budget must spill");
            assert!(extras["spill_bytes"] > 0);
        }
    }

    /// The Final phase also spills correctly: feed partials in, compare the
    /// finished output against the in-memory Final run.
    #[test]
    fn spilled_final_phase_matches() {
        use crate::mem::{MemBudget, MemTracker};
        let aggs = vec![
            agg(AggFunc::CountStar, None, "n"),
            agg(AggFunc::Avg, Some(Expr::col(1)), "a"),
        ];
        // Produce partial rows for many groups.
        let schema = Schema::new(vec![
            Field::new("g", DataType::I64),
            Field::nullable("x", DataType::I64),
        ]);
        let data: Vec<Vec<Value>> = (0..600)
            .map(|i| vec![Value::I64((i % 97) as i64), Value::I64(i as i64)])
            .collect();
        let src = Box::new(BatchSource::from_rows(schema, &data, 50).unwrap());
        let mut partial =
            HashAggregate::new(src, vec![0], aggs.clone(), AggPhase::Partial, 1024, false).unwrap();
        let pschema = partial.schema().clone();
        let partials = collect_rows(&mut partial).unwrap();
        let final_aggs: Vec<AggExpr> = aggs
            .iter()
            .enumerate()
            .map(|(i, a)| AggExpr {
                func: a.func,
                arg: Some(Expr::col(1 + i)),
                name: a.name.clone(),
            })
            .collect();

        let src = Box::new(BatchSource::from_rows(pschema.clone(), &partials, 64).unwrap());
        let mut unbounded =
            HashAggregate::new(src, vec![0], final_aggs.clone(), AggPhase::Final, 32, false)
                .unwrap();
        let want = sorted(collect_rows(&mut unbounded).unwrap());

        let src = Box::new(BatchSource::from_rows(pschema, &partials, 64).unwrap());
        let mut tiny =
            HashAggregate::new(src, vec![0], final_aggs, AggPhase::Final, 32, false).unwrap();
        tiny.set_mem_tracker(MemTracker::new(std::sync::Arc::new(MemBudget::new(Some(
            1024,
        )))));
        let got = sorted(collect_rows(&mut tiny).unwrap());
        assert_eq!(got, want);
    }

    #[test]
    fn many_groups_chunk_output() {
        let schema = Schema::new(vec![Field::new("g", DataType::I64)]);
        let rows: Vec<Vec<Value>> = (0..100).map(|i| vec![Value::I64(i)]).collect();
        let src = Box::new(BatchSource::from_rows(schema, &rows, 7).unwrap());
        let mut op = HashAggregate::new(
            src,
            vec![0],
            vec![agg(AggFunc::CountStar, None, "n")],
            AggPhase::Single,
            16,
            false,
        )
        .unwrap();
        let mut batches = 0;
        let mut total = 0;
        while let Some(b) = op.next().unwrap() {
            batches += 1;
            total += b.len();
            assert!(b.len() <= 16);
        }
        assert_eq!(total, 100);
        assert!(batches >= 7);
    }
}
