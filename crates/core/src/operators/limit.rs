//! LIMIT/OFFSET over a batch stream.

use crate::batch::Batch;
use vw_common::{Result, Schema};

use super::{BoxedOperator, Operator};

/// Limit operator: skip `offset` rows, pass at most `fetch` rows.
pub struct VecLimit {
    input: BoxedOperator,
    schema: Schema,
    to_skip: u64,
    remaining: u64,
}

impl VecLimit {
    pub fn new(input: BoxedOperator, offset: u64, fetch: u64) -> VecLimit {
        let schema = input.schema().clone();
        VecLimit {
            input,
            schema,
            to_skip: offset,
            remaining: fetch,
        }
    }
}

impl Operator for VecLimit {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        loop {
            if self.remaining == 0 {
                return Ok(None);
            }
            let Some(batch) = self.input.next()? else {
                return Ok(None);
            };
            let n = batch.len() as u64;
            if n == 0 {
                continue;
            }
            if self.to_skip >= n {
                self.to_skip -= n;
                continue;
            }
            let start = self.to_skip as usize;
            self.to_skip = 0;
            let take = ((n as usize) - start).min(self.remaining as usize);
            self.remaining -= take as u64;
            if start == 0 && take == batch.len() {
                return Ok(Some(batch));
            }
            // Slice the logical window [start, start+take) via selection.
            let keep: Vec<u32> = match &batch.sel {
                Some(s) => s[start..start + take].to_vec(),
                None => (start as u32..(start + take) as u32).collect(),
            };
            let mut out = batch;
            out.sel = Some(keep);
            return Ok(Some(out));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{collect_rows, BatchSource};
    use vw_common::{DataType, Field, Value};

    fn source(n: i64, batch: usize) -> BoxedOperator {
        let schema = Schema::new(vec![Field::new("x", DataType::I64)]);
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::I64(i)]).collect();
        Box::new(BatchSource::from_rows(schema, &rows, batch).unwrap())
    }

    fn keys(rows: Vec<Vec<Value>>) -> Vec<i64> {
        rows.iter()
            .map(|r| match r[0] {
                Value::I64(k) => k,
                _ => panic!(),
            })
            .collect()
    }

    #[test]
    fn fetch_only() {
        let mut l = VecLimit::new(source(10, 3), 0, 5);
        assert_eq!(keys(collect_rows(&mut l).unwrap()), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn offset_spans_batches() {
        let mut l = VecLimit::new(source(10, 3), 4, 3);
        assert_eq!(keys(collect_rows(&mut l).unwrap()), vec![4, 5, 6]);
    }

    #[test]
    fn offset_beyond_input() {
        let mut l = VecLimit::new(source(5, 2), 10, 3);
        assert!(collect_rows(&mut l).unwrap().is_empty());
    }

    #[test]
    fn fetch_larger_than_input() {
        let mut l = VecLimit::new(source(4, 2), 1, 100);
        assert_eq!(keys(collect_rows(&mut l).unwrap()), vec![1, 2, 3]);
    }

    #[test]
    fn zero_fetch() {
        let mut l = VecLimit::new(source(4, 2), 0, 0);
        assert!(collect_rows(&mut l).unwrap().is_empty());
    }
}
