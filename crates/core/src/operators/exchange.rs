//! The Volcano-style Exchange operator (§I-B multi-core parallelization).
//!
//! `P` worker threads each compile and run their own copy of the child plan
//! with a `(worker, P)` partition spec — every `VecScan` below restricts
//! itself to row groups `g % P == worker`. Batches stream back through a
//! bounded channel; the consumer unions them in arrival order (exchange
//! output is unordered, like the SQL semantics of the operators it wraps).

use crate::batch::Batch;
use crate::compile::{compile_plan, ExecContext};
use crossbeam::channel::{bounded, Receiver};
use std::thread::JoinHandle;
use vw_common::{Result, Schema, VwError};
use vw_plan::LogicalPlan;

use super::Operator;

/// Exchange operator.
pub struct Exchange {
    plan: LogicalPlan,
    ctx: ExecContext,
    partitions: usize,
    schema: Schema,
    rx: Option<Receiver<Result<Batch>>>,
    workers: Vec<JoinHandle<()>>,
    failed: bool,
}

impl Exchange {
    pub fn new(plan: LogicalPlan, ctx: ExecContext, partitions: usize) -> Result<Exchange> {
        let schema = plan
            .schema()
            .map_err(|e| VwError::Plan(format!("exchange child schema: {}", e)))?;
        Ok(Exchange {
            plan,
            ctx,
            partitions: partitions.max(1),
            schema,
            rx: None,
            workers: Vec::new(),
            failed: false,
        })
    }

    fn spawn(&mut self) {
        let (tx, rx) = bounded::<Result<Batch>>(self.partitions * 2);
        for w in 0..self.partitions {
            let tx = tx.clone();
            let plan = self.plan.clone();
            let mut ctx = self.ctx.clone();
            ctx.partition = Some((w, self.partitions));
            let handle = std::thread::spawn(move || {
                let mut op = match compile_plan(&plan, &ctx) {
                    Ok(op) => op,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                };
                loop {
                    match op.next() {
                        Ok(Some(batch)) => {
                            // Compact before crossing threads: selection
                            // vectors are a producer-local optimization.
                            if tx.send(Ok(batch.compact())).is_err() {
                                return; // consumer went away
                            }
                        }
                        Ok(None) => return,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
            });
            self.workers.push(handle);
        }
        // Drop the original sender so the channel closes when workers finish.
        drop(tx);
        self.rx = Some(rx);
    }

    fn join_workers(&mut self) {
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Operator for Exchange {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.failed {
            return Ok(None);
        }
        if self.rx.is_none() {
            self.spawn();
        }
        match self.rx.as_ref().unwrap().recv() {
            Ok(Ok(batch)) => Ok(Some(batch)),
            Ok(Err(e)) => {
                self.failed = true;
                self.rx = None; // disconnect; workers stop on send failure
                self.join_workers();
                Err(e)
            }
            Err(_) => {
                // all senders dropped: end of stream
                self.join_workers();
                Ok(None)
            }
        }
    }
}

impl Drop for Exchange {
    fn drop(&mut self) {
        self.rx = None;
        self.join_workers();
    }
}

// Tests live in `crate::compile` where plan construction helpers exist.
