//! The Volcano-style Exchange operator (§I-B multi-core parallelization).
//!
//! `P` worker threads each compile and run their own copy of the child plan
//! against one shared [`SharedExec`] registry: every `VecScan` below pulls
//! row-group morsels from a common work-stealing queue (dynamic load balance,
//! no static `g % P` assignment), and every hash join builds its hash table
//! exactly once — the first worker to reach the join runs the build, the
//! rest block briefly and share the frozen result. Batches stream back
//! through a bounded channel; the consumer unions them in arrival order
//! (exchange output is unordered, like the SQL semantics of the operators it
//! wraps).
//!
//! Failure semantics: a worker error (or panic) poisons the stream — the
//! first `next()` to observe it joins all workers and returns `Err`; every
//! subsequent `next()` returns the same error again rather than masquerading
//! as a clean end-of-stream with silently truncated results.

use crate::batch::Batch;
use crate::compile::{compile_plan, ExecContext};
use crate::morsel::SharedExec;
use crossbeam::channel::{bounded, Receiver};
use std::thread::JoinHandle;
use vw_common::{Result, Schema, VwError};
use vw_plan::LogicalPlan;

use super::Operator;

/// Exchange operator.
pub struct Exchange {
    plan: LogicalPlan,
    ctx: ExecContext,
    partitions: usize,
    schema: Schema,
    rx: Option<Receiver<Result<Batch>>>,
    workers: Vec<JoinHandle<()>>,
    /// First error observed; re-polls keep returning it (stream poisoned).
    poisoned: Option<VwError>,
}

impl Exchange {
    pub fn new(plan: LogicalPlan, ctx: ExecContext, partitions: usize) -> Result<Exchange> {
        let schema = plan
            .schema()
            .map_err(|e| VwError::Plan(format!("exchange child schema: {}", e)))?;
        Ok(Exchange {
            plan,
            ctx,
            partitions: partitions.max(1),
            schema,
            rx: None,
            workers: Vec::new(),
            poisoned: None,
        })
    }

    fn spawn(&mut self) {
        let (tx, rx) = bounded::<Result<Batch>>(self.partitions * 2);
        // One registry for the whole worker gang: morsel queues and join
        // build slots are keyed by plan position, so identical plan clones
        // compiled on each thread resolve to the same shared state.
        let shared = SharedExec::new(self.partitions, self.ctx.stats.clone());
        for worker in 0..self.partitions {
            let tx = tx.clone();
            let plan = self.plan.clone();
            let mut ctx = self.ctx.clone();
            ctx.shared = Some(shared.clone());
            ctx.worker = worker;
            // Trace events carry the recording thread: worker ids 1..=P
            // (0 stays the coordinating thread above the Exchange).
            if let Some(t) = &ctx.trace {
                ctx.trace = Some(t.with_worker(worker + 1));
            }
            let handle = std::thread::spawn(move || {
                let mut op = match compile_plan(&plan, &ctx) {
                    Ok(op) => op,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                };
                loop {
                    match op.next() {
                        Ok(Some(batch)) => {
                            // Compact before crossing threads: selection
                            // vectors are a producer-local optimization.
                            if tx.send(Ok(batch.compact())).is_err() {
                                return; // consumer went away
                            }
                        }
                        Ok(None) => return,
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            return;
                        }
                    }
                }
            });
            self.workers.push(handle);
        }
        // Drop the original sender so the channel closes when workers finish.
        drop(tx);
        self.rx = Some(rx);
    }

    /// Join all workers; report the first panic as an execution error so a
    /// crashed worker can never pass for a clean (truncated) end-of-stream.
    fn join_workers(&mut self) -> Option<VwError> {
        let mut panicked = None;
        for h in self.workers.drain(..) {
            if let Err(payload) = h.join() {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".into());
                panicked.get_or_insert(VwError::Exec(format!("exchange worker panicked: {}", msg)));
            }
        }
        panicked
    }

    fn poison(&mut self, e: VwError) -> VwError {
        self.poisoned = Some(e.clone());
        e
    }
}

impl Operator for Exchange {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn profile_extras(&self) -> Vec<(&'static str, u64)> {
        vec![("workers", self.partitions as u64)]
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if self.rx.is_none() {
            self.spawn();
        }
        match self.rx.as_ref().unwrap().recv() {
            Ok(Ok(batch)) => Ok(Some(batch)),
            Ok(Err(e)) => {
                self.rx = None; // disconnect; workers stop on send failure
                self.join_workers();
                Err(self.poison(e))
            }
            Err(_) => {
                // All senders dropped. Either every worker finished cleanly
                // (end of stream) or one panicked before sending an error —
                // joining distinguishes the two.
                match self.join_workers() {
                    Some(e) => Err(self.poison(e)),
                    None => Ok(None),
                }
            }
        }
    }
}

impl Drop for Exchange {
    fn drop(&mut self) {
        self.rx = None;
        self.join_workers();
    }
}

// Tests live in `crate::compile` where plan construction helpers exist.
