//! The vectorized hash join.
//!
//! Builds a hash table from the **right** input (the optimizer arranges the
//! smaller side there), then streams the left input vector-at-a-time:
//! hash probe → candidate verification (allocation-free lane comparison) →
//! gather of matched pairs. Supports inner, left-outer, semi and anti joins
//! plus a residual (non-equi) predicate evaluated over matched pairs.
//!
//! SQL NULL key semantics: a NULL key never matches anything — NULL-keyed
//! build rows are not inserted, NULL-keyed probe rows never find matches
//! (for LEFT/ANTI they surface as unmatched rows, as SQL requires).
//!
//! Under a [`MemTracker`] budget the join goes **grace-style**: if the build
//! side outgrows its reservation, build rows are partitioned by the top bits
//! of their key hash into [`SPILL_PARTITIONS`] spill files (NULL-keyed build
//! rows are dropped — they can never match, and build rows only surface
//! through matches). The probe input is then drained and partitioned the
//! same way (NULL-keyed probe rows go to partition 0: they match nothing,
//! which is exactly what LEFT/ANTI need). Probing proceeds
//! partition-at-a-time: load one build partition's hash table (the minimal
//! working unit, force-reserved), stream its probe partition through the
//! ordinary match/residual/kind pipeline, release, move on. Equal keys hash
//! equal, so matches can only occur within a partition.

use crate::batch::{Batch, ExecVector};
use crate::mem::MemTracker;
use crate::morsel::{ExecStats, SharedBuild};
use crate::spill::{batch_bytes, read_batch, spill_disk, write_batch};
use crate::trace::TraceHandle;
use crate::vexpr::ExprEvaluator;
use std::sync::Arc;
use vw_common::hash::FxHashMap;
use vw_common::waits::{WaitClass, WaitStats};
use vw_common::{Result, Schema, VwError};
use vw_plan::{Expr, JoinKind};
use vw_storage::{ColumnData, SimDisk, SpillFile};

use super::{concat_batches, hash_lane, lanes_eq, BoxedOperator, Operator};

/// Spill fan-out; partitions are chosen by the top 3 bits of the key hash.
const SPILL_PARTITIONS: usize = 8;

/// Hash join operator.
pub struct HashJoin {
    left: BoxedOperator,
    right: Option<BoxedOperator>,
    kind: JoinKind,
    /// (left key col, right key col) pairs.
    on: Vec<(usize, usize)>,
    residual: Option<ExprEvaluator>,
    out_schema: Schema,
    left_schema: Schema,
    right_schema: Schema,
    build: Option<Arc<BuildData>>,
    /// When probing inside a morsel-parallel Exchange: the once-cell all
    /// workers share. The first worker to reach the join executes the build
    /// child; the rest drop theirs unexecuted and reuse the frozen result.
    shared: Option<Arc<SharedBuild>>,
    stats: Option<Arc<ExecStats>>,
    /// Whether *this* worker's instance executed the build (vs reusing a
    /// sibling worker's shared build) — surfaced by `EXPLAIN ANALYZE`.
    build_executed: bool,
    /// Probe-side memory ledger (probe partitioning + loaded partitions).
    mem: MemTracker,
    disk: Option<Arc<SimDisk>>,
    /// Probe progress against a spilled build (None until needed).
    grace: Option<GraceProbe>,
    /// Query trace: build/build-wait spans and spill writes.
    trace: Option<TraceHandle>,
    /// Wait-state sink of the owning plan node (None = profiling off).
    waits: Option<Arc<WaitStats>>,
}

/// An in-memory build table: gathered columns + hash → row-index chains.
struct MemTable {
    columns: Vec<ExecVector>,
    /// hash → build row indexes (collision chains resolved by verify).
    table: FxHashMap<u64, Vec<u32>>,
}

impl MemTable {
    fn empty() -> MemTable {
        MemTable {
            columns: Vec::new(),
            table: FxHashMap::default(),
        }
    }

    /// Hash dense `columns` on the right-side `on` keys.
    fn build(columns: Vec<ExecVector>, rows: usize, on: &[(usize, usize)]) -> MemTable {
        let mut table: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        'row: for i in 0..rows {
            let mut h = 0u64;
            for &(_, rc) in on {
                if columns[rc].is_null(i) {
                    continue 'row; // NULL keys never match
                }
                h = hash_lane(&columns[rc], i, h);
            }
            table.entry(h).or_default().push(i as u32);
        }
        MemTable { columns, table }
    }
}

enum BuildRepr {
    /// Fits in budget: one resident hash table (the fast path).
    Mem(MemTable),
    /// Spilled: build rows partitioned by key hash, NULL keys dropped.
    Spilled(Vec<SpillFile>),
}

/// Frozen build side of a hash join. Immutable once built, so probe workers
/// can share it behind an `Arc`; spilled partitions are read through `&self`.
/// Holds its memory reservation (`mem`) for as long as it lives.
pub struct BuildData {
    repr: BuildRepr,
    rows: u64,
    mem: MemTracker,
}

impl BuildData {
    /// An empty build side (matches nothing). For tests and placeholders.
    pub fn empty() -> BuildData {
        BuildData {
            repr: BuildRepr::Mem(MemTable::empty()),
            rows: 0,
            mem: MemTracker::detached(),
        }
    }

    /// Drain `right` and hash its rows on the `on` keys, reserving against
    /// `mem` and switching to hash-partitioned spill files under pressure.
    fn from_operator(
        right: &mut dyn Operator,
        on: &[(usize, usize)],
        mut mem: MemTracker,
        disk: &Option<Arc<SimDisk>>,
        waits: Option<&WaitStats>,
    ) -> Result<BuildData> {
        let ncols = right.schema().len();
        let mut pending: Vec<Batch> = Vec::new();
        let mut pending_bytes = 0usize;
        let mut parts: Option<Vec<SpillFile>> = None;
        let mut rows_total = 0u64;
        while let Some(b) = right.next()? {
            let b = b.compact();
            if b.rows == 0 {
                continue;
            }
            rows_total += b.rows as u64;
            if let Some(files) = &mut parts {
                partition_build_batch(&b, on, files, &mut mem, waits)?;
                continue;
            }
            // Reserve batch bytes plus the hash-table share (~16B/row) up
            // front, so the later table build is already paid for.
            let cost = batch_bytes(&b) + b.rows * 16;
            if mem.try_grow(cost) {
                pending_bytes += cost;
                pending.push(b);
                continue;
            }
            // Pressure: go grace — partition everything accumulated so far
            // plus this batch, release the in-memory reservation.
            let d = spill_disk(disk);
            let mut files: Vec<SpillFile> = (0..SPILL_PARTITIONS)
                .map(|_| SpillFile::new(d.clone()))
                .collect();
            for pb in pending.drain(..) {
                partition_build_batch(&pb, on, &mut files, &mut mem, waits)?;
            }
            mem.shrink(pending_bytes);
            pending_bytes = 0;
            partition_build_batch(&b, on, &mut files, &mut mem, waits)?;
            parts = Some(files);
        }
        let repr = match parts {
            Some(files) => BuildRepr::Spilled(files),
            None if pending.is_empty() => BuildRepr::Mem(MemTable {
                columns: empty_columns(right.schema()),
                table: FxHashMap::default(),
            }),
            None => {
                let batch = concat_batches(pending, ncols);
                let rows = batch.rows;
                BuildRepr::Mem(MemTable::build(batch.columns, rows, on))
            }
        };
        Ok(BuildData {
            repr,
            rows: rows_total,
            mem,
        })
    }

    /// True if this build spilled to partition files.
    pub fn spilled(&self) -> bool {
        matches!(self.repr, BuildRepr::Spilled(_))
    }
}

/// Typed zero-row columns: downstream code indexes columns even when the
/// build side produced no rows (or an empty spill partition).
fn empty_columns(schema: &Schema) -> Vec<ExecVector> {
    schema
        .fields()
        .iter()
        .map(|f| ExecVector::not_null(ColumnData::empty(f.ty)))
        .collect()
}

/// Route one dense build batch into the hash partitions (NULL keys dropped).
fn partition_build_batch(
    b: &Batch,
    on: &[(usize, usize)],
    files: &mut [SpillFile],
    mem: &mut MemTracker,
    waits: Option<&WaitStats>,
) -> Result<()> {
    let mut part_rows: Vec<Vec<u32>> = vec![Vec::new(); SPILL_PARTITIONS];
    'row: for i in 0..b.rows {
        let mut h = 0u64;
        for &(_, rc) in on {
            if b.columns[rc].is_null(i) {
                continue 'row;
            }
            h = hash_lane(&b.columns[rc], i, h);
        }
        part_rows[(h >> 61) as usize].push(i as u32);
    }
    for (p, idx) in part_rows.into_iter().enumerate() {
        if idx.is_empty() {
            continue;
        }
        let sub = Batch::new(b.columns.iter().map(|c| c.gather(&idx)).collect());
        let bytes = write_batch(&mut files[p], &sub, waits)?;
        mem.note_spill(bytes);
    }
    Ok(())
}

/// Progress of a partition-at-a-time probe against a spilled build.
struct GraceProbe {
    /// Probe rows partitioned by their own key hash (NULL keys → part 0).
    probe_parts: Vec<SpillFile>,
    /// Current partition (0..SPILL_PARTITIONS; == len means done).
    part: usize,
    /// Next probe chunk within the current partition.
    chunk: usize,
    /// The current partition's build table (force-reserved working unit).
    loaded: Option<MemTable>,
    loaded_bytes: usize,
}

impl HashJoin {
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        kind: JoinKind,
        on: Vec<(usize, usize)>,
        residual: Option<Expr>,
        naive_nulls: bool,
    ) -> Result<HashJoin> {
        if on.is_empty() {
            return Err(VwError::Plan("hash join needs at least one key".into()));
        }
        let left_schema = left.schema().clone();
        let right_schema = right.schema().clone();
        let out_schema = match kind {
            JoinKind::Semi | JoinKind::Anti => left_schema.clone(),
            JoinKind::Inner => left_schema.join(&right_schema),
            JoinKind::Left => {
                let mut fields: Vec<vw_common::Field> = left_schema.fields().to_vec();
                for f in right_schema.fields() {
                    let mut nf = f.clone();
                    nf.nullable = true;
                    fields.push(nf);
                }
                Schema::new(fields)
            }
        };
        // Residual is evaluated over the concatenated (left ++ right) schema
        // regardless of join kind.
        let combined = left_schema.join(&right_schema);
        let residual = residual
            .map(|e| ExprEvaluator::new(e, &combined, naive_nulls))
            .transpose()?;
        Ok(HashJoin {
            left,
            right: Some(right),
            kind,
            on,
            residual,
            out_schema,
            left_schema,
            right_schema,
            build: None,
            shared: None,
            stats: None,
            build_executed: false,
            mem: MemTracker::detached(),
            disk: None,
            grace: None,
            trace: None,
            waits: None,
        })
    }

    /// Share the build side through `slot` with the other Exchange workers.
    pub fn set_shared_build(&mut self, slot: Arc<SharedBuild>) {
        self.shared = Some(slot);
    }

    /// Record build executions in `stats` (observability for tests).
    pub fn set_stats(&mut self, stats: Arc<ExecStats>) {
        self.stats = Some(stats);
    }

    /// Charge this operator's memory against a query budget. The build side
    /// gets its own tracker against the same budget (it may outlive this
    /// worker's instance when shared across an Exchange).
    pub fn set_mem_tracker(&mut self, mem: MemTracker) {
        self.mem = mem;
    }

    /// Spill target; defaults to a private scratch SimDisk when unset.
    pub fn set_spill_disk(&mut self, disk: Arc<SimDisk>) {
        self.disk = Some(disk);
    }

    /// Record build(-wait) spans and spill writes into the query trace.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Attribute build-wait and spill I/O blocked time to `waits`.
    pub fn set_waits(&mut self, waits: Arc<WaitStats>) {
        self.waits = Some(waits);
    }

    fn build_side(&mut self) -> Result<()> {
        let mut right = self.right.take().expect("build called twice");
        let on = self.on.clone();
        let stats = self.stats.clone();
        let mem = MemTracker::new(self.mem.budget().clone());
        let disk = self.disk.clone();
        let waits = self.waits.clone();
        let executed = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let executed_in = executed.clone();
        let make = move || {
            executed_in.store(true, std::sync::atomic::Ordering::Relaxed);
            if let Some(s) = &stats {
                s.note_build();
            }
            BuildData::from_operator(right.as_mut(), &on, mem, &disk, waits.as_deref())
        };
        let span = self.trace.as_ref().map(|t| t.start());
        let t0 = self.waits.as_ref().map(|_| std::time::Instant::now());
        let data = match &self.shared {
            Some(slot) => slot.clone().get_or_build(make)?,
            None => Arc::new(make()?),
        };
        self.build_executed = executed.load(std::sync::atomic::Ordering::Relaxed);
        // Workers that arrived while a sibling built were *blocked*; the
        // executing worker's time is build compute, not a wait.
        if let (Some(w), Some(t0), false) = (&self.waits, t0, self.build_executed) {
            w.record(WaitClass::BuildWait, t0.elapsed().as_nanos() as u64);
        }
        if let (Some(t), Some(start)) = (&self.trace, span) {
            // The same call site is a build on the executing worker and a
            // blocked wait on every worker that arrived while it ran.
            let name = if self.build_executed {
                "join build"
            } else {
                "build wait"
            };
            t.span_arg(name, "sched", start, Some(("rows", data.rows)));
            if self.build_executed && data.spilled() {
                t.instant(
                    "spill write",
                    "spill",
                    Some(("bytes", data.mem.spill_bytes())),
                );
            }
        }
        self.build = Some(data);
        Ok(())
    }

    /// Candidate (probe, build) pairs for one dense probe batch.
    fn match_pairs(&self, probe: &Batch, mt: &MemTable) -> (Vec<u32>, Vec<u32>) {
        let mut probe_idx = Vec::new();
        let mut build_idx = Vec::new();
        'row: for i in 0..probe.rows {
            let mut h = 0u64;
            for &(lc, _) in &self.on {
                if probe.columns[lc].is_null(i) {
                    continue 'row;
                }
                h = hash_lane(&probe.columns[lc], i, h);
            }
            if let Some(cands) = mt.table.get(&h) {
                for &bj in cands {
                    let ok = self.on.iter().all(|&(lc, rc)| {
                        lanes_eq(&probe.columns[lc], i, &mt.columns[rc], bj as usize)
                    });
                    if ok {
                        probe_idx.push(i as u32);
                        build_idx.push(bj);
                    }
                }
            }
        }
        (probe_idx, build_idx)
    }

    /// Assemble the combined (left ++ right) batch for matched pairs.
    fn combined_batch(&self, probe: &Batch, mt: &MemTable, pi: &[u32], bi: &[u32]) -> Batch {
        let mut cols = Vec::with_capacity(self.left_schema.len() + self.right_schema.len());
        for c in &probe.columns {
            cols.push(c.gather(pi));
        }
        for c in &mt.columns {
            cols.push(c.gather(bi));
        }
        Batch::new(cols)
    }

    /// Run one dense probe batch through match → residual → kind assembly.
    /// `Ok(None)` means this batch produced no output rows.
    fn emit_for_probe(&self, probe: &Batch, mt: &MemTable) -> Result<Option<Batch>> {
        let (mut pi, mut bi) = self.match_pairs(probe, mt);
        // Residual predicate filters candidate pairs.
        if let Some(res) = &self.residual {
            if !pi.is_empty() {
                let combined = self.combined_batch(probe, mt, &pi, &bi);
                let v = res.eval(&combined)?;
                let vals = match &v.data {
                    ColumnData::Bool(b) => b,
                    _ => return Err(VwError::Exec("residual must be boolean".into())),
                };
                let keep: Vec<usize> = (0..pi.len())
                    .filter(|&k| vals[k] && !v.is_null(k))
                    .collect();
                pi = keep.iter().map(|&k| pi[k]).collect();
                bi = keep.iter().map(|&k| bi[k]).collect();
            }
        }
        let out = match self.kind {
            JoinKind::Inner => {
                if pi.is_empty() {
                    return Ok(None);
                }
                self.combined_batch(probe, mt, &pi, &bi)
            }
            JoinKind::Left => {
                // matched pairs + null-padded unmatched probe rows
                let mut matched = vec![false; probe.rows];
                for &p in &pi {
                    matched[p as usize] = true;
                }
                let unmatched: Vec<u32> = (0..probe.rows as u32)
                    .filter(|&i| !matched[i as usize])
                    .collect();
                let mut cols = Vec::with_capacity(self.left_schema.len() + self.right_schema.len());
                let all_pi: Vec<u32> = pi
                    .iter()
                    .copied()
                    .chain(unmatched.iter().copied())
                    .collect();
                if all_pi.is_empty() {
                    return Ok(None);
                }
                for c in &probe.columns {
                    cols.push(c.gather(&all_pi));
                }
                for (k, c) in mt.columns.iter().enumerate() {
                    let matched_part = c.gather(&bi);
                    let pad = ExecVector::all_null(self.right_schema.field(k).ty, unmatched.len());
                    cols.push(super::concat_vectors(&[matched_part, pad]));
                }
                Batch::new(cols)
            }
            JoinKind::Semi | JoinKind::Anti => {
                let mut matched = vec![false; probe.rows];
                for &p in &pi {
                    matched[p as usize] = true;
                }
                let want = self.kind == JoinKind::Semi;
                let keep: Vec<u32> = (0..probe.rows as u32)
                    .filter(|&i| matched[i as usize] == want)
                    .collect();
                if keep.is_empty() {
                    return Ok(None);
                }
                let cols = probe.columns.iter().map(|c| c.gather(&keep)).collect();
                Batch::new(cols)
            }
        };
        Ok(Some(out))
    }

    /// Drain the probe input into hash partitions aligned with the spilled
    /// build. NULL-keyed probe rows match nothing; LEFT/ANTI still need to
    /// surface them, so they ride along in partition 0.
    fn init_grace(&mut self) -> Result<GraceProbe> {
        let d = spill_disk(&self.disk);
        let mut files: Vec<SpillFile> = (0..SPILL_PARTITIONS)
            .map(|_| SpillFile::new(d.clone()))
            .collect();
        let keep_null = matches!(self.kind, JoinKind::Left | JoinKind::Anti);
        while let Some(b) = self.left.next()? {
            let b = b.compact();
            if b.rows == 0 {
                continue;
            }
            let mut part_rows: Vec<Vec<u32>> = vec![Vec::new(); SPILL_PARTITIONS];
            'row: for i in 0..b.rows {
                let mut h = 0u64;
                for &(lc, _) in &self.on {
                    if b.columns[lc].is_null(i) {
                        if keep_null {
                            part_rows[0].push(i as u32);
                        }
                        continue 'row;
                    }
                    h = hash_lane(&b.columns[lc], i, h);
                }
                part_rows[(h >> 61) as usize].push(i as u32);
            }
            for (p, idx) in part_rows.into_iter().enumerate() {
                if idx.is_empty() {
                    continue;
                }
                let sub = Batch::new(b.columns.iter().map(|c| c.gather(&idx)).collect());
                let bytes = write_batch(&mut files[p], &sub, self.waits.as_deref())?;
                self.mem.note_spill(bytes);
                if let Some(t) = &self.trace {
                    t.instant("spill write", "spill", Some(("bytes", bytes as u64)));
                }
            }
        }
        Ok(GraceProbe {
            probe_parts: files,
            part: 0,
            chunk: 0,
            loaded: None,
            loaded_bytes: 0,
        })
    }

    /// Advance the partition-at-a-time probe: load build partition, stream
    /// its probe chunks, release, move to the next partition.
    fn grace_step(
        &mut self,
        g: &mut GraceProbe,
        build_files: &[SpillFile],
    ) -> Result<Option<Batch>> {
        loop {
            if g.part >= SPILL_PARTITIONS {
                return Ok(None);
            }
            if g.loaded.is_none() {
                // One resident build partition is the join's minimal working
                // unit — reserve it unconditionally so every plan completes.
                let f = &build_files[g.part];
                let mut chunks: Vec<Batch> = Vec::new();
                let mut bytes = 0usize;
                for ci in 0..f.chunk_count() {
                    let b = read_batch(f, ci, self.waits.as_deref())?;
                    bytes += batch_bytes(&b) + b.rows * 16;
                    chunks.push(b);
                }
                self.mem.force_grow(bytes);
                g.loaded_bytes = bytes;
                let mt = if chunks.is_empty() {
                    // Empty build partition: LEFT/ANTI probes still surface
                    // their unmatched rows against it.
                    MemTable {
                        columns: empty_columns(&self.right_schema),
                        table: FxHashMap::default(),
                    }
                } else {
                    let batch = concat_batches(chunks, self.right_schema.len());
                    let rows = batch.rows;
                    MemTable::build(batch.columns, rows, &self.on)
                };
                g.loaded = Some(mt);
                g.chunk = 0;
            }
            if g.chunk >= g.probe_parts[g.part].chunk_count() {
                g.loaded = None;
                self.mem.shrink(g.loaded_bytes);
                g.loaded_bytes = 0;
                g.part += 1;
                continue;
            }
            let probe = read_batch(&g.probe_parts[g.part], g.chunk, self.waits.as_deref())?;
            g.chunk += 1;
            if probe.rows == 0 {
                continue;
            }
            let mt = g.loaded.as_ref().unwrap();
            if let Some(out) = self.emit_for_probe(&probe, mt)? {
                return Ok(Some(out));
            }
        }
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn profile_extras(&self) -> Vec<(&'static str, u64)> {
        let mut ex = Vec::new();
        let mut peak = self.mem.peak();
        let mut spill_bytes = self.mem.spill_bytes();
        let mut spill_parts = 0u64;
        match &self.build {
            // Summed per plan node across workers: at dop=N with a shared
            // build, the profile shows builds=1, build_reused=N-1; the build
            // tracker's numbers are reported only by the executing worker.
            Some(b) if self.build_executed => {
                ex.push(("builds", 1));
                ex.push(("build_rows", b.rows));
                peak += b.mem.peak();
                spill_bytes += b.mem.spill_bytes();
                if let BuildRepr::Spilled(files) = &b.repr {
                    spill_parts = files.iter().filter(|f| !f.is_empty()).count() as u64;
                }
            }
            Some(_) => ex.push(("build_reused", 1)),
            None => {}
        }
        ex.push(("peak_bytes", peak));
        if spill_bytes > 0 {
            ex.push(("spill_parts", spill_parts));
            ex.push(("spill_bytes", spill_bytes));
        }
        ex
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.build.is_none() {
            self.build_side()?;
        }
        let build = self.build.clone().unwrap();
        match &build.repr {
            BuildRepr::Mem(mt) => loop {
                let Some(batch) = self.left.next()? else {
                    return Ok(None);
                };
                let probe = batch.compact();
                if probe.rows == 0 {
                    continue;
                }
                if let Some(out) = self.emit_for_probe(&probe, mt)? {
                    return Ok(Some(out));
                }
            },
            BuildRepr::Spilled(files) => {
                if self.grace.is_none() {
                    self.grace = Some(self.init_grace()?);
                }
                let mut g = self.grace.take().unwrap();
                let out = self.grace_step(&mut g, files);
                self.grace = Some(g);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{collect_rows, BatchSource};
    use vw_common::{DataType, Field, Value};
    use vw_plan::BinOp;

    fn orders() -> BoxedOperator {
        // (orderkey, custkey)
        let schema = Schema::new(vec![
            Field::new("orderkey", DataType::I64),
            Field::nullable("custkey", DataType::I64),
        ]);
        let rows = vec![
            vec![Value::I64(1), Value::I64(10)],
            vec![Value::I64(2), Value::I64(20)],
            vec![Value::I64(3), Value::I64(10)],
            vec![Value::I64(4), Value::Null],
            vec![Value::I64(5), Value::I64(99)],
        ];
        Box::new(BatchSource::from_rows(schema, &rows, 2).unwrap())
    }

    fn customers() -> BoxedOperator {
        // (custkey, name)
        let schema = Schema::new(vec![
            Field::new("custkey", DataType::I64),
            Field::new("name", DataType::Str),
        ]);
        let rows = vec![
            vec![Value::I64(10), Value::Str("alice".into())],
            vec![Value::I64(20), Value::Str("bob".into())],
            vec![Value::I64(30), Value::Str("carol".into())],
        ];
        Box::new(BatchSource::from_rows(schema, &rows, 10).unwrap())
    }

    fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by(|a, b| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }

    #[test]
    fn inner_join_matches() {
        let mut j = HashJoin::new(
            orders(),
            customers(),
            JoinKind::Inner,
            vec![(1, 0)],
            None,
            false,
        )
        .unwrap();
        assert_eq!(j.schema().len(), 4);
        let rows = sorted(collect_rows(&mut j).unwrap());
        assert_eq!(rows.len(), 3); // orders 1, 2, 3 match
        assert_eq!(
            rows[0],
            vec![
                Value::I64(1),
                Value::I64(10),
                Value::I64(10),
                Value::Str("alice".into())
            ]
        );
    }

    #[test]
    fn left_join_pads_unmatched() {
        let mut j = HashJoin::new(
            orders(),
            customers(),
            JoinKind::Left,
            vec![(1, 0)],
            None,
            false,
        )
        .unwrap();
        let rows = sorted(collect_rows(&mut j).unwrap());
        assert_eq!(rows.len(), 5);
        // order 4 (null key) and order 5 (no match) padded with NULLs
        let padded: Vec<&Vec<Value>> = rows.iter().filter(|r| r[2] == Value::Null).collect();
        assert_eq!(padded.len(), 2);
        assert!(padded.iter().all(|r| r[3] == Value::Null));
        // right schema nullable in output
        assert!(j.schema().field(3).nullable);
    }

    #[test]
    fn semi_and_anti() {
        let mut s = HashJoin::new(
            orders(),
            customers(),
            JoinKind::Semi,
            vec![(1, 0)],
            None,
            false,
        )
        .unwrap();
        assert_eq!(s.schema().len(), 2);
        let rows = sorted(collect_rows(&mut s).unwrap());
        assert_eq!(
            rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::I64(1), Value::I64(2), Value::I64(3)]
        );
        let mut a = HashJoin::new(
            orders(),
            customers(),
            JoinKind::Anti,
            vec![(1, 0)],
            None,
            false,
        )
        .unwrap();
        let rows = sorted(collect_rows(&mut a).unwrap());
        // NULL-key row and unmatched row both survive ANTI
        assert_eq!(
            rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::I64(4), Value::I64(5)]
        );
    }

    #[test]
    fn duplicate_build_keys_fan_out() {
        let schema = Schema::new(vec![Field::new("k", DataType::I64)]);
        let left =
            Box::new(BatchSource::from_rows(schema.clone(), &[vec![Value::I64(1)]], 8).unwrap());
        let right_schema = Schema::new(vec![
            Field::new("k", DataType::I64),
            Field::new("n", DataType::I64),
        ]);
        let right = Box::new(
            BatchSource::from_rows(
                right_schema,
                &[
                    vec![Value::I64(1), Value::I64(100)],
                    vec![Value::I64(1), Value::I64(200)],
                ],
                8,
            )
            .unwrap(),
        );
        let mut j = HashJoin::new(left, right, JoinKind::Inner, vec![(0, 0)], None, false).unwrap();
        let rows = collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn residual_filters_pairs() {
        // join orders-customers but require orderkey > 1 via residual
        let residual = Expr::binary(BinOp::Gt, Expr::col(0), Expr::lit(Value::I64(1)));
        let mut j = HashJoin::new(
            orders(),
            customers(),
            JoinKind::Inner,
            vec![(1, 0)],
            Some(residual),
            false,
        )
        .unwrap();
        let rows = sorted(collect_rows(&mut j).unwrap());
        assert_eq!(rows.len(), 2); // orders 2 and 3
        assert_eq!(rows[0][0], Value::I64(2));
    }

    #[test]
    fn residual_in_semi_join() {
        let residual = Expr::binary(BinOp::Gt, Expr::col(0), Expr::lit(Value::I64(1)));
        let mut j = HashJoin::new(
            orders(),
            customers(),
            JoinKind::Semi,
            vec![(1, 0)],
            Some(residual),
            false,
        )
        .unwrap();
        let rows = sorted(collect_rows(&mut j).unwrap());
        assert_eq!(
            rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::I64(2), Value::I64(3)]
        );
    }

    #[test]
    fn multi_key_join() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::I64),
            Field::new("b", DataType::Str),
        ]);
        let rows_l = vec![
            vec![Value::I64(1), Value::Str("x".into())],
            vec![Value::I64(1), Value::Str("y".into())],
        ];
        let rows_r = vec![
            vec![Value::I64(1), Value::Str("y".into())],
            vec![Value::I64(2), Value::Str("y".into())],
        ];
        let left = Box::new(BatchSource::from_rows(schema.clone(), &rows_l, 8).unwrap());
        let right = Box::new(BatchSource::from_rows(schema, &rows_r, 8).unwrap());
        let mut j = HashJoin::new(
            left,
            right,
            JoinKind::Inner,
            vec![(0, 0), (1, 1)],
            None,
            false,
        )
        .unwrap();
        let rows = collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::Str("y".into()));
    }

    #[test]
    fn empty_build_side() {
        let schema = Schema::new(vec![Field::new("k", DataType::I64)]);
        let right = Box::new(BatchSource::from_rows(schema.clone(), &[], 8).unwrap());
        let left = Box::new(BatchSource::from_rows(schema, &[vec![Value::I64(1)]], 8).unwrap());
        let mut inner =
            HashJoin::new(left, right, JoinKind::Inner, vec![(0, 0)], None, false).unwrap();
        assert!(collect_rows(&mut inner).unwrap().is_empty());
    }

    // --- grace spill -----------------------------------------------------

    use crate::mem::MemBudget;

    /// Probe side: 300 rows, keys 0..150 twice (so every key matches twice
    /// when present on the build side), a NULL key row, and keys ≥ 1000 that
    /// never match. ~One third of build keys have duplicates.
    fn spill_inputs() -> (BoxedOperator, BoxedOperator) {
        let lschema = Schema::new(vec![
            Field::new("lid", DataType::I64),
            Field::nullable("lkey", DataType::I64),
        ]);
        let rschema = Schema::new(vec![
            Field::nullable("rkey", DataType::I64),
            Field::new("tag", DataType::Str),
        ]);
        let mut lrows = Vec::new();
        for i in 0..300i64 {
            let key = match i % 30 {
                0 => Value::Null,
                1 => Value::I64(1000 + i), // unmatched
                _ => Value::I64(i % 150),
            };
            lrows.push(vec![Value::I64(i), key]);
        }
        let mut rrows = Vec::new();
        for k in 0..200i64 {
            let key = if k % 40 == 7 {
                Value::Null
            } else {
                Value::I64(k)
            };
            rrows.push(vec![key, Value::Str(format!("tag-{k:04}-padding-padding"))]);
            if k % 3 == 0 {
                rrows.push(vec![
                    Value::I64(k),
                    Value::Str(format!("dup-{k:04}-padding-padding")),
                ]);
            }
        }
        let left = Box::new(BatchSource::from_rows(lschema, &lrows, 32).unwrap());
        let right = Box::new(BatchSource::from_rows(rschema, &rrows, 32).unwrap());
        (left, right)
    }

    fn run_join(kind: JoinKind, residual: Option<Expr>, budget: Option<usize>) -> Vec<Vec<Value>> {
        let (left, right) = spill_inputs();
        let mut j = HashJoin::new(left, right, kind, vec![(1, 0)], residual, false).unwrap();
        if let Some(b) = budget {
            j.set_mem_tracker(MemTracker::new(Arc::new(MemBudget::new(Some(b)))));
        }
        let rows = sorted(collect_rows(&mut j).unwrap());
        if budget.is_some() {
            assert!(
                j.build.as_ref().unwrap().spilled(),
                "tiny budget should force a grace build"
            );
        }
        rows
    }

    #[test]
    fn grace_join_matches_unbounded_all_kinds() {
        for kind in [
            JoinKind::Inner,
            JoinKind::Left,
            JoinKind::Semi,
            JoinKind::Anti,
        ] {
            let unbounded = run_join(kind, None, None);
            let spilled = run_join(kind, None, Some(2048));
            assert_eq!(spilled, unbounded, "kind {kind:?} diverged under spill");
            assert!(!unbounded.is_empty());
        }
    }

    #[test]
    fn grace_join_with_residual() {
        let residual = || Expr::binary(BinOp::Gt, Expr::col(0), Expr::lit(Value::I64(40)));
        let unbounded = run_join(JoinKind::Inner, Some(residual()), None);
        let spilled = run_join(JoinKind::Inner, Some(residual()), Some(2048));
        assert_eq!(spilled, unbounded);
        let semi_u = run_join(JoinKind::Semi, Some(residual()), None);
        let semi_s = run_join(JoinKind::Semi, Some(residual()), Some(2048));
        assert_eq!(semi_s, semi_u);
    }

    #[test]
    fn grace_join_reports_spill_in_profile() {
        let (left, right) = spill_inputs();
        let mut j = HashJoin::new(left, right, JoinKind::Inner, vec![(1, 0)], None, false).unwrap();
        j.set_mem_tracker(MemTracker::new(Arc::new(MemBudget::new(Some(2048)))));
        let _ = collect_rows(&mut j).unwrap();
        let extras: std::collections::HashMap<_, _> = j.profile_extras().into_iter().collect();
        assert!(extras["spill_bytes"] > 0);
        assert!(extras["spill_parts"] > 0);
        assert!(extras["peak_bytes"] > 0);
    }
}
