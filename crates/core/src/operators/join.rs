//! The vectorized hash join.
//!
//! Builds a hash table from the **right** input (the optimizer arranges the
//! smaller side there), then streams the left input vector-at-a-time:
//! hash probe → candidate verification (allocation-free lane comparison) →
//! gather of matched pairs. Supports inner, left-outer, semi and anti joins
//! plus a residual (non-equi) predicate evaluated over matched pairs.
//!
//! SQL NULL key semantics: a NULL key never matches anything — NULL-keyed
//! build rows are not inserted, NULL-keyed probe rows never find matches
//! (for LEFT/ANTI they surface as unmatched rows, as SQL requires).

use crate::batch::{Batch, ExecVector};
use crate::morsel::{ExecStats, SharedBuild};
use crate::vexpr::ExprEvaluator;
use std::sync::Arc;
use vw_common::hash::FxHashMap;
use vw_common::{Result, Schema, VwError};
use vw_plan::{Expr, JoinKind};
use vw_storage::ColumnData;

use super::{drain_to_single_batch, hash_lane, lanes_eq, BoxedOperator, Operator};

/// Hash join operator.
pub struct HashJoin {
    left: BoxedOperator,
    right: Option<BoxedOperator>,
    kind: JoinKind,
    /// (left key col, right key col) pairs.
    on: Vec<(usize, usize)>,
    residual: Option<ExprEvaluator>,
    out_schema: Schema,
    left_schema: Schema,
    right_schema: Schema,
    build: Option<Arc<BuildData>>,
    /// When probing inside a morsel-parallel Exchange: the once-cell all
    /// workers share. The first worker to reach the join executes the build
    /// child; the rest drop theirs unexecuted and reuse the frozen result.
    shared: Option<Arc<SharedBuild>>,
    stats: Option<Arc<ExecStats>>,
    /// Whether *this* worker's instance executed the build (vs reusing a
    /// sibling worker's shared build) — surfaced by `EXPLAIN ANALYZE`.
    build_executed: bool,
}

/// Frozen build side of a hash join: gathered columns + hash table. Immutable
/// once built, so probe workers can share it behind an `Arc`.
pub struct BuildData {
    columns: Vec<ExecVector>,
    /// hash → build row indexes (collision chains resolved by verify).
    table: FxHashMap<u64, Vec<u32>>,
}

impl BuildData {
    /// An empty build side (matches nothing). For tests and placeholders.
    pub fn empty() -> BuildData {
        BuildData {
            columns: Vec::new(),
            table: FxHashMap::default(),
        }
    }

    /// Drain `right` and hash its rows on the `on` keys.
    fn from_operator(right: &mut dyn Operator, on: &[(usize, usize)]) -> Result<BuildData> {
        let batch = drain_to_single_batch(right)?;
        let rows = batch.rows;
        let mut table: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        'row: for i in 0..rows {
            let mut h = 0u64;
            for &(_, rc) in on {
                if batch.columns[rc].is_null(i) {
                    continue 'row; // NULL keys never match
                }
                h = hash_lane(&batch.columns[rc], i, h);
            }
            table.entry(h).or_default().push(i as u32);
        }
        Ok(BuildData {
            columns: batch.columns,
            table,
        })
    }
}

impl HashJoin {
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        kind: JoinKind,
        on: Vec<(usize, usize)>,
        residual: Option<Expr>,
        naive_nulls: bool,
    ) -> Result<HashJoin> {
        if on.is_empty() {
            return Err(VwError::Plan("hash join needs at least one key".into()));
        }
        let left_schema = left.schema().clone();
        let right_schema = right.schema().clone();
        let out_schema = match kind {
            JoinKind::Semi | JoinKind::Anti => left_schema.clone(),
            JoinKind::Inner => left_schema.join(&right_schema),
            JoinKind::Left => {
                let mut fields: Vec<vw_common::Field> = left_schema.fields().to_vec();
                for f in right_schema.fields() {
                    let mut nf = f.clone();
                    nf.nullable = true;
                    fields.push(nf);
                }
                Schema::new(fields)
            }
        };
        // Residual is evaluated over the concatenated (left ++ right) schema
        // regardless of join kind.
        let combined = left_schema.join(&right_schema);
        let residual = residual
            .map(|e| ExprEvaluator::new(e, &combined, naive_nulls))
            .transpose()?;
        Ok(HashJoin {
            left,
            right: Some(right),
            kind,
            on,
            residual,
            out_schema,
            left_schema,
            right_schema,
            build: None,
            shared: None,
            stats: None,
            build_executed: false,
        })
    }

    /// Share the build side through `slot` with the other Exchange workers.
    pub fn set_shared_build(&mut self, slot: Arc<SharedBuild>) {
        self.shared = Some(slot);
    }

    /// Record build executions in `stats` (observability for tests).
    pub fn set_stats(&mut self, stats: Arc<ExecStats>) {
        self.stats = Some(stats);
    }

    fn build_side(&mut self) -> Result<()> {
        let mut right = self.right.take().expect("build called twice");
        let on = self.on.clone();
        let stats = self.stats.clone();
        let executed = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let executed_in = executed.clone();
        let mut make = move || {
            executed_in.store(true, std::sync::atomic::Ordering::Relaxed);
            if let Some(s) = &stats {
                s.note_build();
            }
            BuildData::from_operator(right.as_mut(), &on)
        };
        let data = match &self.shared {
            Some(slot) => slot.clone().get_or_build(make)?,
            None => Arc::new(make()?),
        };
        self.build_executed = executed.load(std::sync::atomic::Ordering::Relaxed);
        self.build = Some(data);
        Ok(())
    }

    /// Candidate (probe, build) pairs for one dense probe batch.
    fn match_pairs(&self, probe: &Batch) -> (Vec<u32>, Vec<u32>) {
        let build = self.build.as_ref().unwrap();
        let mut probe_idx = Vec::new();
        let mut build_idx = Vec::new();
        'row: for i in 0..probe.rows {
            let mut h = 0u64;
            for &(lc, _) in &self.on {
                if probe.columns[lc].is_null(i) {
                    continue 'row;
                }
                h = hash_lane(&probe.columns[lc], i, h);
            }
            if let Some(cands) = build.table.get(&h) {
                for &bj in cands {
                    let ok = self.on.iter().all(|&(lc, rc)| {
                        lanes_eq(&probe.columns[lc], i, &build.columns[rc], bj as usize)
                    });
                    if ok {
                        probe_idx.push(i as u32);
                        build_idx.push(bj);
                    }
                }
            }
        }
        (probe_idx, build_idx)
    }

    /// Assemble the combined (left ++ right) batch for matched pairs.
    fn combined_batch(&self, probe: &Batch, pi: &[u32], bi: &[u32]) -> Batch {
        let build = self.build.as_ref().unwrap();
        let mut cols = Vec::with_capacity(self.left_schema.len() + self.right_schema.len());
        for c in &probe.columns {
            cols.push(c.gather(pi));
        }
        for c in &build.columns {
            cols.push(c.gather(bi));
        }
        Batch::new(cols)
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn profile_extras(&self) -> Vec<(&'static str, u64)> {
        match &self.build {
            // Summed per plan node across workers: at dop=N with a shared
            // build, the profile shows builds=1, build_reused=N-1.
            Some(b) if self.build_executed => vec![
                ("builds", 1),
                (
                    "build_rows",
                    b.columns.first().map_or(0, |c| c.len()) as u64,
                ),
            ],
            Some(_) => vec![("build_reused", 1)],
            None => Vec::new(),
        }
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.build.is_none() {
            self.build_side()?;
        }
        loop {
            let Some(batch) = self.left.next()? else {
                return Ok(None);
            };
            let probe = batch.compact();
            if probe.rows == 0 {
                continue;
            }
            let (mut pi, mut bi) = self.match_pairs(&probe);
            // Residual predicate filters candidate pairs.
            if let Some(res) = &self.residual {
                if !pi.is_empty() {
                    let combined = self.combined_batch(&probe, &pi, &bi);
                    let v = res.eval(&combined)?;
                    let vals = match &v.data {
                        ColumnData::Bool(b) => b,
                        _ => return Err(VwError::Exec("residual must be boolean".into())),
                    };
                    let keep: Vec<usize> = (0..pi.len())
                        .filter(|&k| vals[k] && !v.is_null(k))
                        .collect();
                    pi = keep.iter().map(|&k| pi[k]).collect();
                    bi = keep.iter().map(|&k| bi[k]).collect();
                }
            }
            let out = match self.kind {
                JoinKind::Inner => {
                    if pi.is_empty() {
                        continue;
                    }
                    self.combined_batch(&probe, &pi, &bi)
                }
                JoinKind::Left => {
                    // matched pairs + null-padded unmatched probe rows
                    let mut matched = vec![false; probe.rows];
                    for &p in &pi {
                        matched[p as usize] = true;
                    }
                    let unmatched: Vec<u32> = (0..probe.rows as u32)
                        .filter(|&i| !matched[i as usize])
                        .collect();
                    let mut cols =
                        Vec::with_capacity(self.left_schema.len() + self.right_schema.len());
                    let all_pi: Vec<u32> = pi
                        .iter()
                        .copied()
                        .chain(unmatched.iter().copied())
                        .collect();
                    for c in &probe.columns {
                        cols.push(c.gather(&all_pi));
                    }
                    let build = self.build.as_ref().unwrap();
                    for (k, c) in build.columns.iter().enumerate() {
                        let matched_part = c.gather(&bi);
                        let pad =
                            ExecVector::all_null(self.right_schema.field(k).ty, unmatched.len());
                        cols.push(super::concat_vectors(&[matched_part, pad]));
                    }
                    if all_pi.is_empty() {
                        continue;
                    }
                    Batch::new(cols)
                }
                JoinKind::Semi | JoinKind::Anti => {
                    let mut matched = vec![false; probe.rows];
                    for &p in &pi {
                        matched[p as usize] = true;
                    }
                    let want = self.kind == JoinKind::Semi;
                    let keep: Vec<u32> = (0..probe.rows as u32)
                        .filter(|&i| matched[i as usize] == want)
                        .collect();
                    if keep.is_empty() {
                        continue;
                    }
                    let cols = probe.columns.iter().map(|c| c.gather(&keep)).collect();
                    Batch::new(cols)
                }
            };
            return Ok(Some(out));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{collect_rows, BatchSource};
    use vw_common::{DataType, Field, Value};
    use vw_plan::BinOp;

    fn orders() -> BoxedOperator {
        // (orderkey, custkey)
        let schema = Schema::new(vec![
            Field::new("orderkey", DataType::I64),
            Field::nullable("custkey", DataType::I64),
        ]);
        let rows = vec![
            vec![Value::I64(1), Value::I64(10)],
            vec![Value::I64(2), Value::I64(20)],
            vec![Value::I64(3), Value::I64(10)],
            vec![Value::I64(4), Value::Null],
            vec![Value::I64(5), Value::I64(99)],
        ];
        Box::new(BatchSource::from_rows(schema, &rows, 2).unwrap())
    }

    fn customers() -> BoxedOperator {
        // (custkey, name)
        let schema = Schema::new(vec![
            Field::new("custkey", DataType::I64),
            Field::new("name", DataType::Str),
        ]);
        let rows = vec![
            vec![Value::I64(10), Value::Str("alice".into())],
            vec![Value::I64(20), Value::Str("bob".into())],
            vec![Value::I64(30), Value::Str("carol".into())],
        ];
        Box::new(BatchSource::from_rows(schema, &rows, 10).unwrap())
    }

    fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort_by(|a, b| {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| x.total_cmp(y))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        rows
    }

    #[test]
    fn inner_join_matches() {
        let mut j = HashJoin::new(
            orders(),
            customers(),
            JoinKind::Inner,
            vec![(1, 0)],
            None,
            false,
        )
        .unwrap();
        assert_eq!(j.schema().len(), 4);
        let rows = sorted(collect_rows(&mut j).unwrap());
        assert_eq!(rows.len(), 3); // orders 1, 2, 3 match
        assert_eq!(
            rows[0],
            vec![
                Value::I64(1),
                Value::I64(10),
                Value::I64(10),
                Value::Str("alice".into())
            ]
        );
    }

    #[test]
    fn left_join_pads_unmatched() {
        let mut j = HashJoin::new(
            orders(),
            customers(),
            JoinKind::Left,
            vec![(1, 0)],
            None,
            false,
        )
        .unwrap();
        let rows = sorted(collect_rows(&mut j).unwrap());
        assert_eq!(rows.len(), 5);
        // order 4 (null key) and order 5 (no match) padded with NULLs
        let padded: Vec<&Vec<Value>> = rows.iter().filter(|r| r[2] == Value::Null).collect();
        assert_eq!(padded.len(), 2);
        assert!(padded.iter().all(|r| r[3] == Value::Null));
        // right schema nullable in output
        assert!(j.schema().field(3).nullable);
    }

    #[test]
    fn semi_and_anti() {
        let mut s = HashJoin::new(
            orders(),
            customers(),
            JoinKind::Semi,
            vec![(1, 0)],
            None,
            false,
        )
        .unwrap();
        assert_eq!(s.schema().len(), 2);
        let rows = sorted(collect_rows(&mut s).unwrap());
        assert_eq!(
            rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::I64(1), Value::I64(2), Value::I64(3)]
        );
        let mut a = HashJoin::new(
            orders(),
            customers(),
            JoinKind::Anti,
            vec![(1, 0)],
            None,
            false,
        )
        .unwrap();
        let rows = sorted(collect_rows(&mut a).unwrap());
        // NULL-key row and unmatched row both survive ANTI
        assert_eq!(
            rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::I64(4), Value::I64(5)]
        );
    }

    #[test]
    fn duplicate_build_keys_fan_out() {
        let schema = Schema::new(vec![Field::new("k", DataType::I64)]);
        let left =
            Box::new(BatchSource::from_rows(schema.clone(), &[vec![Value::I64(1)]], 8).unwrap());
        let right_schema = Schema::new(vec![
            Field::new("k", DataType::I64),
            Field::new("n", DataType::I64),
        ]);
        let right = Box::new(
            BatchSource::from_rows(
                right_schema,
                &[
                    vec![Value::I64(1), Value::I64(100)],
                    vec![Value::I64(1), Value::I64(200)],
                ],
                8,
            )
            .unwrap(),
        );
        let mut j = HashJoin::new(left, right, JoinKind::Inner, vec![(0, 0)], None, false).unwrap();
        let rows = collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn residual_filters_pairs() {
        // join orders-customers but require orderkey > 1 via residual
        let residual = Expr::binary(BinOp::Gt, Expr::col(0), Expr::lit(Value::I64(1)));
        let mut j = HashJoin::new(
            orders(),
            customers(),
            JoinKind::Inner,
            vec![(1, 0)],
            Some(residual),
            false,
        )
        .unwrap();
        let rows = sorted(collect_rows(&mut j).unwrap());
        assert_eq!(rows.len(), 2); // orders 2 and 3
        assert_eq!(rows[0][0], Value::I64(2));
    }

    #[test]
    fn residual_in_semi_join() {
        let residual = Expr::binary(BinOp::Gt, Expr::col(0), Expr::lit(Value::I64(1)));
        let mut j = HashJoin::new(
            orders(),
            customers(),
            JoinKind::Semi,
            vec![(1, 0)],
            Some(residual),
            false,
        )
        .unwrap();
        let rows = sorted(collect_rows(&mut j).unwrap());
        assert_eq!(
            rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::I64(2), Value::I64(3)]
        );
    }

    #[test]
    fn multi_key_join() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::I64),
            Field::new("b", DataType::Str),
        ]);
        let rows_l = vec![
            vec![Value::I64(1), Value::Str("x".into())],
            vec![Value::I64(1), Value::Str("y".into())],
        ];
        let rows_r = vec![
            vec![Value::I64(1), Value::Str("y".into())],
            vec![Value::I64(2), Value::Str("y".into())],
        ];
        let left = Box::new(BatchSource::from_rows(schema.clone(), &rows_l, 8).unwrap());
        let right = Box::new(BatchSource::from_rows(schema, &rows_r, 8).unwrap());
        let mut j = HashJoin::new(
            left,
            right,
            JoinKind::Inner,
            vec![(0, 0), (1, 1)],
            None,
            false,
        )
        .unwrap();
        let rows = collect_rows(&mut j).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::Str("y".into()));
    }

    #[test]
    fn empty_build_side() {
        let schema = Schema::new(vec![Field::new("k", DataType::I64)]);
        let right = Box::new(BatchSource::from_rows(schema.clone(), &[], 8).unwrap());
        let left = Box::new(BatchSource::from_rows(schema, &[vec![Value::I64(1)]], 8).unwrap());
        let mut inner =
            HashJoin::new(left, right, JoinKind::Inner, vec![(0, 0)], None, false).unwrap();
        assert!(collect_rows(&mut inner).unwrap().is_empty());
    }
}
