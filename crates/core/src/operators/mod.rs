//! Vectorized Volcano operators.
//!
//! Pull-based (`next()` returns a [`Batch`] or end-of-stream), exactly one
//! virtual call per ~1000-tuple vector — the X100 execution model [1]. Each
//! operator is a plain struct; trees are built by the cross-compiler in
//! [`crate::compile`].

pub mod aggregate;
pub mod exchange;
pub mod filter;
pub mod join;
pub mod limit;
pub mod merge_join;
pub mod perfect;
pub mod project;
pub mod scan;
pub mod sort;

pub use aggregate::HashAggregate;
pub use exchange::Exchange;
pub use filter::VecFilter;
pub use join::{BuildData, HashJoin};
pub use limit::VecLimit;
pub use merge_join::MergeJoin;
pub use project::VecProject;
pub use scan::VecScan;
pub use sort::{TopN, VecSort};

use crate::batch::{Batch, ExecVector};
use vw_common::hash::{hash_bytes, hash_combine, hash_u64};
use vw_common::{normalize_key_f64, Result, Schema, Value};
use vw_storage::{ColumnData, StrColumn};

/// A vectorized operator: the unit of query-plan composition.
pub trait Operator: Send {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// Produce the next batch, or `None` at end of stream.
    fn next(&mut self) -> Result<Option<Batch>>;
    /// Operator-specific profile counters (e.g. morsels claimed, groups
    /// pruned, build reuse). Collected once by the profiling wrapper when the
    /// operator reaches end-of-stream; summed per plan node across Exchange
    /// workers.
    ///
    /// Determinism contract: keys must be `'static` literals drawn from a
    /// fixed per-operator set. The profile node merges them into a sorted
    /// map, so `EXPLAIN ANALYZE` renders extras in the same key order on
    /// every run at every dop — worker arrival order can never reorder them.
    fn profile_extras(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

/// Boxed operator trees.
pub type BoxedOperator = Box<dyn Operator>;

/// Drain an operator into rows (tests and result delivery).
pub fn collect_rows(op: &mut dyn Operator) -> Result<Vec<Vec<Value>>> {
    let schema = op.schema().clone();
    let mut out = Vec::new();
    while let Some(batch) = op.next()? {
        out.extend(batch.to_rows(&schema));
    }
    Ok(out)
}

/// Hash one lane of a column into an accumulator (join/aggregate keys).
/// NULL hashes to a fixed marker so NULL groups collide (GROUP BY treats
/// NULLs as equal); join code must additionally reject NULL keys.
#[inline]
pub fn hash_lane(col: &ExecVector, i: usize, acc: u64) -> u64 {
    if col.is_null(i) {
        return hash_combine(acc, 0x6e75_6c6c);
    }
    let h = match &col.data {
        ColumnData::Bool(v) => hash_u64(v[i] as u64),
        ColumnData::I32(v) => hash_u64(v[i] as i64 as u64),
        ColumnData::I64(v) => hash_u64(v[i] as u64),
        // Normalize before hashing so 0.0/-0.0 and all NaN payloads land in
        // the same bucket (SQL key equality, not bit equality).
        ColumnData::F64(v) => hash_u64(normalize_key_f64(v[i]).to_bits()),
        ColumnData::Str(v) => hash_bytes(v.get_bytes(i)),
    };
    hash_combine(acc, h)
}

/// Allocation-free equality between two column lanes (hash-table verify).
/// NULL == NULL here (GROUP BY semantics); join code rejects NULL keys
/// before ever probing.
#[inline]
pub fn lanes_eq(a: &ExecVector, i: usize, b: &ExecVector, j: usize) -> bool {
    match (a.is_null(i), b.is_null(j)) {
        (true, true) => return true,
        (false, false) => {}
        _ => return false,
    }
    match (&a.data, &b.data) {
        (ColumnData::Bool(x), ColumnData::Bool(y)) => x[i] == y[j],
        (ColumnData::I32(x), ColumnData::I32(y)) => x[i] == y[j],
        (ColumnData::I64(x), ColumnData::I64(y)) => x[i] == y[j],
        (ColumnData::I32(x), ColumnData::I64(y)) => x[i] as i64 == y[j],
        (ColumnData::I64(x), ColumnData::I32(y)) => x[i] == y[j] as i64,
        (ColumnData::F64(x), ColumnData::F64(y)) => {
            // Key equality on normalized bits: 0.0 == -0.0, NaN == NaN.
            normalize_key_f64(x[i]).to_bits() == normalize_key_f64(y[j]).to_bits()
        }
        (ColumnData::Str(x), ColumnData::Str(y)) => x.get_bytes(i) == y.get_bytes(j),
        _ => false,
    }
}

/// Allocation-free ordering between two lanes of the *same* column type.
/// NULLs sort first (consistent with `Value::total_cmp`).
#[inline]
pub fn lanes_cmp(a: &ExecVector, i: usize, b: &ExecVector, j: usize) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.is_null(i), b.is_null(j)) {
        (true, true) => return Ordering::Equal,
        (true, false) => return Ordering::Less,
        (false, true) => return Ordering::Greater,
        _ => {}
    }
    match (&a.data, &b.data) {
        (ColumnData::Bool(x), ColumnData::Bool(y)) => x[i].cmp(&y[j]),
        (ColumnData::I32(x), ColumnData::I32(y)) => x[i].cmp(&y[j]),
        (ColumnData::I64(x), ColumnData::I64(y)) => x[i].cmp(&y[j]),
        (ColumnData::F64(x), ColumnData::F64(y)) => {
            x[i].partial_cmp(&y[j]).unwrap_or(Ordering::Equal)
        }
        (ColumnData::Str(x), ColumnData::Str(y)) => x.get_bytes(i).cmp(y.get_bytes(j)),
        _ => Ordering::Equal,
    }
}

/// Ordering of two lanes under one sort key: the direction applies to
/// values, while NULL placement (`nulls_first`) is absolute — `DESC NULLS
/// FIRST` still puts NULLs first. For default keys (`nulls_first == asc`)
/// this equals the engine's historical `lanes_cmp`-then-reverse behaviour.
#[inline]
pub fn sort_key_cmp(
    k: &vw_plan::SortKey,
    a: &ExecVector,
    i: usize,
    b: &ExecVector,
    j: usize,
) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.is_null(i), b.is_null(j)) {
        (true, true) => Ordering::Equal,
        (true, false) => {
            if k.nulls_first {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        }
        (false, true) => {
            if k.nulls_first {
                Ordering::Greater
            } else {
                Ordering::Less
            }
        }
        (false, false) => {
            let o = lanes_cmp(a, i, b, j);
            if k.asc {
                o
            } else {
                o.reverse()
            }
        }
    }
}

/// Concatenate column chunks of identical physical type.
pub fn concat_vectors(parts: &[ExecVector]) -> ExecVector {
    if parts.len() == 1 {
        return parts[0].clone();
    }
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let any_nulls = parts.iter().any(|p| p.nulls.is_some());
    let mut nulls = if any_nulls {
        Some(Vec::with_capacity(total))
    } else {
        None
    };
    let data = match &parts[0].data {
        ColumnData::Bool(_) => {
            let mut out = Vec::with_capacity(total);
            for p in parts {
                if let ColumnData::Bool(v) = &p.data {
                    out.extend_from_slice(v);
                }
            }
            ColumnData::Bool(out)
        }
        ColumnData::I32(_) => {
            let mut out = Vec::with_capacity(total);
            for p in parts {
                if let ColumnData::I32(v) = &p.data {
                    out.extend_from_slice(v);
                }
            }
            ColumnData::I32(out)
        }
        ColumnData::I64(_) => {
            let mut out = Vec::with_capacity(total);
            for p in parts {
                if let ColumnData::I64(v) = &p.data {
                    out.extend_from_slice(v);
                }
            }
            ColumnData::I64(out)
        }
        ColumnData::F64(_) => {
            let mut out = Vec::with_capacity(total);
            for p in parts {
                if let ColumnData::F64(v) = &p.data {
                    out.extend_from_slice(v);
                }
            }
            ColumnData::F64(out)
        }
        ColumnData::Str(_) => {
            let mut out = StrColumn::with_capacity(total, total * 8);
            for p in parts {
                if let ColumnData::Str(v) = &p.data {
                    for s in v.iter() {
                        out.push(s);
                    }
                }
            }
            ColumnData::Str(out)
        }
    };
    if let Some(nv) = &mut nulls {
        for p in parts {
            match &p.nulls {
                Some(n) => nv.extend_from_slice(n),
                None => nv.extend(std::iter::repeat_n(false, p.len())),
            }
        }
    }
    ExecVector::new(data, nulls)
}

/// Concatenate dense batches column-wise into one batch. `ncols` lets a
/// zero-column batch list (COUNT(*)-only shapes) keep its row count.
pub fn concat_batches(parts: Vec<Batch>, ncols: usize) -> Batch {
    let mut cols: Vec<Vec<ExecVector>> = vec![Vec::with_capacity(parts.len()); ncols];
    let mut rows = 0usize;
    for b in parts {
        debug_assert!(b.sel.is_none(), "concat_batches needs dense batches");
        rows += b.rows;
        for (c, v) in b.columns.into_iter().enumerate() {
            cols[c].push(v);
        }
    }
    let columns: Vec<ExecVector> = cols.into_iter().map(|p| concat_vectors(&p)).collect();
    let mut out = Batch::new(columns);
    out.rows = rows;
    out
}

/// Drain and concatenate an operator's whole output into one dense batch
/// (build sides, sort input).
pub fn drain_to_single_batch(op: &mut dyn Operator) -> Result<Batch> {
    let ncols = op.schema().len();
    let mut parts: Vec<Vec<ExecVector>> = vec![Vec::new(); ncols];
    let mut total_rows = 0usize;
    let mut batches = 0usize;
    while let Some(b) = op.next()? {
        let b = b.compact();
        total_rows += b.rows;
        batches += 1;
        for (c, col) in b.columns.into_iter().enumerate() {
            parts[c].push(col);
        }
    }
    if batches == 0 {
        // Preserve the column structure: downstream operators index columns
        // even over empty inputs.
        let columns: Vec<ExecVector> = op
            .schema()
            .fields()
            .iter()
            .map(|f| ExecVector::not_null(vw_storage::ColumnData::empty(f.ty)))
            .collect();
        return Ok(Batch::new(columns));
    }
    if ncols == 0 {
        let mut b = Batch::new(vec![]);
        b.rows = total_rows;
        return Ok(b);
    }
    let columns: Vec<ExecVector> = parts.iter().map(|p| concat_vectors(p)).collect();
    Ok(Batch::new(columns))
}

/// A fixed list of batches as an operator (tests, exchange plumbing).
pub struct BatchSource {
    schema: Schema,
    batches: std::vec::IntoIter<Batch>,
}

impl BatchSource {
    pub fn new(schema: Schema, batches: Vec<Batch>) -> BatchSource {
        BatchSource {
            schema,
            batches: batches.into_iter(),
        }
    }

    /// Source from rows, split into `vector_size` batches.
    pub fn from_rows(
        schema: Schema,
        rows: &[Vec<Value>],
        vector_size: usize,
    ) -> Result<BatchSource> {
        let mut batches = Vec::new();
        for chunk in rows.chunks(vector_size.max(1)) {
            batches.push(Batch::from_rows(&schema, chunk)?);
        }
        Ok(BatchSource::new(schema, batches))
    }
}

impl Operator for BatchSource {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        Ok(self.batches.next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::{DataType, Field};

    #[test]
    fn hash_and_eq_lanes() {
        let a =
            ExecVector::from_values(DataType::I64, &[Value::I64(5), Value::Null, Value::I64(7)])
                .unwrap();
        let b = ExecVector::from_values(DataType::I64, &[Value::I64(5)]).unwrap();
        assert_eq!(hash_lane(&a, 0, 0), hash_lane(&b, 0, 0));
        assert_ne!(hash_lane(&a, 2, 0), hash_lane(&b, 0, 0));
        assert!(lanes_eq(&a, 0, &b, 0));
        assert!(!lanes_eq(&a, 2, &b, 0));
        assert!(!lanes_eq(&a, 1, &b, 0)); // null vs value
        assert!(lanes_eq(&a, 1, &a, 1)); // null == null (group-by semantics)
    }

    #[test]
    fn lanes_cmp_with_nulls_first() {
        use std::cmp::Ordering;
        let a = ExecVector::from_values(
            DataType::Str,
            &[Value::Str("b".into()), Value::Null, Value::Str("a".into())],
        )
        .unwrap();
        assert_eq!(lanes_cmp(&a, 0, &a, 2), Ordering::Greater);
        assert_eq!(lanes_cmp(&a, 1, &a, 0), Ordering::Less);
        assert_eq!(lanes_cmp(&a, 1, &a, 1), Ordering::Equal);
    }

    #[test]
    fn concat_and_drain() {
        let schema = Schema::new(vec![Field::new("x", DataType::I64)]);
        let rows1 = vec![vec![Value::I64(1)], vec![Value::I64(2)]];
        let rows2 = vec![vec![Value::I64(3)]];
        let mut src = BatchSource::new(
            schema.clone(),
            vec![
                Batch::from_rows(&schema, &rows1).unwrap(),
                Batch::from_rows(&schema, &rows2).unwrap(),
            ],
        );
        let b = drain_to_single_batch(&mut src).unwrap();
        assert_eq!(b.rows, 3);
        assert_eq!(
            b.to_rows(&schema),
            vec![
                vec![Value::I64(1)],
                vec![Value::I64(2)],
                vec![Value::I64(3)]
            ]
        );
    }

    #[test]
    fn batch_source_chunks_by_vector_size() {
        let schema = Schema::new(vec![Field::new("x", DataType::I64)]);
        let rows: Vec<Vec<Value>> = (0..10).map(|i| vec![Value::I64(i)]).collect();
        let mut src = BatchSource::from_rows(schema.clone(), &rows, 4).unwrap();
        let mut sizes = Vec::new();
        while let Some(b) = src.next().unwrap() {
            sizes.push(b.len());
        }
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn collect_rows_works() {
        let schema = Schema::new(vec![Field::new("x", DataType::I64)]);
        let rows: Vec<Vec<Value>> = (0..5).map(|i| vec![Value::I64(i)]).collect();
        let mut src = BatchSource::from_rows(schema, &rows, 2).unwrap();
        assert_eq!(collect_rows(&mut src).unwrap(), rows);
    }
}
