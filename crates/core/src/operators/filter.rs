//! The vectorized filter: evaluates a boolean expression per batch and emits
//! a *selection vector* — no survivor copying (the X100 selection idiom).

use crate::batch::Batch;
use crate::primitives::sel_from_bool;
use crate::vexpr::ExprEvaluator;
use vw_common::{Result, Schema, VwError};
use vw_plan::Expr;
use vw_storage::ColumnData;

use super::{BoxedOperator, Operator};

/// Filter operator.
pub struct VecFilter {
    input: BoxedOperator,
    predicate: ExprEvaluator,
    schema: Schema,
}

impl VecFilter {
    pub fn new(input: BoxedOperator, predicate: Expr, naive_nulls: bool) -> Result<VecFilter> {
        let schema = input.schema().clone();
        let predicate = ExprEvaluator::new(predicate, &schema, naive_nulls)?;
        Ok(VecFilter {
            input,
            predicate,
            schema,
        })
    }
}

impl Operator for VecFilter {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        loop {
            let Some(mut batch) = self.input.next()? else {
                return Ok(None);
            };
            let v = self.predicate.eval(&batch)?;
            let vals = match &v.data {
                ColumnData::Bool(b) => b,
                other => {
                    return Err(VwError::Exec(format!(
                        "filter produced {}, expected booleans",
                        other.type_name()
                    )))
                }
            };
            let mut sel = Vec::new();
            sel_from_bool(vals, v.nulls.as_deref(), batch.sel.as_deref(), &mut sel);
            if sel.is_empty() {
                continue;
            }
            batch.sel = Some(sel);
            return Ok(Some(batch));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{collect_rows, BatchSource};
    use vw_common::{DataType, Field, Value};
    use vw_plan::BinOp;

    fn source() -> BoxedOperator {
        let schema = Schema::new(vec![
            Field::new("k", DataType::I64),
            Field::nullable("v", DataType::I64),
        ]);
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| {
                vec![
                    Value::I64(i),
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::I64(i * 2)
                    },
                ]
            })
            .collect();
        Box::new(BatchSource::from_rows(schema, &rows, 6).unwrap())
    }

    #[test]
    fn basic_filtering() {
        let f = VecFilter::new(
            source(),
            Expr::binary(BinOp::Ge, Expr::col(0), Expr::lit(Value::I64(15))),
            false,
        )
        .unwrap();
        let mut f = f;
        let rows = collect_rows(&mut f).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][0], Value::I64(15));
    }

    #[test]
    fn null_predicate_rows_are_dropped() {
        // v > 0 is NULL where v is NULL → those rows dropped.
        let mut f = VecFilter::new(
            source(),
            Expr::binary(BinOp::Gt, Expr::col(1), Expr::lit(Value::I64(-1))),
            false,
        )
        .unwrap();
        let rows = collect_rows(&mut f).unwrap();
        assert_eq!(rows.len(), 16); // 20 - 4 nulls (i=0,5,10,15)
    }

    #[test]
    fn chained_filters_intersect_selections() {
        let f1 = VecFilter::new(
            source(),
            Expr::binary(BinOp::Ge, Expr::col(0), Expr::lit(Value::I64(5))),
            false,
        )
        .unwrap();
        let mut f2 = VecFilter::new(
            Box::new(f1),
            Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(8))),
            false,
        )
        .unwrap();
        let rows = collect_rows(&mut f2).unwrap();
        assert_eq!(
            rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::I64(5), Value::I64(6), Value::I64(7)]
        );
    }

    #[test]
    fn all_filtered_batches_are_skipped() {
        let mut f = VecFilter::new(
            source(),
            Expr::binary(BinOp::Gt, Expr::col(0), Expr::lit(Value::I64(100))),
            false,
        )
        .unwrap();
        assert!(f.next().unwrap().is_none());
    }

    #[test]
    fn non_boolean_predicate_errors() {
        let mut f = VecFilter::new(source(), Expr::col(0), false).unwrap();
        assert!(f.next().is_err());
    }
}
