//! The vectorized filter: evaluates a boolean expression per batch and emits
//! a *selection vector* — no survivor copying (the X100 selection idiom).
//!
//! With adaptivity enabled the predicate's top-level conjuncts are compiled
//! separately and evaluated in an observed-cost/selectivity order (see
//! [`crate::adapt`]): each conjunct refines the batch's selection vector,
//! and an empty selection short-circuits the rest. Chained selection
//! refinement drops exactly the rows where any conjunct is false or NULL —
//! the same set a single three-valued `AND` evaluation drops — so results
//! are identical in any order; only the work spent differs.

use crate::adapt::{
    encode_order, AdaptiveOrder, FILTER_RERANK_BATCHES, MAX_REPORTED_CONJUNCTS, PRED_EVAL_KEYS,
    PRED_PASS_KEYS,
};
use crate::batch::Batch;
use crate::primitives::sel_from_bool;
use crate::vexpr::ExprEvaluator;
use vw_common::{Result, Schema, VwError};
use vw_plan::Expr;
use vw_storage::ColumnData;

use super::{BoxedOperator, Operator};

/// Filter operator.
pub struct VecFilter {
    input: BoxedOperator,
    /// Whole-predicate evaluator (static path; also the naive-NULL mode).
    predicate: Option<ExprEvaluator>,
    /// Per-conjunct evaluators in static (plan) order (adaptive path).
    conjuncts: Vec<ExprEvaluator>,
    adapt: AdaptiveOrder,
    schema: Schema,
}

impl VecFilter {
    pub fn new(input: BoxedOperator, predicate: Expr, naive_nulls: bool) -> Result<VecFilter> {
        Self::with_adaptivity(input, predicate, naive_nulls, false)
    }

    /// Like [`VecFilter::new`]; when `adaptive` is set and the predicate has
    /// more than one conjunct, enables micro-adaptive conjunct ordering.
    /// The naive-NULL mode (experiment E8) always takes the static path —
    /// it exists to model an engine *without* these optimizations.
    pub fn with_adaptivity(
        input: BoxedOperator,
        predicate: Expr,
        naive_nulls: bool,
        adaptive: bool,
    ) -> Result<VecFilter> {
        let schema = input.schema().clone();
        let mut parts = Vec::new();
        vw_plan::rewrite::pushdown::split_conjunction(&predicate, &mut parts);
        if adaptive && !naive_nulls && parts.len() > 1 {
            let conjuncts = parts
                .into_iter()
                .map(|e| ExprEvaluator::new(e, &schema, false))
                .collect::<Result<Vec<_>>>()?;
            let adapt = AdaptiveOrder::new(conjuncts.len(), FILTER_RERANK_BATCHES, true);
            Ok(VecFilter {
                input,
                predicate: None,
                conjuncts,
                adapt,
                schema,
            })
        } else {
            let predicate = ExprEvaluator::new(predicate, &schema, naive_nulls)?;
            Ok(VecFilter {
                input,
                predicate: Some(predicate),
                conjuncts: Vec::new(),
                adapt: AdaptiveOrder::new(0, FILTER_RERANK_BATCHES, false),
                schema,
            })
        }
    }

    fn bool_vals(v: &crate::batch::ExecVector) -> Result<&[bool]> {
        match &v.data {
            ColumnData::Bool(b) => Ok(b),
            other => Err(VwError::Exec(format!(
                "filter produced {}, expected booleans",
                other.type_name()
            ))),
        }
    }
}

impl Operator for VecFilter {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn profile_extras(&self) -> Vec<(&'static str, u64)> {
        let mut v = Vec::new();
        if self.adapt.enabled() {
            v.push(("adapt_order", encode_order(self.adapt.order())));
            if self.adapt.reorders() > 0 {
                v.push(("adapt_reorders", self.adapt.reorders()));
            }
            for (i, s) in self
                .adapt
                .stats()
                .iter()
                .enumerate()
                .take(MAX_REPORTED_CONJUNCTS)
            {
                if s.evals > 0 {
                    v.push((PRED_PASS_KEYS[i], (s.pass_rate() * 100.0).round() as u64));
                    v.push((PRED_EVAL_KEYS[i], s.evals));
                }
            }
        }
        v
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        loop {
            let Some(mut batch) = self.input.next()? else {
                return Ok(None);
            };
            if let Some(predicate) = &self.predicate {
                // Static path: one three-valued evaluation of the whole tree.
                let v = predicate.eval(&batch)?;
                let vals = Self::bool_vals(&v)?;
                let mut sel = Vec::new();
                sel_from_bool(vals, v.nulls.as_deref(), batch.sel.as_deref(), &mut sel);
                if sel.is_empty() {
                    continue;
                }
                batch.sel = Some(sel);
                return Ok(Some(batch));
            }
            // Adaptive path: conjuncts refine the selection in learned order.
            self.adapt.tick();
            let order: Vec<usize> = self.adapt.order().to_vec();
            let mut alive = true;
            for &cid in &order {
                let rows_in = batch.sel.as_ref().map_or(batch.rows, |s| s.len());
                let t0 = std::time::Instant::now();
                let v = self.conjuncts[cid].eval(&batch)?;
                let vals = Self::bool_vals(&v)?;
                let mut sel = Vec::new();
                sel_from_bool(vals, v.nulls.as_deref(), batch.sel.as_deref(), &mut sel);
                self.adapt
                    .observe(cid, rows_in, sel.len(), t0.elapsed().as_nanos() as u64);
                let empty = sel.is_empty();
                batch.sel = Some(sel);
                if empty {
                    alive = false;
                    break;
                }
            }
            if !alive {
                continue;
            }
            return Ok(Some(batch));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{collect_rows, BatchSource};
    use vw_common::{DataType, Field, Value};
    use vw_plan::BinOp;

    fn source() -> BoxedOperator {
        let schema = Schema::new(vec![
            Field::new("k", DataType::I64),
            Field::nullable("v", DataType::I64),
        ]);
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| {
                vec![
                    Value::I64(i),
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::I64(i * 2)
                    },
                ]
            })
            .collect();
        Box::new(BatchSource::from_rows(schema, &rows, 6).unwrap())
    }

    #[test]
    fn basic_filtering() {
        let f = VecFilter::new(
            source(),
            Expr::binary(BinOp::Ge, Expr::col(0), Expr::lit(Value::I64(15))),
            false,
        )
        .unwrap();
        let mut f = f;
        let rows = collect_rows(&mut f).unwrap();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0][0], Value::I64(15));
    }

    #[test]
    fn null_predicate_rows_are_dropped() {
        // v > 0 is NULL where v is NULL → those rows dropped.
        let mut f = VecFilter::new(
            source(),
            Expr::binary(BinOp::Gt, Expr::col(1), Expr::lit(Value::I64(-1))),
            false,
        )
        .unwrap();
        let rows = collect_rows(&mut f).unwrap();
        assert_eq!(rows.len(), 16); // 20 - 4 nulls (i=0,5,10,15)
    }

    #[test]
    fn chained_filters_intersect_selections() {
        let f1 = VecFilter::new(
            source(),
            Expr::binary(BinOp::Ge, Expr::col(0), Expr::lit(Value::I64(5))),
            false,
        )
        .unwrap();
        let mut f2 = VecFilter::new(
            Box::new(f1),
            Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(8))),
            false,
        )
        .unwrap();
        let rows = collect_rows(&mut f2).unwrap();
        assert_eq!(
            rows.iter().map(|r| r[0].clone()).collect::<Vec<_>>(),
            vec![Value::I64(5), Value::I64(6), Value::I64(7)]
        );
    }

    #[test]
    fn all_filtered_batches_are_skipped() {
        let mut f = VecFilter::new(
            source(),
            Expr::binary(BinOp::Gt, Expr::col(0), Expr::lit(Value::I64(100))),
            false,
        )
        .unwrap();
        assert!(f.next().unwrap().is_none());
    }

    #[test]
    fn non_boolean_predicate_errors() {
        let mut f = VecFilter::new(source(), Expr::col(0), false).unwrap();
        assert!(f.next().is_err());
    }

    /// Adaptive conjunct mode must drop exactly the rows the single-pass
    /// evaluation drops — including rows where a conjunct is NULL.
    #[test]
    fn adaptive_conjuncts_match_static_results() {
        let pred = Expr::and(
            // NULL where v is NULL → row dropped either way.
            Expr::binary(BinOp::Ge, Expr::col(1), Expr::lit(Value::I64(0))),
            Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(17))),
        );
        let mut stat = VecFilter::new(source(), pred.clone(), false).unwrap();
        let want = collect_rows(&mut stat).unwrap();
        let mut adpt = VecFilter::with_adaptivity(source(), pred, false, true).unwrap();
        let got = collect_rows(&mut adpt).unwrap();
        assert_eq!(want, got);
        assert!(!want.is_empty());
        // Per-conjunct stats were observed and surfaced.
        let extras = adpt.profile_extras();
        assert!(extras.iter().any(|(k, _)| *k == "adapt_order"));
        assert!(extras.iter().any(|(k, _)| *k == "pred0_pass_pct"));
    }

    /// A single-conjunct predicate silently takes the static path.
    #[test]
    fn single_conjunct_stays_static() {
        let pred = Expr::binary(BinOp::Ge, Expr::col(0), Expr::lit(Value::I64(3)));
        let f = VecFilter::with_adaptivity(source(), pred, false, true).unwrap();
        assert!(f.predicate.is_some());
        assert!(f.profile_extras().is_empty());
    }
}
