//! Streaming merge join for inputs that both arrive sorted on the join key
//! (declared table order, or an explicit upstream sort). Spill-free: the only
//! buffered state is the current right-side duplicate group, so memory is
//! bounded by the largest key group instead of the whole build side.
//!
//! Emission order is **left-major** — each left row in stream order, paired
//! with its matching right rows in right-stream order — which is exactly the
//! order [`super::HashJoin`] produces for an inner join (probe = left, build
//! chains = right input order). The ordering pass only swaps a hash join for
//! a merge join in serial plans, and this order match keeps the results
//! byte-identical.
//!
//! SQL NULL semantics: a NULL key matches nothing; NULL-keyed rows are
//! skipped on both sides (they sort first under the ascending NULLS FIRST
//! orders the planner requires, so the skip happens up front per batch).

use crate::batch::Batch;
use vw_common::{Result, Schema, VwError};

use super::{lanes_cmp, BoxedOperator, Operator};

/// Inner merge join over two key-ordered inputs.
pub struct MergeJoin {
    left: BoxedOperator,
    right: BoxedOperator,
    /// (left key col, right key col) pairs; both inputs ascend on these.
    on: Vec<(usize, usize)>,
    out_schema: Schema,
    vector_size: usize,
    /// Current left batch (dense) and cursor into it.
    lbatch: Option<Batch>,
    lpos: usize,
    ldone: bool,
    /// Current right batch (dense) and cursor into it.
    rbatch: Option<Batch>,
    rpos: usize,
    rdone: bool,
    /// Buffered right rows sharing the current join key (dense batch).
    group: Option<Batch>,
    /// Pending output pairs: indexes into the current left batch / group.
    pairs_l: Vec<u32>,
    pairs_g: Vec<u32>,
    /// Assembled output batches not yet handed out.
    out: std::collections::VecDeque<Batch>,
    rows_out: u64,
    groups: u64,
}

impl MergeJoin {
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        on: Vec<(usize, usize)>,
        vector_size: usize,
    ) -> Result<MergeJoin> {
        if on.is_empty() {
            return Err(VwError::Plan("merge join needs at least one key".into()));
        }
        let out_schema = left.schema().join(right.schema());
        Ok(MergeJoin {
            left,
            right,
            on,
            out_schema,
            vector_size: vector_size.max(1),
            lbatch: None,
            lpos: 0,
            ldone: false,
            rbatch: None,
            rpos: 0,
            rdone: false,
            group: None,
            pairs_l: Vec::new(),
            pairs_g: Vec::new(),
            out: std::collections::VecDeque::new(),
            rows_out: 0,
            groups: 0,
        })
    }

    /// Gather the pending pairs into one output batch. Must run before the
    /// left batch or the group they index into is replaced.
    fn flush_pairs(&mut self) {
        if self.pairs_l.is_empty() {
            return;
        }
        let lb = self.lbatch.as_ref().expect("pairs without left batch");
        let g = self.group.as_ref().expect("pairs without group");
        let mut cols = Vec::with_capacity(self.out_schema.len());
        for c in &lb.columns {
            cols.push(c.gather(&self.pairs_l));
        }
        for c in &g.columns {
            cols.push(c.gather(&self.pairs_g));
        }
        self.rows_out += self.pairs_l.len() as u64;
        self.pairs_l.clear();
        self.pairs_g.clear();
        self.out.push_back(Batch::new(cols));
    }

    /// True if row `i` of `b` has a NULL in any of the side's key columns.
    fn null_key(b: &Batch, i: usize, keys: impl Iterator<Item = usize>) -> bool {
        for c in keys {
            if b.columns[c].is_null(i) {
                return true;
            }
        }
        false
    }

    /// Position the left cursor on the next non-NULL-keyed row; pulls new
    /// batches (flushing pending pairs first) as needed. False = exhausted.
    fn ensure_left(&mut self) -> Result<bool> {
        loop {
            if self.ldone {
                return Ok(false);
            }
            if let Some(b) = &self.lbatch {
                if self.lpos < b.rows {
                    let on = &self.on;
                    if Self::null_key(b, self.lpos, on.iter().map(|&(lc, _)| lc)) {
                        self.lpos += 1;
                        continue;
                    }
                    return Ok(true);
                }
            }
            // Rotating the left batch invalidates pending pair indexes.
            self.flush_pairs();
            match self.left.next()? {
                Some(b) => {
                    self.lbatch = Some(b.compact());
                    self.lpos = 0;
                }
                None => {
                    self.ldone = true;
                    self.lbatch = None;
                    return Ok(false);
                }
            }
        }
    }

    /// Same for the right cursor. Pending pairs index the *group*, not the
    /// right batch, so no flush is needed here.
    fn ensure_right(&mut self) -> Result<bool> {
        loop {
            if self.rdone {
                return Ok(false);
            }
            if let Some(b) = &self.rbatch {
                if self.rpos < b.rows {
                    let on = &self.on;
                    if Self::null_key(b, self.rpos, on.iter().map(|&(_, rc)| rc)) {
                        self.rpos += 1;
                        continue;
                    }
                    return Ok(true);
                }
            }
            match self.right.next()? {
                Some(b) => {
                    self.rbatch = Some(b.compact());
                    self.rpos = 0;
                }
                None => {
                    self.rdone = true;
                    self.rbatch = None;
                    return Ok(false);
                }
            }
        }
    }

    /// Compare the current left row against row `gi` of `g` on the join keys.
    fn cmp_left_group(&self, g: &Batch, gi: usize) -> std::cmp::Ordering {
        let lb = self.lbatch.as_ref().unwrap();
        for &(lc, rc) in &self.on {
            let ord = lanes_cmp(&lb.columns[lc], self.lpos, &g.columns[rc], gi);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Compare the current left row against the current right row.
    fn cmp_left_right(&self) -> std::cmp::Ordering {
        let lb = self.lbatch.as_ref().unwrap();
        let rb = self.rbatch.as_ref().unwrap();
        for &(lc, rc) in &self.on {
            let ord = lanes_cmp(&lb.columns[lc], self.lpos, &rb.columns[rc], self.rpos);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Collect every right row equal (on the keys) to the current left row
    /// into one dense group batch, consuming them from the right stream.
    fn collect_group(&mut self) -> Result<()> {
        let mut parts: Vec<Batch> = Vec::new();
        loop {
            if !self.ensure_right()? {
                break;
            }
            // Gather the run of equal-keyed rows inside this right batch.
            let mut idx: Vec<u32> = Vec::new();
            loop {
                if self.cmp_left_right() != std::cmp::Ordering::Equal {
                    break;
                }
                idx.push(self.rpos as u32);
                self.rpos += 1;
                let rb = self.rbatch.as_ref().unwrap();
                if self.rpos >= rb.rows {
                    break;
                }
                let on = &self.on;
                if Self::null_key(rb, self.rpos, on.iter().map(|&(_, rc)| rc)) {
                    // NULL keys sort first ascending; seeing one mid-stream
                    // still just means "not part of this group".
                    break;
                }
            }
            if idx.is_empty() {
                break;
            }
            let rb = self.rbatch.as_ref().unwrap();
            let ended_inside = self.rpos < rb.rows;
            parts.push(Batch::new(
                rb.columns.iter().map(|c| c.gather(&idx)).collect(),
            ));
            if ended_inside {
                break; // group ended within this batch
            }
            // Batch exhausted mid-group: the group may continue in the next.
        }
        let ncols = self.out_schema.len() - self.lbatch.as_ref().unwrap().columns.len();
        self.group = Some(super::concat_batches(parts, ncols));
        self.groups += 1;
        Ok(())
    }

    /// Advance the merge until at least one output batch is ready or both
    /// streams are exhausted.
    fn step(&mut self) -> Result<()> {
        while self.out.is_empty() {
            if !self.ensure_left()? {
                self.flush_pairs();
                return Ok(());
            }
            if let Some(g) = self.group.take() {
                match self.cmp_left_group(&g, 0) {
                    std::cmp::Ordering::Less => {
                        self.group = Some(g);
                        self.lpos += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        for gi in 0..g.rows as u32 {
                            self.pairs_l.push(self.lpos as u32);
                            self.pairs_g.push(gi);
                        }
                        self.group = Some(g);
                        self.lpos += 1;
                        if self.pairs_l.len() >= self.vector_size {
                            self.flush_pairs();
                        }
                    }
                    std::cmp::Ordering::Greater => {
                        // Left moved past the group key: retire the group.
                        self.group = Some(g);
                        self.flush_pairs();
                        self.group = None;
                    }
                }
                continue;
            }
            if !self.ensure_right()? {
                // No right rows left and no live group: nothing on the left
                // can match anymore.
                self.flush_pairs();
                return Ok(());
            }
            match self.cmp_left_right() {
                std::cmp::Ordering::Less => self.lpos += 1,
                std::cmp::Ordering::Greater => self.rpos += 1,
                std::cmp::Ordering::Equal => self.collect_group()?,
            }
        }
        Ok(())
    }
}

impl Operator for MergeJoin {
    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        if self.out.is_empty() {
            self.step()?;
        }
        Ok(self.out.pop_front())
    }

    fn profile_extras(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("merge_join", 1),
            ("rows_out", self.rows_out),
            ("key_groups", self.groups),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{collect_rows, BatchSource, HashJoin};
    use vw_common::{DataType, Field, Value};
    use vw_plan::JoinKind;

    fn batches(rows: &[Vec<Value>], schema: Schema, vs: usize) -> BoxedOperator {
        Box::new(BatchSource::from_rows(schema, rows, vs).unwrap())
    }

    fn lschema() -> Schema {
        Schema::new(vec![
            Field::nullable("lk", DataType::I64),
            Field::new("lv", DataType::Str),
        ])
    }

    fn rschema() -> Schema {
        Schema::new(vec![
            Field::nullable("rk", DataType::I64),
            Field::new("rv", DataType::I64),
        ])
    }

    /// Sorted inputs with NULLs first, duplicates on both sides, and keys
    /// unique to each side.
    fn inputs(vs_l: usize, vs_r: usize) -> (BoxedOperator, BoxedOperator) {
        let mut l = vec![
            vec![Value::Null, Value::Str("ln".into())],
            vec![Value::I64(1), Value::Str("a".into())],
            vec![Value::I64(1), Value::Str("b".into())],
            vec![Value::I64(2), Value::Str("c".into())],
            vec![Value::I64(4), Value::Str("d".into())],
            vec![Value::I64(7), Value::Str("e".into())],
        ];
        for i in 0..40 {
            l.push(vec![Value::I64(10 + i / 4), Value::Str(format!("x{i}"))]);
        }
        let mut r = vec![
            vec![Value::Null, Value::I64(-1)],
            vec![Value::I64(1), Value::I64(100)],
            vec![Value::I64(1), Value::I64(101)],
            vec![Value::I64(1), Value::I64(102)],
            vec![Value::I64(3), Value::I64(300)],
            vec![Value::I64(4), Value::I64(400)],
        ];
        for i in 0..30 {
            r.push(vec![Value::I64(10 + i / 3), Value::I64(1000 + i)]);
        }
        (batches(&l, lschema(), vs_l), batches(&r, rschema(), vs_r))
    }

    /// The reference: what the hash join (probe = left) emits for the same
    /// inputs, in its exact row order.
    fn hash_reference(vs_l: usize, vs_r: usize) -> Vec<Vec<Value>> {
        let (l, r) = inputs(vs_l, vs_r);
        let mut hj = HashJoin::new(l, r, JoinKind::Inner, vec![(0, 0)], None, false).unwrap();
        collect_rows(&mut hj).unwrap()
    }

    #[test]
    fn matches_hash_join_row_order_exactly() {
        for &(vl, vr, vs) in &[(3usize, 4usize, 8usize), (64, 64, 1024), (1, 1, 2)] {
            let want = hash_reference(vl, vr);
            let (l, r) = inputs(vl, vr);
            let mut mj = MergeJoin::new(l, r, vec![(0, 0)], vs).unwrap();
            let got = collect_rows(&mut mj).unwrap();
            assert_eq!(got, want, "vl={vl} vr={vr} vs={vs}");
            assert!(!got.is_empty());
        }
    }

    #[test]
    fn group_spanning_batch_boundary() {
        // Right group of key 1 split across batches of 2.
        let want = hash_reference(2, 2);
        let (l, r) = inputs(2, 2);
        let mut mj = MergeJoin::new(l, r, vec![(0, 0)], 4).unwrap();
        assert_eq!(collect_rows(&mut mj).unwrap(), want);
    }

    #[test]
    fn null_keys_match_nothing() {
        let (l, r) = inputs(8, 8);
        let mut mj = MergeJoin::new(l, r, vec![(0, 0)], 16).unwrap();
        let rows = collect_rows(&mut mj).unwrap();
        assert!(rows.iter().all(|row| row[0] != Value::Null));
    }

    #[test]
    fn disjoint_and_empty_inputs() {
        let l = batches(&[vec![Value::I64(1), Value::Str("a".into())]], lschema(), 4);
        let r = batches(&[], rschema(), 4);
        let mut mj = MergeJoin::new(l, r, vec![(0, 0)], 4).unwrap();
        assert!(collect_rows(&mut mj).unwrap().is_empty());

        let l = batches(&[vec![Value::I64(1), Value::Str("a".into())]], lschema(), 4);
        let r = batches(&[vec![Value::I64(2), Value::I64(5)]], rschema(), 4);
        let mut mj = MergeJoin::new(l, r, vec![(0, 0)], 4).unwrap();
        assert!(collect_rows(&mut mj).unwrap().is_empty());
    }

    #[test]
    fn multi_key_merge() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::I64),
            Field::new("b", DataType::I64),
        ]);
        let lrows: Vec<Vec<Value>> = vec![
            vec![Value::I64(1), Value::I64(1)],
            vec![Value::I64(1), Value::I64(2)],
            vec![Value::I64(2), Value::I64(1)],
        ];
        let rrows: Vec<Vec<Value>> = vec![
            vec![Value::I64(1), Value::I64(2)],
            vec![Value::I64(2), Value::I64(1)],
            vec![Value::I64(2), Value::I64(2)],
        ];
        let l = batches(&lrows, schema.clone(), 2);
        let r = batches(&rrows, schema.clone(), 2);
        let mut mj = MergeJoin::new(l, r, vec![(0, 0), (1, 1)], 4).unwrap();
        let got = collect_rows(&mut mj).unwrap();

        let l = batches(&lrows, schema.clone(), 2);
        let r = batches(&rrows, schema, 2);
        let mut hj =
            HashJoin::new(l, r, JoinKind::Inner, vec![(0, 0), (1, 1)], None, false).unwrap();
        let want = collect_rows(&mut hj).unwrap();
        assert_eq!(got, want);
        assert_eq!(got.len(), 2);
    }
}
