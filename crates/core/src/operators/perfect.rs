//! Perfect-hash (direct-array) aggregation.
//!
//! When every GROUP BY key has a provably small domain — a PDICT-coded
//! string column, a boolean, or a narrow integer whose MinMax range is known
//! from the row-group zone maps — the group of a tuple can be *computed*
//! instead of *probed*: compose the per-key codes into one flat slot index
//! and address a struct-of-arrays accumulator directly. No hashing, no
//! bucket chains, no key comparisons on the hot path. This is the
//! fixed-slot aggregation array the "Fine-Tuning Data Structures" line of
//! work recommends whenever the observed key domain fits, and it is what
//! makes Q1-shaped aggregations (few groups, many tuples) cheap.
//!
//! The table is speculative: `absorb` computes the slots of a whole vector
//! *before* touching any accumulator, so the moment one value falls outside
//! its coder's domain the caller can fall back to the generic hash table by
//! re-emitting every occupied slot as a partial-aggregate row (the same
//! layout the spill machinery uses) and merging those rows with `combine`
//! semantics. Correctness never depends on the hints being right.

use std::sync::Arc;

use vw_common::{BlockId, DataType, Result, Value, VwError};
use vw_plan::plan::AggPhase;
use vw_plan::{AggExpr, AggFunc};
use vw_storage::{ColumnData, StrColumn};

use super::aggregate::{lane_f64, lane_i64};
use crate::batch::ExecVector;
use crate::mem::MemTracker;

/// Hard cap on the flat accumulator array (slots, not bytes): beyond this
/// the generic hash table's cache behavior wins anyway.
pub const MAX_SLOTS: usize = 4096;

/// Distinct strings a tiny-string coder may assign (code 0 is NULL).
const STR_MAX_DISTINCT: usize = 32;

/// Compile-time plan for one key column's code domain. Every coder reserves
/// code 0 for NULL, so `cap` counts NULL plus the value domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyCoderSpec {
    /// String key expected to have few distinct values (PDICT-style); codes
    /// are assigned on first sight, capped at [`STR_MAX_DISTINCT`].
    TinyStr,
    /// Integer key with a known value range `[lo, lo + cap - 2]`.
    IntRange { lo: i64, cap: u16 },
    /// Boolean key: NULL / false / true.
    Bool,
}

impl KeyCoderSpec {
    fn cap(&self) -> u32 {
        match self {
            KeyCoderSpec::TinyStr => STR_MAX_DISTINCT as u32 + 1,
            KeyCoderSpec::IntRange { cap, .. } => *cap as u32,
            KeyCoderSpec::Bool => 3,
        }
    }
}

/// Decide whether a key set is perfect-hash eligible. `hints[k]` is the
/// folded MinMax range of key `k` when it is a stored integer column with
/// stats (`None` otherwise). Returns the coder plan, or `None` when any key
/// type is unsuitable or the composed slot count exceeds [`MAX_SLOTS`].
pub fn plan_specs(
    key_types: &[DataType],
    hints: &[Option<(i64, i64)>],
) -> Option<Vec<KeyCoderSpec>> {
    let mut specs = Vec::with_capacity(key_types.len());
    let mut slots: u64 = 1;
    for (k, &ty) in key_types.iter().enumerate() {
        let spec = match ty {
            DataType::Str => KeyCoderSpec::TinyStr,
            DataType::Bool => KeyCoderSpec::Bool,
            DataType::I32 | DataType::I64 | DataType::Date => {
                let (lo, hi) = hints.get(k).copied().flatten()?;
                let range = hi.checked_sub(lo)?;
                if !(0..=254).contains(&range) {
                    return None;
                }
                KeyCoderSpec::IntRange {
                    lo,
                    cap: range as u16 + 2,
                }
            }
            DataType::F64 => return None,
        };
        slots = slots.checked_mul(spec.cap() as u64)?;
        if slots > MAX_SLOTS as u64 {
            return None;
        }
        specs.push(spec);
    }
    Some(specs)
}

/// Runtime key→code mapper for one key column.
enum KeyCoder {
    TinyStr {
        /// Fast path for single-byte strings: code by leading byte
        /// (0 = unassigned).
        by_byte: Box<[u16; 256]>,
        /// Assigned strings; the code of `seen[i]` is `i + 1`.
        seen: Vec<Box<[u8]>>,
    },
    IntRange {
        lo: i64,
        cap: u16,
    },
    Bool,
}

impl KeyCoder {
    fn new(spec: KeyCoderSpec) -> KeyCoder {
        match spec {
            KeyCoderSpec::TinyStr => KeyCoder::TinyStr {
                by_byte: Box::new([0u16; 256]),
                seen: Vec::new(),
            },
            KeyCoderSpec::IntRange { lo, cap } => KeyCoder::IntRange { lo, cap },
            KeyCoderSpec::Bool => KeyCoder::Bool,
        }
    }

    /// Code for a non-null string, assigning a fresh code on first sight.
    /// `None` = distinct-value cap exceeded.
    fn code_str(&mut self, bytes: &[u8]) -> Option<u16> {
        let KeyCoder::TinyStr { by_byte, seen } = self else {
            return None;
        };
        if bytes.len() == 1 {
            let c = by_byte[bytes[0] as usize];
            if c != 0 {
                return Some(c);
            }
        } else {
            for (i, s) in seen.iter().enumerate() {
                if s.as_ref() == bytes {
                    return Some(i as u16 + 1);
                }
            }
        }
        if seen.len() >= STR_MAX_DISTINCT {
            return None;
        }
        seen.push(bytes.into());
        let code = seen.len() as u16;
        if bytes.len() == 1 {
            by_byte[bytes[0] as usize] = code;
        }
        Some(code)
    }

    /// Code for a non-null integer. `None` = outside the hinted range.
    fn code_int(&self, v: i64) -> Option<u16> {
        let KeyCoder::IntRange { lo, cap } = self else {
            return None;
        };
        let off = v.checked_sub(*lo)?;
        if off < 0 || off + 1 >= *cap as i64 {
            return None;
        }
        Some(off as u16 + 1)
    }

    /// Reconstruct the key `Value` a code stands for (code 0 = NULL).
    fn key_value(&self, code: u16, ty: DataType) -> Value {
        if code == 0 {
            return Value::Null;
        }
        match self {
            KeyCoder::TinyStr { seen, .. } => {
                let bytes = &seen[code as usize - 1];
                Value::Str(String::from_utf8_lossy(bytes).into_owned())
            }
            KeyCoder::IntRange { lo, .. } => {
                let v = lo + code as i64 - 1;
                match ty {
                    DataType::I32 => Value::I32(v as i32),
                    DataType::Date => Value::Date(v as i32),
                    _ => Value::I64(v),
                }
            }
            KeyCoder::Bool => Value::Bool(code == 2),
        }
    }
}

/// One key column of a batch, as presented to [`PerfectTable::absorb`].
pub enum BatchKey<'a> {
    /// A materialized column (generic shape).
    Column(&'a ExecVector),
    /// A PDICT-coded column that was never decoded: per-row dictionary
    /// codes plus the block's dictionary (the fused-scan side channel).
    Dict {
        block: BlockId,
        codes: &'a [u32],
        nulls: Option<&'a [bool]>,
        dict: &'a StrColumn,
    },
}

/// One aggregate's accumulators, struct-of-arrays over slots. Semantics
/// mirror the generic path's `AggState` exactly (including NULL handling,
/// wrapping integer sums and `total_cmp` for MIN/MAX).
enum AccCol {
    Count(Vec<i64>),
    SumI { sum: Vec<i64>, seen: Vec<bool> },
    SumF { sum: Vec<f64>, seen: Vec<bool> },
    Min(Vec<Option<Value>>),
    Max(Vec<Option<Value>>),
    Avg { sum: Vec<f64>, count: Vec<i64> },
}

impl AccCol {
    fn new(func: AggFunc, arg_ty: Option<DataType>, slots: usize) -> AccCol {
        match func {
            AggFunc::CountStar | AggFunc::Count => AccCol::Count(vec![0; slots]),
            AggFunc::Sum => match arg_ty {
                Some(DataType::F64) => AccCol::SumF {
                    sum: vec![0.0; slots],
                    seen: vec![false; slots],
                },
                _ => AccCol::SumI {
                    sum: vec![0; slots],
                    seen: vec![false; slots],
                },
            },
            AggFunc::Min => AccCol::Min(vec![None; slots]),
            AggFunc::Max => AccCol::Max(vec![None; slots]),
            AggFunc::Avg => AccCol::Avg {
                sum: vec![0.0; slots],
                count: vec![0; slots],
            },
        }
    }

    /// Estimated bytes per slot (budget accounting).
    fn bytes_per_slot(func: AggFunc, arg_ty: Option<DataType>) -> usize {
        match func {
            AggFunc::CountStar | AggFunc::Count => 8,
            AggFunc::Sum => 9,
            AggFunc::Avg => 16,
            AggFunc::Min | AggFunc::Max => {
                let _ = arg_ty;
                std::mem::size_of::<Option<Value>>()
            }
        }
    }

    /// Single/Partial-phase update of one vector. `slots[j]` is the slot of
    /// lane `lanes[j]`. Dense fast arms cover the NULL-free numeric shapes
    /// the Q1/Q6 hot loops hit; everything else goes lane-at-a-time.
    fn update_batch(
        &mut self,
        slots: &[u32],
        lanes: &[u32],
        arg: Option<&ExecVector>,
    ) -> Result<()> {
        match self {
            AccCol::Count(n) => match arg {
                None => {
                    for &s in slots {
                        n[s as usize] += 1;
                    }
                }
                Some(v) => match &v.nulls {
                    None => {
                        for &s in slots {
                            n[s as usize] += 1;
                        }
                    }
                    Some(nulls) => {
                        for (j, &s) in slots.iter().enumerate() {
                            if !nulls[lanes[j] as usize] {
                                n[s as usize] += 1;
                            }
                        }
                    }
                },
            },
            AccCol::SumI { sum, seen } => {
                let v = arg.ok_or_else(|| VwError::Exec("SUM needs arg".into()))?;
                if let (ColumnData::I64(x), None) = (&v.data, &v.nulls) {
                    for (j, &s) in slots.iter().enumerate() {
                        let s = s as usize;
                        sum[s] = sum[s].wrapping_add(x[lanes[j] as usize]);
                        seen[s] = true;
                    }
                } else {
                    for (j, &s) in slots.iter().enumerate() {
                        let i = lanes[j] as usize;
                        if !v.is_null(i) {
                            let s = s as usize;
                            sum[s] = sum[s].wrapping_add(lane_i64(v, i)?);
                            seen[s] = true;
                        }
                    }
                }
            }
            AccCol::SumF { sum, seen } => {
                let v = arg.ok_or_else(|| VwError::Exec("SUM needs arg".into()))?;
                if let (ColumnData::F64(x), None) = (&v.data, &v.nulls) {
                    for (j, &s) in slots.iter().enumerate() {
                        let s = s as usize;
                        sum[s] += x[lanes[j] as usize];
                        seen[s] = true;
                    }
                } else {
                    for (j, &s) in slots.iter().enumerate() {
                        let i = lanes[j] as usize;
                        if !v.is_null(i) {
                            let s = s as usize;
                            sum[s] += lane_f64(v, i)?;
                            seen[s] = true;
                        }
                    }
                }
            }
            AccCol::Min(cur) => {
                let v = arg.ok_or_else(|| VwError::Exec("MIN needs arg".into()))?;
                min_max_batch(cur, slots, lanes, v, true);
            }
            AccCol::Max(cur) => {
                let v = arg.ok_or_else(|| VwError::Exec("MAX needs arg".into()))?;
                min_max_batch(cur, slots, lanes, v, false);
            }
            AccCol::Avg { sum, count } => {
                let v = arg.ok_or_else(|| VwError::Exec("AVG needs arg".into()))?;
                if let (ColumnData::F64(x), None) = (&v.data, &v.nulls) {
                    for (j, &s) in slots.iter().enumerate() {
                        let s = s as usize;
                        sum[s] += x[lanes[j] as usize];
                        count[s] += 1;
                    }
                } else {
                    for (j, &s) in slots.iter().enumerate() {
                        let i = lanes[j] as usize;
                        if !v.is_null(i) {
                            let s = s as usize;
                            sum[s] += lane_f64(v, i)?;
                            count[s] += 1;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Final-phase update: combine partial values (and hidden AVG counts).
    fn combine_batch(
        &mut self,
        slots: &[u32],
        lanes: &[u32],
        arg: &ExecVector,
        hidden: Option<&ExecVector>,
    ) -> Result<()> {
        match self {
            AccCol::Count(n) => {
                for (j, &s) in slots.iter().enumerate() {
                    let i = lanes[j] as usize;
                    if !arg.is_null(i) {
                        n[s as usize] += lane_i64(arg, i)?;
                    }
                }
            }
            AccCol::SumI { sum, seen } => {
                for (j, &s) in slots.iter().enumerate() {
                    let i = lanes[j] as usize;
                    if !arg.is_null(i) {
                        let s = s as usize;
                        sum[s] = sum[s].wrapping_add(lane_i64(arg, i)?);
                        seen[s] = true;
                    }
                }
            }
            AccCol::SumF { sum, seen } => {
                for (j, &s) in slots.iter().enumerate() {
                    let i = lanes[j] as usize;
                    if !arg.is_null(i) {
                        let s = s as usize;
                        sum[s] += lane_f64(arg, i)?;
                        seen[s] = true;
                    }
                }
            }
            AccCol::Min(cur) => min_max_batch(cur, slots, lanes, arg, true),
            AccCol::Max(cur) => min_max_batch(cur, slots, lanes, arg, false),
            AccCol::Avg { sum, count } => {
                let (hc, _) = (
                    hidden.ok_or_else(|| VwError::Exec("AVG final needs count".into()))?,
                    0,
                );
                for (j, &s) in slots.iter().enumerate() {
                    let i = lanes[j] as usize;
                    if !arg.is_null(i) {
                        let s = s as usize;
                        sum[s] += lane_f64(arg, i)?;
                        count[s] += lane_i64(hc, i)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Finished output value of one slot, mirroring `AggState::finish`.
    fn finish(&self, slot: usize, phase: AggPhase) -> Value {
        match self {
            AccCol::Count(n) => Value::I64(n[slot]),
            AccCol::SumI { sum, seen } => {
                if seen[slot] {
                    Value::I64(sum[slot])
                } else {
                    Value::Null
                }
            }
            AccCol::SumF { sum, seen } => {
                if seen[slot] {
                    Value::F64(sum[slot])
                } else {
                    Value::Null
                }
            }
            AccCol::Min(v) | AccCol::Max(v) => v[slot].clone().unwrap_or(Value::Null),
            AccCol::Avg { sum, count } => {
                if count[slot] == 0 {
                    Value::Null
                } else if phase == AggPhase::Partial {
                    Value::F64(sum[slot])
                } else {
                    Value::F64(sum[slot] / count[slot] as f64)
                }
            }
        }
    }

    /// Hidden AVG count of one slot (partial output layout).
    fn hidden_count(&self, slot: usize) -> Value {
        match self {
            AccCol::Avg { count, .. } => Value::I64(count[slot]),
            _ => Value::Null,
        }
    }
}

/// Shared MIN/MAX loop (update and combine treat non-null lanes the same).
fn min_max_batch(
    cur: &mut [Option<Value>],
    slots: &[u32],
    lanes: &[u32],
    v: &ExecVector,
    is_min: bool,
) {
    let ty = match &v.data {
        ColumnData::Bool(_) => DataType::Bool,
        ColumnData::I32(_) => DataType::I32,
        ColumnData::I64(_) => DataType::I64,
        ColumnData::F64(_) => DataType::F64,
        ColumnData::Str(_) => DataType::Str,
    };
    for (j, &s) in slots.iter().enumerate() {
        let i = lanes[j] as usize;
        if v.is_null(i) {
            continue;
        }
        let val = v.get_value(i, ty);
        let slot = &mut cur[s as usize];
        let better = slot.as_ref().is_none_or(|c| {
            let ord = val.total_cmp(c);
            if is_min {
                ord.is_lt()
            } else {
                ord.is_gt()
            }
        });
        if better {
            *slot = Some(val);
        }
    }
}

/// The direct-array aggregation table.
pub struct PerfectTable {
    coders: Vec<KeyCoder>,
    key_types: Vec<DataType>,
    caps: Vec<u32>,
    /// `strides[k] = Π caps[..k]`; a tuple's slot is `Σ code_k · strides[k]`.
    strides: Vec<u32>,
    slots: usize,
    occupied: Vec<bool>,
    accs: Vec<AccCol>,
    /// Scratch: slot per lane of the batch being absorbed.
    slot_buf: Vec<u32>,
    /// Per key column: cached dict-code → key-code remap for one block.
    /// `u16::MAX` marks a dictionary entry outside the coder's domain.
    remaps: Vec<Option<(BlockId, Vec<u16>)>>,
    /// Bytes reserved against the memory budget at construction; the owner
    /// shrinks its tracker by this amount when the table is dropped.
    pub reserved_bytes: usize,
}

impl PerfectTable {
    /// Build a table for the planned specs, reserving its (fixed) footprint
    /// against the budget. `None` = the reservation failed; use the generic
    /// path. With no group keys the single slot 0 is pre-occupied, which
    /// reproduces the scalar-aggregate-over-empty-input row.
    pub fn try_new(
        specs: &[KeyCoderSpec],
        key_types: &[DataType],
        aggs: &[AggExpr],
        arg_types: &[Option<DataType>],
        mem: &mut MemTracker,
    ) -> Option<PerfectTable> {
        debug_assert_eq!(specs.len(), key_types.len());
        let caps: Vec<u32> = specs.iter().map(|s| s.cap()).collect();
        let mut strides = Vec::with_capacity(caps.len());
        let mut slots: usize = 1;
        for &c in &caps {
            strides.push(slots as u32);
            slots = slots.checked_mul(c as usize)?;
        }
        if slots > MAX_SLOTS {
            return None;
        }
        let per_slot: usize = 1 + aggs
            .iter()
            .zip(arg_types)
            .map(|(a, ty)| AccCol::bytes_per_slot(a.func, *ty))
            .sum::<usize>();
        let reserved = slots * per_slot + 256;
        if !mem.try_grow(reserved) {
            return None;
        }
        let mut occupied = vec![false; slots];
        if key_types.is_empty() {
            occupied[0] = true;
        }
        Some(PerfectTable {
            coders: specs.iter().map(|&s| KeyCoder::new(s)).collect(),
            key_types: key_types.to_vec(),
            caps,
            strides,
            slots,
            occupied,
            accs: aggs
                .iter()
                .zip(arg_types)
                .map(|(a, ty)| AccCol::new(a.func, *ty, slots))
                .collect(),
            slot_buf: Vec::new(),
            remaps: key_types.iter().map(|_| None).collect(),
            reserved_bytes: reserved,
        })
    }

    /// Absorb one batch. `keys[k]` presents group key `k`, `lanes` are the
    /// selected physical rows, `args[k]`/`hidden[k]` the evaluated argument
    /// (and hidden AVG count column, Final phase) of aggregate `k`.
    ///
    /// Returns `Ok(false)` — with **no accumulator or occupancy mutated for
    /// this batch** — when any lane's key falls outside the planned domain;
    /// the caller then falls back to the generic table.
    pub fn absorb(
        &mut self,
        keys: &[BatchKey<'_>],
        lanes: &[u32],
        args: &[Option<ExecVector>],
        phase: AggPhase,
        hidden: &[Option<&ExecVector>],
    ) -> Result<bool> {
        // Pass 1: compose every lane's slot before touching any state.
        let mut slot_buf = std::mem::take(&mut self.slot_buf);
        slot_buf.clear();
        slot_buf.resize(lanes.len(), 0);
        for (k, key) in keys.iter().enumerate() {
            let stride = self.strides[k];
            let in_domain = match key {
                BatchKey::Column(v) => self.code_column(k, v, lanes, stride, &mut slot_buf)?,
                BatchKey::Dict {
                    block,
                    codes,
                    nulls,
                    dict,
                } => self.code_dict(k, *block, codes, *nulls, dict, lanes, stride, &mut slot_buf),
            };
            if !in_domain {
                self.slot_buf = slot_buf;
                return Ok(false);
            }
        }
        // Pass 2: commit occupancy and accumulate.
        for &s in &slot_buf {
            self.occupied[s as usize] = true;
        }
        for (k, acc) in self.accs.iter_mut().enumerate() {
            if phase == AggPhase::Final {
                let arg = args[k]
                    .as_ref()
                    .ok_or_else(|| VwError::Exec("final agg needs arg".into()))?;
                acc.combine_batch(&slot_buf, lanes, arg, hidden[k])?;
            } else {
                acc.update_batch(&slot_buf, lanes, args[k].as_ref())?;
            }
        }
        self.slot_buf = slot_buf;
        Ok(true)
    }

    /// Add key `k`'s contribution from a materialized column. Returns
    /// `false` when some lane is out of domain (fallback).
    fn code_column(
        &mut self,
        k: usize,
        v: &ExecVector,
        lanes: &[u32],
        stride: u32,
        slot_buf: &mut [u32],
    ) -> Result<bool> {
        let coder = &mut self.coders[k];
        match &v.data {
            ColumnData::Str(col) => {
                for (j, &lane) in lanes.iter().enumerate() {
                    let i = lane as usize;
                    let code = if v.nulls.as_ref().is_some_and(|n| n[i]) {
                        0
                    } else {
                        match coder.code_str(col.get_bytes(i)) {
                            Some(c) => c,
                            None => return Ok(false),
                        }
                    };
                    slot_buf[j] += code as u32 * stride;
                }
            }
            ColumnData::Bool(col) => {
                if !matches!(coder, KeyCoder::Bool) {
                    return Ok(false);
                }
                for (j, &lane) in lanes.iter().enumerate() {
                    let i = lane as usize;
                    let code = if v.nulls.as_ref().is_some_and(|n| n[i]) {
                        0
                    } else {
                        1 + col[i] as u32
                    };
                    slot_buf[j] += code * stride;
                }
            }
            ColumnData::I64(col) => {
                for (j, &lane) in lanes.iter().enumerate() {
                    let i = lane as usize;
                    let code = if v.nulls.as_ref().is_some_and(|n| n[i]) {
                        0
                    } else {
                        match coder.code_int(col[i]) {
                            Some(c) => c,
                            None => return Ok(false),
                        }
                    };
                    slot_buf[j] += code as u32 * stride;
                }
            }
            ColumnData::I32(col) => {
                for (j, &lane) in lanes.iter().enumerate() {
                    let i = lane as usize;
                    let code = if v.nulls.as_ref().is_some_and(|n| n[i]) {
                        0
                    } else {
                        match coder.code_int(col[i] as i64) {
                            Some(c) => c,
                            None => return Ok(false),
                        }
                    };
                    slot_buf[j] += code as u32 * stride;
                }
            }
            ColumnData::F64(_) => return Ok(false),
        }
        Ok(true)
    }

    /// Add key `k`'s contribution from undecoded dictionary codes, remapping
    /// dict codes to key codes once per block and caching the remap.
    #[allow(clippy::too_many_arguments)]
    fn code_dict(
        &mut self,
        k: usize,
        block: BlockId,
        codes: &[u32],
        nulls: Option<&[bool]>,
        dict: &StrColumn,
        lanes: &[u32],
        stride: u32,
        slot_buf: &mut [u32],
    ) -> bool {
        let cached = matches!(&self.remaps[k], Some((b, _)) if *b == block);
        if !cached {
            let coder = &mut self.coders[k];
            let remap: Vec<u16> = (0..dict.len())
                .map(|e| coder.code_str(dict.get_bytes(e)).unwrap_or(u16::MAX))
                .collect();
            self.remaps[k] = Some((block, remap));
        }
        let remap = &self.remaps[k].as_ref().unwrap().1;
        for (j, &lane) in lanes.iter().enumerate() {
            let i = lane as usize;
            let code = if nulls.is_some_and(|n| n[i]) {
                0
            } else {
                let c = remap[codes[i] as usize];
                if c == u16::MAX {
                    return false;
                }
                c as u32
            };
            slot_buf[j] += code * stride;
        }
        true
    }

    /// Number of occupied slots (groups).
    pub fn n_groups(&self) -> usize {
        self.occupied.iter().filter(|&&b| b).count()
    }

    /// Emit every occupied slot as an output row for `phase`: decoded group
    /// keys, finished aggregates, hidden AVG counts when emitting partials.
    /// With `phase == Partial` the rows are layout-compatible with the
    /// generic path's spill rows, which is how fallback hands resident state
    /// to the hash table.
    pub fn rows(&self, phase: AggPhase, avg_idxs: &[usize]) -> Vec<Vec<Value>> {
        let width = self.coders.len();
        let mut out = Vec::with_capacity(self.n_groups());
        for slot in 0..self.slots {
            if !self.occupied[slot] {
                continue;
            }
            let mut row = Vec::with_capacity(width + self.accs.len() + avg_idxs.len());
            for k in 0..width {
                let code = (slot as u32 / self.strides[k]) % self.caps[k];
                row.push(self.coders[k].key_value(code as u16, self.key_types[k]));
            }
            for acc in &self.accs {
                row.push(acc.finish(slot, phase));
            }
            if phase == AggPhase::Partial {
                for &k in avg_idxs {
                    row.push(self.accs[k].hidden_count(slot));
                }
            }
            out.push(row);
        }
        out
    }
}

/// Group keys never materialize `Arc`s, but the side channel hands the dict
/// over as one; re-export the alias the scan uses so callers share a name.
pub type DictRef = Arc<StrColumn>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{MemBudget, MemTracker};
    use vw_plan::Expr;

    fn aggs() -> Vec<AggExpr> {
        vec![
            AggExpr {
                func: AggFunc::CountStar,
                arg: None,
                name: "n".into(),
            },
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(Expr::col(1)),
                name: "s".into(),
            },
        ]
    }

    #[test]
    fn spec_planning_caps_domain() {
        // One tiny string key: 33 slots.
        let s = plan_specs(&[DataType::Str], &[None]).unwrap();
        assert_eq!(s, vec![KeyCoderSpec::TinyStr]);
        // Int key needs a hint.
        assert!(plan_specs(&[DataType::I64], &[None]).is_none());
        let s = plan_specs(&[DataType::I64], &[Some((5, 10))]).unwrap();
        assert_eq!(s, vec![KeyCoderSpec::IntRange { lo: 5, cap: 7 }]);
        // Too-wide range is rejected.
        assert!(plan_specs(&[DataType::I64], &[Some((0, 1000))]).is_none());
        // Composed domain beyond MAX_SLOTS is rejected: 33 * 33 * 33 > 4096.
        assert!(plan_specs(
            &[DataType::Str, DataType::Str, DataType::Str],
            &[None, None, None]
        )
        .is_none());
        // F64 keys never qualify.
        assert!(plan_specs(&[DataType::F64], &[None]).is_none());
        // No keys at all (scalar aggregate) → one-slot table.
        assert_eq!(plan_specs(&[], &[]), Some(vec![]));
    }

    #[test]
    fn absorb_and_rows_roundtrip() {
        let specs = plan_specs(&[DataType::Str], &[None]).unwrap();
        let aggs = aggs();
        let arg_types = vec![None, Some(DataType::I64)];
        let mut mem = MemTracker::new(Arc::new(MemBudget::new(None)));
        let mut t =
            PerfectTable::try_new(&specs, &[DataType::Str], &aggs, &arg_types, &mut mem).unwrap();
        let keys = ExecVector::not_null(ColumnData::Str(StrColumn::from_iter([
            "a", "b", "a", "a", "b",
        ])));
        let vals = ExecVector::not_null(ColumnData::I64(vec![1, 2, 3, 4, 5]));
        let lanes: Vec<u32> = (0..5).collect();
        let ok = t
            .absorb(
                &[BatchKey::Column(&keys)],
                &lanes,
                &[None, Some(vals)],
                AggPhase::Single,
                &[None, None],
            )
            .unwrap();
        assert!(ok);
        assert_eq!(t.n_groups(), 2);
        let mut rows = t.rows(AggPhase::Single, &[]);
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(
            rows,
            vec![
                vec![Value::Str("a".into()), Value::I64(3), Value::I64(8)],
                vec![Value::Str("b".into()), Value::I64(2), Value::I64(7)],
            ]
        );
    }

    #[test]
    fn out_of_domain_leaves_state_untouched() {
        let specs = plan_specs(&[DataType::I64], &[Some((0, 3))]).unwrap();
        let aggs = aggs();
        let arg_types = vec![None, Some(DataType::I64)];
        let mut mem = MemTracker::new(Arc::new(MemBudget::new(None)));
        let mut t =
            PerfectTable::try_new(&specs, &[DataType::I64], &aggs, &arg_types, &mut mem).unwrap();
        let good = ExecVector::not_null(ColumnData::I64(vec![0, 1, 2]));
        let vals = ExecVector::not_null(ColumnData::I64(vec![10, 20, 30]));
        let lanes: Vec<u32> = (0..3).collect();
        assert!(t
            .absorb(
                &[BatchKey::Column(&good)],
                &lanes,
                &[None, Some(vals.clone())],
                AggPhase::Single,
                &[None, None],
            )
            .unwrap());
        assert_eq!(t.n_groups(), 3);
        // A batch with one out-of-range key must not perturb anything.
        let bad = ExecVector::not_null(ColumnData::I64(vec![1, 99, 2]));
        assert!(!t
            .absorb(
                &[BatchKey::Column(&bad)],
                &lanes,
                &[None, Some(vals)],
                AggPhase::Single,
                &[None, None],
            )
            .unwrap());
        assert_eq!(t.n_groups(), 3);
        let rows = t.rows(AggPhase::Single, &[]);
        let total: i64 = rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
        assert_eq!(total, 3, "counts unchanged after rejected batch");
    }

    #[test]
    fn tiny_budget_rejects_table() {
        let specs = plan_specs(&[DataType::Str], &[None]).unwrap();
        let aggs = aggs();
        let arg_types = vec![None, Some(DataType::I64)];
        let mut mem = MemTracker::new(Arc::new(MemBudget::new(Some(64))));
        assert!(
            PerfectTable::try_new(&specs, &[DataType::Str], &aggs, &arg_types, &mut mem).is_none()
        );
    }

    #[test]
    fn null_keys_get_code_zero() {
        let specs = plan_specs(&[DataType::Str], &[None]).unwrap();
        let aggs = vec![AggExpr {
            func: AggFunc::CountStar,
            arg: None,
            name: "n".into(),
        }];
        let mut mem = MemTracker::new(Arc::new(MemBudget::new(None)));
        let mut t =
            PerfectTable::try_new(&specs, &[DataType::Str], &aggs, &[None], &mut mem).unwrap();
        let keys = ExecVector::new(
            ColumnData::Str(StrColumn::from_iter(["", "x", ""])),
            Some(vec![true, false, true]),
        );
        let lanes: Vec<u32> = (0..3).collect();
        assert!(t
            .absorb(
                &[BatchKey::Column(&keys)],
                &lanes,
                &[None],
                AggPhase::Single,
                &[None],
            )
            .unwrap());
        let mut rows = t.rows(AggPhase::Single, &[]);
        rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert_eq!(
            rows,
            vec![
                vec![Value::Null, Value::I64(2)],
                vec![Value::Str("x".into()), Value::I64(1)],
            ]
        );
    }
}
