//! The vectorized table scan.
//!
//! Reads the stable columnar image row-group by row-group, merges in the
//! table's PDT deltas (§I-B: "incoming queries … merge in the differences …
//! while they scan data from disk"), applies zone-map pruning for pushed-down
//! predicates, slices groups into engine-sized vectors, and evaluates the
//! pushed-down filter producing selection vectors.
//!
//! Parallelism is morsel-driven: inside an Exchange, every worker's scan
//! pulls units from one shared [`MorselQueue`] instead of owning a static
//! `g % P == worker` slice. Which worker decodes a group is decided by
//! runtime readiness, so a skewed group-size distribution (one giant group,
//! many tiny ones) no longer serializes the query behind one thread, and no
//! worker exits while unclaimed work remains.
//!
//! Pruning vs PDTs: a row group may only be skipped by its MinMax stats if
//! the PDT holds **no** changes for its SID range — a modify could move a
//! value into the predicate's range. Appended rows (inserts at
//! `sid == stable_rows`) form a virtual tail group that is never pruned; in
//! morsel mode the tail is one queue unit claimed by exactly one worker.

use crate::batch::{Batch, ExecVector};
use crate::morsel::{Morsel, MorselQueue};
use crate::primitives::sel_from_bool;
use crate::vexpr::ExprEvaluator;
use parking_lot::RwLock;
use std::sync::Arc;
use vw_common::{Result, Schema, Value, VwError};
use vw_pdt::{Change, Pdt};
use vw_plan::{BinOp, Expr};
use vw_storage::block::PruneOp;
use vw_storage::TableStorage;

/// Where the scan's units come from: a private list (serial scan) or the
/// shared work-stealing queue of the surrounding Exchange.
enum UnitSource {
    Local(std::vec::IntoIter<Morsel>),
    Queue(Arc<MorselQueue>),
}

impl UnitSource {
    fn next(&mut self) -> Option<Morsel> {
        match self {
            UnitSource::Local(it) => it.next(),
            UnitSource::Queue(q) => q.claim(),
        }
    }
}

/// The vectorized scan operator.
pub struct VecScan {
    storage: Arc<RwLock<TableStorage>>,
    pdt: Arc<Pdt>,
    /// Storage column indexes produced, in output order.
    projection: Vec<usize>,
    out_schema: Schema,
    filter: Option<ExprEvaluator>,
    vector_size: usize,
    units: UnitSource,
    /// Current decoded group columns + remaining offset.
    current: Option<(Vec<ExecVector>, usize, usize)>, // (cols, len, offset)
    /// Units this operator instance actually claimed (profiling).
    units_claimed: u64,
    /// Row groups skipped by zone-map pruning. Set for serial scans; for
    /// queue scans the count is recorded once at queue creation (the prune
    /// decision happens when the shared unit list is planned, not per
    /// worker).
    groups_pruned: u64,
}

/// A planned scan-unit list plus the zone-map pruning outcome.
pub struct ScanUnits {
    pub units: Vec<Morsel>,
    /// Row groups skipped entirely thanks to MinMax stats.
    pub groups_pruned: usize,
}

impl VecScan {
    /// The scan-unit list for one table snapshot: zone-map-pruned row groups
    /// plus the PDT append tail. This is what a serial scan iterates and what
    /// an Exchange publishes as the shared [`MorselQueue`].
    pub fn plan_units(
        storage: &Arc<RwLock<TableStorage>>,
        pdt: &Pdt,
        projection: &[usize],
        filter: Option<&Expr>,
    ) -> Vec<Morsel> {
        Self::plan_units_pruned(storage, pdt, projection, filter).units
    }

    /// Like [`VecScan::plan_units`], but also reports how many row groups
    /// zone-map pruning eliminated (surfaced by `EXPLAIN ANALYZE`).
    pub fn plan_units_pruned(
        storage: &Arc<RwLock<TableStorage>>,
        pdt: &Pdt,
        projection: &[usize],
        filter: Option<&Expr>,
    ) -> ScanUnits {
        let guard = storage.read();
        // Candidate prune predicates from the filter's conjuncts.
        let prune = filter.map(prunable_conjuncts).unwrap_or_default();
        let n_groups = guard.group_count();
        let mut units: Vec<Morsel> = Vec::new();
        let mut groups_pruned = 0usize;
        for g in 0..n_groups {
            let grp = guard.group(g);
            let (lo, hi) =
                pdt.entry_range_for_sids(grp.start_row, grp.start_row + grp.n_rows as u64);
            let dirty = lo != hi;
            if !dirty && !prune.is_empty() {
                let keep = prune.iter().all(|(out_col, op, v)| {
                    let storage_col = projection[*out_col];
                    grp.columns[storage_col].minmax.may_match(*op, v)
                });
                if !keep {
                    groups_pruned += 1;
                    continue;
                }
            }
            units.push(Morsel::Group(g));
        }
        // Appends: inserts at sid == stable_rows form one virtual tail unit.
        let stable = pdt.stable_rows();
        let (alo, ahi) = pdt.entry_range_for_sids(stable, stable + 1);
        if ahi > alo {
            units.push(Morsel::AppendTail);
        }
        ScanUnits {
            units,
            groups_pruned,
        }
    }

    /// Create a scan.
    ///
    /// * `projection` — storage columns to produce (output order),
    /// * `filter` — predicate over the projected schema (optional),
    /// * `morsels` — shared work queue when running inside an Exchange
    ///   worker; `None` for a serial scan over all units,
    /// * `naive_nulls` — use the naive NULL interpreter (experiment E8).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        storage: Arc<RwLock<TableStorage>>,
        pdt: Arc<Pdt>,
        projection: Vec<usize>,
        filter: Option<Expr>,
        vector_size: usize,
        morsels: Option<Arc<MorselQueue>>,
        naive_nulls: bool,
    ) -> Result<VecScan> {
        let out_schema = storage.read().schema().project(&projection);
        let mut groups_pruned = 0u64;
        let units = match morsels {
            Some(q) => UnitSource::Queue(q),
            None => {
                let su = Self::plan_units_pruned(&storage, &pdt, &projection, filter.as_ref());
                groups_pruned = su.groups_pruned as u64;
                UnitSource::Local(su.units.into_iter())
            }
        };
        let filter = filter
            .map(|f| ExprEvaluator::new(f, &out_schema, naive_nulls))
            .transpose()?;
        Ok(VecScan {
            storage,
            pdt,
            projection,
            out_schema,
            filter,
            vector_size: vector_size.max(1),
            units,
            current: None,
            units_claimed: 0,
            groups_pruned,
        })
    }

    /// Load the columns of a scan unit, merging PDT changes.
    fn load_unit(&self, unit: Morsel) -> Result<(Vec<ExecVector>, usize)> {
        match unit {
            Morsel::Group(g) => {
                let guard = self.storage.read();
                let grp_start;
                let grp_rows;
                {
                    let grp = guard.group(g);
                    grp_start = grp.start_row;
                    grp_rows = grp.n_rows;
                }
                let (lo, hi) = self
                    .pdt
                    .entry_range_for_sids(grp_start, grp_start + grp_rows as u64);
                let mut cols = Vec::with_capacity(self.projection.len());
                for &c in &self.projection {
                    cols.push(ExecVector::from_storage(guard.read_column(g, c)?));
                }
                drop(guard);
                if lo == hi {
                    return Ok((cols, grp_rows));
                }
                self.merge_group(cols, grp_start, grp_rows, lo, hi)
            }
            Morsel::AppendTail => {
                let stable = self.pdt.stable_rows();
                let (lo, hi) = self.pdt.entry_range_for_sids(stable, stable + 1);
                let schema = self.out_schema.clone();
                let mut rows: Vec<Vec<Value>> = Vec::with_capacity(hi - lo);
                for e in &self.pdt.entries()[lo..hi] {
                    if let Change::Insert { row, .. } = &e.change {
                        rows.push(self.projection.iter().map(|&c| row[c].clone()).collect());
                    }
                }
                let n = rows.len();
                let batch = Batch::from_rows(&schema, &rows)?;
                Ok((batch.columns, n))
            }
        }
    }

    /// Merge PDT entries `[lo, hi)` into the decoded group columns.
    /// Value-based slow path — only taken for groups with pending deltas.
    fn merge_group(
        &self,
        cols: Vec<ExecVector>,
        grp_start: u64,
        grp_rows: usize,
        lo: usize,
        hi: usize,
    ) -> Result<(Vec<ExecVector>, usize)> {
        let schema = &self.out_schema;
        let entries = &self.pdt.entries()[lo..hi];
        let mut out: Vec<Vec<Value>> = vec![Vec::with_capacity(grp_rows); cols.len()];
        let mut emitted = 0usize;
        let mut e_idx = 0usize;
        for local in 0..grp_rows {
            let sid = grp_start + local as u64;
            // Emit inserts positioned before this stable tuple.
            while e_idx < entries.len() && entries[e_idx].sid == sid {
                match &entries[e_idx].change {
                    Change::Insert { row, .. } => {
                        for (k, &c) in self.projection.iter().enumerate() {
                            out[k].push(row[c].clone());
                        }
                        emitted += 1;
                        e_idx += 1;
                    }
                    _ => break,
                }
            }
            // The stable tuple itself: deleted / modified / untouched.
            let tuple_entry = entries
                .get(e_idx)
                .filter(|e| e.sid == sid && !e.change.is_insert());
            match tuple_entry.map(|e| &e.change) {
                Some(Change::Delete) => {
                    e_idx += 1;
                }
                Some(Change::Modify(mods)) => {
                    for (k, &c) in self.projection.iter().enumerate() {
                        let v = match mods.get(&(c as u32)) {
                            Some(nv) => nv.clone(),
                            None => cols[k].get_value(local, schema.field(k).ty),
                        };
                        out[k].push(v);
                    }
                    emitted += 1;
                    e_idx += 1;
                }
                _ => {
                    for (k, col) in cols.iter().enumerate() {
                        out[k].push(col.get_value(local, schema.field(k).ty));
                    }
                    emitted += 1;
                }
            }
        }
        debug_assert_eq!(e_idx, entries.len(), "unconsumed PDT entries in group");
        debug_assert!(out.first().is_none_or(|c| c.len() == emitted));
        let n = emitted;
        let columns = schema
            .fields()
            .iter()
            .zip(out)
            .map(|(f, vals)| ExecVector::from_values(f.ty, &vals))
            .collect::<Result<Vec<_>>>()?;
        Ok((columns, n))
    }
}

/// Extract `col <op> literal` conjuncts usable for zone-map pruning.
fn prunable_conjuncts(filter: &Expr) -> Vec<(usize, PruneOp, Value)> {
    let mut conjuncts = Vec::new();
    vw_plan::rewrite::pushdown::split_conjunction(filter, &mut conjuncts);
    let mut out = Vec::new();
    for c in conjuncts {
        if let Expr::Binary { op, l, r } = &c {
            let mapped = match (&**l, &**r) {
                (Expr::Col(i), Expr::Lit(v)) => prune_op(*op).map(|p| (*i, p, v.clone())),
                (Expr::Lit(v), Expr::Col(i)) => prune_op(flip(*op)).map(|p| (*i, p, v.clone())),
                _ => None,
            };
            if let Some(m) = mapped {
                out.push(m);
            }
        }
    }
    out
}

fn prune_op(op: BinOp) -> Option<PruneOp> {
    Some(match op {
        BinOp::Eq => PruneOp::Eq,
        BinOp::Lt => PruneOp::Lt,
        BinOp::Le => PruneOp::Le,
        BinOp::Gt => PruneOp::Gt,
        BinOp::Ge => PruneOp::Ge,
        _ => return None,
    })
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

impl super::Operator for VecScan {
    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn profile_extras(&self) -> Vec<(&'static str, u64)> {
        let mut v = vec![("morsels", self.units_claimed)];
        if self.groups_pruned > 0 {
            v.push(("pruned", self.groups_pruned));
        }
        v
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        loop {
            if self.current.is_none() {
                match self.units.next() {
                    Some(unit) => {
                        self.units_claimed += 1;
                        let (cols, len) = self.load_unit(unit)?;
                        if len == 0 {
                            continue;
                        }
                        self.current = Some((cols, len, 0));
                    }
                    None => return Ok(None),
                }
            }
            let (cols, len, off) = self.current.as_mut().unwrap();
            let from = *off;
            let to = (from + self.vector_size).min(*len);
            let slice: Vec<ExecVector> = cols.iter().map(|c| c.slice(from, to)).collect();
            *off = to;
            let exhausted = *off >= *len;
            let n = to - from;
            if exhausted {
                self.current = None;
            }
            if n == 0 {
                continue;
            }
            let mut batch = Batch::new(slice);
            batch.rows = n;
            if let Some(f) = &self.filter {
                let v = f.eval(&batch)?;
                let vals = match &v.data {
                    vw_storage::ColumnData::Bool(b) => b,
                    _ => return Err(VwError::Exec("filter must produce booleans".into())),
                };
                let mut sel = Vec::new();
                sel_from_bool(vals, v.nulls.as_deref(), None, &mut sel);
                if sel.is_empty() {
                    continue;
                }
                if sel.len() < batch.rows {
                    batch.sel = Some(sel);
                }
            }
            return Ok(Some(batch));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{collect_rows, Operator};
    use vw_common::{DataType, Field};
    use vw_storage::{SimDisk, SimDiskConfig, TableBuilder};

    fn make_table(n: usize, group: usize) -> Arc<RwLock<TableStorage>> {
        let disk = Arc::new(SimDisk::new(SimDiskConfig::default()));
        let schema = Schema::new(vec![
            Field::new("k", DataType::I64),
            Field::new("q", DataType::I64),
            Field::nullable("tag", DataType::Str),
        ]);
        let mut b = TableBuilder::with_group_size(schema, disk, group);
        for i in 0..n {
            b.push_row(vec![
                Value::I64(i as i64),
                Value::I64((i % 10) as i64),
                if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Str(format!("t{}", i % 3))
                },
            ])
            .unwrap();
        }
        Arc::new(RwLock::new(b.finish().unwrap()))
    }

    fn scan_all(
        storage: &Arc<RwLock<TableStorage>>,
        pdt: &Arc<Pdt>,
        projection: Vec<usize>,
        filter: Option<Expr>,
        vs: usize,
    ) -> Vec<Vec<Value>> {
        let mut scan = VecScan::new(
            storage.clone(),
            pdt.clone(),
            projection,
            filter,
            vs,
            None,
            false,
        )
        .unwrap();
        collect_rows(&mut scan).unwrap()
    }

    #[test]
    fn clean_scan_returns_all_rows() {
        let t = make_table(250, 100);
        let pdt = Arc::new(Pdt::new(250));
        let rows = scan_all(&t, &pdt, vec![0, 1, 2], None, 64);
        assert_eq!(rows.len(), 250);
        assert_eq!(rows[0][0], Value::I64(0));
        assert_eq!(rows[249][0], Value::I64(249));
        assert_eq!(rows[4][2], Value::Null);
    }

    #[test]
    fn projection_subset_and_order() {
        let t = make_table(10, 100);
        let pdt = Arc::new(Pdt::new(10));
        let rows = scan_all(&t, &pdt, vec![1, 0], None, 4);
        assert_eq!(rows[3], vec![Value::I64(3), Value::I64(3)]);
        let s = VecScan::new(t, pdt, vec![1, 0], None, 4, None, false).unwrap();
        assert_eq!(s.schema().field(0).name, "q");
        assert_eq!(s.schema().field(1).name, "k");
    }

    #[test]
    fn filter_produces_selection() {
        let t = make_table(100, 50);
        let pdt = Arc::new(Pdt::new(100));
        let f = Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(5)));
        let rows = scan_all(&t, &pdt, vec![0], Some(f), 32);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[4], vec![Value::I64(4)]);
    }

    #[test]
    fn zone_map_pruning_skips_groups() {
        let t = make_table(1000, 100);
        let pdt = Arc::new(Pdt::new(1000));
        let disk_reads_before = t.read().disk().stats().reads;
        // k < 150 → only groups 0 and 1 must be read.
        let f = Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(150)));
        let rows = scan_all(&t, &pdt, vec![0], Some(f), 128);
        assert_eq!(rows.len(), 150);
        let reads = t.read().disk().stats().reads - disk_reads_before;
        assert_eq!(reads, 2, "expected 2 group reads, got {}", reads);
    }

    #[test]
    fn pdt_merge_deletes_inserts_modifies() {
        let t = make_table(100, 40);
        let mut pdt = Pdt::new(100);
        pdt.delete_at(0).unwrap(); // delete k=0
        pdt.modify_at(0, 1, Value::I64(999)).unwrap(); // modify (now k=1)'s q
        pdt.insert_at(
            50,
            vec![Value::I64(-1), Value::I64(-2), Value::Str("ins".into())],
        )
        .unwrap();
        // append at end
        let end = pdt.current_rows();
        pdt.insert_at(end, vec![Value::I64(1000), Value::I64(0), Value::Null])
            .unwrap();
        let pdt = Arc::new(pdt);
        let rows = scan_all(&t, &pdt, vec![0, 1, 2], None, 16);
        assert_eq!(rows.len(), 101); // 100 - 1 + 1 + 1
        assert_eq!(rows[0][0], Value::I64(1)); // k=0 deleted
        assert_eq!(rows[0][1], Value::I64(999)); // modified
        assert_eq!(rows[50][0], Value::I64(-1)); // inserted mid-table
        assert_eq!(rows[100][0], Value::I64(1000)); // appended
        assert_eq!(rows[100][2], Value::Null);
    }

    #[test]
    fn dirty_groups_are_not_pruned() {
        let t = make_table(200, 100);
        let mut pdt = Pdt::new(200);
        // modify k in group 1 to a value the predicate matches
        let rid = pdt.rid_of_sid(150).unwrap();
        pdt.modify_at(rid, 0, Value::I64(1)).unwrap();
        let pdt = Arc::new(pdt);
        // predicate k <= 1 would prune group 1 by zone map (its min is 100)
        let f = Expr::binary(BinOp::Le, Expr::col(0), Expr::lit(Value::I64(1)));
        let rows = scan_all(&t, &pdt, vec![0], Some(f), 64);
        // rows: k=0, k=1 from group 0, and the modified k=1 in group 1
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn morsel_scans_cover_disjointly() {
        let t = make_table(500, 50); // 10 groups
        let mut pdt = Pdt::new(500);
        pdt.insert_at(500, vec![Value::I64(9999), Value::I64(0), Value::Null])
            .unwrap();
        let pdt = Arc::new(pdt);
        // Three scans share one morsel queue — together they must cover every
        // row (including the append tail) exactly once, whatever the claim
        // interleaving.
        let units = VecScan::plan_units(&t, &pdt, &[0], None);
        assert_eq!(units.len(), 11); // 10 groups + append tail
        let q = MorselQueue::new(units);
        let mut all: Vec<Vec<Value>> = Vec::new();
        for _ in 0..3 {
            let mut scan = VecScan::new(
                t.clone(),
                pdt.clone(),
                vec![0],
                None,
                64,
                Some(q.clone()),
                false,
            )
            .unwrap();
            all.extend(collect_rows(&mut scan).unwrap());
        }
        assert_eq!(all.len(), 501);
        let mut keys: Vec<i64> = all
            .iter()
            .map(|r| match r[0] {
                Value::I64(k) => k,
                _ => panic!(),
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 501); // disjoint coverage
        assert_eq!(q.progress().get(), 11); // every unit claimed
    }

    #[test]
    fn vector_size_one_works() {
        let t = make_table(5, 100);
        let pdt = Arc::new(Pdt::new(5));
        let rows = scan_all(&t, &pdt, vec![0], None, 1);
        assert_eq!(rows.len(), 5);
    }
}
