//! The vectorized table scan.
//!
//! Reads the stable columnar image row-group by row-group, merges in the
//! table's PDT deltas (§I-B: "incoming queries … merge in the differences …
//! while they scan data from disk"), applies zone-map pruning for pushed-down
//! predicates, slices groups into engine-sized vectors, and evaluates the
//! pushed-down filter producing selection vectors.
//!
//! Parallelism is morsel-driven: inside an Exchange, every worker's scan
//! pulls units from one shared [`MorselQueue`] instead of owning a static
//! `g % P == worker` slice. Which worker decodes a group is decided by
//! runtime readiness, so a skewed group-size distribution (one giant group,
//! many tiny ones) no longer serializes the query behind one thread, and no
//! worker exits while unclaimed work remains.
//!
//! Pruning vs PDTs: a row group may only be skipped by its MinMax stats if
//! the PDT holds **no** changes for its SID range — a modify could move a
//! value into the predicate's range. Appended rows (inserts at
//! `sid == stable_rows`) form a virtual tail group that is never pruned; in
//! morsel mode the tail is one queue unit claimed by exactly one worker.

use crate::adapt::{
    encode_order, AdaptiveOrder, MAX_REPORTED_CONJUNCTS, PRED_EVAL_KEYS, PRED_PASS_KEYS,
    SCAN_RERANK_VECTORS,
};
use crate::batch::{Batch, ExecVector};
use crate::morsel::{Morsel, MorselQueue};
use crate::primitives::sel_from_bool;
use crate::trace::TraceHandle;
use crate::vexpr::ExprEvaluator;
use parking_lot::RwLock;
use std::sync::Arc;
use vw_bufman::{CoopScanHandle, DecodeCache};
use vw_common::waits::{WaitClass, WaitStats, WaitTimer};
use vw_common::{BlockId, DataType, Result, Schema, Value, VwError};
use vw_pdt::{Change, Pdt};
use vw_plan::{BinOp, Expr};
use vw_storage::block::PruneOp;
use vw_storage::{BlockCursor, ColumnData, Pred, PredOp, StrColumn, TableStorage};

/// Undecoded group-key payload for one batch: the PDICT codes of a key
/// column plus the block's dictionary, handed to a fused aggregate instead
/// of the decoded strings (see [`VecScan::set_key_cols`]). `codes[i]` is the
/// dictionary code of physical row `i` of the batch; NULL rows still carry a
/// valid code and are masked by `nulls`.
pub struct KeyCodes {
    pub codes: Vec<u32>,
    pub nulls: Option<Vec<bool>>,
    pub dict: Arc<StrColumn>,
    pub block: BlockId,
}

/// Where the scan's units come from: a private list (serial scan) or the
/// shared work-stealing queue of the surrounding Exchange.
enum UnitSource {
    Local(std::vec::IntoIter<Morsel>),
    /// Shared queue + this worker's index (its home partition lane).
    Queue(Arc<MorselQueue>, usize),
}

impl UnitSource {
    fn next(&mut self) -> Option<Morsel> {
        match self {
            UnitSource::Local(it) => it.next(),
            UnitSource::Queue(q, worker) => q.claim_for(*worker),
        }
    }
}

/// The unit the scan is currently draining, vector by vector.
enum Unit {
    /// Fully decoded columns (dirty groups, the append tail, naive mode, and
    /// scans without pushable predicates).
    Eager {
        cols: Vec<ExecVector>,
        len: usize,
        off: usize,
    },
    /// Compressed execution: columns stay encoded; predicates run on the
    /// codec cursors and only surviving vectors are materialized.
    Lazy(LazyGroup),
}

/// Per-group state of the lazy (compressed-execution) path.
struct LazyGroup {
    group: usize,
    len: usize,
    off: usize,
    /// One cursor per projected column, opened on first touch. A column
    /// whose cursor is never opened had its block skipped entirely.
    cursors: Vec<Option<BlockCursor>>,
    /// Block coordinates per projected column (decode-cache keys).
    block_ids: Vec<BlockId>,
    /// Encoded size per projected column (skipped-bytes accounting).
    enc_bytes: Vec<u64>,
    /// Pushed predicates still live for this group after zone-map `decide`
    /// dropped the always-true ones: `(conjunct id, output column,
    /// predicate)`. The conjunct id indexes the scan-wide adaptive-order
    /// stats; evaluation order is decided per vector, not here.
    preds: Vec<(usize, usize, Pred)>,
}

/// Compressed-execution counters surfaced by `EXPLAIN ANALYZE`.
#[derive(Default)]
struct LazyCounters {
    /// Column-vector slices actually decoded.
    vec_decoded: u64,
    /// Column-vector slices never materialized (whole vector filtered out).
    vec_skipped: u64,
    /// Predicate evaluations performed on encoded data.
    enc_evals: u64,
    /// Decoded slices served from the shared decode cache.
    cache_hits: u64,
    /// Key-column slices whose decode was skipped: raw dictionary codes were
    /// handed to a fused aggregate instead.
    key_coded: u64,
}

/// The vectorized scan operator.
pub struct VecScan {
    storage: Arc<RwLock<TableStorage>>,
    pdt: Arc<Pdt>,
    /// Storage column indexes produced, in output order.
    projection: Vec<usize>,
    out_schema: Schema,
    /// The full filter, for units that must decode eagerly.
    filter: Option<ExprEvaluator>,
    /// Filter conjuncts evaluable inside codec cursors (lazy path).
    enc_preds: Vec<(usize, Pred)>,
    /// What remains of the filter after pushdown (lazy path).
    residual: Option<ExprEvaluator>,
    /// Shared cache of decoded vector slices, when the session has one.
    decode_cache: Option<Arc<DecodeCache>>,
    vector_size: usize,
    units: UnitSource,
    current: Option<Unit>,
    counters: LazyCounters,
    /// Units this operator instance actually claimed (profiling).
    units_claimed: u64,
    /// Row groups skipped by zone-map pruning. Set for serial scans; for
    /// queue scans the count is recorded once at queue creation (the prune
    /// decision happens when the shared unit list is planned, not per
    /// worker).
    groups_pruned: u64,
    /// Range partitions of the table / partitions ruled out wholesale by
    /// range predicates. Same recording rule as `groups_pruned`.
    partitions: u64,
    partitions_pruned: u64,
    /// Per group key of a fused aggregate: the output position whose decode
    /// should be skipped when the block is PDICT-coded, or `None` for keys
    /// that must decode normally. Empty = no capture.
    key_cols: Vec<Option<usize>>,
    /// Per key column (in `key_cols` order): the codes of the batch just
    /// produced, when its decode was skipped.
    key_stash: Vec<Option<KeyCodes>>,
    /// Micro-adaptive ordering of the pushed conjuncts: observed per-vector
    /// selectivity and cost re-rank `enc_preds` every few vectors so the
    /// cheapest/most-selective predicate empties the selection first (and
    /// the rest are never evaluated on that vector).
    adapt: AdaptiveOrder,
    /// Query trace: morsel claims become per-worker instant events.
    trace: Option<TraceHandle>,
    /// Cooperative-scan registration: when set, block reads go through the
    /// ABM so overlapping scans of the same table share disk loads.
    coop: Option<CoopScanHandle>,
    /// Wait-state sink (the owning plan node's [`WaitStats`]). `None` when
    /// profiling is off — no timestamps are taken then.
    waits: Option<Arc<WaitStats>>,
}

/// A planned scan-unit list plus the zone-map pruning outcome.
pub struct ScanUnits {
    pub units: Vec<Morsel>,
    /// Row groups skipped entirely thanks to MinMax stats (includes the
    /// groups of range-pruned partitions).
    pub groups_pruned: usize,
    /// Range partitions of the table (1 = unpartitioned).
    pub partitions: usize,
    /// Partitions eliminated wholesale by range predicates on the
    /// partitioning column, before any per-group zone-map check.
    pub partitions_pruned: usize,
    /// Per-partition `(start, end)` index ranges into `units` — the lanes of
    /// a partition-aware [`MorselQueue`]. One range when unpartitioned.
    pub lanes: Vec<(usize, usize)>,
}

impl VecScan {
    /// The scan-unit list for one table snapshot: zone-map-pruned row groups
    /// plus the PDT append tail. This is what a serial scan iterates and what
    /// an Exchange publishes as the shared [`MorselQueue`].
    pub fn plan_units(
        storage: &Arc<RwLock<TableStorage>>,
        pdt: &Pdt,
        projection: &[usize],
        filter: Option<&Expr>,
    ) -> Vec<Morsel> {
        Self::plan_units_pruned(storage, pdt, projection, filter).units
    }

    /// Like [`VecScan::plan_units`], but also reports how many row groups
    /// zone-map pruning eliminated (surfaced by `EXPLAIN ANALYZE`).
    pub fn plan_units_pruned(
        storage: &Arc<RwLock<TableStorage>>,
        pdt: &Pdt,
        projection: &[usize],
        filter: Option<&Expr>,
    ) -> ScanUnits {
        let guard = storage.read();
        // Candidate prune predicates from the filter's conjuncts.
        let prune = filter.map(prunable_conjuncts).unwrap_or_default();
        let n_groups = guard.group_count();
        let mut units: Vec<Morsel> = Vec::new();
        let mut groups_pruned = 0usize;
        // Partition-level pruning: a range predicate on the partitioning
        // column can rule out whole partitions against the declared bounds,
        // before any row-group zone map is consulted.
        let nparts = guard.partition_count();
        let mut part_pruned = vec![false; nparts];
        let mut partitions_pruned = 0usize;
        // Lanes: contiguous runs of units belonging to one partition. Group
        // ids iterate in storage order and partition extents are contiguous,
        // so a lane closes exactly when the partition id changes.
        let mut lanes: Vec<(usize, usize)> = Vec::new();
        let mut lane_part: Option<usize> = None;
        if nparts > 1 && !prune.is_empty() {
            if let Some(pcol) = guard.partition_col() {
                for (p, pruned) in part_pruned.iter_mut().enumerate() {
                    *pruned = prune.iter().any(|(out_col, op, v)| {
                        projection[*out_col] == pcol && !guard.partition_may_match(p, *op, v)
                    });
                    if *pruned {
                        partitions_pruned += 1;
                    }
                }
            }
        }
        for g in 0..n_groups {
            let grp = guard.group(g);
            let (lo, hi) =
                pdt.entry_range_for_sids(grp.start_row, grp.start_row + grp.n_rows as u64);
            let dirty = lo != hi;
            if !dirty && partitions_pruned > 0 {
                let p = guard.partition_of_group(g);
                if part_pruned[p] {
                    groups_pruned += 1;
                    // Skipped blocks are charged against the partition's own
                    // device, so `vw_io` shows which disks the query avoided.
                    for &c in projection {
                        guard
                            .partition_disk(p)
                            .note_skipped(grp.columns[c].encoded_bytes as u64);
                    }
                    continue;
                }
            }
            if !dirty && !prune.is_empty() {
                let keep = prune.iter().all(|(out_col, op, v)| {
                    let storage_col = projection[*out_col];
                    grp.columns[storage_col].minmax.may_match(*op, v)
                });
                if !keep {
                    groups_pruned += 1;
                    // The scan will never touch this group's blocks: account
                    // their encoded bytes as skipped I/O on the device that
                    // holds them.
                    let d = guard.partition_disk(guard.partition_of_group(g));
                    for &c in projection {
                        d.note_skipped(grp.columns[c].encoded_bytes as u64);
                    }
                    continue;
                }
            }
            if nparts > 1 {
                let p = guard.partition_of_group(g);
                if lane_part != Some(p) {
                    lanes.push((units.len(), units.len()));
                    lane_part = Some(p);
                }
            }
            units.push(Morsel::Group(g));
            if let Some(l) = lanes.last_mut() {
                l.1 = units.len();
            }
        }
        // Appends: inserts at sid == stable_rows form one virtual tail unit.
        let stable = pdt.stable_rows();
        let (alo, ahi) = pdt.entry_range_for_sids(stable, stable + 1);
        if ahi > alo {
            units.push(Morsel::AppendTail);
            // The tail belongs to no partition; fold it into the last lane.
            if let Some(l) = lanes.last_mut() {
                l.1 = units.len();
            }
        }
        if lanes.is_empty() {
            lanes.push((0, units.len()));
        }
        ScanUnits {
            units,
            groups_pruned,
            partitions: nparts,
            partitions_pruned,
            lanes,
        }
    }

    /// Create a scan.
    ///
    /// * `projection` — storage columns to produce (output order),
    /// * `filter` — predicate over the projected schema (optional),
    /// * `morsels` — shared work queue when running inside an Exchange
    ///   worker; `None` for a serial scan over all units,
    /// * `decode_cache` — shared cache of decoded vector slices (lazy path),
    /// * `naive_nulls` — use the naive NULL interpreter (experiment E8),
    /// * `adaptive` — enable micro-adaptive ordering of pushed conjuncts.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        storage: Arc<RwLock<TableStorage>>,
        pdt: Arc<Pdt>,
        projection: Vec<usize>,
        filter: Option<Expr>,
        vector_size: usize,
        morsels: Option<Arc<MorselQueue>>,
        decode_cache: Option<Arc<DecodeCache>>,
        naive_nulls: bool,
        adaptive: bool,
    ) -> Result<VecScan> {
        let out_schema = storage.read().schema().project(&projection);
        let mut groups_pruned = 0u64;
        let mut partitions = 0u64;
        let mut partitions_pruned = 0u64;
        let units = match morsels {
            Some(q) => UnitSource::Queue(q, 0),
            None => {
                let su = Self::plan_units_pruned(&storage, &pdt, &projection, filter.as_ref());
                groups_pruned = su.groups_pruned as u64;
                partitions = su.partitions as u64;
                partitions_pruned = su.partitions_pruned as u64;
                UnitSource::Local(su.units.into_iter())
            }
        };
        // Split the filter into codec-evaluable conjuncts and a residual.
        // The naive mode (experiment E8) deliberately bypasses compressed
        // execution: it models an engine without these optimizations.
        let mut enc_preds = Vec::new();
        let mut residual = None;
        if !naive_nulls {
            if let Some(f) = &filter {
                let (pushed, rest) = classify_pushdown(f, &out_schema);
                if !pushed.is_empty() {
                    enc_preds = pushed;
                    residual = rest
                        .map(|e| ExprEvaluator::new(e, &out_schema, naive_nulls))
                        .transpose()?;
                }
            }
        }
        let filter = filter
            .map(|f| ExprEvaluator::new(f, &out_schema, naive_nulls))
            .transpose()?;
        // One conjunct can't be reordered; keep the machinery off entirely.
        let adapt = AdaptiveOrder::new(
            enc_preds.len(),
            SCAN_RERANK_VECTORS,
            adaptive && enc_preds.len() > 1,
        );
        Ok(VecScan {
            storage,
            pdt,
            projection,
            out_schema,
            filter,
            enc_preds,
            residual,
            decode_cache,
            vector_size: vector_size.max(1),
            units,
            current: None,
            counters: LazyCounters::default(),
            units_claimed: 0,
            groups_pruned,
            partitions,
            partitions_pruned,
            key_cols: Vec::new(),
            key_stash: Vec::new(),
            adapt,
            trace: None,
            coop: None,
            waits: None,
        })
    }

    /// Record morsel claims into the query trace timeline.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = Some(trace);
    }

    /// Tell a queue-fed scan which Exchange worker it runs on, so claims
    /// start from that worker's home partition lane. No-op for serial scans.
    pub fn set_worker(&mut self, worker: usize) {
        if let UnitSource::Queue(_, w) = &mut self.units {
            *w = worker;
        }
    }

    /// Route block reads through a cooperative-scan registration. Workers of
    /// one Exchange must pass clones of the SAME handle (one logical scan).
    pub fn set_coop(&mut self, coop: CoopScanHandle) {
        self.coop = Some(coop);
        if let (Some(c), Some(w)) = (&mut self.coop, &self.waits) {
            c.set_waits(w.clone());
        }
    }

    /// Attribute this scan's blocked time (block I/O, decode-cache misses,
    /// morsel-queue contention) to `waits`. Call order with [`set_coop`] is
    /// immaterial: whichever comes second completes the plumbing.
    ///
    /// [`set_coop`]: VecScan::set_coop
    pub fn set_waits(&mut self, waits: Arc<WaitStats>) {
        if let Some(c) = &mut self.coop {
            c.set_waits(waits.clone());
        }
        self.waits = Some(waits);
    }

    /// Ask the scan to skip decoding these output columns when a block is
    /// PDICT-coded, stashing the raw codes for [`VecScan::take_key_codes`]
    /// instead (the batch then carries a placeholder column there). The list
    /// is indexed by the fused aggregate's group-key position; `None` keys
    /// always decode. Only a fused aggregate may request this, and only for
    /// key columns no other expression reads. Refused when a residual filter
    /// must evaluate over the batch — it could reference any column.
    pub fn set_key_cols(&mut self, cols: Vec<Option<usize>>) {
        if self.residual.is_some() {
            return;
        }
        self.key_stash = cols.iter().map(|_| None).collect();
        self.key_cols = cols;
    }

    /// Stop key-code capture (perfect-hash fallback): subsequent batches
    /// decode every column normally.
    pub fn disable_capture(&mut self) {
        self.key_cols.clear();
        self.key_stash.clear();
    }

    /// Key codes of the batch just returned by `next()`, indexed like the
    /// `set_key_cols` list. `None` entries were decoded normally.
    pub fn take_key_codes(&mut self) -> Vec<Option<KeyCodes>> {
        let fresh = self.key_cols.iter().map(|_| None).collect();
        std::mem::replace(&mut self.key_stash, fresh)
    }

    /// Load the columns of a scan unit, merging PDT changes.
    fn load_unit(&self, unit: Morsel) -> Result<(Vec<ExecVector>, usize)> {
        match unit {
            Morsel::Group(g) => {
                let guard = self.storage.read();
                let grp_start;
                let grp_rows;
                {
                    let grp = guard.group(g);
                    grp_start = grp.start_row;
                    grp_rows = grp.n_rows;
                }
                let (lo, hi) = self
                    .pdt
                    .entry_range_for_sids(grp_start, grp_start + grp_rows as u64);
                let mut cols = Vec::with_capacity(self.projection.len());
                for &c in &self.projection {
                    let col = match &self.coop {
                        Some(h) => {
                            let bytes = h.fetch(guard.column_block_id(g, c)?)?;
                            guard.decode_column_from(g, c, &bytes)?
                        }
                        None => guard.read_column(g, c)?,
                    };
                    cols.push(ExecVector::from_storage(col));
                }
                drop(guard);
                if lo == hi {
                    return Ok((cols, grp_rows));
                }
                self.merge_group(cols, grp_start, grp_rows, lo, hi)
            }
            Morsel::AppendTail => {
                let stable = self.pdt.stable_rows();
                let (lo, hi) = self.pdt.entry_range_for_sids(stable, stable + 1);
                let schema = self.out_schema.clone();
                let mut rows: Vec<Vec<Value>> = Vec::with_capacity(hi - lo);
                for e in &self.pdt.entries()[lo..hi] {
                    if let Change::Insert { row, .. } = &e.change {
                        rows.push(self.projection.iter().map(|&c| row[c].clone()).collect());
                    }
                }
                let n = rows.len();
                let batch = Batch::from_rows(&schema, &rows)?;
                Ok((batch.columns, n))
            }
        }
    }

    /// Merge PDT entries `[lo, hi)` into the decoded group columns.
    /// Value-based slow path — only taken for groups with pending deltas.
    fn merge_group(
        &self,
        cols: Vec<ExecVector>,
        grp_start: u64,
        grp_rows: usize,
        lo: usize,
        hi: usize,
    ) -> Result<(Vec<ExecVector>, usize)> {
        let schema = &self.out_schema;
        let entries = &self.pdt.entries()[lo..hi];
        let mut out: Vec<Vec<Value>> = vec![Vec::with_capacity(grp_rows); cols.len()];
        let mut emitted = 0usize;
        let mut e_idx = 0usize;
        for local in 0..grp_rows {
            let sid = grp_start + local as u64;
            // Emit inserts positioned before this stable tuple.
            while e_idx < entries.len() && entries[e_idx].sid == sid {
                match &entries[e_idx].change {
                    Change::Insert { row, .. } => {
                        for (k, &c) in self.projection.iter().enumerate() {
                            out[k].push(row[c].clone());
                        }
                        emitted += 1;
                        e_idx += 1;
                    }
                    _ => break,
                }
            }
            // The stable tuple itself: deleted / modified / untouched.
            let tuple_entry = entries
                .get(e_idx)
                .filter(|e| e.sid == sid && !e.change.is_insert());
            match tuple_entry.map(|e| &e.change) {
                Some(Change::Delete) => {
                    e_idx += 1;
                }
                Some(Change::Modify(mods)) => {
                    for (k, &c) in self.projection.iter().enumerate() {
                        let v = match mods.get(&(c as u32)) {
                            Some(nv) => nv.clone(),
                            None => cols[k].get_value(local, schema.field(k).ty),
                        };
                        out[k].push(v);
                    }
                    emitted += 1;
                    e_idx += 1;
                }
                _ => {
                    for (k, col) in cols.iter().enumerate() {
                        out[k].push(col.get_value(local, schema.field(k).ty));
                    }
                    emitted += 1;
                }
            }
        }
        debug_assert_eq!(e_idx, entries.len(), "unconsumed PDT entries in group");
        debug_assert!(out.first().is_none_or(|c| c.len() == emitted));
        let n = emitted;
        let columns = schema
            .fields()
            .iter()
            .zip(out)
            .map(|(f, vals)| ExecVector::from_values(f.ty, &vals))
            .collect::<Result<Vec<_>>>()?;
        Ok((columns, n))
    }

    /// Turn a claimed unit into drainable state. `None` means the unit
    /// produced nothing (empty, or skipped whole by predicate `decide`).
    fn open_unit(&mut self, unit: Morsel) -> Result<Option<Unit>> {
        if let Morsel::Group(g) = unit {
            if !self.enc_preds.is_empty() {
                let (grp_start, grp_rows) = {
                    let guard = self.storage.read();
                    let grp = guard.group(g);
                    (grp.start_row, grp.n_rows)
                };
                let (lo, hi) = self
                    .pdt
                    .entry_range_for_sids(grp_start, grp_start + grp_rows as u64);
                // Only clean groups can stay encoded: PDT deltas are merged
                // value-wise over decoded columns.
                if lo == hi {
                    return self.open_lazy_group(g);
                }
            }
        }
        let (cols, len) = self.load_unit(unit)?;
        if len == 0 {
            return Ok(None);
        }
        Ok(Some(Unit::Eager { cols, len, off: 0 }))
    }

    /// Open a clean group for compressed execution. Zone maps decide each
    /// pushed predicate where possible: an impossible predicate skips the
    /// group without reading any block, an always-true one is dropped.
    fn open_lazy_group(&mut self, g: usize) -> Result<Option<Unit>> {
        let guard = self.storage.read();
        let grp = guard.group(g);
        if grp.n_rows == 0 {
            return Ok(None);
        }
        let mut preds = Vec::new();
        for (cid, (k, pred)) in self.enc_preds.iter().enumerate() {
            let cb = &grp.columns[self.projection[*k]];
            match pred.decide(&cb.minmax, cb.has_nulls) {
                Some(false) => {
                    for &c in &self.projection {
                        guard
                            .disk()
                            .note_skipped(grp.columns[c].encoded_bytes as u64);
                    }
                    drop(guard);
                    self.groups_pruned += 1;
                    return Ok(None);
                }
                Some(true) => {}
                None => preds.push((cid, *k, pred.clone())),
            }
        }
        let block_ids = self
            .projection
            .iter()
            .map(|&c| grp.columns[c].block_id)
            .collect();
        let enc_bytes = self
            .projection
            .iter()
            .map(|&c| grp.columns[c].encoded_bytes as u64)
            .collect();
        let cursors = self.projection.iter().map(|_| None).collect();
        Ok(Some(Unit::Lazy(LazyGroup {
            group: g,
            len: grp.n_rows,
            off: 0,
            cursors,
            block_ids,
            enc_bytes,
            preds,
        })))
    }

    /// One vector step over the current eager unit. `Ok(None)` means the
    /// vector was filtered out entirely (the caller keeps looping).
    fn eager_step(&mut self) -> Result<Option<Batch>> {
        let Some(Unit::Eager { cols, len, off }) = self.current.as_mut() else {
            unreachable!("eager_step without an eager unit")
        };
        let from = *off;
        let to = (from + self.vector_size).min(*len);
        let slice: Vec<ExecVector> = cols.iter().map(|c| c.slice(from, to)).collect();
        *off = to;
        let n = to - from;
        if *off >= *len {
            self.current = None;
        }
        if n == 0 {
            return Ok(None);
        }
        let mut batch = Batch::new(slice);
        batch.rows = n;
        if let Some(f) = &self.filter {
            let v = f.eval(&batch)?;
            let vals = match &v.data {
                vw_storage::ColumnData::Bool(b) => b,
                _ => return Err(VwError::Exec("filter must produce booleans".into())),
            };
            let mut sel = Vec::new();
            sel_from_bool(vals, v.nulls.as_deref(), None, &mut sel);
            if sel.is_empty() {
                return Ok(None);
            }
            if sel.len() < batch.rows {
                batch.sel = Some(sel);
            }
        }
        Ok(Some(batch))
    }

    /// One vector step over the current lazy group: evaluate the pushed
    /// predicates on the encoded data, and only materialize the vector's
    /// columns when rows survive. `Ok(None)` means nothing survived.
    fn lazy_step(&mut self) -> Result<Option<Batch>> {
        let cache = self.decode_cache.clone();
        let vs = self.vector_size;
        // A stash entry must only describe the batch this step returns.
        for s in &mut self.key_stash {
            *s = None;
        }
        // Re-rank window advances per vector so even single-group tables
        // adapt; the order just decided applies to this vector.
        self.adapt.tick();
        let adaptive = self.adapt.enabled();
        let order: Vec<usize> = self.adapt.order().to_vec();
        let Some(Unit::Lazy(lg)) = self.current.as_mut() else {
            unreachable!("lazy_step without a lazy unit")
        };
        let from = lg.off;
        let to = (from + vs).min(lg.len);
        lg.off = to;
        let done = lg.off >= lg.len;
        let n = to - from;
        let ctr = &mut self.counters;
        let mut sel: Option<Vec<u32>> = None;
        // Conjunction by sorted-position intersection is commutative, so any
        // evaluation order yields bit-identical selections; the adaptive
        // order only changes how soon an empty intersection short-circuits
        // the remaining (never-evaluated) conjuncts.
        for &cid in &order {
            let Some((_, k, pred)) = lg.preds.iter().find(|(c, _, _)| *c == cid) else {
                continue; // dropped by zone-map `decide` for this group
            };
            let cur = cursor_at(
                &self.storage,
                self.coop.as_ref(),
                &self.projection,
                lg.group,
                &mut lg.cursors,
                *k,
            )?;
            ctr.enc_evals += 1;
            let t0 = adaptive.then(std::time::Instant::now);
            let s = cur.eval_pred(pred, from, to)?;
            if let Some(t0) = t0 {
                self.adapt
                    .observe(cid, n, s.len(), t0.elapsed().as_nanos() as u64);
            }
            sel = Some(match sel {
                None => s,
                Some(prev) => intersect_sorted(&prev, &s),
            });
            if sel.as_ref().unwrap().is_empty() {
                break;
            }
        }
        if sel.as_ref().is_some_and(|s| s.is_empty()) {
            ctr.vec_skipped += self.projection.len() as u64;
            if done {
                self.finish_lazy_group();
            }
            return Ok(None);
        }
        let mut columns = Vec::with_capacity(self.projection.len());
        for k in 0..self.projection.len() {
            // Fused-aggregate key capture: when the block is PDICT-coded,
            // skip the decode and stash the raw codes; the batch carries a
            // placeholder column that MUST NOT enter the decode cache. On
            // fallback the aggregate rebuilds the real column from the codes.
            if let Some(kpos) = self.key_cols.iter().position(|c| *c == Some(k)) {
                let cur = cursor_at(
                    &self.storage,
                    self.coop.as_ref(),
                    &self.projection,
                    lg.group,
                    &mut lg.cursors,
                    k,
                )?;
                if let Some((codes, dict)) = cur.dict_codes(from, to) {
                    let nulls = cur.nulls_slice(from, to);
                    ctr.key_coded += 1;
                    let mut ph = StrColumn::with_capacity(n, 0);
                    for _ in 0..n {
                        ph.push("");
                    }
                    columns.push(ExecVector::new(ColumnData::Str(ph), nulls.clone()));
                    self.key_stash[kpos] = Some(KeyCodes {
                        codes,
                        nulls,
                        dict,
                        block: lg.block_ids[k],
                    });
                    continue;
                }
            }
            let key = (lg.block_ids[k], from as u32, to as u32);
            let col = match cache.as_deref().and_then(|c| c.get(&key)) {
                Some(hit) => {
                    ctr.cache_hits += 1;
                    (*hit).clone()
                }
                None => {
                    let cur = cursor_at(
                        &self.storage,
                        self.coop.as_ref(),
                        &self.projection,
                        lg.group,
                        &mut lg.cursors,
                        k,
                    )?;
                    // A cache miss pays the decode; time it as a wait so the
                    // profile can split compute from stalled-on-decode.
                    let t = self
                        .waits
                        .as_deref()
                        .map(|w| WaitTimer::start(w, WaitClass::Decode));
                    let col = cur.decode_slice(from, to)?;
                    drop(t);
                    ctr.vec_decoded += 1;
                    if let Some(c) = cache.as_deref() {
                        c.insert(key, Arc::new(col.clone()));
                    }
                    col
                }
            };
            columns.push(ExecVector::from_storage(col));
        }
        if done {
            self.finish_lazy_group();
        }
        let mut batch = Batch::new(columns);
        batch.rows = n;
        if let Some(s) = sel {
            if s.len() < n {
                batch.sel = Some(s);
            }
        }
        if let Some(r) = &self.residual {
            let v = r.eval(&batch)?;
            let vals = match &v.data {
                vw_storage::ColumnData::Bool(b) => b,
                _ => return Err(VwError::Exec("filter must produce booleans".into())),
            };
            let mut out = Vec::new();
            sel_from_bool(vals, v.nulls.as_deref(), batch.sel.as_deref(), &mut out);
            if out.is_empty() {
                return Ok(None);
            }
            batch.sel = (out.len() < batch.rows).then_some(out);
        }
        Ok(Some(batch))
    }

    /// Account the blocks a finished lazy group never opened as skipped I/O.
    fn finish_lazy_group(&mut self) {
        if let Some(Unit::Lazy(lg)) = self.current.take() {
            let guard = self.storage.read();
            for (k, c) in lg.cursors.iter().enumerate() {
                if c.is_none() {
                    guard.disk().note_skipped(lg.enc_bytes[k]);
                }
            }
        }
    }
}

/// Open (once) and return the cursor of projected column `k`.
fn cursor_at<'a>(
    storage: &Arc<RwLock<TableStorage>>,
    coop: Option<&CoopScanHandle>,
    projection: &[usize],
    group: usize,
    cursors: &'a mut [Option<BlockCursor>],
    k: usize,
) -> Result<&'a mut BlockCursor> {
    if cursors[k].is_none() {
        let guard = storage.read();
        let cursor = match coop {
            Some(h) => {
                let bytes = h.fetch(guard.column_block_id(group, projection[k])?)?;
                guard.column_cursor_from(group, projection[k], bytes)?
            }
            None => guard.read_column_cursor(group, projection[k])?,
        };
        cursors[k] = Some(cursor);
    }
    Ok(cursors[k].as_mut().unwrap())
}

/// Intersect two ascending position lists (conjunction of pushed predicates).
fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Split a filter into codec-evaluable conjuncts (`(output column, Pred)`)
/// and the residual expression the vectorized evaluator keeps.
fn classify_pushdown(filter: &Expr, schema: &Schema) -> (Vec<(usize, Pred)>, Option<Expr>) {
    let mut conjuncts = Vec::new();
    vw_plan::rewrite::pushdown::split_conjunction(filter, &mut conjuncts);
    let mut pushed = Vec::new();
    let mut rest = Vec::new();
    for c in conjuncts {
        match pushable_pred(&c, schema) {
            Some(p) => pushed.push(p),
            None => rest.push(c),
        }
    }
    (pushed, vw_plan::rewrite::pushdown::conjoin(rest))
}

/// A conjunct the codec cursors evaluate with the exact semantics of the
/// vectorized comparison kernels: `col <op> literal` over a compatible type
/// pair, or a NULL-free string IN-list.
fn pushable_pred(e: &Expr, schema: &Schema) -> Option<(usize, Pred)> {
    match e {
        Expr::Binary { op, l, r } => {
            let (col, v, op) = match (&**l, &**r) {
                (Expr::Col(i), Expr::Lit(v)) => (*i, v, *op),
                (Expr::Lit(v), Expr::Col(i)) => (*i, v, flip(*op)),
                _ => return None,
            };
            let op = pred_cmp_op(op)?;
            // NaN literals defeat zone-map `decide` (every ordering
            // comparison against NaN is false); leave them to the residual.
            if matches!(v, Value::F64(f) if f.is_nan()) {
                return None;
            }
            let ok = match schema.field(col).ty {
                // Int columns compare as i64 against int literals and as f64
                // against float literals — exactly what the kernels do.
                DataType::I32 | DataType::I64 | DataType::Date => {
                    v.as_i64().is_some() || matches!(v, Value::F64(_))
                }
                DataType::F64 => v.as_f64().is_some(),
                DataType::Str => matches!(v, Value::Str(_)),
                DataType::Bool => false,
            };
            ok.then(|| {
                (
                    col,
                    Pred::Cmp {
                        op,
                        value: v.clone(),
                    },
                )
            })
        }
        Expr::InList { e, list, negated } => {
            let Expr::Col(i) = &**e else { return None };
            if schema.field(*i).ty != DataType::Str {
                return None;
            }
            // A NULL in the list changes the result of non-matches to NULL;
            // only NULL-free string lists keep set-membership semantics.
            let mut values = Vec::with_capacity(list.len());
            for v in list {
                match v {
                    Value::Str(s) => values.push(s.clone()),
                    _ => return None,
                }
            }
            Some((
                *i,
                Pred::InStr {
                    values,
                    negated: *negated,
                },
            ))
        }
        _ => None,
    }
}

fn pred_cmp_op(op: BinOp) -> Option<PredOp> {
    Some(match op {
        BinOp::Eq => PredOp::Eq,
        BinOp::Ne => PredOp::Ne,
        BinOp::Lt => PredOp::Lt,
        BinOp::Le => PredOp::Le,
        BinOp::Gt => PredOp::Gt,
        BinOp::Ge => PredOp::Ge,
        _ => return None,
    })
}

/// Extract `col <op> literal` conjuncts usable for zone-map pruning.
fn prunable_conjuncts(filter: &Expr) -> Vec<(usize, PruneOp, Value)> {
    let mut conjuncts = Vec::new();
    vw_plan::rewrite::pushdown::split_conjunction(filter, &mut conjuncts);
    let mut out = Vec::new();
    for c in conjuncts {
        if let Expr::Binary { op, l, r } = &c {
            let mapped = match (&**l, &**r) {
                (Expr::Col(i), Expr::Lit(v)) => prune_op(*op).map(|p| (*i, p, v.clone())),
                (Expr::Lit(v), Expr::Col(i)) => prune_op(flip(*op)).map(|p| (*i, p, v.clone())),
                _ => None,
            };
            if let Some(m) = mapped {
                out.push(m);
            }
        }
    }
    out
}

fn prune_op(op: BinOp) -> Option<PruneOp> {
    Some(match op {
        BinOp::Eq => PruneOp::Eq,
        BinOp::Lt => PruneOp::Lt,
        BinOp::Le => PruneOp::Le,
        BinOp::Gt => PruneOp::Gt,
        BinOp::Ge => PruneOp::Ge,
        _ => return None,
    })
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

impl super::Operator for VecScan {
    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn profile_extras(&self) -> Vec<(&'static str, u64)> {
        let mut v = vec![("morsels", self.units_claimed)];
        if self.groups_pruned > 0 {
            v.push(("pruned", self.groups_pruned));
        }
        if self.partitions_pruned > 0 {
            v.push(("partitions", self.partitions));
            v.push(("partitions_pruned", self.partitions_pruned));
        }
        let c = &self.counters;
        if c.vec_decoded > 0 {
            v.push(("vec_decoded", c.vec_decoded));
        }
        if c.vec_skipped > 0 {
            v.push(("vec_skipped", c.vec_skipped));
        }
        if c.enc_evals > 0 {
            v.push(("enc_evals", c.enc_evals));
        }
        if c.cache_hits > 0 {
            v.push(("cache_hits", c.cache_hits));
        }
        if c.key_coded > 0 {
            v.push(("key_coded", c.key_coded));
        }
        if self.adapt.enabled() {
            v.push(("adapt_order", encode_order(self.adapt.order())));
            if self.adapt.reorders() > 0 {
                v.push(("adapt_reorders", self.adapt.reorders()));
            }
            for (i, s) in self
                .adapt
                .stats()
                .iter()
                .enumerate()
                .take(MAX_REPORTED_CONJUNCTS)
            {
                if s.evals > 0 {
                    v.push((PRED_PASS_KEYS[i], (s.pass_rate() * 100.0).round() as u64));
                    v.push((PRED_EVAL_KEYS[i], s.evals));
                }
            }
        }
        v
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        loop {
            if self.current.is_none() {
                // Time the claim only for shared queues: contention on the
                // queue lock is morsel starvation, a local iterator is not.
                let t = match (&self.units, self.waits.as_deref()) {
                    (UnitSource::Queue(..), Some(w)) => {
                        Some(WaitTimer::start(w, WaitClass::Morsel))
                    }
                    _ => None,
                };
                let claimed = self.units.next();
                drop(t);
                match claimed {
                    Some(unit) => {
                        self.units_claimed += 1;
                        if let Some(t) = &self.trace {
                            let arg = match &unit {
                                Morsel::Group(g) => Some(("group", *g as u64)),
                                Morsel::AppendTail => None,
                            };
                            t.instant("morsel claim", "sched", arg);
                        }
                        self.current = self.open_unit(unit)?;
                        continue;
                    }
                    None => return Ok(None),
                }
            }
            let lazy = matches!(self.current, Some(Unit::Lazy(_)));
            let step = if lazy {
                self.lazy_step()?
            } else {
                self.eager_step()?
            };
            if let Some(batch) = step {
                return Ok(Some(batch));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::{collect_rows, Operator};
    use vw_common::{DataType, Field};
    use vw_storage::{SimDisk, SimDiskConfig, TableBuilder};

    fn make_table(n: usize, group: usize) -> Arc<RwLock<TableStorage>> {
        let disk = Arc::new(SimDisk::new(SimDiskConfig::default()));
        let schema = Schema::new(vec![
            Field::new("k", DataType::I64),
            Field::new("q", DataType::I64),
            Field::nullable("tag", DataType::Str),
        ]);
        let mut b = TableBuilder::with_group_size(schema, disk, group);
        for i in 0..n {
            b.push_row(vec![
                Value::I64(i as i64),
                Value::I64((i % 10) as i64),
                if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Str(format!("t{}", i % 3))
                },
            ])
            .unwrap();
        }
        Arc::new(RwLock::new(b.finish().unwrap()))
    }

    fn scan_all(
        storage: &Arc<RwLock<TableStorage>>,
        pdt: &Arc<Pdt>,
        projection: Vec<usize>,
        filter: Option<Expr>,
        vs: usize,
    ) -> Vec<Vec<Value>> {
        let mut scan = VecScan::new(
            storage.clone(),
            pdt.clone(),
            projection,
            filter,
            vs,
            None,
            None,
            false,
            true,
        )
        .unwrap();
        collect_rows(&mut scan).unwrap()
    }

    #[test]
    fn clean_scan_returns_all_rows() {
        let t = make_table(250, 100);
        let pdt = Arc::new(Pdt::new(250));
        let rows = scan_all(&t, &pdt, vec![0, 1, 2], None, 64);
        assert_eq!(rows.len(), 250);
        assert_eq!(rows[0][0], Value::I64(0));
        assert_eq!(rows[249][0], Value::I64(249));
        assert_eq!(rows[4][2], Value::Null);
    }

    #[test]
    fn projection_subset_and_order() {
        let t = make_table(10, 100);
        let pdt = Arc::new(Pdt::new(10));
        let rows = scan_all(&t, &pdt, vec![1, 0], None, 4);
        assert_eq!(rows[3], vec![Value::I64(3), Value::I64(3)]);
        let s = VecScan::new(t, pdt, vec![1, 0], None, 4, None, None, false, true).unwrap();
        assert_eq!(s.schema().field(0).name, "q");
        assert_eq!(s.schema().field(1).name, "k");
    }

    #[test]
    fn filter_produces_selection() {
        let t = make_table(100, 50);
        let pdt = Arc::new(Pdt::new(100));
        let f = Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(5)));
        let rows = scan_all(&t, &pdt, vec![0], Some(f), 32);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[4], vec![Value::I64(4)]);
    }

    #[test]
    fn zone_map_pruning_skips_groups() {
        let t = make_table(1000, 100);
        let pdt = Arc::new(Pdt::new(1000));
        let disk_reads_before = t.read().disk().stats().reads;
        // k < 150 → only groups 0 and 1 must be read.
        let f = Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(150)));
        let rows = scan_all(&t, &pdt, vec![0], Some(f), 128);
        assert_eq!(rows.len(), 150);
        let reads = t.read().disk().stats().reads - disk_reads_before;
        assert_eq!(reads, 2, "expected 2 group reads, got {}", reads);
    }

    #[test]
    fn pdt_merge_deletes_inserts_modifies() {
        let t = make_table(100, 40);
        let mut pdt = Pdt::new(100);
        pdt.delete_at(0).unwrap(); // delete k=0
        pdt.modify_at(0, 1, Value::I64(999)).unwrap(); // modify (now k=1)'s q
        pdt.insert_at(
            50,
            vec![Value::I64(-1), Value::I64(-2), Value::Str("ins".into())],
        )
        .unwrap();
        // append at end
        let end = pdt.current_rows();
        pdt.insert_at(end, vec![Value::I64(1000), Value::I64(0), Value::Null])
            .unwrap();
        let pdt = Arc::new(pdt);
        let rows = scan_all(&t, &pdt, vec![0, 1, 2], None, 16);
        assert_eq!(rows.len(), 101); // 100 - 1 + 1 + 1
        assert_eq!(rows[0][0], Value::I64(1)); // k=0 deleted
        assert_eq!(rows[0][1], Value::I64(999)); // modified
        assert_eq!(rows[50][0], Value::I64(-1)); // inserted mid-table
        assert_eq!(rows[100][0], Value::I64(1000)); // appended
        assert_eq!(rows[100][2], Value::Null);
    }

    #[test]
    fn dirty_groups_are_not_pruned() {
        let t = make_table(200, 100);
        let mut pdt = Pdt::new(200);
        // modify k in group 1 to a value the predicate matches
        let rid = pdt.rid_of_sid(150).unwrap();
        pdt.modify_at(rid, 0, Value::I64(1)).unwrap();
        let pdt = Arc::new(pdt);
        // predicate k <= 1 would prune group 1 by zone map (its min is 100)
        let f = Expr::binary(BinOp::Le, Expr::col(0), Expr::lit(Value::I64(1)));
        let rows = scan_all(&t, &pdt, vec![0], Some(f), 64);
        // rows: k=0, k=1 from group 0, and the modified k=1 in group 1
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn morsel_scans_cover_disjointly() {
        let t = make_table(500, 50); // 10 groups
        let mut pdt = Pdt::new(500);
        pdt.insert_at(500, vec![Value::I64(9999), Value::I64(0), Value::Null])
            .unwrap();
        let pdt = Arc::new(pdt);
        // Three scans share one morsel queue — together they must cover every
        // row (including the append tail) exactly once, whatever the claim
        // interleaving.
        let units = VecScan::plan_units(&t, &pdt, &[0], None);
        assert_eq!(units.len(), 11); // 10 groups + append tail
        let q = MorselQueue::new(units);
        let mut all: Vec<Vec<Value>> = Vec::new();
        for _ in 0..3 {
            let mut scan = VecScan::new(
                t.clone(),
                pdt.clone(),
                vec![0],
                None,
                64,
                Some(q.clone()),
                None,
                false,
                true,
            )
            .unwrap();
            all.extend(collect_rows(&mut scan).unwrap());
        }
        assert_eq!(all.len(), 501);
        let mut keys: Vec<i64> = all
            .iter()
            .map(|r| match r[0] {
                Value::I64(k) => k,
                _ => panic!(),
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 501); // disjoint coverage
        assert_eq!(q.progress().get(), 11); // every unit claimed
    }

    #[test]
    fn vector_size_one_works() {
        let t = make_table(5, 100);
        let pdt = Arc::new(Pdt::new(5));
        let rows = scan_all(&t, &pdt, vec![0], None, 1);
        assert_eq!(rows.len(), 5);
    }

    /// The acceptance shape for adaptivity: the selective conjunct is LAST
    /// in the written predicate order, so the static order always evaluates
    /// the pass-everything conjunct first. Adaptive ordering must converge
    /// on the selective conjunct, cut encoded-predicate evaluations, and
    /// return exactly the same rows.
    #[test]
    fn adaptive_order_cuts_enc_evals_and_preserves_results() {
        fn run(adaptive: bool) -> (Vec<Vec<Value>>, u64, u64) {
            let t = make_table(4000, 4000);
            let pdt = Arc::new(Pdt::new(4000));
            // q <= 8 passes 90% (zone maps can't decide: q ranges 0..9);
            // k < 40 passes 1% and is written last.
            let f = Expr::and(
                Expr::binary(BinOp::Le, Expr::col(1), Expr::lit(Value::I64(8))),
                Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(Value::I64(40))),
            );
            let mut scan =
                VecScan::new(t, pdt, vec![0, 1], Some(f), 64, None, None, false, adaptive).unwrap();
            let rows = collect_rows(&mut scan).unwrap();
            let extras = scan.profile_extras();
            let get = |key: &str| {
                extras
                    .iter()
                    .find(|(n, _)| *n == key)
                    .map(|(_, v)| *v)
                    .unwrap_or(0)
            };
            (rows, get("enc_evals"), get("adapt_reorders"))
        }
        let (static_rows, static_evals, static_reorders) = run(false);
        let (adapt_rows, adapt_evals, adapt_reorders) = run(true);
        assert_eq!(static_rows, adapt_rows, "adaptivity changed results");
        assert_eq!(static_rows.len(), 36); // k<40 minus q==9 rows
        assert_eq!(static_reorders, 0);
        assert!(adapt_reorders >= 1, "order never adapted");
        let speedup = static_evals as f64 / adapt_evals.max(1) as f64;
        assert!(
            speedup >= 1.3,
            "enc_evals {} -> {} (speedup {:.2}, want >= 1.3)",
            static_evals,
            adapt_evals,
            speedup
        );
    }
}
