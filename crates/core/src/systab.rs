//! Virtual `vw_` system tables.
//!
//! The monitoring surface every production analytical DBMS grows (Vertica's
//! system tables are the canonical example): the engine's own telemetry —
//! query history, per-operator profiles, the metrics registry, I/O and cache
//! counters — exposed as relations so it is queryable with plain SQL in
//! either engine. This module owns the *catalog* side: reserved table ids,
//! names and schemas. The `Database` materializes the rows (a point-in-time
//! snapshot taken when a query referencing a system table starts executing).

use vw_common::{DataType, Field, Schema, TableId};

/// System tables live at the top of the id space; user tables are allocated
/// sequentially from 1 and can never collide.
pub const SYS_TABLE_BASE: u64 = u64::MAX - 64;

/// All virtual system tables, in catalog order.
pub const SYSTEM_TABLE_NAMES: &[&str] = &[
    "vw_queries",
    "vw_operator_stats",
    "vw_metrics",
    "vw_io",
    "vw_cache",
    "vw_waits",
    "vw_log",
];

/// True if `id` denotes a virtual system table.
pub fn is_system_table(id: TableId) -> bool {
    id.0 >= SYS_TABLE_BASE
}

/// Resolve a system-table name to its reserved id + schema.
pub fn system_table(name: &str) -> Option<(TableId, Schema)> {
    let idx = SYSTEM_TABLE_NAMES.iter().position(|&n| n == name)?;
    Some((TableId(SYS_TABLE_BASE + idx as u64), system_schema(name)))
}

/// Name of the system table with reserved id `id`.
pub fn system_table_name(id: TableId) -> Option<&'static str> {
    if !is_system_table(id) {
        return None;
    }
    SYSTEM_TABLE_NAMES
        .get((id.0 - SYS_TABLE_BASE) as usize)
        .copied()
}

/// Schema of each system table. Kept here (not derived from rows) so tests
/// can assert schema stability and the binder can resolve columns without
/// materializing anything.
pub fn system_schema(name: &str) -> Schema {
    match name {
        // One row per query retained in the history ring (oldest first).
        // The *_ms tail mirrors the lifecycle timeline: the phases sum to
        // wall_ms (see `profile::Timeline`).
        "vw_queries" => Schema::new(vec![
            Field::new("query_id", DataType::I64),
            Field::nullable("sql", DataType::Str),
            Field::new("wall_ms", DataType::F64),
            Field::new("rows", DataType::I64),
            Field::new("dop", DataType::I64),
            Field::new("peak_mem_bytes", DataType::I64),
            Field::new("spill_bytes", DataType::I64),
            Field::new("session_id", DataType::I64),
            Field::new("parse_ms", DataType::F64),
            Field::new("bind_ms", DataType::F64),
            Field::new("optimize_ms", DataType::F64),
            Field::new("admission_ms", DataType::F64),
            Field::new("checkpoint_ms", DataType::F64),
            Field::new("execute_ms", DataType::F64),
        ]),
        // One row per operator of each profiled query in the history ring.
        "vw_operator_stats" => Schema::new(vec![
            Field::new("query_id", DataType::I64),
            Field::new("op", DataType::Str),
            Field::new("plan_node", DataType::Str),
            Field::new("time_ms", DataType::F64),
            Field::new("next_calls", DataType::I64),
            Field::new("vectors", DataType::I64),
            Field::new("rows", DataType::I64),
            // Operator-specific counters ("agg_path_perfect=1, fused_scan=1"),
            // NULL when the operator reported none.
            Field::nullable("extras", DataType::Str),
        ]),
        // The flattened metrics registry (counters, gauges, polled gauges,
        // histogram count/sum/buckets), sorted by (name, label, kind).
        "vw_metrics" => Schema::new(vec![
            Field::new("name", DataType::Str),
            Field::new("label", DataType::Str),
            Field::new("kind", DataType::Str),
            Field::new("value", DataType::F64),
        ]),
        // One row per SimDisk: the database's main disk plus one device per
        // table range partition, each with its own cumulative counters.
        "vw_io" => Schema::new(vec![
            Field::new("disk", DataType::Str),
            Field::new("reads", DataType::I64),
            Field::new("writes", DataType::I64),
            Field::new("bytes_read", DataType::I64),
            Field::new("bytes_written", DataType::I64),
            Field::new("bytes_skipped", DataType::I64),
            Field::new("virtual_read_ms", DataType::F64),
        ]),
        // One row per attached cache (decode cache always; ABM when present).
        "vw_cache" => Schema::new(vec![
            Field::new("cache", DataType::Str),
            Field::new("hits", DataType::I64),
            Field::new("misses", DataType::I64),
            Field::new("evictions", DataType::I64),
            Field::new("resident_bytes", DataType::I64),
        ]),
        // Wait-state attribution: one row per query in the history ring ×
        // wait class with nonzero time (block_io, decode, build_wait,
        // spill_read, spill_write, morsel, admission).
        "vw_waits" => Schema::new(vec![
            Field::new("query_id", DataType::I64),
            Field::new("wait_class", DataType::Str),
            Field::new("wait_ms", DataType::F64),
            // Blocking events, not vectors ("wait_count" rather than "count"
            // so the column name doesn't collide with the COUNT keyword).
            Field::new("wait_count", DataType::I64),
        ]),
        // The structured event log ring, oldest first. `detail` holds the
        // event's key-value fields rendered as "k=v k=v".
        "vw_log" => Schema::new(vec![
            Field::new("seq", DataType::I64),
            Field::new("ts_ms", DataType::F64),
            Field::new("severity", DataType::Str),
            Field::new("event", DataType::Str),
            Field::new("query_id", DataType::I64),
            Field::new("session_id", DataType::I64),
            Field::nullable("detail", DataType::Str),
        ]),
        other => panic!("unknown system table '{other}'"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_resolve_to_distinct_reserved_ids() {
        let mut ids = std::collections::HashSet::new();
        for &name in SYSTEM_TABLE_NAMES {
            let (id, schema) = system_table(name).unwrap();
            assert!(is_system_table(id), "{name} id not in reserved range");
            assert!(ids.insert(id), "duplicate id for {name}");
            assert!(!schema.is_empty());
            assert_eq!(system_table_name(id), Some(name));
        }
        assert!(system_table("lineitem").is_none());
        assert!(!is_system_table(TableId(1)));
    }
}
