//! Admission control for concurrent query serving.
//!
//! The [`Scheduler`] gates query *start* against the database-wide memory
//! ledger: each query declares an admission estimate (`want` bytes, derived
//! from its plan shape) and blocks until that many bytes of headroom exist.
//! Grants are pure scheduler bookkeeping — they never reserve on the ledger
//! itself; actual operator memory flows through the per-query
//! [`MemBudget`](crate::mem::MemBudget) chained onto the ledger. This split
//! keeps the invariant exact: the sum of outstanding grants never exceeds
//! the limit, so "no query start exceeds the global ledger" holds by
//! construction (tracked in [`AdmissionStats::violations`], which must stay
//! zero).
//!
//! Fairness: waiters queue FIFO, with two escapes so short queries aren't
//! starved behind a long one:
//!
//! 1. **Gap fill** — a non-head waiter may start if enough headroom remains
//!    to admit both it *and* the head (the head loses nothing).
//! 2. **Small-query bypass** — if the head cannot start right now, a waiter
//!    wanting ≤ 1/4 of the head's estimate may jump it, at most
//!    [`MAX_HEAD_BYPASS`] times per head (so the head's wait is bounded).

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// How many times small queries may bypass one blocked head-of-queue waiter
/// before strict FIFO resumes for it.
const MAX_HEAD_BYPASS: u64 = 8;

/// Waiters re-check admission at least this often even without a wakeup
/// (ledger headroom can also appear via per-query budget releases, which
/// don't signal the scheduler's condvar).
const ADMISSION_RECHECK: Duration = Duration::from_millis(100);

/// Cumulative admission counters, snapshot via [`Scheduler::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries admitted (every query is eventually admitted).
    pub admitted: u64,
    /// Queries that had to wait for headroom before starting.
    pub waited: u64,
    /// Small-query bypasses of a blocked head-of-queue waiter.
    pub bypassed: u64,
    /// High-water mark of simultaneously granted bytes.
    pub peak_granted: u64,
    /// Admissions that would have pushed grants past the limit (must be 0).
    pub violations: u64,
}

#[derive(Debug, Default)]
struct SchedState {
    /// FIFO of waiting queries: (ticket, want-bytes).
    queue: VecDeque<(u64, u64)>,
    next_ticket: u64,
    /// Bypasses charged against the current head; resets when the head
    /// changes.
    head_bypassed: u64,
    head_ticket: Option<u64>,
    /// Sum of outstanding grant bytes.
    granted_now: u64,
    stats: AdmissionStats,
}

/// Concurrency-aware admission scheduler. One per [`Database`]; queries call
/// [`admit`](Scheduler::admit) before execution and hold the returned grant
/// until their operators have released all memory.
///
/// [`Database`]: crate::Database
#[derive(Default)]
pub struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
}

impl Scheduler {
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// Block until `want` bytes of admission headroom exist under `limit`,
    /// then return an RAII grant. `limit = None` (unbounded ledger) admits
    /// immediately with an empty grant.
    pub fn admit(self: &Arc<Self>, limit: Option<u64>, want: u64) -> AdmissionGrant {
        let Some(limit) = limit else {
            self.state.lock().stats.admitted += 1;
            return AdmissionGrant {
                sched: self.clone(),
                bytes: 0,
            };
        };
        // An estimate above the limit could never start; clamp so every
        // query is admissible on an idle system.
        let want = want.clamp(1, limit);
        let mut st = self.state.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back((ticket, want));
        let mut waited = false;
        loop {
            if let Some(pos) = self.eligible(&st, ticket, want, limit) {
                let head_changed = pos == 0;
                if !head_changed {
                    // Only a true bypass (head blocked, small query jumps)
                    // counts; gap fills take nothing from the head.
                    let (head_ticket, head_want) = st.queue[0];
                    if st.head_ticket != Some(head_ticket) {
                        // First charge against this head: start its budget.
                        st.head_ticket = Some(head_ticket);
                        st.head_bypassed = 0;
                    }
                    if st.granted_now + head_want > limit {
                        st.head_bypassed += 1;
                        st.stats.bypassed += 1;
                    }
                }
                st.queue.retain(|&(t, _)| t != ticket);
                if head_changed {
                    st.head_bypassed = 0;
                    st.head_ticket = st.queue.front().map(|&(t, _)| t);
                }
                st.granted_now += want;
                if st.granted_now > limit {
                    st.stats.violations += 1;
                }
                st.stats.peak_granted = st.stats.peak_granted.max(st.granted_now);
                st.stats.admitted += 1;
                if waited {
                    st.stats.waited += 1;
                }
                drop(st);
                // Another waiter may now be gap-fill eligible.
                self.cv.notify_all();
                return AdmissionGrant {
                    sched: self.clone(),
                    bytes: want,
                };
            }
            waited = true;
            self.cv.wait_for(&mut st, ADMISSION_RECHECK);
        }
    }

    /// Position in the queue if `ticket` may start now, else `None`.
    fn eligible(&self, st: &SchedState, ticket: u64, want: u64, limit: u64) -> Option<usize> {
        if st.granted_now + want > limit {
            return None;
        }
        let pos = st.queue.iter().position(|&(t, _)| t == ticket)?;
        if pos == 0 {
            return Some(0);
        }
        let (head_ticket, head_want) = st.queue[0];
        // Gap fill: room for both me and the head.
        if limit - st.granted_now >= want + head_want {
            return Some(pos);
        }
        // Small-query bypass of a blocked head, bounded per head.
        let head_blocked = st.granted_now + head_want > limit;
        let charged = if st.head_ticket == Some(head_ticket) {
            st.head_bypassed
        } else {
            0
        };
        if head_blocked && want.saturating_mul(4) <= head_want && charged < MAX_HEAD_BYPASS {
            return Some(pos);
        }
        None
    }

    fn release(&self, bytes: u64) {
        if bytes > 0 {
            let mut st = self.state.lock();
            st.granted_now = st.granted_now.saturating_sub(bytes);
        }
        self.cv.notify_all();
    }

    /// Snapshot of the cumulative admission counters.
    pub fn stats(&self) -> AdmissionStats {
        self.state.lock().stats.clone()
    }

    /// Bytes currently granted (for tests and gauges).
    pub fn granted_now(&self) -> u64 {
        self.state.lock().granted_now
    }
}

/// RAII admission grant: holds `bytes` of scheduler headroom until dropped.
/// Drop it only after the query's operators have released their memory.
pub struct AdmissionGrant {
    sched: Arc<Scheduler>,
    bytes: u64,
}

impl AdmissionGrant {
    /// Bytes this grant holds (0 on an unbounded ledger).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for AdmissionGrant {
    fn drop(&mut self) {
        self.sched.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    #[test]
    fn unbounded_admits_immediately() {
        let s = Arc::new(Scheduler::new());
        let g = s.admit(None, 1 << 30);
        assert_eq!(g.bytes(), 0);
        assert_eq!(s.stats().admitted, 1);
        assert_eq!(s.stats().waited, 0);
    }

    #[test]
    fn grants_never_exceed_limit() {
        let s = Arc::new(Scheduler::new());
        let limit = Some(1000);
        let g1 = s.admit(limit, 600);
        let peak = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = s.clone();
            let peak = peak.clone();
            handles.push(thread::spawn(move || {
                let g = s.admit(Some(1000), 300);
                peak.fetch_max(s.granted_now(), Ordering::Relaxed);
                drop(g);
            }));
        }
        drop(g1);
        for h in handles {
            h.join().unwrap();
        }
        let st = s.stats();
        assert_eq!(st.admitted, 9);
        assert_eq!(st.violations, 0);
        assert!(st.peak_granted <= 1000, "peak {} > limit", st.peak_granted);
        assert_eq!(s.granted_now(), 0, "all grants returned");
    }

    #[test]
    fn oversized_want_is_clamped_to_limit() {
        let s = Arc::new(Scheduler::new());
        let g = s.admit(Some(100), 10_000);
        assert_eq!(g.bytes(), 100, "estimate clamps so the query can run");
    }

    #[test]
    fn small_query_bypasses_blocked_head() {
        let s = Arc::new(Scheduler::new());
        // 1000-byte ledger, 400 in use: a 700-byte head blocks, and a
        // 100-byte waiter (≤ 700/4) may jump it.
        let _g0 = s.admit(Some(1000), 400);
        let s2 = s.clone();
        let blocker = thread::spawn(move || {
            let g = s2.admit(Some(1000), 700); // blocked: 400+700 > 1000
            drop(g);
        });
        // Wait until the 700-byte query is queued as head.
        while s.state.lock().queue.is_empty() {
            thread::yield_now();
        }
        let g_small = s.admit(Some(1000), 100);
        assert_eq!(g_small.bytes(), 100);
        let st = s.stats();
        assert!(st.bypassed >= 1, "blocked-head jump recorded as bypass");
        drop(_g0);
        drop(g_small);
        blocker.join().unwrap();
        assert_eq!(s.stats().violations, 0);
    }

    #[test]
    fn head_bypass_is_bounded() {
        let s = Arc::new(Scheduler::new());
        let big = s.admit(Some(1000), 900);
        let s2 = s.clone();
        let head = thread::spawn(move || {
            // Head needs 800; blocked while `big` holds 900.
            let g = s2.admit(Some(1000), 800);
            drop(g);
        });
        while s.state.lock().queue.is_empty() {
            thread::yield_now();
        }
        // Small queries (100 ≤ 800/4 = 200) may bypass the blocked head,
        // but only MAX_HEAD_BYPASS times.
        for _ in 0..MAX_HEAD_BYPASS {
            let g = s.admit(Some(1000), 100);
            drop(g);
        }
        assert_eq!(s.stats().bypassed, MAX_HEAD_BYPASS);
        // The next small query must now wait behind the head.
        let s3 = s.clone();
        let waiter = thread::spawn(move || {
            let g = s3.admit(Some(1000), 100);
            drop(g);
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(
            s.stats().bypassed,
            MAX_HEAD_BYPASS,
            "bypass budget for this head is spent"
        );
        drop(big); // unblocks the head, then the waiter
        head.join().unwrap();
        waiter.join().unwrap();
        let st = s.stats();
        assert_eq!(st.violations, 0);
        assert_eq!(s.granted_now(), 0);
    }
}
