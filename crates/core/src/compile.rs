//! The cross-compiler: `vw_plan::LogicalPlan` → vectorized operator trees.
//!
//! Plays the role of the Ingres→X100 cross-compiler [7]: the planner's
//! engine-neutral algebra comes in, a tree of `vw-core` operators comes out.
//! The same logical plans are also cross-compiled by the baseline engines in
//! `vw-baselines`, which is what makes the engine comparisons apples-to-
//! apples.

use crate::adapt::AggFeedback;
use crate::mem::{MemBudget, MemTracker};
use crate::morsel::{ExecStats, Morsel, MorselQueue, SharedExec};
use crate::operators::perfect;
use crate::operators::{
    BoxedOperator, Exchange, HashAggregate, HashJoin, MergeJoin, Operator, TopN, VecFilter,
    VecLimit, VecProject, VecScan, VecSort,
};
use crate::profile::{OpProfile, ProfiledOp};
use crate::trace::TraceHandle;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use vw_bufman::{Abm, CoopScanHandle, DecodeCache};
use vw_common::config::{AggPath, EngineConfig};
use vw_common::metrics::{MetricsRegistry, LATENCY_BUCKETS_NS};
use vw_common::{DataType, Result, Schema, TableId, VwError};
use vw_pdt::Pdt;
use vw_plan::{AggExpr, Expr, LogicalPlan};
use vw_storage::block::MinMax;
use vw_storage::{SimDisk, TableStorage};

/// Everything the engine needs to scan one table: the stable columnar image
/// and the PDT snapshot to merge over it.
#[derive(Clone)]
pub struct TableProvider {
    pub storage: Arc<RwLock<TableStorage>>,
    pub pdt: Arc<Pdt>,
}

/// Execution context: table resolution + engine configuration.
#[derive(Clone)]
pub struct ExecContext {
    pub tables: Arc<HashMap<TableId, TableProvider>>,
    pub config: EngineConfig,
    /// Shared morsel queues + join build slots when compiling inside an
    /// Exchange worker; `None` for serial compilation.
    pub shared: Option<Arc<SharedExec>>,
    /// Execution counters (morsels claimed, join builds executed).
    pub stats: Arc<ExecStats>,
    /// Profile node for the plan root being compiled in this context, when
    /// profiling is on. Must mirror the plan's shape ([`OpProfile::from_plan`]
    /// on the same plan). Exchange workers all carry `Arc`s to the same
    /// subtree, which is what merges dop>1 stats per plan node.
    pub profile: Option<Arc<OpProfile>>,
    /// Shared cache of decoded vector slices for compressed execution;
    /// `None` disables slice caching (scans still run lazily).
    pub decode_cache: Option<Arc<DecodeCache>>,
    /// Cooperative-scan buffer manager: when attached, table scans register
    /// their block sets and fetch through it, so concurrent queries scanning
    /// the same table share disk bandwidth (system tables are exempt — they
    /// live on private scratch disks).
    pub buffer: Option<Arc<Abm>>,
    /// Query-wide execution-memory budget. One instance per query, shared by
    /// every operator tracker and every Exchange worker (the context is
    /// cloned per worker, the `Arc` keeps the ledger global).
    pub mem: Arc<MemBudget>,
    /// Where spilling operators write their runs/partitions; `None` means
    /// each operator opens a private scratch SimDisk on first spill.
    pub spill_disk: Option<Arc<SimDisk>>,
    /// Per-worker trace timeline for this query, when profiling is on. The
    /// handle carries the recording thread's worker id (0 = coordinator);
    /// Exchange re-tags the clone it hands each worker thread.
    pub trace: Option<TraceHandle>,
    /// The database-wide metrics registry, when one is attached. Operators
    /// resolve their instruments once at compile time and never touch the
    /// registry lock while executing.
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Cross-query aggregation-path feedback (observed group counts,
    /// perfect-hash refusals). Attached by the database when adaptivity is
    /// on; `None` keeps the static path choice.
    pub agg_feedback: Option<Arc<AggFeedback>>,
    /// This context's Exchange worker index (0 for the coordinator / serial
    /// execution). Scans use it as their home lane in a partition-aware
    /// morsel queue.
    pub worker: usize,
}

impl ExecContext {
    pub fn new(tables: HashMap<TableId, TableProvider>, config: EngineConfig) -> ExecContext {
        let mem = Arc::new(MemBudget::from_config(&config));
        ExecContext {
            tables: Arc::new(tables),
            config,
            shared: None,
            stats: Arc::new(ExecStats::default()),
            profile: None,
            decode_cache: None,
            buffer: None,
            mem,
            spill_disk: None,
            trace: None,
            metrics: None,
            agg_feedback: None,
            worker: 0,
        }
    }

    /// A fresh per-operator tracker charging this query's budget.
    fn tracker(&self) -> MemTracker {
        MemTracker::new(self.mem.clone())
    }

    fn provider(&self, id: TableId) -> Result<&TableProvider> {
        self.tables
            .get(&id)
            .ok_or_else(|| VwError::Plan(format!("no table provider for {}", id)))
    }
}

/// Plan-position counters assigned during one compilation pass.
///
/// Every Exchange worker compiles an identical clone of the same plan in the
/// same preorder, so "the Nth scan of table T" and "the Nth join" denote the
/// same plan node on every thread — that makes them valid keys into the
/// worker-shared [`SharedExec`] registry without any cross-thread plan
/// analysis.
#[derive(Default)]
struct CompileState {
    scan_occurrence: HashMap<TableId, usize>,
    join_occurrence: usize,
}

/// Compile a logical plan into a vectorized operator tree.
///
/// When `ctx.profile` is set (to a profile tree built from this very plan),
/// every operator is wrapped in a [`ProfiledOp`] recording into the profile
/// node at its plan position.
pub fn compile_plan(plan: &LogicalPlan, ctx: &ExecContext) -> Result<BoxedOperator> {
    let prof = ctx.profile.clone();
    compile_rec(plan, ctx, &mut CompileState::default(), prof.as_ref())
}

fn compile_rec(
    plan: &LogicalPlan,
    ctx: &ExecContext,
    state: &mut CompileState,
    prof: Option<&Arc<OpProfile>>,
) -> Result<BoxedOperator> {
    let naive = !ctx.config.rewrite_nulls;
    let vs = ctx.config.vector_size;
    // Profile node for the i-th plan child (same tree shape by construction).
    let child_prof = |i: usize| prof.map(|p| p.child(i));
    let op: BoxedOperator = match plan {
        LogicalPlan::Scan {
            table_id,
            schema,
            projection,
            filter,
            ..
        } => Box::new(compile_scan(
            ctx, state, *table_id, schema, projection, filter, prof,
        )?),
        LogicalPlan::Filter { input, predicate } => {
            let child = compile_rec(input, ctx, state, child_prof(0))?;
            Box::new(VecFilter::with_adaptivity(
                child,
                predicate.clone(),
                naive,
                ctx.config.adaptivity,
            )?)
        }
        LogicalPlan::Project { input, exprs } => {
            let child = compile_rec(input, ctx, state, child_prof(0))?;
            Box::new(VecProject::new(child, exprs.clone(), naive)?)
        }
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            residual,
        } => {
            let l = compile_rec(left, ctx, state, child_prof(0))?;
            // The build (right) side executes ONCE per Exchange: it compiles
            // serial (own state, no shared queues — its scans cover the whole
            // table) and the first worker to reach the join runs it; all
            // other workers share the frozen result through the build slot.
            let mut build_ctx = ctx.clone();
            build_ctx.shared = None;
            let r = compile_rec(
                right,
                &build_ctx,
                &mut CompileState::default(),
                child_prof(1),
            )?;
            let mut join = HashJoin::new(l, r, *kind, on.clone(), residual.clone(), naive)?;
            if let Some(shared) = &ctx.shared {
                let occ = state.join_occurrence;
                state.join_occurrence += 1;
                join.set_shared_build(shared.build_slot(occ));
            }
            join.set_stats(ctx.stats.clone());
            join.set_mem_tracker(ctx.tracker());
            if let Some(d) = &ctx.spill_disk {
                join.set_spill_disk(d.clone());
            }
            if let Some(t) = &ctx.trace {
                join.set_trace(t.clone());
            }
            if let Some(p) = prof {
                join.set_waits(p.waits().clone());
            }
            Box::new(join)
        }
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            phase,
        } => {
            // Scan→aggregate fusion: when the aggregate reads straight off a
            // scan (the post-rewrite shape of Q1/Q6-style queries), the
            // aggregate drives the scan itself. The scan's plan-profile node
            // is handed to the fused driver so EXPLAIN ANALYZE and the
            // operator_next_ns histogram still see the scan.
            let fuse = ctx.config.agg_path == AggPath::Auto
                && matches!(&**input, LogicalPlan::Scan { .. });
            if let (
                true,
                LogicalPlan::Scan {
                    table_id,
                    schema,
                    projection,
                    filter,
                    ..
                },
            ) = (fuse, &**input)
            {
                let scan_prof = child_prof(0);
                let mut scan =
                    compile_scan(ctx, state, *table_id, schema, projection, filter, scan_prof)?;
                let key_types: Vec<DataType> = group_by
                    .iter()
                    .map(|&g| scan.schema().field(g).ty)
                    .collect();
                let proj: Vec<usize> = match projection {
                    Some(p) => p.clone(),
                    None => (0..schema.len()).collect(),
                };
                let provider = ctx.provider(*table_id)?;
                let hints = int_key_hints(&provider.storage, &proj, group_by);
                // Shape key in storage-column space: stable across queries
                // whatever projection the rewriter picked.
                let shape_keys: Vec<usize> = group_by
                    .iter()
                    .map(|&g| proj.get(g).copied().unwrap_or(g))
                    .collect();
                // History veto: if this (table, key-set) has already refused
                // the perfect-hash path (budget) or blown past its domain,
                // skip the speculative attempt and go generic from batch one.
                let veto = ctx.config.adaptivity
                    && ctx.agg_feedback.as_ref().is_some_and(|fb| {
                        fb.veto_perfect(
                            table_id.as_u64(),
                            shape_keys.clone(),
                            perfect::MAX_SLOTS as u64,
                        )
                    });
                if !veto && perfect::plan_specs(&key_types, &hints).is_some() {
                    // Dictionary-coded string keys can skip decoding entirely
                    // — unless an aggregate argument also reads the column,
                    // in which case the decoded values are still needed.
                    let arg_cols = agg_arg_cols(aggs);
                    let capture: Vec<Option<usize>> = group_by
                        .iter()
                        .map(|&g| {
                            (scan.schema().field(g).ty == DataType::Str && !arg_cols.contains(&g))
                                .then_some(g)
                        })
                        .collect();
                    if capture.iter().any(|c| c.is_some()) {
                        scan.set_key_cols(capture);
                    }
                }
                let hist = match (&ctx.metrics, scan_prof) {
                    (Some(m), Some(p)) => {
                        Some(m.histogram("operator_next_ns", p.op_name(), LATENCY_BUCKETS_NS))
                    }
                    _ => None,
                };
                let mut agg = HashAggregate::new_fused(
                    scan,
                    scan_prof.cloned(),
                    hist,
                    group_by.clone(),
                    aggs.clone(),
                    *phase,
                    vs,
                    naive,
                )?;
                agg.set_mem_tracker(ctx.tracker());
                if let Some(d) = &ctx.spill_disk {
                    agg.set_spill_disk(d.clone());
                }
                if let Some(t) = &ctx.trace {
                    agg.set_trace(t.clone());
                }
                if let Some(p) = prof {
                    agg.set_waits(p.waits().clone());
                }
                if let (true, Some(fb)) = (ctx.config.adaptivity, &ctx.agg_feedback) {
                    agg.set_agg_feedback(fb.clone(), table_id.as_u64(), shape_keys);
                }
                if veto {
                    // The adaptive path overrode the static choice; surface
                    // it in the profile so EXPLAIN ANALYZE (and the
                    // agg_path_switches_total counter) can say why.
                    if let Some(p) = prof {
                        p.add_extra("agg_adapt_veto", 1);
                    }
                } else {
                    agg.enable_perfect(&hints);
                }
                Box::new(agg)
            } else {
                let child = compile_rec(input, ctx, state, child_prof(0))?;
                let mut agg =
                    HashAggregate::new(child, group_by.clone(), aggs.clone(), *phase, vs, naive)?;
                agg.set_mem_tracker(ctx.tracker());
                if let Some(d) = &ctx.spill_disk {
                    agg.set_spill_disk(d.clone());
                }
                if let Some(t) = &ctx.trace {
                    agg.set_trace(t.clone());
                }
                if let Some(p) = prof {
                    agg.set_waits(p.waits().clone());
                }
                if ctx.config.agg_path == AggPath::Auto {
                    // Non-fused inputs have no storage-level MinMax hints, but
                    // bool/low-cardinality-string keys can still take the
                    // direct-array path.
                    agg.enable_perfect(&vec![None; group_by.len()]);
                }
                Box::new(agg)
            }
        }
        LogicalPlan::MergeJoin { left, right, on } => {
            let l = compile_rec(left, ctx, state, child_prof(0))?;
            let r = compile_rec(right, ctx, state, child_prof(1))?;
            Box::new(MergeJoin::new(l, r, on.clone(), vs)?)
        }
        LogicalPlan::Sort { input, keys } => {
            let child = compile_rec(input, ctx, state, child_prof(0))?;
            let mut sort = VecSort::new(child, keys.clone(), vs);
            sort.set_mem_tracker(ctx.tracker());
            if let Some(d) = &ctx.spill_disk {
                sort.set_spill_disk(d.clone());
            }
            if let Some(t) = &ctx.trace {
                sort.set_trace(t.clone());
            }
            if let Some(p) = prof {
                sort.set_waits(p.waits().clone());
            }
            Box::new(sort)
        }
        LogicalPlan::Limit {
            input,
            offset,
            fetch,
        } => {
            // Top-N fusion: a small Limit directly over a Sort keeps only the
            // best offset+fetch rows instead of sorting the whole input. The
            // fused operator compiles at the Limit's plan position (its
            // `topn=1` extra surfaces there); the Sort node stays in the plan
            // but executes as part of the fusion.
            if let LogicalPlan::Sort {
                input: sort_input,
                keys,
            } = &**input
            {
                if !keys.is_empty() && offset.saturating_add(*fetch) <= TopN::MAX_N {
                    let grandchild_prof = child_prof(0).map(|p| p.child(0));
                    let child = compile_rec(sort_input, ctx, state, grandchild_prof)?;
                    let mut topn = TopN::new(child, keys.clone(), *offset, *fetch, vs);
                    topn.set_mem_tracker(ctx.tracker());
                    if let Some(d) = &ctx.spill_disk {
                        topn.set_spill_disk(d.clone());
                    }
                    if let Some(t) = &ctx.trace {
                        topn.set_trace(t.clone());
                    }
                    if let Some(p) = prof {
                        topn.set_waits(p.waits().clone());
                    }
                    return Ok(finish_op(Box::new(topn), ctx, prof));
                }
            }
            let child = compile_rec(input, ctx, state, child_prof(0))?;
            Box::new(VecLimit::new(child, *offset, *fetch))
        }
        LogicalPlan::Exchange { input, partitions } => {
            if ctx.shared.is_some() {
                return Err(VwError::Plan("nested Exchange".into()));
            }
            // Workers compile clones of the child plan; handing each the
            // *same* child profile subtree is what merges their stats per
            // plan node instead of per thread.
            let mut ex_ctx = ctx.clone();
            ex_ctx.profile = child_prof(0).cloned();
            Box::new(Exchange::new((**input).clone(), ex_ctx, *partitions)?)
        }
    };
    Ok(finish_op(op, ctx, prof))
}

/// Wrap a compiled operator in its profiling shim when profiling is on.
fn finish_op(op: BoxedOperator, ctx: &ExecContext, prof: Option<&Arc<OpProfile>>) -> BoxedOperator {
    match prof {
        Some(p) => {
            let mut wrapped = ProfiledOp::new(op, p.clone());
            if let Some(t) = &ctx.trace {
                wrapped.set_trace(t.clone());
            }
            if let Some(m) = &ctx.metrics {
                wrapped.set_histogram(m.histogram(
                    "operator_next_ns",
                    p.op_name(),
                    LATENCY_BUCKETS_NS,
                ));
            }
            Box::new(wrapped)
        }
        None => op,
    }
}

/// Compile one `LogicalPlan::Scan` node into a [`VecScan`]. Shared between
/// the plain Scan arm (which boxes it) and the fused aggregate arm (which
/// hands it to [`HashAggregate::new_fused`] unboxed).
fn compile_scan(
    ctx: &ExecContext,
    state: &mut CompileState,
    table_id: TableId,
    schema: &Schema,
    projection: &Option<Vec<usize>>,
    filter: &Option<Expr>,
    prof: Option<&Arc<OpProfile>>,
) -> Result<VecScan> {
    let provider = ctx.provider(table_id)?;
    let projection = match projection {
        Some(p) => p.clone(),
        None => (0..schema.len()).collect(),
    };
    // Cooperative scans: user tables register with the ABM when one is
    // attached; system tables are exempt (they live on scratch SimDisks the
    // ABM's disk handle knows nothing about).
    let abm = ctx
        .buffer
        .as_ref()
        .filter(|_| !crate::systab::is_system_table(table_id));
    let mut coop: Option<CoopScanHandle> = None;
    let morsels = match &ctx.shared {
        Some(shared) => {
            let occ = state.scan_occurrence.entry(table_id).or_insert(0);
            let key = *occ;
            *occ += 1;
            let q = shared.morsel_queue(table_id, key, || {
                let su = VecScan::plan_units_pruned(
                    &provider.storage,
                    &provider.pdt,
                    &projection,
                    filter.as_ref(),
                );
                // The shared unit list is planned exactly once per
                // Exchange, so the prune count is recorded here (not
                // by each worker's scan instance).
                if let (Some(p), true) = (prof, su.groups_pruned > 0) {
                    p.add_extra("pruned", su.groups_pruned as u64);
                }
                if let (Some(p), true) = (prof, su.partitions_pruned > 0) {
                    p.add_extra("partitions", su.partitions as u64);
                    p.add_extra("partitions_pruned", su.partitions_pruned as u64);
                }
                Ok((su.units, su.lanes))
            })?;
            if let Some(abm) = abm {
                // ONE registration per queue: every worker gets a clone, so
                // the ABM's relevance policy sees P threads as one scan whose
                // progress is the queue's claim counter.
                coop = Some(q.coop_or_register(|| {
                    abm.register_scan_with_progress(
                        coop_blocks(&provider.storage, q.units(), &projection),
                        Some(q.progress()),
                    )
                }));
            }
            Some(q)
        }
        None => match abm {
            Some(abm) => {
                // Serial coop scan: plan the pruned unit list up front so the
                // registration covers exactly the blocks the scan will touch.
                let su = VecScan::plan_units_pruned(
                    &provider.storage,
                    &provider.pdt,
                    &projection,
                    filter.as_ref(),
                );
                if let (Some(p), true) = (prof, su.groups_pruned > 0) {
                    p.add_extra("pruned", su.groups_pruned as u64);
                }
                if let (Some(p), true) = (prof, su.partitions_pruned > 0) {
                    p.add_extra("partitions", su.partitions as u64);
                    p.add_extra("partitions_pruned", su.partitions_pruned as u64);
                }
                let q = MorselQueue::new(su.units);
                coop =
                    Some(abm.register_scan(coop_blocks(&provider.storage, q.units(), &projection)));
                Some(q)
            }
            None => None,
        },
    };
    let mut scan = VecScan::new(
        provider.storage.clone(),
        provider.pdt.clone(),
        projection,
        filter.clone(),
        ctx.config.vector_size,
        morsels,
        ctx.decode_cache.clone(),
        !ctx.config.rewrite_nulls,
        ctx.config.adaptivity,
    )?;
    if let Some(c) = coop {
        scan.set_coop(c);
    }
    if let Some(t) = &ctx.trace {
        scan.set_trace(t.clone());
    }
    if let Some(p) = prof {
        // Hands the node's WaitStats to the scan AND its coop handle, so
        // block I/O, decode misses and morsel contention all land on this
        // plan node's wait ledger.
        scan.set_waits(p.waits().clone());
    }
    scan.set_worker(ctx.worker);
    Ok(scan)
}

/// Block ids of every `(scan unit × projected column)` — the registration
/// set for a cooperative scan. The PDT append tail is memory-resident and
/// contributes no blocks.
fn coop_blocks(
    storage: &Arc<RwLock<TableStorage>>,
    units: &[Morsel],
    projection: &[usize],
) -> Vec<vw_common::BlockId> {
    let st = storage.read();
    let mut out = Vec::with_capacity(units.len() * projection.len());
    for u in units {
        if let Morsel::Group(g) = u {
            for &c in projection {
                if let Ok(b) = st.column_block_id(*g, c) {
                    out.push(b);
                }
            }
        }
    }
    out
}

/// Per-group-key `(min, max)` hints for integer-typed keys, folded from the
/// storage blocks' zone maps across every row group. A key whose column has
/// any non-integer or absent MinMax gets `None` (not perfect-hash eligible on
/// the value-range basis; PDT-resident rows outside the hinted range are
/// handled by the aggregate's runtime fallback).
fn int_key_hints(
    storage: &Arc<RwLock<TableStorage>>,
    projection: &[usize],
    group_by: &[usize],
) -> Vec<Option<(i64, i64)>> {
    let st = storage.read();
    group_by
        .iter()
        .map(|&g| {
            let col = *projection.get(g)?;
            let mut acc: Option<(i64, i64)> = None;
            for gi in 0..st.group_count() {
                let block = st.group(gi).columns.get(col)?;
                match block.minmax {
                    MinMax::Int { min, max } => {
                        acc = Some(match acc {
                            Some((lo, hi)) => (lo.min(min), hi.max(max)),
                            None => (min, max),
                        });
                    }
                    // An all-NULL block reports no bounds but adds no values
                    // outside whatever the other blocks report.
                    MinMax::None => {}
                    _ => return None,
                }
            }
            acc
        })
        .collect()
}

/// Every input-column ordinal referenced by any aggregate argument
/// expression. Group-key columns in this set must still be decoded by the
/// scan even when their key codes are captured.
fn agg_arg_cols(aggs: &[AggExpr]) -> Vec<usize> {
    let mut cols = Vec::new();
    for a in aggs {
        if let Some(e) = &a.arg {
            expr_cols(e, &mut cols);
        }
    }
    cols
}

fn expr_cols(e: &Expr, out: &mut Vec<usize>) {
    match e {
        Expr::Col(i) => out.push(*i),
        Expr::Lit(_) | Expr::Placeholder => {}
        Expr::Cast(e, _) => expr_cols(e, out),
        Expr::Binary { l, r, .. } => {
            expr_cols(l, out);
            expr_cols(r, out);
        }
        Expr::Unary { e, .. } => expr_cols(e, out),
        Expr::Case { whens, otherwise } => {
            for (w, t) in whens {
                expr_cols(w, out);
                expr_cols(t, out);
            }
            if let Some(el) = otherwise {
                expr_cols(el, out);
            }
        }
        Expr::Like { e, .. }
        | Expr::InList { e, .. }
        | Expr::Substr { e, .. }
        | Expr::Extract { e, .. }
        | Expr::AddMonths { e, .. } => expr_cols(e, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::collect_rows;
    use vw_common::{DataType, Field, Schema, Value};
    use vw_plan::plan::AggPhase;
    use vw_plan::rewrite::parallelize;
    use vw_plan::{AggExpr, AggFunc, BinOp, Expr, JoinKind, SortKey};
    use vw_storage::{SimDisk, SimDiskConfig, TableBuilder};

    const LINEITEM: TableId = TableId(1);
    const PART: TableId = TableId(2);

    fn setup(n: usize) -> ExecContext {
        let disk = Arc::new(SimDisk::new(SimDiskConfig::default()));
        // lineitem-ish table
        let li_schema = Schema::new(vec![
            Field::new("partkey", DataType::I64),
            Field::new("quantity", DataType::I64),
            Field::new("price", DataType::F64),
            Field::new("flag", DataType::Str),
        ]);
        let mut b = TableBuilder::with_group_size(li_schema, disk.clone(), 64);
        for i in 0..n {
            b.push_row(vec![
                Value::I64((i % 20) as i64),
                Value::I64((i % 7 + 1) as i64),
                Value::F64((i % 100) as f64 / 2.0),
                Value::Str(if i % 2 == 0 { "A" } else { "R" }.into()),
            ])
            .unwrap();
        }
        let li = b.finish().unwrap();
        // part table
        let p_schema = Schema::new(vec![
            Field::new("partkey", DataType::I64),
            Field::new("name", DataType::Str),
        ]);
        let mut pb = TableBuilder::with_group_size(p_schema, disk, 64);
        for k in 0..20 {
            pb.push_row(vec![Value::I64(k), Value::Str(format!("part{}", k))])
                .unwrap();
        }
        let part = pb.finish().unwrap();
        let li_rows = li.n_rows();
        let p_rows = part.n_rows();
        let mut tables = HashMap::new();
        tables.insert(
            LINEITEM,
            TableProvider {
                storage: Arc::new(RwLock::new(li)),
                pdt: Arc::new(Pdt::new(li_rows)),
            },
        );
        tables.insert(
            PART,
            TableProvider {
                storage: Arc::new(RwLock::new(part)),
                pdt: Arc::new(Pdt::new(p_rows)),
            },
        );
        ExecContext::new(tables, EngineConfig::default())
    }

    fn li_scan(ctx: &ExecContext) -> LogicalPlan {
        let p = ctx.tables.get(&LINEITEM).unwrap();
        let schema = p.storage.read().schema().clone();
        LogicalPlan::scan("lineitem", LINEITEM, schema)
    }

    fn part_scan(ctx: &ExecContext) -> LogicalPlan {
        let p = ctx.tables.get(&PART).unwrap();
        let schema = p.storage.read().schema().clone();
        LogicalPlan::scan("part", PART, schema)
    }

    #[test]
    fn full_pipeline_filter_project_sort_limit() {
        let ctx = setup(500);
        let plan = li_scan(&ctx)
            .filter(Expr::binary(
                BinOp::Ge,
                Expr::col(1),
                Expr::lit(Value::I64(6)),
            ))
            .project(vec![
                (Expr::col(0), "pk"),
                (
                    Expr::binary(BinOp::Mul, Expr::col(2), Expr::lit(Value::F64(2.0))),
                    "dbl",
                ),
            ])
            .sort(vec![SortKey::desc(1)])
            .limit(0, 5);
        let mut op = compile_plan(&plan, &ctx).unwrap();
        let rows = collect_rows(op.as_mut()).unwrap();
        assert_eq!(rows.len(), 5);
        // sorted descending by dbl
        let d0 = rows[0][1].as_f64().unwrap();
        let d4 = rows[4][1].as_f64().unwrap();
        assert!(d0 >= d4);
    }

    #[test]
    fn join_and_aggregate() {
        let ctx = setup(200);
        // join lineitem to part, group by part name, count
        let plan = li_scan(&ctx)
            .join(part_scan(&ctx), JoinKind::Inner, vec![(0, 0)])
            .aggregate(
                vec![5], // part name (lineitem 4 cols + partkey, name)
                vec![AggExpr {
                    func: AggFunc::CountStar,
                    arg: None,
                    name: "n".into(),
                }],
            );
        let mut op = compile_plan(&plan, &ctx).unwrap();
        let rows = collect_rows(op.as_mut()).unwrap();
        assert_eq!(rows.len(), 20);
        let total: i64 = rows.iter().map(|r| r[1].as_i64().unwrap()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn parallel_plan_matches_serial() {
        let ctx = setup(600);
        let base = li_scan(&ctx)
            .filter(Expr::binary(
                BinOp::Eq,
                Expr::col(3),
                Expr::lit(Value::Str("A".into())),
            ))
            .aggregate(
                vec![1],
                vec![
                    AggExpr {
                        func: AggFunc::Sum,
                        arg: Some(Expr::col(2)),
                        name: "rev".into(),
                    },
                    AggExpr {
                        func: AggFunc::Avg,
                        arg: Some(Expr::col(2)),
                        name: "avg_rev".into(),
                    },
                    AggExpr {
                        func: AggFunc::CountStar,
                        arg: None,
                        name: "n".into(),
                    },
                ],
            )
            .sort(vec![SortKey::asc(0)]);
        let mut serial = compile_plan(&base, &ctx).unwrap();
        let want = collect_rows(serial.as_mut()).unwrap();

        let par = parallelize(base, 3);
        // sanity: the rewrite actually produced an Exchange
        assert!(format!("{}", par).contains("Exchange"));
        let mut op = compile_plan(&par, &ctx).unwrap();
        let got = collect_rows(op.as_mut()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_join_shares_single_build() {
        let ctx = setup(300);
        let base = li_scan(&ctx)
            .join(part_scan(&ctx), JoinKind::Inner, vec![(0, 0)])
            .aggregate(
                vec![],
                vec![AggExpr {
                    func: AggFunc::CountStar,
                    arg: None,
                    name: "n".into(),
                }],
            );
        let par = parallelize(base.clone(), 2);
        let mut op = compile_plan(&par, &ctx).unwrap();
        let got = collect_rows(op.as_mut()).unwrap();
        assert_eq!(got, vec![vec![Value::I64(300)]]);
        // The build side ran exactly once across both workers (shared slot),
        // not once per worker as with build replication.
        assert_eq!(ctx.stats.builds_executed(), 1);
        // Final/Partial markers present
        if let LogicalPlan::Aggregate { phase, .. } = &par {
            assert_eq!(*phase, AggPhase::Final);
        } else {
            panic!("expected final aggregate");
        }
    }

    #[test]
    fn exchange_without_aggregate_unions_rows() {
        let ctx = setup(100);
        let base = li_scan(&ctx).filter(Expr::binary(
            BinOp::Lt,
            Expr::col(1),
            Expr::lit(Value::I64(3)),
        ));
        let mut serial = compile_plan(&base, &ctx).unwrap();
        let mut want = collect_rows(serial.as_mut()).unwrap();
        let par = parallelize(base, 4);
        let mut op = compile_plan(&par, &ctx).unwrap();
        let mut got = collect_rows(op.as_mut()).unwrap();
        let key = |r: &Vec<Value>| (r[0].as_i64().unwrap(), r[2].as_f64().unwrap().to_bits());
        want.sort_by_key(key);
        got.sort_by_key(key);
        assert_eq!(got.len(), want.len());
        assert_eq!(got, want);
    }

    #[test]
    fn tiny_budget_spills_and_matches_unbounded() {
        let ctx = setup(5000);
        // part ⋈ lineitem puts the 5000-row side on the build, so the join
        // itself outgrows a 48 KiB budget; grouping on (quantity, price)
        // yields ~700 groups so the aggregation table outgrows it too.
        // Price values are multiples of 0.5, so f64 sums are exact under any
        // re-association (spill drains, dop>1 partials).
        let base = part_scan(&ctx)
            .join(li_scan(&ctx), JoinKind::Inner, vec![(0, 0)])
            .aggregate(
                vec![3, 4], // quantity, price
                vec![
                    AggExpr {
                        func: AggFunc::Sum,
                        arg: Some(Expr::col(4)),
                        name: "rev".into(),
                    },
                    AggExpr {
                        func: AggFunc::CountStar,
                        arg: None,
                        name: "n".into(),
                    },
                ],
            )
            .sort(vec![SortKey::asc(0), SortKey::desc(1)]);
        let mut unbounded = compile_plan(&base, &ctx).unwrap();
        let want = collect_rows(unbounded.as_mut()).unwrap();
        assert!(want.len() > 100);

        for dop in [1usize, 3] {
            let plan = if dop > 1 {
                parallelize(base.clone(), dop)
            } else {
                base.clone()
            };
            let mut tight = ctx.clone();
            tight.config.mem_budget_bytes = Some(48 << 10);
            tight.mem = Arc::new(MemBudget::from_config(&tight.config));
            let mut op = compile_plan(&plan, &tight).unwrap();
            let got = collect_rows(op.as_mut()).unwrap();
            assert_eq!(got, want, "dop {dop} diverged under 48 KiB budget");
            let stats = tight.mem.stats();
            assert!(stats.spill_bytes > 0, "dop {dop}: expected spilling");
            assert!(stats.peak > 0);
        }
    }

    #[test]
    fn nested_exchange_rejected() {
        let ctx = setup(10);
        let inner = LogicalPlan::Exchange {
            input: Box::new(li_scan(&ctx)),
            partitions: 2,
        };
        let outer = LogicalPlan::Exchange {
            input: Box::new(inner),
            partitions: 2,
        };
        let mut op = compile_plan(&outer, &ctx).unwrap();
        // The error surfaces on first next() from a worker thread.
        assert!(op.next().is_err());
    }

    #[test]
    fn error_in_worker_propagates() {
        let ctx = setup(50);
        // division by zero inside the parallel pipeline
        let bad = li_scan(&ctx).project(vec![(
            Expr::binary(
                BinOp::Div,
                Expr::lit(Value::I64(1)),
                Expr::lit(Value::I64(0)),
            ),
            "boom",
        )]);
        let par = LogicalPlan::Exchange {
            input: Box::new(bad),
            partitions: 2,
        };
        let mut op = compile_plan(&par, &ctx).unwrap();
        let mut saw_err = false;
        loop {
            match op.next() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    saw_err = true;
                    break;
                }
            }
        }
        assert!(saw_err);
        // The stream is poisoned: re-polling keeps returning the error, it
        // must never turn into a clean Ok(None) end-of-stream.
        assert!(op.next().is_err());
        assert!(op.next().is_err());
    }
}
