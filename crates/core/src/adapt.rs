//! Runtime adaptivity: micro-adaptive predicate ordering and the
//! aggregation-path feedback store.
//!
//! A vectorized engine can observe its own execution almost for free: one
//! counter add and one coarse timestamp per *vector* (not per tuple) is
//! amortized over ~1K values, the same argument the paper makes for
//! always-on profiling. [`AdaptiveOrder`] exploits that to keep conjuncts
//! ranked by observed cost-per-eliminated-row, re-deciding every few
//! row-groups so the order tracks data drift across a table (e.g. a
//! clustered date column whose predicate goes from all-pass to all-fail
//! mid-scan).
//!
//! Correctness note: both consumers evaluate conjunctions by *intersecting*
//! per-conjunct selection sets (sorted-position intersection in the scan,
//! chained selection-vector refinement in the filter), and intersection is
//! commutative — so any order produces bit-identical results. Adaptivity
//! changes only how much work is spent discovering the same rows; the
//! property tests in `tests/adaptive.rs` pin this down.
//!
//! [`AggFeedback`] is the cross-query half: per `(table, key-set)` it
//! remembers observed group counts and perfect-hash refusals (budget or
//! domain blowups) so `compile` can stop re-trying a perfect-hash layout the
//! data has already proven wrong, and EXPLAIN ANALYZE can say why.

use std::collections::HashMap;
use std::sync::Mutex;

/// Re-rank after this many vectors in a scan (~8K rows at the default
/// vector size — several re-decisions per 64K-row group, and small tables
/// with a single row group still adapt).
pub const SCAN_RERANK_VECTORS: u64 = 8;
/// Re-rank after this many batches in a vectorized filter (~16K rows).
pub const FILTER_RERANK_BATCHES: u64 = 16;

/// Per-conjunct running accumulators. All costs are totals; rates are
/// derived at rank time.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConjunctStats {
    /// Vector (or row-range) evaluations.
    pub evals: u64,
    /// Rows the conjunct was asked about.
    pub rows_in: u64,
    /// Rows that passed.
    pub rows_out: u64,
    /// Total evaluation time.
    pub nanos: u64,
}

impl ConjunctStats {
    /// Observed pass rate; 0.5 before any evidence.
    pub fn pass_rate(&self) -> f64 {
        if self.rows_in == 0 {
            0.5
        } else {
            self.rows_out as f64 / self.rows_in as f64
        }
    }

    /// Cost per input row in nanoseconds (floored at a tick so that
    /// sub-resolution timings still rank by selectivity).
    pub fn cost_per_row(&self) -> f64 {
        if self.rows_in == 0 {
            1.0
        } else {
            self.nanos.max(1) as f64 / self.rows_in as f64
        }
    }

    /// The classic micro-adaptive rank: cost per *eliminated* row. Lower is
    /// better — cheap and selective conjuncts run first, expensive
    /// pass-everything conjuncts run last (against an already tiny
    /// selection).
    pub fn rank(&self) -> f64 {
        self.cost_per_row() / (1.0 - self.pass_rate()).max(1e-6)
    }
}

/// Tracks per-conjunct stats and maintains the current evaluation order.
#[derive(Debug)]
pub struct AdaptiveOrder {
    stats: Vec<ConjunctStats>,
    order: Vec<usize>,
    period: u64,
    ticks: u64,
    reorders: u64,
    enabled: bool,
}

impl AdaptiveOrder {
    /// `n` conjuncts in their static (plan) order; re-rank every `period`
    /// ticks. When `enabled` is false the order stays static forever and
    /// observation is skipped (the kill switch costs nothing).
    pub fn new(n: usize, period: u64, enabled: bool) -> AdaptiveOrder {
        AdaptiveOrder {
            stats: vec![ConjunctStats::default(); n],
            order: (0..n).collect(),
            period: period.max(1),
            ticks: 0,
            reorders: 0,
            enabled,
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Current evaluation order (conjunct ids, best first).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    pub fn stats(&self) -> &[ConjunctStats] {
        &self.stats
    }

    /// Number of times the order actually changed.
    pub fn reorders(&self) -> u64 {
        self.reorders
    }

    /// Fold one conjunct evaluation into the accumulators.
    #[inline]
    pub fn observe(&mut self, id: usize, rows_in: usize, rows_out: usize, nanos: u64) {
        if !self.enabled {
            return;
        }
        let s = &mut self.stats[id];
        s.evals += 1;
        s.rows_in += rows_in as u64;
        s.rows_out += rows_out as u64;
        s.nanos += nanos;
    }

    /// Advance one unit of work (a row-group or a batch); re-ranks on period
    /// boundaries. Returns `true` if the order changed.
    pub fn tick(&mut self) -> bool {
        if !self.enabled || self.order.len() < 2 {
            return false;
        }
        self.ticks += 1;
        if !self.ticks.is_multiple_of(self.period) {
            return false;
        }
        let mut next = self.order.clone();
        // Stable sort on rank: ties keep the static (plan) order.
        next.sort_by(|&a, &b| {
            self.stats[a]
                .rank()
                .total_cmp(&self.stats[b].rank())
                .then(a.cmp(&b))
        });
        if next != self.order {
            self.order = next;
            self.reorders += 1;
            true
        } else {
            false
        }
    }
}

/// Encode an evaluation order as a decimal reading: order `[2,0,1]` becomes
/// `312` ("conjunct 3 first, then 1, then 2", 1-based). Readable in a `u64`
/// profile extra for up to [`MAX_REPORTED_CONJUNCTS`] conjuncts.
pub fn encode_order(order: &[usize]) -> u64 {
    order
        .iter()
        .take(MAX_REPORTED_CONJUNCTS)
        .fold(0u64, |acc, &id| acc * 10 + (id as u64 + 1).min(9))
}

/// Per-conjunct profile extras are reported for at most this many conjuncts
/// (extras keys must be `&'static str`).
pub const MAX_REPORTED_CONJUNCTS: usize = 6;

/// `predN_pass_pct` — observed pass rate of conjunct N (static numbering).
pub const PRED_PASS_KEYS: [&str; MAX_REPORTED_CONJUNCTS] = [
    "pred0_pass_pct",
    "pred1_pass_pct",
    "pred2_pass_pct",
    "pred3_pass_pct",
    "pred4_pass_pct",
    "pred5_pass_pct",
];

/// `predN_evals` — vector/range evaluations of conjunct N. Under adaptive
/// ordering, later conjuncts see fewer evaluations (empty selections
/// short-circuit); this is the counter the skew benchmark asserts on.
pub const PRED_EVAL_KEYS: [&str; MAX_REPORTED_CONJUNCTS] = [
    "pred0_evals",
    "pred1_evals",
    "pred2_evals",
    "pred3_evals",
    "pred4_evals",
    "pred5_evals",
];

/// Key identifying an aggregation shape: the table scanned and the group-key
/// column ids (storage column space, order-insensitive via sorting).
pub type AggShapeKey = (u64, Vec<usize>);

#[derive(Debug, Clone, Copy, Default)]
pub struct AggShape {
    /// Group count observed at the most recent completion.
    pub last_groups: u64,
    /// Largest group count ever observed.
    pub max_groups: u64,
    /// Times the perfect-hash path refused (budget) or fell back (domain).
    pub refusals: u32,
    /// Times the perfect-hash path completed.
    pub successes: u32,
}

/// Cross-query memory of aggregation outcomes, shared (via `Arc`) from the
/// `Database` into every running aggregate. Interior mutability because the
/// recording sites sit deep inside operators.
#[derive(Debug, Default)]
pub struct AggFeedback {
    shapes: Mutex<HashMap<AggShapeKey, AggShape>>,
}

impl AggFeedback {
    pub fn new() -> AggFeedback {
        AggFeedback::default()
    }

    fn canon(table: u64, mut keys: Vec<usize>) -> AggShapeKey {
        keys.sort_unstable();
        (table, keys)
    }

    /// Record the group count of a completed aggregation (either path).
    pub fn record_groups(&self, table: u64, keys: Vec<usize>, groups: u64) {
        let key = Self::canon(table, keys);
        let mut m = self.shapes.lock().unwrap();
        let s = m.entry(key).or_default();
        s.last_groups = groups;
        s.max_groups = s.max_groups.max(groups);
    }

    /// Record that the perfect-hash path completed successfully.
    pub fn record_success(&self, table: u64, keys: Vec<usize>) {
        let key = Self::canon(table, keys);
        let mut m = self.shapes.lock().unwrap();
        m.entry(key).or_default().successes += 1;
    }

    /// Record a perfect-hash refusal: the budget rejected the table or the
    /// runtime domain blew past the speculated bounds.
    pub fn record_refusal(&self, table: u64, keys: Vec<usize>) {
        let key = Self::canon(table, keys);
        let mut m = self.shapes.lock().unwrap();
        m.entry(key).or_default().refusals += 1;
    }

    /// Snapshot for one shape.
    pub fn shape(&self, table: u64, keys: Vec<usize>) -> Option<AggShape> {
        let key = Self::canon(table, keys);
        self.shapes.lock().unwrap().get(&key).copied()
    }

    /// Should `compile` skip the perfect-hash attempt for this shape?
    /// Yes when history shows refusals that successes never redeemed, or
    /// observed group counts beyond what the direct array can hold.
    pub fn veto_perfect(&self, table: u64, keys: Vec<usize>, max_slots: u64) -> bool {
        match self.shape(table, keys) {
            Some(s) => s.refusals > s.successes || s.max_groups > max_slots,
            None => false,
        }
    }

    pub fn len(&self) -> usize {
        self.shapes.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_order_until_evidence() {
        let mut a = AdaptiveOrder::new(3, 2, true);
        assert_eq!(a.order(), &[0, 1, 2]);
        // No observations: ranks tie, stable order preserved.
        a.tick();
        a.tick();
        assert_eq!(a.order(), &[0, 1, 2]);
        assert_eq!(a.reorders(), 0);
    }

    #[test]
    fn selective_conjunct_moves_first() {
        let mut a = AdaptiveOrder::new(2, 4, true);
        for _ in 0..4 {
            a.observe(0, 1000, 990, 1000); // pass-through
            a.observe(1, 1000, 10, 1000); // selective
            a.tick();
        }
        assert_eq!(a.order(), &[1, 0]);
        assert_eq!(a.reorders(), 1);
        // More of the same evidence: order is stable, no churn.
        for _ in 0..8 {
            a.observe(0, 1000, 990, 1000);
            a.observe(1, 1000, 10, 1000);
            a.tick();
        }
        assert_eq!(a.reorders(), 1);
    }

    #[test]
    fn cheap_conjunct_beats_expensive_at_equal_selectivity() {
        let mut a = AdaptiveOrder::new(2, 1, true);
        a.observe(0, 1000, 500, 100_000); // expensive
        a.observe(1, 1000, 500, 1_000); // cheap
        a.tick();
        assert_eq!(a.order(), &[1, 0]);
    }

    #[test]
    fn adapts_to_drift() {
        let mut a = AdaptiveOrder::new(2, 1, true);
        a.observe(0, 1000, 10, 1000);
        a.observe(1, 1000, 990, 1000);
        a.tick();
        assert_eq!(a.order(), &[0, 1]);
        // The data drifts: conjunct 0 stops filtering, 1 starts.
        for _ in 0..50 {
            a.observe(0, 1000, 1000, 1000);
            a.observe(1, 1000, 0, 1000);
            a.tick();
        }
        assert_eq!(a.order(), &[1, 0]);
        assert_eq!(a.reorders(), 1);
    }

    #[test]
    fn kill_switch_freezes_order() {
        let mut a = AdaptiveOrder::new(2, 1, false);
        for _ in 0..10 {
            a.observe(0, 1000, 1000, 1000);
            a.observe(1, 1000, 0, 1000);
            assert!(!a.tick());
        }
        assert_eq!(a.order(), &[0, 1]);
        assert_eq!(a.reorders(), 0);
        // Disabled observation is free (stats stay zero).
        assert_eq!(a.stats()[1].evals, 0);
    }

    #[test]
    fn order_encoding_reads_one_based() {
        assert_eq!(encode_order(&[0, 1, 2]), 123);
        assert_eq!(encode_order(&[2, 0, 1]), 312);
        assert_eq!(encode_order(&[]), 0);
    }

    #[test]
    fn agg_feedback_vetoes_after_refusals_and_blowups() {
        let fb = AggFeedback::new();
        assert!(!fb.veto_perfect(1, vec![0, 2], 4096));
        fb.record_refusal(1, vec![2, 0]); // key order canonicalized
        assert!(fb.veto_perfect(1, vec![0, 2], 4096));
        // A success redeems one refusal.
        fb.record_success(1, vec![0, 2]);
        assert!(!fb.veto_perfect(1, vec![0, 2], 4096));
        // Observed group blowup vetoes regardless.
        fb.record_groups(1, vec![0, 2], 10_000);
        assert!(fb.veto_perfect(1, vec![0, 2], 4096));
        // Different shape is unaffected.
        assert!(!fb.veto_perfect(1, vec![0], 4096));
        assert!(!fb.veto_perfect(2, vec![0, 2], 4096));
    }
}
