//! Morsel-driven parallel execution state (shared across Exchange workers).
//!
//! The original Exchange gave each worker a static `(worker, P)` modulo slice
//! of a table's row groups. That partitioning is brittle: one oversized or
//! unpruned group serializes the whole query behind a single worker, and the
//! build side of every hash join was re-executed P times. This module holds
//! the shared state that replaces it, in the spirit of morsel-driven
//! parallelism (Leis et al., SIGMOD 2014) grafted onto the Vectorwise
//! Volcano-style Exchange:
//!
//! * [`MorselQueue`] — a work-stealing queue of scan units (row groups + the
//!   PDT append tail) behind an atomic cursor. Workers claim the next unit
//!   when they are ready, so skewed group sizes self-balance and every unit
//!   is scanned exactly once.
//! * [`SharedBuild`] — a once-cell for a hash join's build side: the first
//!   worker to reach the join executes the build child, everyone else waits
//!   and shares the frozen [`BuildData`](crate::operators::BuildData) behind
//!   an `Arc`. Build errors (and builder panics) propagate to all waiters.
//! * [`SharedExec`] — the per-Exchange registry mapping plan positions to
//!   the above. Workers compile identical clones of the same plan, so a
//!   `(TableId, occurrence)` key for scans and a preorder join index line up
//!   across threads without any coordination at plan time.
//! * [`ExecStats`] — atomic counters observable from tests ("the build ran
//!   exactly once", "every morsel was claimed").
//!
//! The queue also carries a [`ScanProgress`] counter: registered with the
//! buffer manager's cooperative scans (`vw_bufman::Abm`), it lets P workers
//! appear as ONE logical scan whose progress is the number of morsels
//! claimed, feeding the ABM's relevance/starvation policy.

use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use vw_bufman::{CoopScanHandle, ScanProgress};
use vw_common::{Result, TableId, VwError};

use crate::operators::BuildData;

/// One claimable unit of scan work: a storage row group or the virtual
/// group of PDT appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Morsel {
    Group(usize),
    AppendTail,
}

/// Counters for observing parallel execution from tests and benches.
#[derive(Debug, Default)]
pub struct ExecStats {
    morsels_claimed: AtomicUsize,
    builds_executed: AtomicUsize,
}

impl ExecStats {
    pub fn morsels_claimed(&self) -> usize {
        self.morsels_claimed.load(Ordering::Relaxed)
    }

    pub fn builds_executed(&self) -> usize {
        self.builds_executed.load(Ordering::Relaxed)
    }

    pub(crate) fn note_morsel(&self) {
        self.morsels_claimed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_build(&self) {
        self.builds_executed.fetch_add(1, Ordering::Relaxed);
    }
}

/// One partition lane of a [`MorselQueue`]: a contiguous index range of the
/// unit list with its own claim cursor.
struct Lane {
    start: usize,
    end: usize,
    cursor: AtomicUsize,
}

/// Work-stealing queue over one table scan's units.
///
/// The unit list is fixed at creation (pruned row groups + append tail); an
/// atomic cursor hands each unit to exactly one claimant. Claim order is the
/// list order; *which worker* gets a unit is decided entirely by runtime
/// readiness, which is what balances skew.
///
/// For range-partitioned tables the units are split into per-partition
/// **lanes**. [`MorselQueue::claim_for`] keeps each worker inside its home
/// lane (`worker % lanes`) while it has work — so a worker streams one
/// device sequentially instead of ping-ponging across disks — and steals
/// from the next non-drained lane only once its own runs dry.
pub struct MorselQueue {
    units: Vec<Morsel>,
    lanes: Vec<Lane>,
    progress: Arc<ScanProgress>,
    stats: Option<Arc<ExecStats>>,
    /// The ONE cooperative-scan registration shared by every worker of this
    /// queue's scan; each worker clones the handle, so the ABM sees P threads
    /// as a single logical scan.
    coop: Mutex<Option<CoopScanHandle>>,
}

impl MorselQueue {
    pub fn new(units: Vec<Morsel>) -> Arc<MorselQueue> {
        Self::with_progress(units, ScanProgress::new(), None)
    }

    pub fn with_progress(
        units: Vec<Morsel>,
        progress: Arc<ScanProgress>,
        stats: Option<Arc<ExecStats>>,
    ) -> Arc<MorselQueue> {
        let len = units.len();
        Self::with_lanes(units, vec![(0, len)], progress, stats)
    }

    /// A queue whose units are pre-split into partition lanes. `lanes` are
    /// `(start, end)` index ranges into `units`, in order; an empty or
    /// single-range list degenerates to the unpartitioned queue.
    pub fn with_lanes(
        units: Vec<Morsel>,
        lanes: Vec<(usize, usize)>,
        progress: Arc<ScanProgress>,
        stats: Option<Arc<ExecStats>>,
    ) -> Arc<MorselQueue> {
        let mut lanes = lanes;
        if lanes.is_empty() {
            lanes.push((0, units.len()));
        }
        let lanes = lanes
            .into_iter()
            .map(|(start, end)| Lane {
                start,
                end: end.min(units.len()),
                cursor: AtomicUsize::new(0),
            })
            .collect();
        Arc::new(MorselQueue {
            units,
            lanes,
            progress,
            stats,
            coop: Mutex::new(None),
        })
    }

    /// Claim the next unclaimed unit; `None` once the queue is drained.
    pub fn claim(&self) -> Option<Morsel> {
        self.claim_for(0)
    }

    /// Claim for a specific worker: its home partition lane first, stealing
    /// from the next non-drained lane only when the home lane is empty.
    pub fn claim_for(&self, worker: usize) -> Option<Morsel> {
        let n = self.lanes.len();
        let home = worker % n;
        for k in 0..n {
            let lane = &self.lanes[(home + k) % n];
            let i = lane.cursor.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = lane
                .start
                .checked_add(i)
                .filter(|&u| u < lane.end)
                .map(|u| self.units[u])
            {
                self.progress.advance(1);
                if let Some(s) = &self.stats {
                    s.note_morsel();
                }
                return Some(m);
            }
        }
        None
    }

    /// Number of partition lanes (1 = unpartitioned).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Total units in the queue (claimed or not).
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// The fixed unit list this queue hands out (claimed or not).
    pub fn units(&self) -> &[Morsel] {
        &self.units
    }

    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The logical scan's progress counter (morsels claimed so far). Register
    /// this with `Abm::register_scan_with_progress` to make P workers count
    /// as one cooperative scan.
    pub fn progress(&self) -> Arc<ScanProgress> {
        self.progress.clone()
    }

    /// Clone this queue's shared cooperative-scan handle, registering it via
    /// `register` on first touch. All workers compiling against the same
    /// queue end up with clones of ONE registration.
    pub fn coop_or_register(&self, register: impl FnOnce() -> CoopScanHandle) -> CoopScanHandle {
        let mut g = self.coop.lock();
        g.get_or_insert_with(register).clone()
    }
}

enum BuildState {
    Idle,
    Building,
    Done(Result<Arc<BuildData>>),
}

/// Once-cell for a hash join build side shared by all probe workers.
pub struct SharedBuild {
    state: Mutex<BuildState>,
    cv: Condvar,
}

impl Default for SharedBuild {
    fn default() -> Self {
        SharedBuild {
            state: Mutex::new(BuildState::Idle),
            cv: Condvar::new(),
        }
    }
}

impl SharedBuild {
    /// Return the shared build, executing `build` on the first caller. Other
    /// callers block until it finishes; a build error is cloned to everyone.
    /// If the builder panics, waiters receive an `Exec` error instead of
    /// deadlocking, and the panic resumes on the building thread.
    pub fn get_or_build(
        &self,
        build: impl FnOnce() -> Result<BuildData>,
    ) -> Result<Arc<BuildData>> {
        let mut g = self.state.lock();
        loop {
            match &*g {
                BuildState::Done(r) => return r.clone(),
                BuildState::Building => self.cv.wait(&mut g),
                BuildState::Idle => {
                    *g = BuildState::Building;
                    drop(g);
                    // Poison the slot if `build` unwinds so waiters wake.
                    struct Unpoison<'a>(&'a SharedBuild, bool);
                    impl Drop for Unpoison<'_> {
                        fn drop(&mut self) {
                            if !self.1 {
                                *self.0.state.lock() = BuildState::Done(Err(VwError::Exec(
                                    "join build side panicked".into(),
                                )));
                                self.0.cv.notify_all();
                            }
                        }
                    }
                    let mut guard = Unpoison(self, false);
                    let result = build().map(Arc::new);
                    guard.1 = true;
                    drop(guard);
                    *self.state.lock() = BuildState::Done(result.clone());
                    self.cv.notify_all();
                    return result;
                }
            }
        }
    }
}

/// Per-Exchange shared execution state.
///
/// Created once in `Exchange::spawn` and cloned into every worker's
/// `ExecContext`. All workers compile identical plan clones in the same
/// preorder, so position-derived keys — the Nth scan of table T, the Nth
/// join — resolve to the same shared object on every thread.
pub struct SharedExec {
    dop: usize,
    stats: Arc<ExecStats>,
    morsels: Mutex<HashMap<(TableId, usize), Arc<MorselQueue>>>,
    builds: Mutex<HashMap<usize, Arc<SharedBuild>>>,
}

impl SharedExec {
    pub fn new(dop: usize, stats: Arc<ExecStats>) -> Arc<SharedExec> {
        Arc::new(SharedExec {
            dop: dop.max(1),
            stats,
            morsels: Mutex::new(HashMap::new()),
            builds: Mutex::new(HashMap::new()),
        })
    }

    /// Degree of parallelism of the owning Exchange.
    pub fn dop(&self) -> usize {
        self.dop
    }

    pub fn stats(&self) -> Arc<ExecStats> {
        self.stats.clone()
    }

    /// The morsel queue for the `occurrence`-th scan of `table` in the plan,
    /// creating it from `units` on first touch.
    pub fn morsel_queue(
        &self,
        table: TableId,
        occurrence: usize,
        units: impl FnOnce() -> Result<(Vec<Morsel>, Vec<(usize, usize)>)>,
    ) -> Result<Arc<MorselQueue>> {
        let mut g = self.morsels.lock();
        if let Some(q) = g.get(&(table, occurrence)) {
            return Ok(q.clone());
        }
        let (units, lanes) = units()?;
        let q =
            MorselQueue::with_lanes(units, lanes, ScanProgress::new(), Some(self.stats.clone()));
        g.insert((table, occurrence), q.clone());
        Ok(q)
    }

    /// The shared build slot for the `occurrence`-th join in the plan.
    pub fn build_slot(&self, occurrence: usize) -> Arc<SharedBuild> {
        let mut g = self.builds.lock();
        g.entry(occurrence).or_default().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_hands_each_unit_exactly_once() {
        let units: Vec<Morsel> = (0..100).map(Morsel::Group).collect();
        let q = MorselQueue::new(units);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(m) = q.claim() {
                    got.push(m);
                }
                got
            }));
        }
        let mut all: Vec<Morsel> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        assert_eq!(all.len(), 100);
        all.sort_by_key(|m| match m {
            Morsel::Group(g) => *g,
            Morsel::AppendTail => usize::MAX,
        });
        all.dedup();
        assert_eq!(all.len(), 100, "a unit was claimed twice");
        assert_eq!(q.progress().get(), 100);
        assert!(q.claim().is_none());
    }

    #[test]
    fn lanes_keep_workers_home_until_drained() {
        // 3 lanes of 4 units each.
        let units: Vec<Morsel> = (0..12).map(Morsel::Group).collect();
        let q = MorselQueue::with_lanes(
            units,
            vec![(0, 4), (4, 8), (8, 12)],
            ScanProgress::new(),
            None,
        );
        assert_eq!(q.lane_count(), 3);
        // Worker 1 drains its home lane (units 4..8) first.
        let mut w1 = Vec::new();
        for _ in 0..4 {
            w1.push(q.claim_for(1).unwrap());
        }
        assert_eq!(w1, (4..8).map(Morsel::Group).collect::<Vec<_>>());
        // Home drained: worker 1 steals from the next lane (8..12).
        assert_eq!(q.claim_for(1), Some(Morsel::Group(8)));
        // Worker 0 still finds its own lane untouched.
        assert_eq!(q.claim_for(0), Some(Morsel::Group(0)));
        // Drain everything; each unit is handed out exactly once.
        let mut rest = Vec::new();
        while let Some(m) = q.claim_for(2) {
            rest.push(m);
        }
        assert!(q.claim_for(0).is_none());
        let mut all: Vec<_> = w1
            .into_iter()
            .chain([Morsel::Group(8), Morsel::Group(0)])
            .chain(rest)
            .collect();
        all.sort_by_key(|m| match m {
            Morsel::Group(g) => *g,
            Morsel::AppendTail => usize::MAX,
        });
        assert_eq!(all, (0..12).map(Morsel::Group).collect::<Vec<_>>());
        assert_eq!(q.progress().get(), 12);
    }

    #[test]
    fn shared_build_runs_once_and_fans_out() {
        let slot = Arc::new(SharedBuild::default());
        let ran = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let slot = slot.clone();
            let ran = ran.clone();
            handles.push(std::thread::spawn(move || {
                slot.get_or_build(|| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    Ok(BuildData::empty())
                })
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(
            ran.load(Ordering::SeqCst),
            1,
            "build executed more than once"
        );
        // All waiters share the same Arc.
        let first = results[0].as_ref().unwrap();
        assert!(results
            .iter()
            .all(|r| Arc::ptr_eq(r.as_ref().unwrap(), first)));
    }

    #[test]
    fn shared_build_error_reaches_all_waiters() {
        let slot = Arc::new(SharedBuild::default());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let slot = slot.clone();
            handles.push(std::thread::spawn(move || {
                slot.get_or_build(|| Err(VwError::Exec("boom".into())))
            }));
        }
        for h in handles {
            assert!(h.join().unwrap().is_err());
        }
    }

    #[test]
    fn shared_build_panic_poisons_instead_of_deadlocking() {
        let slot = Arc::new(SharedBuild::default());
        let s2 = slot.clone();
        let builder = std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                s2.get_or_build(|| panic!("builder died"))
            }));
        });
        builder.join().unwrap();
        // A later worker must see an error, not hang.
        let r = slot.get_or_build(|| Ok(BuildData::empty()));
        assert!(matches!(r, Err(VwError::Exec(_))));
    }

    #[test]
    fn queue_progress_feeds_cooperative_scan() {
        use vw_bufman::Abm;
        use vw_storage::{SimDisk, SimDiskConfig};
        let disk = Arc::new(SimDisk::new(SimDiskConfig::default()));
        let ids: Vec<_> = (0..6)
            .map(|i| disk.write_block(vec![i as u8; 64]))
            .collect();
        let abm = Abm::new(disk, 1 << 20);
        let q = MorselQueue::new((0..6).map(Morsel::Group).collect());
        // One logical scan for the whole Exchange gang: the registration's
        // progress IS the queue's claim counter, and worker handles are
        // clones of one registration.
        let handle = abm.register_scan_with_progress(ids, Some(q.progress()));
        let mut workers = [handle.clone(), handle];
        let mut seen = std::collections::HashSet::new();
        'outer: loop {
            for w in workers.iter_mut() {
                if q.claim().is_none() {
                    break 'outer;
                }
                let (id, _) = w.next().unwrap().expect("block for claimed morsel");
                assert!(seen.insert(id), "block delivered twice");
            }
        }
        assert_eq!(seen.len(), 6, "workers together cover every block once");
        assert_eq!(q.progress().get(), 6);
        assert_eq!(
            abm.stats().loads,
            6,
            "one logical scan: each block loaded once"
        );
    }

    #[test]
    fn shared_exec_keys_are_stable() {
        let shared = SharedExec::new(4, Arc::new(ExecStats::default()));
        let t = TableId::new(7);
        let q1 = shared
            .morsel_queue(t, 0, || Ok((vec![Morsel::Group(0)], vec![])))
            .unwrap();
        let q2 = shared
            .morsel_queue(t, 0, || panic!("must reuse existing queue"))
            .unwrap();
        assert!(Arc::ptr_eq(&q1, &q2));
        let other = shared
            .morsel_queue(t, 1, || {
                Ok((vec![Morsel::Group(0), Morsel::Group(1)], vec![]))
            })
            .unwrap();
        assert!(!Arc::ptr_eq(&q1, &other));
        let b1 = shared.build_slot(0);
        let b2 = shared.build_slot(0);
        assert!(Arc::ptr_eq(&b1, &b2));
    }
}
