//! Client sessions over one shared [`Database`].
//!
//! A [`Session`] is a cheap per-client handle: it carries its own
//! [`EngineConfig`] (seeded from the database's at creation; `SET` without
//! `GLOBAL` mutates only this copy) and its own `last_profile`/`last_trace`
//! slots, so concurrent clients never observe each other's profiles, traces,
//! or config changes. Queries from any number of sessions run genuinely
//! concurrently — `Database` is `&self` throughout — gated by the database's
//! admission [`Scheduler`](crate::sched::Scheduler).
//!
//! Each query snapshots the session config once at submission; a concurrent
//! `SET parallelism`/`SET vector_size` (local or global) never changes an
//! in-flight plan.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use vw_common::config::EngineConfig;
use vw_common::Result;
use vw_plan::LogicalPlan;

use crate::database::{Database, QueryResult};
use crate::profile::QueryProfile;
use crate::trace::TraceCollector;

/// One client's handle onto a shared [`Database`]. Create with
/// [`Database::session`]; clone the `Arc` to share across threads (all
/// clones are the same session).
pub struct Session {
    db: Arc<Database>,
    id: u64,
    /// Session-scoped engine config; snapshot once per query.
    config: RwLock<EngineConfig>,
    /// Profile of this session's most recent profiled query.
    last_profile: RwLock<Option<Arc<QueryProfile>>>,
    /// Trace of this session's most recent profiled query.
    last_trace: RwLock<Option<Arc<TraceCollector>>>,
    /// Queries this session has run (attribution sanity checks, tests).
    queries_run: AtomicU64,
}

impl Session {
    pub(crate) fn new(db: Arc<Database>, id: u64) -> Arc<Session> {
        let config = db.config();
        Arc::new(Session {
            db,
            id,
            config: RwLock::new(config),
            last_profile: RwLock::new(None),
            last_trace: RwLock::new(None),
            queries_run: AtomicU64::new(0),
        })
    }

    /// This session's id (> 0; recorded in `vw_queries.session_id`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The database this session talks to.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Snapshot of this session's config (what the next query will run with).
    pub fn config(&self) -> EngineConfig {
        self.config.read().clone()
    }

    /// Session-scoped degree of parallelism (`SET parallelism` equivalent).
    pub fn set_parallelism(&self, dop: usize) {
        self.config.write().parallelism = dop.max(1);
    }

    /// Session-scoped vector size.
    pub fn set_vector_size(&self, vs: usize) {
        self.config.write().vector_size = vs.max(1);
    }

    /// Session-scoped memory budget (`None` = unbounded). The database-wide
    /// admission ledger is *not* resized — use `SET GLOBAL memory_budget`
    /// or [`Database::set_mem_budget`] for that.
    pub fn set_mem_budget(&self, bytes: Option<usize>) {
        self.config.write().mem_budget_bytes = bytes;
    }

    /// Session-scoped profiling toggle.
    pub fn set_profiling(&self, on: bool) {
        self.config.write().profiling = on;
    }

    pub(crate) fn update_config(&self, f: impl FnOnce(&mut EngineConfig)) {
        f(&mut self.config.write());
    }

    /// Execute one SQL statement in this session (autocommit).
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.db.execute_opts(sql, Some(self))
    }

    /// Execute a logical plan in this session.
    pub fn run_plan(&self, plan: LogicalPlan) -> Result<QueryResult> {
        let outcome = self.db.run_query(
            plan,
            None,
            false,
            None,
            self.config(),
            self.id,
            crate::database::Lifecycle::start(),
        )?;
        self.store_outcome(outcome.profile.clone(), outcome.trace.clone());
        Ok(outcome.result)
    }

    /// The profile of *this session's* most recent profiled query.
    pub fn profile_last_query(&self) -> Option<Arc<QueryProfile>> {
        self.last_profile.read().clone()
    }

    /// The trace collector of this session's most recent profiled query.
    pub fn last_trace(&self) -> Option<Arc<TraceCollector>> {
        self.last_trace.read().clone()
    }

    /// chrome://tracing JSON of this session's most recent profiled query.
    pub fn export_trace(&self) -> Option<String> {
        self.last_trace.read().as_ref().map(|c| c.to_chrome_json())
    }

    /// Number of queries this session has executed.
    pub fn queries_run(&self) -> u64 {
        self.queries_run.load(Ordering::Relaxed)
    }

    pub(crate) fn store_outcome(
        &self,
        profile: Option<Arc<QueryProfile>>,
        trace: Option<Arc<TraceCollector>>,
    ) {
        self.queries_run.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = profile {
            *self.last_profile.write() = Some(p);
        }
        if let Some(t) = trace {
            *self.last_trace.write() = Some(t);
        }
    }
}
