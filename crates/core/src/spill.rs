//! Batch-level helpers over `vw-storage`'s spill files.
//!
//! Operators spill dense [`Batch`]es: one batch becomes one spill chunk
//! (one SimDisk block). The byte estimate used for memory accounting is the
//! same uncompressed-columnar size the spill codec writes, so reservations
//! and spill counters line up.

use std::sync::Arc;

use vw_common::waits::{WaitClass, WaitStats, WaitTimer};
use vw_common::Result;
use vw_storage::{SimDisk, SimDiskConfig, SpillCol, SpillFile};

use crate::batch::{Batch, ExecVector};

/// Estimated resident size of a dense batch: uncompressed column bytes plus
/// one byte per value of widened NULL indicator.
pub fn batch_bytes(batch: &Batch) -> usize {
    batch
        .columns
        .iter()
        .map(|c| c.data.uncompressed_bytes() + c.nulls.as_ref().map_or(0, |n| n.len()))
        .sum()
}

/// Append a dense batch (no selection vector) as one chunk; returns the
/// encoded byte count. With `waits` set, the encode+write is attributed as
/// [`WaitClass::SpillWrite`] blocked time (one timer per chunk).
pub fn write_batch(file: &mut SpillFile, batch: &Batch, waits: Option<&WaitStats>) -> Result<u64> {
    debug_assert!(batch.sel.is_none(), "spill batches must be compacted");
    let cols: Vec<SpillCol> = batch
        .columns
        .iter()
        .map(|c| SpillCol {
            data: &c.data,
            nulls: c.nulls.as_deref(),
        })
        .collect();
    let t = waits.map(|w| WaitTimer::start(w, WaitClass::SpillWrite));
    let r = file.append_chunk(&cols, batch.rows);
    drop(t);
    r
}

/// Read chunk `i` back as a dense batch (a [`WaitClass::SpillRead`] wait
/// when `waits` is set).
pub fn read_batch(file: &SpillFile, i: usize, waits: Option<&WaitStats>) -> Result<Batch> {
    let t = waits.map(|w| WaitTimer::start(w, WaitClass::SpillRead));
    let chunk = file.read_chunk(i);
    drop(t);
    let (cols, rows) = chunk?;
    let columns = cols
        .into_iter()
        .map(|(data, nulls)| ExecVector::new(data, nulls))
        .collect();
    let mut b = Batch::new(columns);
    b.rows = rows; // zero-column chunks still carry a row count
    Ok(b)
}

/// The spill disk for an operator: the database's SimDisk when compiled
/// through `ExecContext` (so spill I/O lands in the query's `DiskStats`),
/// else a lazily created private disk (directly constructed operators in
/// tests and benches).
pub fn spill_disk(configured: &Option<Arc<SimDisk>>) -> Arc<SimDisk> {
    configured
        .clone()
        .unwrap_or_else(|| Arc::new(SimDisk::new(SimDiskConfig::default())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::{DataType, Field, Schema, Value};

    #[test]
    fn batch_roundtrip_preserves_nulls() {
        let schema = Schema::new(vec![
            Field::nullable("k", DataType::I64),
            Field::nullable("s", DataType::Str),
        ]);
        let rows = vec![
            vec![Value::I64(1), Value::Str("a".into())],
            vec![Value::Null, Value::Null],
            vec![Value::I64(3), Value::Str("".into())],
        ];
        let b = Batch::from_rows(&schema, &rows).unwrap();
        let mut f = SpillFile::new(spill_disk(&None));
        let est = batch_bytes(&b);
        let written = write_batch(&mut f, &b, None).unwrap();
        // Strings are length-prefixed rather than offset-encoded, so the
        // estimate is close but not exact.
        assert!(written as usize >= est / 2 && (written as usize) <= est * 2 + 64);
        let back = read_batch(&f, 0, None).unwrap();
        assert_eq!(back.to_rows(&schema), rows);
    }

    #[test]
    fn zero_column_batch_keeps_rows() {
        let schema = Schema::new(vec![]);
        let b = Batch::from_rows(&schema, &[vec![], vec![]]).unwrap();
        assert_eq!(b.rows, 2);
        let mut f = SpillFile::new(spill_disk(&None));
        write_batch(&mut f, &b, None).unwrap();
        let back = read_batch(&f, 0, None).unwrap();
        assert_eq!(back.rows, 2);
        assert_eq!(back.len(), 2);
    }
}
