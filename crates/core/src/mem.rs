//! Execution-memory governance.
//!
//! A query gets one [`MemBudget`]: a byte budget shared by every operator in
//! the plan and by every Exchange worker (they all clone the same `Arc`
//! through `ExecContext`). Each stateful operator (hash-join build, hash
//! aggregation table, sort buffer) holds a [`MemTracker`] — a per-plan-node
//! ledger onto the shared budget.
//!
//! The pressure protocol is deliberately simple:
//!
//! 1. Operators call [`MemTracker::try_grow`] *before* materializing more
//!    state. `false` means the query-wide budget is exhausted — the operator
//!    must spill something (releasing its reservation) before retrying.
//! 2. A minimal working unit (one input vector, one spill partition being
//!    drained, one merge cursor per sorted run) is reserved with
//!    [`MemTracker::force_grow`], which may overshoot the budget. This
//!    guarantees every plan completes under *any* budget — the budget bounds
//!    materialized state, it never aborts a query.
//! 3. Reservations are released when state is spilled or the operator
//!    finishes; dropping a tracker releases whatever it still holds.
//!
//! Accounting is coarse-grained on purpose: operators reserve per input
//! batch or per group-chunk, not per row, so the unbounded fast path costs
//! one atomic add per batch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vw_common::config::EngineConfig;

/// Sentinel for "no limit" in the atomic field.
const UNBOUNDED: u64 = u64::MAX;

/// Query-wide execution-memory budget. Thread-safe; shared via `Arc` across
/// all Exchange workers of one query.
///
/// A budget may be *chained* onto a parent ledger (the database-wide
/// admission ledger): every reservation is then forwarded 1:1 to the parent,
/// so concurrent queries see each other's pressure while each query's own
/// `limit`/`peak`/spill counters stay per-query. Spill accounting is **not**
/// forwarded — spills are a per-query event.
#[derive(Debug)]
pub struct MemBudget {
    /// Byte limit (`UNBOUNDED` = no limit).
    limit: u64,
    /// Currently reserved bytes across all trackers.
    reserved: AtomicU64,
    /// High-water mark of `reserved`.
    peak: AtomicU64,
    /// Total bytes written to spill files under this budget.
    spill_bytes: AtomicU64,
    /// Number of spill events (partitions flushed / sorted runs written).
    spill_events: AtomicU64,
    /// Optional parent ledger every reservation is forwarded to.
    parent: Option<Arc<MemBudget>>,
}

impl MemBudget {
    /// A budget with the given byte limit (`None` = unbounded).
    pub fn new(limit: Option<usize>) -> Self {
        MemBudget {
            limit: limit.map_or(UNBOUNDED, |l| l as u64),
            reserved: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            spill_bytes: AtomicU64::new(0),
            spill_events: AtomicU64::new(0),
            parent: None,
        }
    }

    /// A per-query budget chained onto a shared parent ledger. Reservations
    /// count against *both* limits; either can signal pressure.
    pub fn chained(limit: Option<usize>, parent: Arc<MemBudget>) -> Self {
        let mut b = MemBudget::new(limit);
        b.parent = Some(parent);
        b
    }

    /// An unbounded budget (accounting still runs; nothing ever spills).
    pub fn unbounded() -> Self {
        MemBudget::new(None)
    }

    /// The budget configured in `EngineConfig`.
    pub fn from_config(config: &EngineConfig) -> Self {
        MemBudget::new(config.mem_budget_bytes)
    }

    /// The byte limit, if any.
    pub fn limit(&self) -> Option<u64> {
        (self.limit != UNBOUNDED).then_some(self.limit)
    }

    /// Try to reserve `bytes`; fails (reserving nothing) if that would
    /// exceed the limit — either this budget's own limit or the parent
    /// ledger's.
    pub fn try_reserve(&self, bytes: u64) -> bool {
        if !self.try_reserve_local(bytes) {
            return false;
        }
        if let Some(parent) = &self.parent {
            if !parent.try_reserve(bytes) {
                // Roll back the local reservation exactly; nothing leaked.
                self.reserved.fetch_sub(bytes, Ordering::Relaxed);
                return false;
            }
        }
        true
    }

    fn try_reserve_local(&self, bytes: u64) -> bool {
        let mut cur = self.reserved.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(bytes);
            if next > self.limit {
                return false;
            }
            match self.reserved.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.note_peak(next);
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Reserve `bytes` unconditionally, possibly overshooting the limit
    /// (minimal-working-unit reservations — see module docs).
    pub fn force_reserve(&self, bytes: u64) {
        let next = self.reserved.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.note_peak(next);
        if let Some(parent) = &self.parent {
            parent.force_reserve(bytes);
        }
    }

    /// Release a prior reservation. Saturating: an over-release clamps to
    /// zero instead of wrapping the ledger to ~`u64::MAX` (which would
    /// permanently block every subsequent `try_reserve`).
    pub fn release(&self, bytes: u64) {
        let prev = self
            .reserved
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(cur.saturating_sub(bytes))
            })
            .expect("fetch_update closure always returns Some");
        debug_assert!(
            prev >= bytes,
            "MemBudget over-release: releasing {} with only {} reserved",
            bytes,
            prev
        );
        if let Some(parent) = &self.parent {
            // Forward only what was actually subtracted locally, so an
            // over-release here can't drain someone else's parent bytes.
            parent.release(bytes.min(prev));
        }
    }

    fn note_peak(&self, candidate: u64) {
        self.peak.fetch_max(candidate, Ordering::Relaxed);
    }

    /// Record `bytes` written to a spill file (one spill event).
    pub fn note_spill(&self, bytes: u64) {
        self.spill_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.spill_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Currently reserved bytes.
    pub fn reserved(&self) -> u64 {
        self.reserved.load(Ordering::Relaxed)
    }

    /// High-water mark of reserved bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot for `QueryProfile`.
    pub fn stats(&self) -> MemStats {
        MemStats {
            limit: self.limit(),
            peak: self.peak(),
            spill_bytes: self.spill_bytes.load(Ordering::Relaxed),
            spill_events: self.spill_events.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of a budget's counters, carried on `QueryProfile`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    pub limit: Option<u64>,
    pub peak: u64,
    pub spill_bytes: u64,
    pub spill_events: u64,
}

/// Per-plan-node ledger onto a shared [`MemBudget`]. Not thread-safe — each
/// operator instance owns its own tracker (Exchange workers compile their
/// own operator clones, so each gets one).
#[derive(Debug)]
pub struct MemTracker {
    budget: Arc<MemBudget>,
    reserved: u64,
    peak: u64,
    spill_bytes: u64,
    spill_events: u64,
}

impl MemTracker {
    pub fn new(budget: Arc<MemBudget>) -> Self {
        MemTracker {
            budget,
            reserved: 0,
            peak: 0,
            spill_bytes: 0,
            spill_events: 0,
        }
    }

    /// A tracker onto a private unbounded budget (operator unit tests and
    /// direct construction outside `compile`).
    pub fn detached() -> Self {
        MemTracker::new(Arc::new(MemBudget::unbounded()))
    }

    /// The shared budget this tracker reserves against.
    pub fn budget(&self) -> &Arc<MemBudget> {
        &self.budget
    }

    /// True if the budget has a byte limit (i.e. spilling can happen).
    pub fn bounded(&self) -> bool {
        self.budget.limit().is_some()
    }

    /// Try to reserve `bytes` more; `false` signals memory pressure and
    /// reserves nothing.
    pub fn try_grow(&mut self, bytes: usize) -> bool {
        if self.budget.try_reserve(bytes as u64) {
            self.grew(bytes as u64);
            true
        } else {
            false
        }
    }

    /// Reserve `bytes` unconditionally (minimal working unit).
    pub fn force_grow(&mut self, bytes: usize) {
        self.budget.force_reserve(bytes as u64);
        self.grew(bytes as u64);
    }

    fn grew(&mut self, bytes: u64) {
        self.reserved += bytes;
        self.peak = self.peak.max(self.reserved);
    }

    /// Release part of this tracker's reservation.
    pub fn shrink(&mut self, bytes: usize) {
        let bytes = (bytes as u64).min(self.reserved);
        self.reserved -= bytes;
        self.budget.release(bytes);
    }

    /// Release everything this tracker holds.
    pub fn release_all(&mut self) {
        self.budget.release(self.reserved);
        self.reserved = 0;
    }

    /// Record `bytes` written to a spill file (one spill event: a flushed
    /// partition or a sorted run).
    pub fn note_spill(&mut self, bytes: u64) {
        self.spill_bytes += bytes;
        self.spill_events += 1;
        self.budget.note_spill(bytes);
    }

    /// Bytes currently reserved by this tracker.
    pub fn reserved(&self) -> u64 {
        self.reserved
    }

    /// This tracker's high-water mark.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Bytes this tracker spilled.
    pub fn spill_bytes(&self) -> u64 {
        self.spill_bytes
    }

    /// Spill events (partitions / runs) this tracker wrote.
    pub fn spill_events(&self) -> u64 {
        self.spill_events
    }
}

impl Drop for MemTracker {
    fn drop(&mut self) {
        self.budget.release(self.reserved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_pressures() {
        let b = MemBudget::unbounded();
        assert!(b.limit().is_none());
        assert!(b.try_reserve(u64::MAX / 2));
        assert_eq!(b.reserved(), u64::MAX / 2);
    }

    #[test]
    fn limit_enforced_and_peak_tracked() {
        let b = MemBudget::new(Some(1000));
        assert!(b.try_reserve(600));
        assert!(!b.try_reserve(500), "would exceed limit");
        assert_eq!(b.reserved(), 600, "failed reserve must not leak");
        assert!(b.try_reserve(400));
        b.release(1000);
        assert_eq!(b.reserved(), 0);
        assert_eq!(b.peak(), 1000);
    }

    #[test]
    fn force_reserve_overshoots() {
        let b = MemBudget::new(Some(100));
        b.force_reserve(250);
        assert_eq!(b.reserved(), 250);
        assert_eq!(b.peak(), 250);
        assert!(!b.try_reserve(1));
    }

    #[test]
    fn tracker_releases_on_drop() {
        let budget = Arc::new(MemBudget::new(Some(1000)));
        {
            let mut t = MemTracker::new(budget.clone());
            assert!(t.try_grow(700));
            assert!(!t.try_grow(700));
            t.shrink(200);
            assert_eq!(t.reserved(), 500);
            assert_eq!(budget.reserved(), 500);
            assert_eq!(t.peak(), 700);
        }
        assert_eq!(budget.reserved(), 0, "drop releases the remainder");
        assert_eq!(budget.peak(), 700);
    }

    #[test]
    fn spill_counters_roll_up() {
        let budget = Arc::new(MemBudget::new(Some(64)));
        let mut a = MemTracker::new(budget.clone());
        let mut b = MemTracker::new(budget.clone());
        a.note_spill(100);
        a.note_spill(50);
        b.note_spill(25);
        assert_eq!(a.spill_bytes(), 150);
        assert_eq!(a.spill_events(), 2);
        let s = budget.stats();
        assert_eq!(s.spill_bytes, 175);
        assert_eq!(s.spill_events, 3);
        assert_eq!(s.limit, Some(64));
    }

    /// Regression: `release` used a raw `fetch_sub`, so an over-release
    /// wrapped `reserved` to ~u64::MAX and permanently blocked every
    /// subsequent `try_reserve`. It must saturate at zero instead.
    #[test]
    fn over_release_saturates_instead_of_wrapping() {
        let b = Arc::new(MemBudget::new(Some(1000)));
        assert!(b.try_reserve(100));
        // A buggy caller releases more than it holds. Debug builds trip the
        // debug_assert (caught here); either way the ledger must clamp to
        // zero, not wrap.
        let b2 = b.clone();
        let _ = std::panic::catch_unwind(move || b2.release(400));
        assert_eq!(b.reserved(), 0, "ledger clamps to zero");
        assert!(b.try_reserve(500), "budget still usable after over-release");
        assert_eq!(b.reserved(), 500);
    }

    #[test]
    fn chained_budget_forwards_to_parent() {
        let parent = Arc::new(MemBudget::new(Some(1000)));
        let child = MemBudget::chained(Some(1000), parent.clone());
        assert!(child.try_reserve(600));
        assert_eq!(parent.reserved(), 600);
        child.release(200);
        assert_eq!(child.reserved(), 400);
        assert_eq!(parent.reserved(), 400);
        child.force_reserve(700);
        assert_eq!(child.reserved(), 1100, "force overshoots both");
        assert_eq!(parent.reserved(), 1100);
        child.release(1100);
        assert_eq!(parent.reserved(), 0);
    }

    #[test]
    fn parent_pressure_fails_child_reserve_exactly() {
        let parent = Arc::new(MemBudget::new(Some(1000)));
        let sibling = MemBudget::chained(Some(1000), parent.clone());
        let child = MemBudget::chained(Some(1000), parent.clone());
        assert!(sibling.try_reserve(800));
        // Child's own limit allows 500, but the parent only has 200 left:
        // the reservation must fail and roll back the child's own ledger.
        assert!(!child.try_reserve(500));
        assert_eq!(child.reserved(), 0, "failed reserve rolled back locally");
        assert_eq!(parent.reserved(), 800, "parent untouched by the failure");
        assert!(child.try_reserve(200));
        assert_eq!(parent.reserved(), 1000);
    }

    #[test]
    fn chained_spills_stay_per_query() {
        let parent = Arc::new(MemBudget::new(Some(1000)));
        let child = MemBudget::chained(Some(1000), parent.clone());
        child.note_spill(64);
        assert_eq!(child.stats().spill_events, 1);
        assert_eq!(parent.stats().spill_events, 0, "spills are per-query");
    }

    #[test]
    fn trackers_share_one_budget() {
        let budget = Arc::new(MemBudget::new(Some(1000)));
        let mut a = MemTracker::new(budget.clone());
        let mut b = MemTracker::new(budget.clone());
        assert!(a.try_grow(600));
        assert!(!b.try_grow(600), "other tracker sees the pressure");
        assert!(b.try_grow(400));
        a.release_all();
        assert!(b.try_grow(600));
    }
}
