//! Vectors and batches — the unit of data flow between operators.
//!
//! An [`ExecVector`] is a typed value array ([`ColumnData`], shared with the
//! storage layer) plus an optional *widened* NULL indicator (`Vec<bool>`, one
//! byte per value, so kernels index it without bit twiddling — storage keeps
//! the packed form, §I-B's PAX pair).
//!
//! A [`Batch`] is a set of equal-length vectors plus an optional **selection
//! vector**: a list of qualifying row positions. Filters produce selection
//! vectors instead of copying survivors — the X100 trick that makes selective
//! scans nearly free. Kernels take the selection as a parameter; operators
//! that need dense input call [`Batch::compact`].

use vw_common::{BitVec, DataType, Result, Schema, Value, VwError};
use vw_storage::{ColumnData, NullableColumn, StrColumn};

/// A typed vector with an optional byte-per-value NULL indicator.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecVector {
    pub data: ColumnData,
    /// `true` = NULL at that position. `None` = no NULLs.
    pub nulls: Option<Vec<bool>>,
}

impl ExecVector {
    pub fn not_null(data: ColumnData) -> ExecVector {
        ExecVector { data, nulls: None }
    }

    pub fn new(data: ColumnData, nulls: Option<Vec<bool>>) -> ExecVector {
        if let Some(n) = &nulls {
            assert_eq!(n.len(), data.len(), "null indicator length mismatch");
        }
        ExecVector { data, nulls }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.as_ref().is_some_and(|n| n[i])
    }

    /// Convert from the storage representation (packed indicator).
    pub fn from_storage(col: NullableColumn) -> ExecVector {
        let nulls = col.nulls.as_ref().map(widen_bits);
        ExecVector {
            data: col.data,
            nulls,
        }
    }

    /// Read one position as a `Value` with logical type `ty`.
    pub fn get_value(&self, i: usize, ty: DataType) -> Value {
        if self.is_null(i) {
            Value::Null
        } else {
            self.data.get_value(i, ty)
        }
    }

    /// Gather positions into a new dense vector.
    pub fn gather(&self, positions: &[u32]) -> ExecVector {
        let data = match &self.data {
            ColumnData::Bool(v) => {
                ColumnData::Bool(positions.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::I32(v) => {
                ColumnData::I32(positions.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::I64(v) => {
                ColumnData::I64(positions.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::F64(v) => {
                ColumnData::F64(positions.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Str(v) => {
                let mut out = StrColumn::with_capacity(positions.len(), positions.len() * 8);
                for &i in positions {
                    out.push(v.get(i as usize));
                }
                ColumnData::Str(out)
            }
        };
        let nulls = self
            .nulls
            .as_ref()
            .map(|n| positions.iter().map(|&i| n[i as usize]).collect());
        ExecVector { data, nulls }
    }

    /// Copy positions `[from, to)` into a new vector (scan batching).
    pub fn slice(&self, from: usize, to: usize) -> ExecVector {
        ExecVector {
            data: self.data.slice(from, to),
            nulls: self.nulls.as_ref().map(|n| n[from..to].to_vec()),
        }
    }

    /// An all-NULL vector of logical type `ty` (LEFT-join padding).
    pub fn all_null(ty: DataType, len: usize) -> ExecVector {
        let mut data = ColumnData::empty(ty);
        for _ in 0..len {
            data.push_safe_null();
        }
        ExecVector {
            data,
            nulls: Some(vec![true; len]),
        }
    }

    /// Build from `Value`s (test helper and slow paths).
    pub fn from_values(ty: DataType, values: &[Value]) -> Result<ExecVector> {
        Ok(ExecVector::from_storage(NullableColumn::from_values(
            ty, values,
        )?))
    }
}

/// Widen a packed bit indicator to one byte per value.
pub fn widen_bits(bits: &BitVec) -> Vec<bool> {
    bits.iter().collect()
}

/// A batch: columns + optional selection vector.
#[derive(Debug, Clone)]
pub struct Batch {
    pub columns: Vec<ExecVector>,
    /// Qualifying positions, ascending. `None` = all rows qualify.
    pub sel: Option<Vec<u32>>,
    /// Physical row count of every column.
    pub rows: usize,
}

impl Batch {
    pub fn new(columns: Vec<ExecVector>) -> Batch {
        let rows = columns.first().map_or(0, |c| c.len());
        debug_assert!(columns.iter().all(|c| c.len() == rows), "ragged batch");
        Batch {
            columns,
            sel: None,
            rows,
        }
    }

    pub fn with_sel(columns: Vec<ExecVector>, sel: Vec<u32>) -> Batch {
        let rows = columns.first().map_or(0, |c| c.len());
        debug_assert!(sel.iter().all(|&i| (i as usize) < rows));
        Batch {
            columns,
            sel: Some(sel),
            rows,
        }
    }

    /// An empty batch with no columns and no rows (COUNT(*) sources still
    /// need row counts; use `rows` directly).
    pub fn empty() -> Batch {
        Batch {
            columns: vec![],
            sel: None,
            rows: 0,
        }
    }

    /// Logical (selected) row count.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.rows,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate logical positions (selected physical indexes).
    pub fn positions(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        match &self.sel {
            Some(s) => Box::new(s.iter().map(|&i| i as usize)),
            None => Box::new(0..self.rows),
        }
    }

    /// Materialize the selection: gather selected rows into dense columns.
    /// No-op when there is no selection.
    pub fn compact(self) -> Batch {
        match self.sel {
            None => self,
            Some(sel) => {
                let columns = self
                    .columns
                    .iter()
                    .map(|c| c.gather(&sel))
                    .collect::<Vec<_>>();
                let rows = sel.len();
                Batch {
                    columns,
                    sel: None,
                    rows,
                }
            }
        }
    }

    /// Read one logical row as `Value`s (result delivery; not a hot path).
    pub fn row_values(&self, logical: usize, schema: &Schema) -> Vec<Value> {
        let phys = match &self.sel {
            Some(s) => s[logical] as usize,
            None => logical,
        };
        self.columns
            .iter()
            .zip(schema.fields())
            .map(|(c, f)| c.get_value(phys, f.ty))
            .collect()
    }

    /// Convert a whole batch into rows (result delivery).
    pub fn to_rows(&self, schema: &Schema) -> Vec<Vec<Value>> {
        (0..self.len())
            .map(|i| self.row_values(i, schema))
            .collect()
    }

    /// Build a batch from rows (test helper).
    pub fn from_rows(schema: &Schema, rows: &[Vec<Value>]) -> Result<Batch> {
        let mut cols = Vec::with_capacity(schema.len());
        for (c, f) in schema.fields().iter().enumerate() {
            let vals: Vec<Value> = rows
                .iter()
                .map(|r| {
                    r.get(c)
                        .cloned()
                        .ok_or_else(|| VwError::Exec("short row".into()))
                })
                .collect::<Result<_>>()?;
            cols.push(ExecVector::from_values(f.ty, &vals)?);
        }
        let mut b = Batch::new(cols);
        b.rows = rows.len(); // correct even for zero-column schemas
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::Field;

    fn sample_batch() -> Batch {
        Batch::new(vec![
            ExecVector::not_null(ColumnData::I64(vec![10, 20, 30, 40])),
            ExecVector::new(
                ColumnData::Str(StrColumn::from_iter(["a", "b", "c", "d"])),
                Some(vec![false, true, false, false]),
            ),
        ])
    }

    #[test]
    fn batch_len_and_positions() {
        let b = sample_batch();
        assert_eq!(b.len(), 4);
        assert_eq!(b.positions().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let s = Batch::with_sel(b.columns.clone(), vec![1, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.positions().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn compact_gathers_and_drops_sel() {
        let b = sample_batch();
        let s = Batch::with_sel(b.columns.clone(), vec![0, 2]);
        let c = s.compact();
        assert!(c.sel.is_none());
        assert_eq!(c.rows, 2);
        match &c.columns[0].data {
            ColumnData::I64(v) => assert_eq!(v, &vec![10, 30]),
            _ => panic!(),
        }
        match &c.columns[1].data {
            ColumnData::Str(s) => assert_eq!(s.iter().collect::<Vec<_>>(), vec!["a", "c"]),
            _ => panic!(),
        }
        assert_eq!(c.columns[1].nulls, Some(vec![false, false]));
    }

    #[test]
    fn compact_without_sel_is_identity() {
        let b = sample_batch();
        let rows = b.rows;
        let c = b.compact();
        assert_eq!(c.rows, rows);
    }

    #[test]
    fn row_values_respect_sel_and_nulls() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::I64),
            Field::nullable("s", DataType::Str),
        ]);
        let b = sample_batch();
        let s = Batch::with_sel(b.columns.clone(), vec![1]);
        let row = s.row_values(0, &schema);
        assert_eq!(row, vec![Value::I64(20), Value::Null]);
        let all = Batch::new(b.columns).to_rows(&schema);
        assert_eq!(all.len(), 4);
        assert_eq!(all[2], vec![Value::I64(30), Value::Str("c".into())]);
    }

    #[test]
    fn from_rows_roundtrip() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::I64),
            Field::nullable("s", DataType::Str),
        ]);
        let rows = vec![
            vec![Value::I64(1), Value::Str("x".into())],
            vec![Value::I64(2), Value::Null],
        ];
        let b = Batch::from_rows(&schema, &rows).unwrap();
        assert_eq!(b.to_rows(&schema), rows);
    }

    #[test]
    fn all_null_vector() {
        let v = ExecVector::all_null(DataType::F64, 3);
        assert_eq!(v.len(), 3);
        assert!(v.is_null(0) && v.is_null(2));
        assert_eq!(v.get_value(1, DataType::F64), Value::Null);
    }

    #[test]
    fn gather_bool_and_f64() {
        let v = ExecVector::not_null(ColumnData::Bool(vec![true, false, true]));
        let g = v.gather(&[2, 0]);
        assert_eq!(g.data, ColumnData::Bool(vec![true, true]));
        let f = ExecVector::not_null(ColumnData::F64(vec![1.5, 2.5]));
        assert_eq!(f.gather(&[1]).data, ColumnData::F64(vec![2.5]));
    }

    #[test]
    fn from_storage_widens_nulls() {
        let col =
            NullableColumn::from_values(DataType::I64, &[Value::I64(1), Value::Null]).unwrap();
        let v = ExecVector::from_storage(col);
        assert_eq!(v.nulls, Some(vec![false, true]));
    }
}
