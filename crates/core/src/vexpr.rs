//! The vectorized expression evaluator.
//!
//! Compiles `vw_plan::Expr` trees onto the primitive kernels: one dispatch
//! per *vector* per node, tight loops inside. Two NULL modes (§I-B):
//!
//! * **rewritten** (default): kernels are NULL-oblivious; NULLs travel as
//!   separate indicator vectors combined with boolean algebra
//!   ([`crate::primitives::merge_nulls`], Kleene combination for AND/OR).
//!   This is the paper's two-column NULL representation.
//! * **naive** (experiment E8): a deliberately faithful model of what the
//!   paper says engines must otherwise do — interpret the expression
//!   row-at-a-time with a NULL check at every step
//!   (`vw_plan::Expr::eval_row` per tuple).
//!
//! CASE evaluates lazily per branch by *narrowing the selection vector* to
//! the lanes each branch owns — the vectorized equivalent of short-circuit
//! evaluation, and the reason a division inside an untaken branch never
//! faults.

use crate::batch::{Batch, ExecVector};
use crate::primitives as prim;
use std::borrow::Cow;
use std::cmp::Ordering;
use vw_common::date::{add_months, month_of, parse_date, year_of};
use vw_common::{DataType, Result, Schema, Value, VwError};
use vw_plan::{BinOp, DatePart, Expr, UnOp};
use vw_storage::{ColumnData, StrColumn};

/// A bound, validated expression ready for vectorized evaluation.
pub struct ExprEvaluator {
    expr: Expr,
    schema: Schema,
    out_type: DataType,
    naive: bool,
}

impl ExprEvaluator {
    pub fn new(expr: Expr, schema: &Schema, naive: bool) -> Result<ExprEvaluator> {
        let out_type = expr.data_type(schema)?;
        Ok(ExprEvaluator {
            expr,
            schema: schema.clone(),
            out_type,
            naive,
        })
    }

    pub fn output_type(&self) -> DataType {
        self.out_type
    }

    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Evaluate over the batch's selected lanes; output has the batch's
    /// physical length, with meaningful values at selected lanes.
    pub fn eval(&self, batch: &Batch) -> Result<ExecVector> {
        let sel = batch.sel.as_deref();
        if self.naive {
            eval_naive(&self.expr, &self.schema, batch, sel, self.out_type)
        } else {
            let v = eval_rec(&self.expr, &self.schema, batch, sel)?;
            coerce_to(v, self.out_type, sel)
        }
    }

    /// Evaluate with an explicit selection (operators with custom lanes).
    pub fn eval_with_sel(&self, batch: &Batch, sel: Option<&[u32]>) -> Result<ExecVector> {
        if self.naive {
            eval_naive(&self.expr, &self.schema, batch, sel, self.out_type)
        } else {
            let v = eval_rec(&self.expr, &self.schema, batch, sel)?;
            coerce_to(v, self.out_type, sel)
        }
    }
}

/// The naive comparison path: build a row per selected lane and interpret.
fn eval_naive(
    e: &Expr,
    schema: &Schema,
    batch: &Batch,
    sel: Option<&[u32]>,
    out_type: DataType,
) -> Result<ExecVector> {
    let mut values: Vec<Value> = vec![Value::Null; batch.rows];
    let mut row: Vec<Value> = Vec::with_capacity(schema.len());
    let mut run = |i: usize| -> Result<()> {
        row.clear();
        for (c, f) in batch.columns.iter().zip(schema.fields()) {
            row.push(c.get_value(i, f.ty));
        }
        values[i] = e.eval_row(&row)?;
        Ok(())
    };
    match sel {
        Some(s) => {
            for &i in s {
                run(i as usize)?;
            }
        }
        None => {
            for i in 0..batch.rows {
                run(i)?;
            }
        }
    }
    // Coerce into the static output type.
    let coerced: Vec<Value> = values
        .into_iter()
        .map(|v| {
            if v.is_null() {
                Value::Null
            } else {
                v.cast_to(out_type).unwrap_or(Value::Null)
            }
        })
        .collect();
    ExecVector::from_values(out_type, &coerced)
}

/// Make sure the produced vector physically matches `ty` (e.g. arith on two
/// I32 columns runs on i64 kernels and narrows back here).
fn coerce_to(v: ExecVector, ty: DataType, sel: Option<&[u32]>) -> Result<ExecVector> {
    let want = ColumnData::physical_type(ty);
    let have = match &v.data {
        ColumnData::Bool(_) => DataType::Bool,
        ColumnData::I32(_) => DataType::I32,
        ColumnData::I64(_) => DataType::I64,
        ColumnData::F64(_) => DataType::F64,
        ColumnData::Str(_) => DataType::Str,
    };
    if want == have {
        return Ok(v);
    }
    match (&v.data, want) {
        (ColumnData::I64(x), DataType::I32) => {
            let mut out = Vec::new();
            // NULL lanes hold safe values that may overflow; only check
            // non-null selected lanes.
            match &v.nulls {
                None => prim::cast_i64_i32(x, sel, &mut out)?,
                Some(n) => {
                    let narrowed: Vec<u32> = match sel {
                        Some(s) => s.iter().copied().filter(|&i| !n[i as usize]).collect(),
                        None => (0..x.len() as u32).filter(|&i| !n[i as usize]).collect(),
                    };
                    prim::cast_i64_i32(x, Some(&narrowed), &mut out)?;
                }
            }
            Ok(ExecVector::new(ColumnData::I32(out), v.nulls))
        }
        (ColumnData::I32(x), DataType::I64) => {
            let mut out = Vec::new();
            prim::cast_i32_i64(x, sel, &mut out);
            Ok(ExecVector::new(ColumnData::I64(out), v.nulls))
        }
        (ColumnData::I32(x), DataType::F64) => {
            let mut out = Vec::new();
            prim::cast_i32_f64(x, sel, &mut out);
            Ok(ExecVector::new(ColumnData::F64(out), v.nulls))
        }
        (ColumnData::I64(x), DataType::F64) => {
            let mut out = Vec::new();
            prim::cast_i64_f64(x, sel, &mut out);
            Ok(ExecVector::new(ColumnData::F64(out), v.nulls))
        }
        (ColumnData::F64(x), DataType::I64) => {
            let mut out = Vec::new();
            let safe_sel = non_null_sel(sel, v.nulls.as_ref(), x.len());
            prim::cast_f64_i64(x, safe_sel.as_deref(), &mut out)?;
            Ok(ExecVector::new(ColumnData::I64(out), v.nulls))
        }
        (ColumnData::F64(x), DataType::I32) => {
            let mut wide = Vec::new();
            let safe_sel = non_null_sel(sel, v.nulls.as_ref(), x.len());
            prim::cast_f64_i64(x, safe_sel.as_deref(), &mut wide)?;
            let mut out = Vec::new();
            prim::cast_i64_i32(&wide, safe_sel.as_deref(), &mut out)?;
            Ok(ExecVector::new(ColumnData::I32(out), v.nulls))
        }
        _ => Err(VwError::Exec(format!("cannot coerce {} to {}", have, ty))),
    }
}

/// Borrow lanes as i64, casting i32/bool on demand.
fn as_i64_lanes<'a>(v: &'a ExecVector, sel: Option<&[u32]>) -> Result<Cow<'a, [i64]>> {
    match &v.data {
        ColumnData::I64(x) => Ok(Cow::Borrowed(x)),
        ColumnData::I32(x) => {
            let mut out = Vec::new();
            prim::cast_i32_i64(x, sel, &mut out);
            Ok(Cow::Owned(out))
        }
        ColumnData::Bool(x) => {
            let mut out = Vec::new();
            prim::cast_bool_i64(x, sel, &mut out);
            Ok(Cow::Owned(out))
        }
        other => Err(VwError::Exec(format!(
            "expected integer lanes, found {}",
            other.type_name()
        ))),
    }
}

/// Borrow lanes as f64, casting integers on demand.
fn as_f64_lanes<'a>(v: &'a ExecVector, sel: Option<&[u32]>) -> Result<Cow<'a, [f64]>> {
    match &v.data {
        ColumnData::F64(x) => Ok(Cow::Borrowed(x)),
        ColumnData::I64(x) => {
            let mut out = Vec::new();
            prim::cast_i64_f64(x, sel, &mut out);
            Ok(Cow::Owned(out))
        }
        ColumnData::I32(x) => {
            let mut out = Vec::new();
            prim::cast_i32_f64(x, sel, &mut out);
            Ok(Cow::Owned(out))
        }
        other => Err(VwError::Exec(format!(
            "expected numeric lanes, found {}",
            other.type_name()
        ))),
    }
}

fn bool_lanes(v: &ExecVector) -> Result<&[bool]> {
    match &v.data {
        ColumnData::Bool(x) => Ok(x),
        other => Err(VwError::Exec(format!(
            "expected boolean lanes, found {}",
            other.type_name()
        ))),
    }
}

fn is_float(v: &ExecVector) -> bool {
    matches!(v.data, ColumnData::F64(_))
}

fn is_str(v: &ExecVector) -> bool {
    matches!(v.data, ColumnData::Str(_))
}

/// Core recursive evaluation (rewritten-NULL mode).
fn eval_rec(e: &Expr, schema: &Schema, batch: &Batch, sel: Option<&[u32]>) -> Result<ExecVector> {
    match e {
        Expr::Col(i) => batch
            .columns
            .get(*i)
            .cloned()
            .ok_or_else(|| VwError::Exec(format!("batch has no column #{}", i))),
        Expr::Lit(v) => materialize_const(v, batch.rows),
        Expr::Cast(inner, ty) => {
            let v = eval_rec(inner, schema, batch, sel)?;
            cast_vector(v, *ty, sel)
        }
        Expr::Binary { op, l, r } => eval_binary(*op, l, r, schema, batch, sel),
        Expr::Unary { op, e } => {
            let v = eval_rec(e, schema, batch, sel)?;
            match op {
                UnOp::Not => {
                    let vals = bool_lanes(&v)?;
                    let mut out = Vec::new();
                    prim::bool_not(vals, sel, &mut out);
                    Ok(ExecVector::new(ColumnData::Bool(out), v.nulls))
                }
                UnOp::Neg => match &v.data {
                    ColumnData::I64(x) => {
                        let mut out = Vec::new();
                        prim::map_sub_i64_vc(0, x, sel, &mut out);
                        Ok(ExecVector::new(ColumnData::I64(out), v.nulls))
                    }
                    ColumnData::I32(x) => {
                        let wide = {
                            let mut out = Vec::new();
                            prim::cast_i32_i64(x, sel, &mut out);
                            out
                        };
                        let mut out = Vec::new();
                        prim::map_sub_i64_vc(0, &wide, sel, &mut out);
                        let mut narrow = Vec::new();
                        prim::cast_i64_i32(&out, sel, &mut narrow)?;
                        Ok(ExecVector::new(ColumnData::I32(narrow), v.nulls))
                    }
                    ColumnData::F64(x) => {
                        let mut out = Vec::new();
                        prim::map_sub_f64_vc(0.0, x, sel, &mut out);
                        Ok(ExecVector::new(ColumnData::F64(out), v.nulls))
                    }
                    other => Err(VwError::Exec(format!("negate {}", other.type_name()))),
                },
                UnOp::IsNull => {
                    let out = match &v.nulls {
                        Some(n) => n.clone(),
                        None => vec![false; v.len()],
                    };
                    Ok(ExecVector::not_null(ColumnData::Bool(out)))
                }
                UnOp::IsNotNull => {
                    let out = match &v.nulls {
                        Some(n) => n.iter().map(|&b| !b).collect(),
                        None => vec![true; v.len()],
                    };
                    Ok(ExecVector::not_null(ColumnData::Bool(out)))
                }
            }
        }
        Expr::Case { whens, otherwise } => eval_case(whens, otherwise, schema, batch, sel),
        Expr::Like {
            e,
            pattern,
            negated,
        } => {
            let v = eval_rec(e, schema, batch, sel)?;
            let col = match &v.data {
                ColumnData::Str(s) => s,
                other => return Err(VwError::Exec(format!("LIKE on {}", other.type_name()))),
            };
            let mut out = vec![false; col.len()];
            let pat = pattern.as_bytes();
            prim::for_each_lane(sel, col.len(), |i| {
                out[i] = vw_plan::expr::like_match(pat, col.get_bytes(i)) != *negated;
            });
            Ok(ExecVector::new(ColumnData::Bool(out), v.nulls))
        }
        Expr::InList { e, list, negated } => {
            let v = eval_rec(e, schema, batch, sel)?;
            eval_in_list(&v, list, *negated, sel)
        }
        Expr::Substr { e, start, len } => {
            let v = eval_rec(e, schema, batch, sel)?;
            let col = match &v.data {
                ColumnData::Str(s) => s,
                other => return Err(VwError::Exec(format!("SUBSTRING on {}", other.type_name()))),
            };
            // Full-length output; unselected lanes become "".
            let mut out = StrColumn::with_capacity(col.len(), col.bytes.len());
            let mut lane_vals: Vec<Option<String>> = vec![None; col.len()];
            prim::for_each_lane(sel, col.len(), |i| {
                lane_vals[i] = Some(vw_plan::expr::substr(col.get(i), *start, *len));
            });
            for lv in &lane_vals {
                out.push(lv.as_deref().unwrap_or(""));
            }
            Ok(ExecVector::new(ColumnData::Str(out), v.nulls))
        }
        Expr::Extract { part, e } => {
            let v = eval_rec(e, schema, batch, sel)?;
            let col = match &v.data {
                ColumnData::I32(x) => x,
                other => return Err(VwError::Exec(format!("EXTRACT from {}", other.type_name()))),
            };
            let mut out = vec![0i32; col.len()];
            prim::for_each_lane(sel, col.len(), |i| {
                out[i] = match part {
                    DatePart::Year => year_of(col[i]),
                    DatePart::Month => month_of(col[i]),
                };
            });
            Ok(ExecVector::new(ColumnData::I32(out), v.nulls))
        }
        Expr::AddMonths { e, months } => {
            let v = eval_rec(e, schema, batch, sel)?;
            let col = match &v.data {
                ColumnData::I32(x) => x,
                other => {
                    return Err(VwError::Exec(format!(
                        "interval add on {}",
                        other.type_name()
                    )))
                }
            };
            let mut out = vec![0i32; col.len()];
            prim::for_each_lane(sel, col.len(), |i| {
                out[i] = add_months(col[i], *months);
            });
            Ok(ExecVector::new(ColumnData::I32(out), v.nulls))
        }
        Expr::Placeholder => Err(VwError::Exec("placeholder expr".into())),
    }
}

fn materialize_const(v: &Value, rows: usize) -> Result<ExecVector> {
    Ok(match v {
        Value::Null => ExecVector::all_null(DataType::I64, rows),
        Value::Bool(b) => ExecVector::not_null(ColumnData::Bool(vec![*b; rows])),
        Value::I32(x) => ExecVector::not_null(ColumnData::I32(vec![*x; rows])),
        Value::I64(x) => ExecVector::not_null(ColumnData::I64(vec![*x; rows])),
        Value::F64(x) => ExecVector::not_null(ColumnData::F64(vec![*x; rows])),
        Value::Date(x) => ExecVector::not_null(ColumnData::I32(vec![*x; rows])),
        Value::Str(s) => {
            let mut col = StrColumn::with_capacity(rows, rows * s.len());
            for _ in 0..rows {
                col.push(s);
            }
            ExecVector::not_null(ColumnData::Str(col))
        }
    })
}

fn cast_vector(v: ExecVector, ty: DataType, sel: Option<&[u32]>) -> Result<ExecVector> {
    match (&v.data, ty) {
        // identity casts
        (ColumnData::I32(_), DataType::I32)
        | (ColumnData::I32(_), DataType::Date)
        | (ColumnData::I64(_), DataType::I64)
        | (ColumnData::F64(_), DataType::F64)
        | (ColumnData::Bool(_), DataType::Bool)
        | (ColumnData::Str(_), DataType::Str) => Ok(v),
        (ColumnData::Str(s), DataType::Date) => {
            let mut out = vec![0i32; s.len()];
            let mut bad = false;
            prim::for_each_lane(sel, s.len(), |i| match parse_date(s.get(i)) {
                Some(d) => out[i] = d,
                None => bad = true,
            });
            if bad {
                return Err(VwError::Exec("invalid date literal in cast".into()));
            }
            Ok(ExecVector::new(ColumnData::I32(out), v.nulls))
        }
        _ => coerce_to(v, ty, sel),
    }
}

fn eval_binary(
    op: BinOp,
    l: &Expr,
    r: &Expr,
    schema: &Schema,
    batch: &Batch,
    sel: Option<&[u32]>,
) -> Result<ExecVector> {
    if matches!(op, BinOp::And | BinOp::Or) {
        let lv = eval_rec(l, schema, batch, sel)?;
        let rv = eval_rec(r, schema, batch, sel)?;
        return eval_kleene(op, &lv, &rv, sel);
    }
    // A literal NULL operand makes every lane NULL (the other side is still
    // evaluated so its runtime errors are preserved).
    let lit_null = |e: &Expr| matches!(e, Expr::Lit(Value::Null));
    if lit_null(l) || lit_null(r) {
        let other = if lit_null(l) { r } else { l };
        let ov = eval_rec(other, schema, batch, sel)?;
        let n = batch.rows;
        let data = if op.is_comparison() {
            ColumnData::Bool(vec![false; n])
        } else if is_float(&ov) {
            ColumnData::F64(vec![0.0; n])
        } else {
            ColumnData::I64(vec![0; n])
        };
        return Ok(ExecVector::new(data, Some(vec![true; n])));
    }
    // Constant-operand fast path: column-vs-constant kernels avoid
    // materializing a literal vector per batch (the dominant shape in
    // pushed-down filters).
    if let Expr::Lit(c) = r {
        if !c.is_null() {
            let lv = eval_rec(l, schema, batch, sel)?;
            if let Some(out) = eval_binary_const(op, &lv, c, false, sel)? {
                return Ok(out);
            }
            let rv = materialize_const(c, batch.rows)?;
            return eval_binary_vectors(op, lv, rv, sel);
        }
    }
    if let Expr::Lit(c) = l {
        if !c.is_null() {
            let rv = eval_rec(r, schema, batch, sel)?;
            if let Some(out) = eval_binary_const(op, &rv, c, true, sel)? {
                return Ok(out);
            }
            let lv = materialize_const(c, batch.rows)?;
            return eval_binary_vectors(op, lv, rv, sel);
        }
    }
    let lv = eval_rec(l, schema, batch, sel)?;
    let rv = eval_rec(r, schema, batch, sel)?;
    eval_binary_vectors(op, lv, rv, sel)
}

/// Column ⊕ constant without materializing the constant. `flipped` means the
/// constant was on the left. Returns `None` when no specialized kernel fits
/// (caller falls back to the column-column path).
fn eval_binary_const(
    op: BinOp,
    col: &ExecVector,
    c: &Value,
    flipped: bool,
    sel: Option<&[u32]>,
) -> Result<Option<ExecVector>> {
    let nulls = col.nulls.clone();
    if op.is_comparison() {
        let mut out = Vec::new();
        // normalize: with the constant on the left, flip the comparison
        let op = if flipped { flip_cmp(op) } else { op };
        match (&col.data, c) {
            (ColumnData::Str(s), Value::Str(cv)) => {
                let (ord, eq_ok, ne_mode) = cmp_spec(op);
                prim::cmp_str_cv(s, cv, ord, eq_ok, ne_mode, sel, &mut out);
            }
            (ColumnData::F64(_), _) | (_, Value::F64(_)) => {
                let Some(cf) = c.as_f64() else {
                    return Ok(None);
                };
                let a = as_f64_lanes(col, sel)?;
                match op {
                    BinOp::Eq => prim::cmp_eq_f64_cv(&a, &cf, sel, &mut out),
                    BinOp::Ne => prim::cmp_ne_f64_cv(&a, &cf, sel, &mut out),
                    BinOp::Lt => prim::cmp_lt_f64_cv(&a, &cf, sel, &mut out),
                    BinOp::Le => prim::cmp_le_f64_cv(&a, &cf, sel, &mut out),
                    BinOp::Gt => prim::cmp_gt_f64_cv(&a, &cf, sel, &mut out),
                    BinOp::Ge => prim::cmp_ge_f64_cv(&a, &cf, sel, &mut out),
                    _ => unreachable!(),
                }
            }
            _ => {
                let Some(ci) = c.as_i64() else {
                    return Ok(None);
                };
                let a = as_i64_lanes(col, sel)?;
                match op {
                    BinOp::Eq => prim::cmp_eq_i64_cv(&a, &ci, sel, &mut out),
                    BinOp::Ne => prim::cmp_ne_i64_cv(&a, &ci, sel, &mut out),
                    BinOp::Lt => prim::cmp_lt_i64_cv(&a, &ci, sel, &mut out),
                    BinOp::Le => prim::cmp_le_i64_cv(&a, &ci, sel, &mut out),
                    BinOp::Gt => prim::cmp_gt_i64_cv(&a, &ci, sel, &mut out),
                    BinOp::Ge => prim::cmp_ge_i64_cv(&a, &ci, sel, &mut out),
                    _ => unreachable!(),
                }
            }
        }
        return Ok(Some(ExecVector::new(ColumnData::Bool(out), nulls)));
    }
    // Arithmetic.
    let float = is_float(col) || matches!(c, Value::F64(_));
    if float {
        let Some(cf) = c.as_f64() else {
            return Ok(None);
        };
        let a = as_f64_lanes(col, sel)?;
        let mut out = Vec::new();
        match (op, flipped) {
            (BinOp::Add, _) => prim::map_add_f64_cv(&a, cf, sel, &mut out),
            (BinOp::Mul, _) => prim::map_mul_f64_cv(&a, cf, sel, &mut out),
            (BinOp::Sub, false) => prim::map_sub_f64_cv(&a, cf, sel, &mut out),
            (BinOp::Sub, true) => prim::map_sub_f64_vc(cf, &a, sel, &mut out),
            (BinOp::Div, false) => {
                let div_sel = non_null_sel(sel, nulls.as_ref(), a.len());
                prim::map_div_f64_cv(&a, cf, div_sel.as_deref(), &mut out)?
            }
            (BinOp::Div, true) => {
                let div_sel = non_null_sel(sel, nulls.as_ref(), a.len());
                prim::map_div_f64_vc(cf, &a, div_sel.as_deref(), &mut out)?
            }
            _ => unreachable!(),
        }
        return Ok(Some(ExecVector::new(ColumnData::F64(out), nulls)));
    }
    let Some(ci) = c.as_i64() else {
        return Ok(None);
    };
    let a = as_i64_lanes(col, sel)?;
    let mut out = Vec::new();
    match (op, flipped) {
        (BinOp::Add, _) => prim::map_add_i64_cv(&a, ci, sel, &mut out),
        (BinOp::Mul, _) => prim::map_mul_i64_cv(&a, ci, sel, &mut out),
        (BinOp::Sub, false) => prim::map_sub_i64_cv(&a, ci, sel, &mut out),
        (BinOp::Sub, true) => prim::map_sub_i64_vc(ci, &a, sel, &mut out),
        (BinOp::Div, false) => {
            let div_sel = non_null_sel(sel, nulls.as_ref(), a.len());
            prim::map_div_i64_cv(&a, ci, div_sel.as_deref(), &mut out)?
        }
        (BinOp::Div, true) => {
            let div_sel = non_null_sel(sel, nulls.as_ref(), a.len());
            prim::map_div_i64_vc(ci, &a, div_sel.as_deref(), &mut out)?
        }
        _ => unreachable!(),
    }
    Ok(Some(ExecVector::new(ColumnData::I64(out), nulls)))
}

fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn eval_binary_vectors(
    op: BinOp,
    lv: ExecVector,
    rv: ExecVector,
    sel: Option<&[u32]>,
) -> Result<ExecVector> {
    let nulls = prim::merge_nulls(lv.nulls.as_ref(), rv.nulls.as_ref(), sel);
    if op.is_comparison() {
        let out = eval_comparison(op, &lv, &rv, sel)?;
        return Ok(ExecVector::new(ColumnData::Bool(out), nulls));
    }
    // Arithmetic: float domain if either side is float, else i64 domain.
    if is_float(&lv) || is_float(&rv) {
        let a = as_f64_lanes(&lv, sel)?;
        let b = as_f64_lanes(&rv, sel)?;
        let mut out = Vec::new();
        match op {
            BinOp::Add => prim::map_add_f64_cc(&a, &b, sel, &mut out),
            BinOp::Sub => prim::map_sub_f64_cc(&a, &b, sel, &mut out),
            BinOp::Mul => prim::map_mul_f64_cc(&a, &b, sel, &mut out),
            BinOp::Div => {
                // NULL lanes hold safe zeros: exclude them from the
                // fault-checked division.
                let div_sel = non_null_sel(sel, nulls.as_ref(), a.len());
                prim::map_div_f64_cc(&a, &b, div_sel.as_deref(), &mut out)?
            }
            _ => unreachable!(),
        }
        Ok(ExecVector::new(ColumnData::F64(out), nulls))
    } else {
        let a = as_i64_lanes(&lv, sel)?;
        let b = as_i64_lanes(&rv, sel)?;
        let mut out = Vec::new();
        match op {
            BinOp::Add => prim::map_add_i64_cc(&a, &b, sel, &mut out),
            BinOp::Sub => prim::map_sub_i64_cc(&a, &b, sel, &mut out),
            BinOp::Mul => prim::map_mul_i64_cc(&a, &b, sel, &mut out),
            BinOp::Div => {
                let div_sel = non_null_sel(sel, nulls.as_ref(), a.len());
                prim::map_div_i64_cc(&a, &b, div_sel.as_deref(), &mut out)?
            }
            _ => unreachable!(),
        }
        Ok(ExecVector::new(ColumnData::I64(out), nulls))
    }
}

/// Selection restricted to non-NULL lanes (always materializes when an
/// indicator exists).
fn non_null_sel(sel: Option<&[u32]>, nulls: Option<&Vec<bool>>, len: usize) -> Option<Vec<u32>> {
    match nulls {
        None => sel.map(|s| s.to_vec()),
        Some(n) => Some(match sel {
            Some(s) => s.iter().copied().filter(|&i| !n[i as usize]).collect(),
            None => (0..len as u32).filter(|&i| !n[i as usize]).collect(),
        }),
    }
}

fn eval_comparison(
    op: BinOp,
    lv: &ExecVector,
    rv: &ExecVector,
    sel: Option<&[u32]>,
) -> Result<Vec<bool>> {
    let mut out = Vec::new();
    if is_str(lv) || is_str(rv) {
        let (ls, rs) = match (&lv.data, &rv.data) {
            (ColumnData::Str(a), ColumnData::Str(b)) => (a, b),
            _ => {
                // mixed str/non-str only legal when one side is all-NULL
                let all_null =
                    |v: &ExecVector| v.nulls.as_ref().is_some_and(|n| n.iter().all(|&b| b));
                if all_null(lv) || all_null(rv) {
                    out.resize(lv.len().max(rv.len()), false);
                    return Ok(out);
                }
                return Err(VwError::Exec("string compared to non-string".into()));
            }
        };
        let (ord, eq_ok, ne_mode) = cmp_spec(op);
        prim::cmp_str_cc(ls, rs, ord, eq_ok, ne_mode, sel, &mut out);
        return Ok(out);
    }
    if is_float(lv) || is_float(rv) {
        let a = as_f64_lanes(lv, sel)?;
        let b = as_f64_lanes(rv, sel)?;
        match op {
            BinOp::Eq => prim::cmp_eq_f64_cc(&a, &b, sel, &mut out),
            BinOp::Ne => prim::cmp_ne_f64_cc(&a, &b, sel, &mut out),
            BinOp::Lt => prim::cmp_lt_f64_cc(&a, &b, sel, &mut out),
            BinOp::Le => prim::cmp_le_f64_cc(&a, &b, sel, &mut out),
            BinOp::Gt => prim::cmp_gt_f64_cc(&a, &b, sel, &mut out),
            BinOp::Ge => prim::cmp_ge_f64_cc(&a, &b, sel, &mut out),
            _ => unreachable!(),
        }
    } else {
        let a = as_i64_lanes(lv, sel)?;
        let b = as_i64_lanes(rv, sel)?;
        match op {
            BinOp::Eq => prim::cmp_eq_i64_cc(&a, &b, sel, &mut out),
            BinOp::Ne => prim::cmp_ne_i64_cc(&a, &b, sel, &mut out),
            BinOp::Lt => prim::cmp_lt_i64_cc(&a, &b, sel, &mut out),
            BinOp::Le => prim::cmp_le_i64_cc(&a, &b, sel, &mut out),
            BinOp::Gt => prim::cmp_gt_i64_cc(&a, &b, sel, &mut out),
            BinOp::Ge => prim::cmp_ge_i64_cc(&a, &b, sel, &mut out),
            _ => unreachable!(),
        }
    }
    Ok(out)
}

fn cmp_spec(op: BinOp) -> (Ordering, bool, bool) {
    match op {
        BinOp::Eq => (Ordering::Equal, false, false),
        BinOp::Ne => (Ordering::Equal, false, true),
        BinOp::Lt => (Ordering::Less, false, false),
        BinOp::Le => (Ordering::Less, true, false),
        BinOp::Gt => (Ordering::Greater, false, false),
        BinOp::Ge => (Ordering::Greater, true, false),
        _ => unreachable!(),
    }
}

/// Kleene AND/OR with indicator algebra:
/// AND is false if either side is definitively false; NULL if undecided.
fn eval_kleene(
    op: BinOp,
    lv: &ExecVector,
    rv: &ExecVector,
    sel: Option<&[u32]>,
) -> Result<ExecVector> {
    // Tolerate all-NULL operands of any physical type (e.g. a literal NULL
    // or an ELSE-less CASE): their lanes read as (false, null).
    let all_null_lanes = |v: &ExecVector| -> Option<Vec<bool>> {
        if !matches!(v.data, ColumnData::Bool(_))
            && v.nulls.as_ref().is_some_and(|n| n.iter().all(|&b| b))
        {
            Some(vec![false; v.len()])
        } else {
            None
        }
    };
    let la_owned = all_null_lanes(lv);
    let ra_owned = all_null_lanes(rv);
    let la: &[bool] = match &la_owned {
        Some(x) => x,
        None => bool_lanes(lv)?,
    };
    let ra: &[bool] = match &ra_owned {
        Some(x) => x,
        None => bool_lanes(rv)?,
    };
    debug_assert_eq!(la.len(), ra.len());
    let n = la.len();
    let mut vals = vec![false; n];
    let any_null = lv.nulls.is_some() || rv.nulls.is_some();
    let mut nulls = if any_null { vec![false; n] } else { Vec::new() };
    let ln = lv.nulls.as_deref();
    let rn = rv.nulls.as_deref();
    prim::for_each_lane(sel, n, |i| {
        let l_null = ln.is_some_and(|x| x[i]);
        let r_null = rn.is_some_and(|x| x[i]);
        let (v, is_null) = match op {
            BinOp::And => {
                let def_false = (!l_null && !la[i]) || (!r_null && !ra[i]);
                if def_false {
                    (false, false)
                } else if l_null || r_null {
                    (false, true)
                } else {
                    (true, false)
                }
            }
            BinOp::Or => {
                let def_true = (!l_null && la[i]) || (!r_null && ra[i]);
                if def_true {
                    (true, false)
                } else if l_null || r_null {
                    (false, true)
                } else {
                    (false, false)
                }
            }
            _ => unreachable!(),
        };
        vals[i] = v;
        if any_null {
            nulls[i] = is_null;
        }
    });
    Ok(ExecVector::new(
        ColumnData::Bool(vals),
        if any_null { Some(nulls) } else { None },
    ))
}

fn eval_in_list(
    v: &ExecVector,
    list: &[Value],
    negated: bool,
    sel: Option<&[u32]>,
) -> Result<ExecVector> {
    let n = v.len();
    let mut vals = vec![false; n];
    let list_has_null = list.iter().any(|x| x.is_null());
    let mut extra_null = vec![false; n];
    match &v.data {
        ColumnData::Str(col) => {
            let items: Vec<&str> = list.iter().filter_map(|x| x.as_str()).collect();
            prim::for_each_lane(sel, n, |i| {
                let s = col.get(i);
                let hit = items.contains(&s);
                vals[i] = hit != negated;
                if !hit && list_has_null {
                    extra_null[i] = true;
                }
            });
        }
        ColumnData::I64(_) | ColumnData::I32(_) | ColumnData::Bool(_) => {
            let lanes = as_i64_lanes(v, sel)?;
            let items: Vec<i64> = list.iter().filter_map(|x| x.as_i64()).collect();
            prim::for_each_lane(sel, n, |i| {
                let hit = items.contains(&lanes[i]);
                vals[i] = hit != negated;
                if !hit && list_has_null {
                    extra_null[i] = true;
                }
            });
        }
        ColumnData::F64(col) => {
            let items: Vec<f64> = list.iter().filter_map(|x| x.as_f64()).collect();
            prim::for_each_lane(sel, n, |i| {
                let hit = items.iter().any(|&it| it == col[i]);
                vals[i] = hit != negated;
                if !hit && list_has_null {
                    extra_null[i] = true;
                }
            });
        }
    }
    let mut nulls = v.nulls.clone();
    if list_has_null && extra_null.iter().any(|&b| b) {
        let mut merged = nulls.unwrap_or_else(|| vec![false; n]);
        for i in 0..n {
            merged[i] |= extra_null[i];
        }
        nulls = Some(merged);
    }
    Ok(ExecVector::new(ColumnData::Bool(vals), nulls))
}

/// Lazy CASE: route lanes to branches with narrowed selections.
fn eval_case(
    whens: &[(Expr, Expr)],
    otherwise: &Option<Box<Expr>>,
    schema: &Schema,
    batch: &Batch,
    sel: Option<&[u32]>,
) -> Result<ExecVector> {
    let n = batch.rows;
    // undecided lanes start as the incoming selection
    let mut undecided: Vec<u32> = match sel {
        Some(s) => s.to_vec(),
        None => (0..n as u32).collect(),
    };
    // (branch value vector, lanes it owns)
    let mut branch_results: Vec<(ExecVector, Vec<u32>)> = Vec::new();
    for (cond, value) in whens {
        if undecided.is_empty() {
            break;
        }
        let cv = eval_rec(cond, schema, batch, Some(&undecided))?;
        let cvals = bool_lanes(&cv)?;
        let cnulls = cv.nulls.as_deref();
        let mut taken = Vec::new();
        let mut rest = Vec::new();
        for &i in &undecided {
            let iu = i as usize;
            if cvals[iu] && !cnulls.is_some_and(|x| x[iu]) {
                taken.push(i);
            } else {
                rest.push(i);
            }
        }
        if !taken.is_empty() {
            let v = eval_rec(value, schema, batch, Some(&taken))?;
            branch_results.push((v, taken));
        }
        undecided = rest;
    }
    if let Some(e) = otherwise {
        if !undecided.is_empty() {
            let v = eval_rec(e, schema, batch, Some(&undecided))?;
            branch_results.push((v, undecided.clone()));
            undecided.clear();
        }
    }
    // Merge: remaining undecided lanes are NULL.
    merge_branches(branch_results, undecided, n)
}

fn merge_branches(
    branches: Vec<(ExecVector, Vec<u32>)>,
    null_lanes: Vec<u32>,
    n: usize,
) -> Result<ExecVector> {
    // Decide output physical type from the first branch; numeric branches
    // may disagree (i64 vs f64) — promote to f64 if any branch is float.
    let any_float = branches.iter().any(|(v, _)| is_float(v));
    let any_str = branches.iter().any(|(v, _)| is_str(v));
    let mut nulls = vec![false; n];
    for &i in &null_lanes {
        nulls[i as usize] = true;
    }
    // Lanes not covered by any branch or null list (unselected) stay at a
    // safe default and false indicator.
    if any_str {
        let mut lane_vals: Vec<Option<String>> = vec![None; n];
        for (v, lanes) in &branches {
            let col = match &v.data {
                ColumnData::Str(s) => s,
                _ => return Err(VwError::Exec("CASE branch type mismatch".into())),
            };
            for &i in lanes {
                let iu = i as usize;
                if v.is_null(iu) {
                    nulls[iu] = true;
                } else {
                    lane_vals[iu] = Some(col.get(iu).to_string());
                }
            }
        }
        let mut out = StrColumn::new();
        for lv in &lane_vals {
            out.push(lv.as_deref().unwrap_or(""));
        }
        let has_null = nulls.iter().any(|&b| b);
        return Ok(ExecVector::new(
            ColumnData::Str(out),
            if has_null { Some(nulls) } else { None },
        ));
    }
    if any_float {
        let mut out = vec![0.0f64; n];
        for (v, lanes) in &branches {
            let lanes_ref: &[u32] = lanes;
            let a = as_f64_lanes(v, Some(lanes_ref))?;
            for &i in lanes {
                let iu = i as usize;
                if v.is_null(iu) {
                    nulls[iu] = true;
                } else {
                    out[iu] = a[iu];
                }
            }
        }
        let has_null = nulls.iter().any(|&b| b);
        return Ok(ExecVector::new(
            ColumnData::F64(out),
            if has_null { Some(nulls) } else { None },
        ));
    }
    let mut out = vec![0i64; n];
    for (v, lanes) in &branches {
        let lanes_ref: &[u32] = lanes;
        let a = as_i64_lanes(v, Some(lanes_ref))?;
        for &i in lanes {
            let iu = i as usize;
            if v.is_null(iu) {
                nulls[iu] = true;
            } else {
                out[iu] = a[iu];
            }
        }
    }
    let has_null = nulls.iter().any(|&b| b);
    Ok(ExecVector::new(
        ColumnData::I64(out),
        if has_null { Some(nulls) } else { None },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vw_common::Field;
    use vw_plan::Expr as E;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::I64),
            Field::nullable("b", DataType::I64),
            Field::new("f", DataType::F64),
            Field::new("s", DataType::Str),
            Field::new("d", DataType::Date),
        ])
    }

    fn batch() -> Batch {
        let rows = vec![
            vec![
                Value::I64(1),
                Value::I64(10),
                Value::F64(0.5),
                Value::Str("AIR".into()),
                Value::Date(parse_date("1995-03-15").unwrap()),
            ],
            vec![
                Value::I64(2),
                Value::Null,
                Value::F64(1.5),
                Value::Str("SHIP".into()),
                Value::Date(parse_date("1996-07-01").unwrap()),
            ],
            vec![
                Value::I64(3),
                Value::I64(30),
                Value::F64(2.5),
                Value::Str("TRUCK".into()),
                Value::Date(parse_date("1997-11-20").unwrap()),
            ],
        ];
        Batch::from_rows(&schema(), &rows).unwrap()
    }

    /// Evaluate both modes and compare against the row-wise oracle.
    fn check(e: E, expected: Vec<Value>) {
        let s = schema();
        let b = batch();
        for naive in [false, true] {
            let ev = ExprEvaluator::new(e.clone(), &s, naive).unwrap();
            let out = ev.eval(&b).unwrap();
            let got: Vec<Value> = (0..b.rows)
                .map(|i| out.get_value(i, ev.output_type()))
                .collect();
            assert_eq!(got, expected, "naive={} expr={}", naive, e);
        }
    }

    #[test]
    fn arithmetic_with_nulls() {
        check(
            E::binary(vw_plan::BinOp::Add, E::col(0), E::col(1)),
            vec![Value::I64(11), Value::Null, Value::I64(33)],
        );
        check(
            E::binary(vw_plan::BinOp::Mul, E::col(0), E::col(2)),
            vec![Value::F64(0.5), Value::F64(3.0), Value::F64(7.5)],
        );
        check(
            E::binary(vw_plan::BinOp::Sub, E::lit(Value::I64(100)), E::col(0)),
            vec![Value::I64(99), Value::I64(98), Value::I64(97)],
        );
    }

    #[test]
    fn comparisons_and_kleene() {
        check(
            E::binary(vw_plan::BinOp::Ge, E::col(0), E::lit(Value::I64(2))),
            vec![Value::Bool(false), Value::Bool(true), Value::Bool(true)],
        );
        // b > 15 is NULL on row 1
        let b_gt = E::binary(vw_plan::BinOp::Gt, E::col(1), E::lit(Value::I64(15)));
        check(
            b_gt.clone(),
            vec![Value::Bool(false), Value::Null, Value::Bool(true)],
        );
        // (b > 15) OR (a = 2): NULL OR TRUE = TRUE
        check(
            E::or(b_gt.clone(), E::eq(E::col(0), E::lit(Value::I64(2)))),
            vec![Value::Bool(false), Value::Bool(true), Value::Bool(true)],
        );
        // (b > 15) AND (a = 2): NULL AND TRUE = NULL
        check(
            E::and(b_gt, E::eq(E::col(0), E::lit(Value::I64(2)))),
            vec![Value::Bool(false), Value::Null, Value::Bool(false)],
        );
    }

    #[test]
    fn string_predicates() {
        check(
            E::eq(E::col(3), E::lit(Value::Str("SHIP".into()))),
            vec![Value::Bool(false), Value::Bool(true), Value::Bool(false)],
        );
        check(
            E::Like {
                e: Box::new(E::col(3)),
                pattern: "%R%".into(),
                negated: false,
            },
            vec![Value::Bool(true), Value::Bool(false), Value::Bool(true)],
        );
        check(
            E::InList {
                e: Box::new(E::col(3)),
                list: vec![Value::Str("AIR".into()), Value::Str("TRUCK".into())],
                negated: false,
            },
            vec![Value::Bool(true), Value::Bool(false), Value::Bool(true)],
        );
        check(
            E::Substr {
                e: Box::new(E::col(3)),
                start: 1,
                len: 2,
            },
            vec![
                Value::Str("AI".into()),
                Value::Str("SH".into()),
                Value::Str("TR".into()),
            ],
        );
    }

    #[test]
    fn dates() {
        check(
            E::Extract {
                part: DatePart::Year,
                e: Box::new(E::col(4)),
            },
            vec![Value::I32(1995), Value::I32(1996), Value::I32(1997)],
        );
        check(
            E::binary(
                vw_plan::BinOp::Lt,
                E::col(4),
                E::lit(Value::Date(parse_date("1996-01-01").unwrap())),
            ),
            vec![Value::Bool(true), Value::Bool(false), Value::Bool(false)],
        );
        check(
            E::AddMonths {
                e: Box::new(E::col(4)),
                months: 1,
            },
            vec![
                Value::Date(parse_date("1995-04-15").unwrap()),
                Value::Date(parse_date("1996-08-01").unwrap()),
                Value::Date(parse_date("1997-12-20").unwrap()),
            ],
        );
    }

    #[test]
    fn case_is_lazy_per_lane() {
        // CASE WHEN a = 1 THEN 100 WHEN a = 2 THEN 1/(a-2) ELSE -1 END
        // The division would fault for a = 2 lanes... but those lanes never
        // reach it because the condition a=2 routes them, and 1/(a-2) is only
        // evaluated on lanes where a=2... that WOULD fault. Instead test
        // the true laziness: the division branch is guarded by a≠2.
        let div = E::binary(
            vw_plan::BinOp::Div,
            E::lit(Value::I64(10)),
            E::binary(vw_plan::BinOp::Sub, E::col(0), E::lit(Value::I64(2))),
        );
        let e = E::Case {
            whens: vec![
                (
                    E::eq(E::col(0), E::lit(Value::I64(2))),
                    E::lit(Value::I64(0)),
                ),
                (
                    E::binary(vw_plan::BinOp::Ge, E::col(0), E::lit(Value::I64(1))),
                    div,
                ),
            ],
            otherwise: Some(Box::new(E::lit(Value::I64(-1)))),
        };
        // a=1 → second branch 10/(1-2) = -10; a=2 → first branch 0;
        // a=3 → second branch 10/(3-2) = 10.
        check(e, vec![Value::I64(-10), Value::I64(0), Value::I64(10)]);
    }

    #[test]
    fn case_without_else_yields_null() {
        let e = E::Case {
            whens: vec![(
                E::eq(E::col(0), E::lit(Value::I64(1))),
                E::lit(Value::I64(7)),
            )],
            otherwise: None,
        };
        check(e, vec![Value::I64(7), Value::Null, Value::Null]);
    }

    #[test]
    fn is_null_and_not() {
        check(
            E::Unary {
                op: UnOp::IsNull,
                e: Box::new(E::col(1)),
            },
            vec![Value::Bool(false), Value::Bool(true), Value::Bool(false)],
        );
        check(
            E::Unary {
                op: UnOp::IsNotNull,
                e: Box::new(E::col(1)),
            },
            vec![Value::Bool(true), Value::Bool(false), Value::Bool(true)],
        );
        check(
            E::not(E::eq(E::col(0), E::lit(Value::I64(1)))),
            vec![Value::Bool(false), Value::Bool(true), Value::Bool(true)],
        );
    }

    #[test]
    fn respects_selection_vectors() {
        let s = schema();
        let b = batch();
        let selected = Batch::with_sel(b.columns.clone(), vec![0, 2]);
        // division by (a - 2): would fault at lane 1 (a=2), but lane 1 is
        // not selected.
        let e = E::binary(
            vw_plan::BinOp::Div,
            E::lit(Value::I64(10)),
            E::binary(vw_plan::BinOp::Sub, E::col(0), E::lit(Value::I64(2))),
        );
        let ev = ExprEvaluator::new(e, &s, false).unwrap();
        let out = ev.eval(&selected).unwrap();
        assert_eq!(out.get_value(0, DataType::I64), Value::I64(-10));
        assert_eq!(out.get_value(2, DataType::I64), Value::I64(10));
    }

    #[test]
    fn null_division_does_not_fault() {
        // b is NULL at lane 1; 1/b must be NULL there, not a fault, even
        // though the safe value under the NULL is 0.
        check(
            E::binary(vw_plan::BinOp::Div, E::lit(Value::I64(1)), E::col(1)),
            vec![Value::I64(0), Value::Null, Value::I64(0)],
        );
    }

    #[test]
    fn i32_narrowing_type_stability() {
        // EXTRACT returns I32; adding I32 literals must return I32 like the
        // row oracle does.
        let e = E::binary(
            vw_plan::BinOp::Add,
            E::Extract {
                part: DatePart::Year,
                e: Box::new(E::col(4)),
            },
            E::lit(Value::I32(1)),
        );
        check(
            e,
            vec![Value::I32(1996), Value::I32(1997), Value::I32(1998)],
        );
    }
}
