//! The `Database` facade — the integrated analytical DBMS.
//!
//! This is the layer that corresponds to the *product*: SQL comes in
//! (`vw-sql`), plans are optimized (`vw-plan::optimizer`), rewritten
//! (`vw-plan::rewrite`: constant folding, pushdown, parallelization),
//! cross-compiled ([`crate::compile`]) and executed by the vectorized engine
//! over PDT-merged columnar storage, under snapshot-isolated transactions
//! with a WAL (`vw-txn`).
//!
//! Queries run against an immutable snapshot (Arc'd master PDTs + immutable
//! stable storage between checkpoints), so readers never block writers.

use crate::compile::{compile_plan, ExecContext, TableProvider};
use crate::events::{EventLog, LogEvent, Severity, EVENT_LOG_CAP};
use crate::mem::MemBudget;
use crate::operators::collect_rows;
use crate::profile::{OpProfile, QueryProfile, Timeline};
use crate::sched::{AdmissionStats, Scheduler};
use crate::session::Session;
use crate::systab;
use crate::trace::{TraceCollector, TraceHandle};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vw_common::config::{AggPath, EngineConfig, QUERY_HISTORY_MAX};
use vw_common::metrics::{Counter, Histogram, MetricsRegistry, LATENCY_BUCKETS_NS};
use vw_common::waits::{WaitClass, WaitSnapshot};
use vw_common::{DataType, Result, Schema, TableId, TableLayout, Value, VwError};
use vw_pdt::Pdt;
use vw_plan::{
    apply_interesting_orders, estimate_rows, fingerprint, fold_constants, optimize_with_feedback,
    parallelize, prune_columns, push_down_filters, recordable, CardFeedback, LogicalPlan,
    TableStats,
};
use vw_sql::{bind, parse_statement, BoundStatement, CatalogView, SetScope};
use vw_storage::{SimDisk, SimDiskConfig, TableBuilder, TableStorage};
use vw_txn::{checkpoint_table, materialize_image, Transaction, TxnManager};

/// Admission waits at or above this emit an `admission_wait` event into the
/// structured log (shorter stalls still show in `vw_waits` and the timeline).
const ADMISSION_EVENT_THRESHOLD_NS: u64 = 1_000_000;

/// Lifecycle marks accumulated before [`Database::run_query`] takes over:
/// the instant the statement arrived plus the parse/bind durations measured
/// around the SQL front-end. Plan-API entry points start the clock at
/// `run_query` entry with zero front-end phases.
#[derive(Clone, Copy)]
pub(crate) struct Lifecycle {
    epoch: Instant,
    parse_ns: u64,
    bind_ns: u64,
}

impl Lifecycle {
    /// A lifecycle starting now, with no SQL front-end phases (plan API).
    pub(crate) fn start() -> Lifecycle {
        Lifecycle {
            epoch: Instant::now(),
            parse_ns: 0,
            bind_ns: 0,
        }
    }
}

/// A query result: schema + row values.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub schema: Schema,
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Single-value convenience accessor.
    pub fn value(&self, row: usize, col: usize) -> &Value {
        &self.rows[row][col]
    }

    /// Render as an aligned text table (examples, demos).
    pub fn format_table(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .fields()
            .iter()
            .map(|f| f.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {:w$} |", c, w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<w$}|", "", w = w + 2));
        }
        out.push('\n');
        for row in &rendered {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

struct TableEntry {
    id: TableId,
    storage: Arc<RwLock<TableStorage>>,
}

/// One entry in the query-history ring buffer. Queryable through the
/// `vw_queries` system table; the attached profile (when profiling was on)
/// feeds `vw_operator_stats`.
#[derive(Clone)]
pub struct QueryRecord {
    /// Monotonic per-database query sequence number.
    pub id: u64,
    /// The SQL text, when the query arrived as SQL (plan-API runs have none).
    pub sql: Option<String>,
    /// End-to-end wall time (compile + execute + drain).
    pub wall: Duration,
    /// Rows returned to the client.
    pub rows: u64,
    /// Degree of parallelism the query ran at.
    pub dop: usize,
    /// Execution-memory high-water mark.
    pub peak_mem_bytes: u64,
    /// Bytes spilled by memory-governed operators.
    pub spill_bytes: u64,
    /// Id of the [`Session`] that ran the query (0 = no session; the
    /// database-level convenience API).
    pub session: u64,
    /// Lifecycle phase timeline; phases sum to `wall`. Recorded for every
    /// query (timing the six phase boundaries costs nothing per vector).
    pub timeline: Timeline,
    /// Per-class wait attribution (operator waits rolled up + admission).
    /// Only the admission class is populated when profiling was off.
    pub waits: WaitSnapshot,
    /// Per-operator profile, when profiling was on for this query.
    pub profile: Option<Arc<QueryProfile>>,
}

/// Everything one query execution produced: result rows plus the profile and
/// trace collected for *this* query (never another session's).
pub(crate) struct QueryOutcome {
    pub result: QueryResult,
    pub profile: Option<Arc<QueryProfile>>,
    pub trace: Option<Arc<TraceCollector>>,
}

/// Registry instruments the database folds per query. Resolved once at
/// construction so the per-query path never takes the registry lock.
struct CoreMetrics {
    queries: Arc<Counter>,
    rows_returned: Arc<Counter>,
    spill_bytes: Arc<Counter>,
    morsels_claimed: Arc<Counter>,
    join_builds: Arc<Counter>,
    query_wall: Arc<Histogram>,
    /// Conjunct-order changes made by micro-adaptive scans/filters.
    adapt_reorders: Arc<Counter>,
    /// Plan nodes whose cardinality estimate history corrected.
    plan_corrections: Arc<Counter>,
    /// Aggregation-path choices the feedback store overrode.
    agg_path_switches: Arc<Counter>,
    /// Queries evicted from the history ring (`vw_queries` drops).
    history_evicted: Arc<Counter>,
}

impl CoreMetrics {
    fn new(registry: &MetricsRegistry) -> CoreMetrics {
        CoreMetrics {
            queries: registry.counter("queries_total", ""),
            rows_returned: registry.counter("rows_returned_total", ""),
            spill_bytes: registry.counter("spill_bytes_total", ""),
            morsels_claimed: registry.counter("morsels_claimed_total", ""),
            join_builds: registry.counter("join_builds_total", ""),
            query_wall: registry.histogram("query_wall_ns", "", LATENCY_BUCKETS_NS),
            adapt_reorders: registry.counter("adapt_reorders_total", ""),
            plan_corrections: registry.counter("plan_corrections_total", ""),
            agg_path_switches: registry.counter("agg_path_switches_total", ""),
            history_evicted: registry.counter("history_evicted_total", ""),
        }
    }
}

/// The embedded analytical DBMS.
pub struct Database {
    disk: Arc<SimDisk>,
    tables: RwLock<HashMap<String, TableEntry>>,
    txn: RwLock<TxnManager>,
    stats: RwLock<HashMap<TableId, TableStats>>,
    config: RwLock<EngineConfig>,
    wal_path: PathBuf,
    next_table_id: AtomicU64,
    /// Profile of the most recently executed query (when profiling was on).
    last_profile: RwLock<Option<Arc<QueryProfile>>>,
    /// Optional cooperative-scan buffer manager whose hit/miss counters are
    /// included in query profiles (attached by benches that drive an ABM
    /// against this database's disk).
    buffer: RwLock<Option<Arc<vw_bufman::Abm>>>,
    /// Shared cache of decoded vector slices for compressed execution.
    decode_cache: Arc<vw_bufman::DecodeCache>,
    /// Database-wide metrics registry: counters/gauges/histograms from every
    /// layer (operators, scheduler, caches, disk). Queryable via `vw_metrics`.
    metrics: Arc<MetricsRegistry>,
    /// Instruments folded per query, resolved once from `metrics`.
    core_metrics: CoreMetrics,
    /// Ring buffer of the most recent queries (`vw_queries`).
    history: Mutex<VecDeque<QueryRecord>>,
    next_query_id: AtomicU64,
    /// Trace timeline of the most recently profiled query
    /// ([`Database::export_trace`], the `TRACE` statement).
    last_trace: RwLock<Option<Arc<TraceCollector>>>,
    /// Database-wide memory ledger all concurrent queries reserve against
    /// (their per-query budgets chain onto it). Rebuilt when the global
    /// memory budget changes; in-flight queries keep the ledger they
    /// admitted under.
    ledger: RwLock<Arc<MemBudget>>,
    /// Admission scheduler gating query start on ledger headroom.
    sched: Arc<Scheduler>,
    next_session_id: AtomicU64,
    /// History-learned cardinality corrections keyed by normalized plan
    /// shape. Consulted at optimize time, fed after every profiled query
    /// (adaptivity on).
    card_feedback: Mutex<CardFeedback>,
    /// Cross-query aggregation-path feedback (group counts, perfect-hash
    /// refusals), shared into running aggregates.
    agg_feedback: Arc<crate::adapt::AggFeedback>,
    /// Structured event log (`vw_log`, [`Database::drain_events`]).
    events: Arc<EventLog>,
    /// Count of in-flight checkpoints + condvar. Queries entering execution
    /// wait for it to reach zero, attributing the blocked time to the
    /// timeline's checkpoint phase; with no checkpoint running the check is
    /// one uncontended lock.
    checkpoint_gate: (Mutex<usize>, Condvar),
}

static DB_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Database {
    /// A fresh database with a default simulated disk and a WAL in the
    /// system temp directory.
    pub fn new() -> Result<Database> {
        let n = DB_COUNTER.fetch_add(1, Ordering::Relaxed);
        let wal = std::env::temp_dir().join(format!("vectorwise_{}_{}.wal", std::process::id(), n));
        // A fresh database must not replay a stale WAL from a previous
        // process that happened to share the path.
        let _ = std::fs::remove_file(&wal);
        Database::with_wal_and_disk(wal, SimDiskConfig::default())
    }

    /// Full control over WAL location and simulated-disk profile.
    pub fn with_wal_and_disk(wal_path: PathBuf, disk: SimDiskConfig) -> Result<Database> {
        let config = EngineConfig::default();
        let decode_cache = Arc::new(vw_bufman::DecodeCache::new(config.decode_cache_bytes));
        let disk = Arc::new(SimDisk::new(disk));
        let metrics = Arc::new(MetricsRegistry::new());
        disk.register_metrics(&metrics);
        decode_cache.register_metrics(&metrics);
        let core_metrics = CoreMetrics::new(&metrics);
        let sched = Arc::new(Scheduler::new());
        for (name, f) in [
            (
                "admission_admitted",
                (|s: &AdmissionStats| s.admitted) as fn(&AdmissionStats) -> u64,
            ),
            ("admission_waited", |s: &AdmissionStats| s.waited),
            ("admission_bypassed", |s: &AdmissionStats| s.bypassed),
            ("admission_peak_granted_bytes", |s: &AdmissionStats| {
                s.peak_granted
            }),
            ("admission_violations", |s: &AdmissionStats| s.violations),
        ] {
            let sched = sched.clone();
            metrics.register_polled(name, "", move || f(&sched.stats()) as f64);
        }
        let ledger = Arc::new(MemBudget::new(config.mem_budget_bytes));
        let event_log_on = config.event_log;
        Ok(Database {
            disk,
            tables: RwLock::new(HashMap::new()),
            txn: RwLock::new(TxnManager::new(&wal_path)?),
            stats: RwLock::new(HashMap::new()),
            config: RwLock::new(config),
            wal_path,
            next_table_id: AtomicU64::new(1),
            last_profile: RwLock::new(None),
            buffer: RwLock::new(None),
            decode_cache,
            metrics,
            core_metrics,
            history: Mutex::new(VecDeque::new()),
            next_query_id: AtomicU64::new(1),
            last_trace: RwLock::new(None),
            ledger: RwLock::new(ledger),
            sched,
            next_session_id: AtomicU64::new(1),
            card_feedback: Mutex::new(CardFeedback::new()),
            agg_feedback: Arc::new(crate::adapt::AggFeedback::new()),
            events: Arc::new(EventLog::new(EVENT_LOG_CAP, event_log_on)),
            checkpoint_gate: (Mutex::new(0), Condvar::new()),
        })
    }

    /// Open a client [`Session`]: per-session config and observability over
    /// this shared database. Sessions from any number of threads execute
    /// concurrently under admission control.
    pub fn session(self: &Arc<Self>) -> Arc<Session> {
        let id = self.next_session_id.fetch_add(1, Ordering::Relaxed);
        Session::new(self.clone(), id)
    }

    /// Snapshot of the admission scheduler's counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.sched.stats()
    }

    /// The database-wide admission ledger (tests, gauges).
    pub fn ledger(&self) -> Arc<MemBudget> {
        self.ledger.read().clone()
    }

    /// Swap the admission ledger to match the current global memory budget.
    /// In-flight queries keep reserving against the ledger they were
    /// admitted under; only new queries see the new one.
    fn rebuild_ledger(&self) {
        let bytes = self.config.read().mem_budget_bytes;
        *self.ledger.write() = Arc::new(MemBudget::new(bytes));
    }

    /// The session-wide cache of decoded vector slices.
    pub fn decode_cache(&self) -> &Arc<vw_bufman::DecodeCache> {
        &self.decode_cache
    }

    pub fn disk(&self) -> &Arc<SimDisk> {
        &self.disk
    }

    pub fn wal_path(&self) -> &std::path::Path {
        &self.wal_path
    }

    pub fn config(&self) -> EngineConfig {
        self.config.read().clone()
    }

    pub fn set_config(&self, config: EngineConfig) {
        *self.config.write() = config;
        self.rebuild_ledger();
    }

    /// Degree of parallelism used by the parallelize rewrite.
    pub fn set_parallelism(&self, dop: usize) {
        self.config.write().parallelism = dop.max(1);
    }

    pub fn set_vector_size(&self, vs: usize) {
        self.config.write().vector_size = vs.max(1);
    }

    /// Toggle the NULL-rewrite (experiment E8; on by default).
    pub fn set_rewrite_nulls(&self, on: bool) {
        self.config.write().rewrite_nulls = on;
    }

    /// Query-wide execution-memory budget for subsequent queries; `None`
    /// means unbounded (no spilling). Also reachable from SQL via
    /// `SET memory_budget = '16MiB'`.
    pub fn set_mem_budget(&self, bytes: Option<usize>) {
        self.config.write().mem_budget_bytes = bytes;
        self.rebuild_ledger();
    }

    /// Resize the decoded-slice cache (`SET decode_cache = '8MiB'`). Evicts
    /// down to the new capacity immediately.
    pub fn set_decode_cache_bytes(&self, bytes: usize) {
        self.config.write().decode_cache_bytes = bytes;
        self.decode_cache.set_capacity(bytes);
    }

    /// Toggle per-operator profiling (on by default; the per-vector
    /// bookkeeping is amortized to noise). `EXPLAIN ANALYZE` profiles
    /// regardless of this setting.
    pub fn set_profiling(&self, on: bool) {
        self.config.write().profiling = on;
    }

    /// Attach a cooperative-scan buffer manager so its counters show up in
    /// query profiles (`EXPLAIN ANALYZE` "Buffer:" line) and in
    /// `vw_metrics`/`vw_cache`.
    pub fn attach_buffer_manager(&self, abm: Arc<vw_bufman::Abm>) {
        abm.register_metrics(&self.metrics);
        *self.buffer.write() = Some(abm);
    }

    /// Route table scans through an ABM cooperative buffer manager over this
    /// database's disk, so overlapping scans of the same table share one
    /// disk pass (bandwidth sharing — PAPER.md §cooperative scans). Returns
    /// the ABM for stats inspection.
    pub fn enable_cooperative_scans(&self, capacity_bytes: usize) -> Arc<vw_bufman::Abm> {
        let abm = vw_bufman::Abm::new(self.disk.clone(), capacity_bytes);
        self.attach_buffer_manager(abm.clone());
        abm
    }

    /// The per-operator profile of the most recently executed query, if
    /// profiling was enabled for it.
    pub fn profile_last_query(&self) -> Option<Arc<QueryProfile>> {
        self.last_profile.read().clone()
    }

    /// The database-wide metrics registry (also queryable as `vw_metrics`).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The retained query history, oldest first (also queryable as
    /// `vw_queries`).
    pub fn query_history(&self) -> Vec<QueryRecord> {
        self.history.lock().iter().cloned().collect()
    }

    /// The chrome://tracing JSON of the most recently profiled query, if any.
    /// Load it in `chrome://tracing` or Perfetto; also reachable from SQL as
    /// `TRACE <query>`.
    pub fn export_trace(&self) -> Option<String> {
        self.last_trace.read().as_ref().map(|c| c.to_chrome_json())
    }

    /// The trace collector of the most recently profiled query (tests,
    /// programmatic inspection).
    pub fn last_trace(&self) -> Option<Arc<TraceCollector>> {
        self.last_trace.read().clone()
    }

    /// The structured event log (also queryable as `vw_log`).
    pub fn events(&self) -> &Arc<EventLog> {
        &self.events
    }

    /// `tail -f`-style event drain: the typed events appended since the
    /// previous `drain_events` call (harnesses poll this between batches).
    pub fn drain_events(&self) -> Vec<LogEvent> {
        self.events.drain()
    }

    // ------------------------------------------------------------- catalog

    /// Create an empty table with the trivial physical layout (insertion
    /// order, single device).
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<TableId> {
        self.create_table_with_layout(name, schema, TableLayout::default())
    }

    /// Create an empty table with a declared physical design: sort order
    /// and/or range partitioning (`CREATE TABLE … ORDER BY … PARTITION BY
    /// RANGE …`). When the layout declares no partitioning, the
    /// `VW_PARTITIONS` environment default (if set) range-partitions the
    /// table on its leading sort column — or column 0 for unordered tables —
    /// so a whole workload can be flipped to partitioned storage without
    /// touching its DDL.
    pub fn create_table_with_layout(
        &self,
        name: &str,
        schema: Schema,
        mut layout: TableLayout,
    ) -> Result<TableId> {
        schema.check_unique_names()?;
        if name.starts_with("vw_") {
            return Err(VwError::Catalog(format!(
                "the 'vw_' prefix is reserved for system tables (cannot create '{}')",
                name
            )));
        }
        if layout.partition.is_none() {
            if let Some(n) = vw_common::config::env_default_partitions() {
                let col = layout.order.first().map_or(0, |s| s.col);
                layout.partition = Some(vw_common::RangePartitionSpec { col, partitions: n });
            }
        }
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(VwError::Catalog(format!("table '{}' already exists", name)));
        }
        let id = TableId::new(self.next_table_id.fetch_add(1, Ordering::Relaxed));
        let mut storage = TableStorage::new(schema, self.disk.clone());
        storage.set_name(name);
        if !layout.is_trivial() {
            storage.set_layout(layout)?;
        }
        self.txn.read().register_table(id, 0);
        tables.insert(
            name.to_string(),
            TableEntry {
                id,
                storage: Arc::new(RwLock::new(storage)),
            },
        );
        Ok(id)
    }

    /// Bulk-load rows directly into stable storage (initial load path,
    /// bypassing the WAL — like any warehouse bulk loader). The table must
    /// be empty.
    pub fn bulk_load(&self, name: &str, rows: impl IntoIterator<Item = Vec<Value>>) -> Result<u64> {
        let entry_storage;
        let entry_id;
        {
            let tables = self.tables.read();
            let entry = tables
                .get(name)
                .ok_or_else(|| VwError::Catalog(format!("unknown table '{}'", name)))?;
            entry_storage = entry.storage.clone();
            entry_id = entry.id;
        }
        let mut storage = entry_storage.write();
        if storage.n_rows() != 0 || !self.txn.read().current_pdt(entry_id)?.is_empty() {
            return Err(VwError::Invalid(format!(
                "bulk_load requires empty table '{}'",
                name
            )));
        }
        // `for_table` carries the declared layout (and partition shards)
        // into the rebuilt storage, so the load lands sorted/partitioned.
        let mut builder = TableBuilder::for_table(storage.fresh_like());
        let mut n = 0u64;
        for row in rows {
            builder.push_row(row)?;
            n += 1;
        }
        *storage = builder.finish()?;
        storage.set_name(name);
        self.txn.read().register_table(entry_id, n);
        Ok(n)
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Current (stable + deltas) row count of a table.
    pub fn table_rows(&self, name: &str) -> Result<u64> {
        let tables = self.tables.read();
        let entry = tables
            .get(name)
            .ok_or_else(|| VwError::Catalog(format!("unknown table '{}'", name)))?;
        Ok(self.txn.read().current_pdt(entry.id)?.current_rows())
    }

    /// The schema of a table.
    pub fn table_schema(&self, name: &str) -> Result<Schema> {
        let tables = self.tables.read();
        let entry = tables
            .get(name)
            .ok_or_else(|| VwError::Catalog(format!("unknown table '{}'", name)))?;
        let schema = entry.storage.read().schema().clone();
        Ok(schema)
    }

    fn entry_by_id(&self, id: TableId) -> Result<(String, Arc<RwLock<TableStorage>>)> {
        let tables = self.tables.read();
        tables
            .iter()
            .find(|(_, e)| e.id == id)
            .map(|(n, e)| (n.clone(), e.storage.clone()))
            .ok_or_else(|| VwError::Catalog(format!("unknown table {}", id)))
    }

    // ------------------------------------------------------------ execution

    /// Build an execution context from the current committed snapshot (or a
    /// transaction's view), with the database's current config.
    pub fn exec_context(&self, txn: Option<&Transaction>) -> Result<ExecContext> {
        self.exec_context_with(txn, self.config())
    }

    /// Build an execution context with an explicit config snapshot — the
    /// per-query path: the snapshot is taken once at admission, so a
    /// concurrent `SET` can never change dop/vector-size mid-plan.
    pub fn exec_context_with(
        &self,
        txn: Option<&Transaction>,
        config: EngineConfig,
    ) -> Result<ExecContext> {
        let tables = self.tables.read();
        let mgr = self.txn.read();
        let mut providers = HashMap::new();
        for entry in tables.values() {
            let pdt = match txn {
                Some(t) => Arc::new(t.effective_pdt(entry.id)?.clone()),
                None => mgr.current_pdt(entry.id)?,
            };
            providers.insert(
                entry.id,
                TableProvider {
                    storage: entry.storage.clone(),
                    pdt,
                },
            );
        }
        let mut ctx = ExecContext::new(providers, config);
        ctx.decode_cache = Some(self.decode_cache.clone());
        // Spilled runs/partitions share the database's disk, so spill I/O
        // shows up in the same `DiskStats` the profile already reports.
        ctx.spill_disk = Some(self.disk.clone());
        ctx.buffer = self.buffer.read().clone();
        Ok(ctx)
    }

    /// Optimize + rewrite a logical plan per current config and stats.
    pub fn optimize_plan(&self, plan: LogicalPlan) -> LogicalPlan {
        self.optimize_plan_with(plan, &self.config())
    }

    /// Optimize + rewrite with an explicit config snapshot.
    ///
    /// Rewrites run *before* the optimizer: after constant folding and
    /// predicate pushdown the optimizer costs the same node shapes that
    /// execute, which is what lets history fingerprints recorded from
    /// executed plans match the shapes being costed here. With adaptivity on,
    /// the cost model multiplies in any history-learned correction factors —
    /// this is where a repeat query's join build side can flip.
    fn optimize_plan_with(&self, plan: LogicalPlan, config: &EngineConfig) -> LogicalPlan {
        let stats = self.stats.read().clone();
        let plan = fold_constants(plan);
        let plan = push_down_filters(plan);
        let plan = if config.adaptivity {
            let fb = self.card_feedback.lock();
            optimize_with_feedback(plan, &stats, Some(&fb))
        } else {
            optimize_with_feedback(plan, &stats, None)
        };
        let plan = prune_columns(plan);
        // Ordering-properties pass: serial plans only — at dop>1 the
        // Exchange re-partitions row order anyway, and keeping the plan
        // identical to the unordered layout's is what makes the two layouts
        // byte-compatible at any parallelism.
        let plan = if config.parallelism <= 1 {
            let delivered = self.delivered_orders();
            apply_interesting_orders(plan, &delivered, true)
        } else {
            plan
        };
        if config.parallelism > 1 {
            parallelize(plan, config.parallelism)
        } else {
            plan
        }
    }

    /// Declared sort orders that table scans actually deliver right now:
    /// tables whose layout survives partitioning (partitioned tables stay
    /// globally ordered only when partitioned on the leading sort column)
    /// and whose PDT holds no deltas (uncheckpointed churn breaks the
    /// invariant until the next checkpoint re-sorts).
    fn delivered_orders(&self) -> vw_plan::DeliveredOrders {
        let mut delivered = vw_plan::DeliveredOrders::new();
        let txn = self.txn.read();
        for entry in self.tables.read().values() {
            let storage = entry.storage.read();
            let layout = storage.layout();
            if !layout.delivers_declared_order() {
                continue;
            }
            let clean = txn.current_pdt(entry.id).is_ok_and(|p| p.is_empty());
            if clean {
                delivered.insert(entry.id, layout.order.clone());
            }
        }
        delivered
    }

    /// Execute a logical plan against the committed snapshot.
    pub fn run_plan(&self, plan: LogicalPlan) -> Result<QueryResult> {
        self.run_plan_in(plan, None)
    }

    /// Execute a logical plan, optionally inside a transaction's view.
    pub fn run_plan_in(&self, plan: LogicalPlan, txn: Option<&Transaction>) -> Result<QueryResult> {
        self.run_query(plan, txn, false, None, self.config(), 0, Lifecycle::start())
            .map(|o| o.result)
    }

    /// Execute a plan under admission control, recording a per-operator
    /// [`QueryProfile`] when profiling is on in the config snapshot (or
    /// `force` is set, as for `EXPLAIN ANALYZE` and `TRACE`).
    ///
    /// `config` is the one snapshot this query runs with end to end — a
    /// concurrent `SET` cannot change dop/vector-size mid-plan. `session`
    /// attributes the query in the history ring (0 = none). The profile and
    /// trace are returned in the [`QueryOutcome`] (per-session slots are the
    /// caller's job); the database-global `last_profile`/`last_trace` slots
    /// are still written as a deprecated single-session convenience.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_query(
        &self,
        plan: LogicalPlan,
        txn: Option<&Transaction>,
        force: bool,
        sql: Option<&str>,
        config: EngineConfig,
        session: u64,
        lifecycle: Lifecycle,
    ) -> Result<QueryOutcome> {
        let query_id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
        let plan = self.optimize_plan_with(plan, &config);
        // The corrections the feedback store actually applied to this plan
        // (for the metrics counter and the EXPLAIN ANALYZE feedback line).
        let corrections = if config.adaptivity {
            self.card_feedback.lock().applicable(&plan)
        } else {
            Vec::new()
        };
        let schema = plan.schema()?;
        // Everything since the statement arrived that wasn't parse/bind is
        // the optimize phase (rewrites, feedback lookup, schema check).
        let optimize_ns = (lifecycle.epoch.elapsed().as_nanos() as u64)
            .saturating_sub(lifecycle.parse_ns + lifecycle.bind_ns);
        self.events.emit(
            Severity::Info,
            "query_start",
            query_id,
            session,
            match sql {
                Some(s) => vec![("sql", truncate_sql(s))],
                None => Vec::new(),
            },
        );
        // Admission: block until the global ledger has headroom for this
        // plan's estimate. The grant (scheduler bookkeeping, not a ledger
        // reservation) is declared before the context so it drops *after*
        // the operators have released their memory.
        let ledger = self.ledger.read().clone();
        let t_admit = Instant::now();
        let _grant = self
            .sched
            .admit(ledger.limit(), admission_want(&plan, ledger.limit()));
        let admission_ns = t_admit.elapsed().as_nanos() as u64;
        if admission_ns >= ADMISSION_EVENT_THRESHOLD_NS {
            self.events.emit(
                Severity::Warn,
                "admission_wait",
                query_id,
                session,
                vec![("wait_ms", format!("{:.3}", admission_ns as f64 / 1e6))],
            );
        }
        // Don't start executing mid-checkpoint: wait out any in-flight
        // checkpoint, attributing the blocked time to the checkpoint phase.
        let t_ckpt = Instant::now();
        {
            let (lock, cv) = &self.checkpoint_gate;
            let mut n = lock.lock();
            while *n > 0 {
                cv.wait(&mut n);
            }
        }
        let checkpoint_ns = t_ckpt.elapsed().as_nanos() as u64;
        let mut ctx = self.exec_context_with(txn, config)?;
        if ledger.limit().is_some() {
            // Chain the per-query budget onto the shared ledger so
            // concurrent queries see each other's memory pressure.
            ctx.mem = Arc::new(MemBudget::chained(ctx.config.mem_budget_bytes, ledger));
        }
        self.provide_system_tables(&plan, &mut ctx)?;
        if ctx.config.adaptivity {
            ctx.agg_feedback = Some(self.agg_feedback.clone());
        }
        let profiling = force || ctx.config.profiling;
        let root = profiling.then(|| OpProfile::from_plan(&plan));
        ctx.profile = root.clone();
        ctx.metrics = Some(self.metrics.clone());
        // The trace rides the profiling switch: same amortization argument,
        // and `TRACE`/`EXPLAIN ANALYZE` force both on together. The epoch is
        // the instant the statement arrived, so the lifecycle phase spans
        // land at their true offsets ahead of the execution spans.
        let collector = profiling.then(|| Arc::new(TraceCollector::with_epoch(lifecycle.epoch)));
        if let Some(c) = &collector {
            c.set_meta(query_id, session);
            ctx.trace = Some(TraceHandle::new(c.clone(), 0));
        }
        let disk_before = self.disk.stats();
        let buf_before = self.buffer.read().as_ref().map(|a| a.stats());
        let decode_before = self.decode_cache.stats();
        let mut op = compile_plan(&plan, &ctx)?;
        let rows = collect_rows(op.as_mut())?;
        drop(op); // flush profile extras from operators cut short by LIMIT
                  // Wall covers the full lifecycle (parse → drain); the execute phase
                  // is the remainder after the five earlier phases, so the timeline
                  // sums to wall exactly.
        let wall = lifecycle.epoch.elapsed();
        let timeline = Timeline {
            parse_ns: lifecycle.parse_ns,
            bind_ns: lifecycle.bind_ns,
            optimize_ns,
            admission_ns,
            checkpoint_ns,
            execute_ns: (wall.as_nanos() as u64).saturating_sub(
                lifecycle.parse_ns + lifecycle.bind_ns + optimize_ns + admission_ns + checkpoint_ns,
            ),
        };
        if let Some(c) = &collector {
            // Lifecycle phase spans on the coordinator track: back-to-back
            // from the epoch, mirroring the Timeline line.
            let t = TraceHandle::new(c.clone(), 0);
            let mut at = 0u64;
            for (name, dur) in timeline.phases() {
                t.span_at(name, "phase", at, dur);
                at += dur;
            }
        }
        // Roll operator waits up per class and add the admission wait (which
        // happened before any operator existed).
        let mut waits = root.as_ref().map(|r| r.rollup_waits()).unwrap_or_default();
        waits.add(
            WaitClass::Admission,
            admission_ns,
            (admission_ns > 0) as u64,
        );
        let profile = root.map(|root| {
            Arc::new(QueryProfile {
                root,
                wall,
                dop: ctx.config.parallelism,
                query_id,
                session,
                morsels_claimed: ctx.stats.morsels_claimed(),
                builds_executed: ctx.stats.builds_executed(),
                disk: self.disk.stats().since(&disk_before),
                buffer: match (self.buffer.read().as_ref().map(|a| a.stats()), buf_before) {
                    (Some(now), Some(before)) => Some(now.since(&before)),
                    _ => None,
                },
                decode: Some(self.decode_cache.stats().since(&decode_before)),
                mem: ctx.mem.stats(),
                plan_feedback: (!corrections.is_empty()).then(|| {
                    corrections
                        .iter()
                        .map(|c| {
                            format!("{} x{:.2} (shape {:016x})", c.node, c.factor, c.fingerprint)
                        })
                        .collect::<Vec<_>>()
                        .join(", ")
                }),
                timeline,
                waits,
            })
        });
        if let Some(p) = &profile {
            // Feed the history stores and fold adaptive counters into the
            // registry; profiled queries are the feedback loop's sensors.
            if ctx.config.adaptivity {
                let stats = self.stats.read().clone();
                let mut fb = self.card_feedback.lock();
                record_actuals(&plan, &p.root, &stats, &mut fb);
            }
            let mut reorders = 0u64;
            let mut switches = 0u64;
            for n in p.nodes() {
                for (k, v) in n.extras() {
                    match k {
                        "adapt_reorders" => reorders += v,
                        "agg_adapt_veto" => switches += v,
                        _ => {}
                    }
                }
            }
            if reorders > 0 {
                self.core_metrics.adapt_reorders.add(reorders);
            }
            if switches > 0 {
                self.core_metrics.agg_path_switches.add(switches);
            }
            *self.last_profile.write() = Some(p.clone());
        }
        if !corrections.is_empty() {
            self.core_metrics
                .plan_corrections
                .add(corrections.len() as u64);
        }
        if let Some(c) = &collector {
            *self.last_trace.write() = Some(c.clone());
        }
        let mem = ctx.mem.stats();
        let m = &self.core_metrics;
        m.queries.inc();
        m.rows_returned.add(rows.len() as u64);
        m.spill_bytes.add(mem.spill_bytes);
        m.morsels_claimed.add(ctx.stats.morsels_claimed() as u64);
        m.join_builds.add(ctx.stats.builds_executed() as u64);
        m.query_wall.record(wall.as_nanos() as u64);
        if self.events.enabled() {
            let wall_ms = wall.as_secs_f64() * 1e3;
            self.events.emit(
                Severity::Info,
                "query_finish",
                query_id,
                session,
                vec![
                    ("wall_ms", format!("{wall_ms:.3}")),
                    ("rows", rows.len().to_string()),
                ],
            );
            if let Some(min) = ctx.config.log_min_duration_ns {
                if wall.as_nanos() as u64 >= min {
                    self.events.emit(
                        Severity::Warn,
                        "slow_query",
                        query_id,
                        session,
                        match sql {
                            Some(s) => vec![
                                ("wall_ms", format!("{wall_ms:.3}")),
                                ("sql", truncate_sql(s)),
                            ],
                            None => vec![("wall_ms", format!("{wall_ms:.3}"))],
                        },
                    );
                }
            }
            if mem.spill_events > 0 {
                self.events.emit(
                    Severity::Warn,
                    "spill",
                    query_id,
                    session,
                    vec![
                        ("events", mem.spill_events.to_string()),
                        ("bytes", mem.spill_bytes.to_string()),
                    ],
                );
            }
            if let Some(p) = &profile {
                let mut vetoes = 0u64;
                let mut fallbacks = 0u64;
                for n in p.nodes() {
                    for (k, v) in n.extras() {
                        match k {
                            "agg_adapt_veto" => vetoes += v,
                            "agg_fallback" => fallbacks += v,
                            _ => {}
                        }
                    }
                }
                if vetoes > 0 {
                    self.events.emit(
                        Severity::Info,
                        "agg_veto",
                        query_id,
                        session,
                        vec![("count", vetoes.to_string())],
                    );
                }
                if fallbacks > 0 {
                    self.events.emit(
                        Severity::Info,
                        "agg_fallback",
                        query_id,
                        session,
                        vec![("count", fallbacks.to_string())],
                    );
                }
            }
            for c in &corrections {
                self.events.emit(
                    Severity::Info,
                    "plan_correction",
                    query_id,
                    session,
                    vec![
                        ("node", c.node.to_string()),
                        ("factor", format!("{:.2}", c.factor)),
                    ],
                );
            }
        }
        let record = QueryRecord {
            id: query_id,
            sql: sql.map(str::to_string),
            wall,
            rows: rows.len() as u64,
            dop: ctx.config.parallelism,
            peak_mem_bytes: mem.peak,
            spill_bytes: mem.spill_bytes,
            session,
            timeline,
            waits,
            profile: profile.clone(),
        };
        // The ring cap is the *global* `query_history` setting (a session
        // `SET` changes only that session's config snapshot, but eviction is
        // a database-wide concern).
        let cap = self.config.read().query_history.max(1);
        let mut history = self.history.lock();
        while history.len() >= cap {
            history.pop_front();
            self.core_metrics.history_evicted.inc();
        }
        history.push_back(record);
        drop(history);
        Ok(QueryOutcome {
            result: QueryResult { schema, rows },
            profile,
            trace: collector,
        })
    }

    // -------------------------------------------------------- system tables

    /// Inject point-in-time providers for any `vw_` system tables the plan
    /// scans. Runs after optimization, before compilation, so both the
    /// serial and the Exchange-parallel paths (and the baseline engines, via
    /// [`Database::plan_exec_context`]) resolve them like ordinary tables.
    fn provide_system_tables(&self, plan: &LogicalPlan, ctx: &mut ExecContext) -> Result<()> {
        fn collect(plan: &LogicalPlan, out: &mut Vec<TableId>) {
            if let LogicalPlan::Scan { table_id, .. } = plan {
                if systab::is_system_table(*table_id) && !out.contains(table_id) {
                    out.push(*table_id);
                }
            }
            for c in plan.children() {
                collect(c, out);
            }
        }
        let mut ids = Vec::new();
        collect(plan, &mut ids);
        if ids.is_empty() {
            return Ok(());
        }
        let mut tables = (*ctx.tables).clone();
        for id in ids {
            let name = systab::system_table_name(id)
                .ok_or_else(|| VwError::Catalog(format!("unknown system table {}", id)))?;
            tables.insert(id, self.materialize_system_table(name)?);
        }
        ctx.tables = Arc::new(tables);
        Ok(())
    }

    /// A fully-compiled execution context for `plan` against the committed
    /// snapshot, system tables included — the entry point for running plans
    /// through the baseline engines (`compile_row`/`compile_materialized`)
    /// with the same table resolution as the vectorized engine.
    pub fn plan_exec_context(&self, plan: &LogicalPlan) -> Result<ExecContext> {
        let mut ctx = self.exec_context(None)?;
        self.provide_system_tables(plan, &mut ctx)?;
        Ok(ctx)
    }

    /// Materialize one system table as a point-in-time snapshot. Built on a
    /// private scratch disk so reading `vw_io` does not perturb the I/O
    /// counters it reports.
    fn materialize_system_table(&self, name: &str) -> Result<TableProvider> {
        let schema = systab::system_schema(name);
        let rows = match name {
            "vw_queries" => self.vw_queries_rows(),
            "vw_operator_stats" => self.vw_operator_stats_rows(),
            "vw_metrics" => self.vw_metrics_rows(),
            "vw_io" => self.vw_io_rows(),
            "vw_cache" => self.vw_cache_rows(),
            "vw_waits" => self.vw_waits_rows(),
            "vw_log" => self.vw_log_rows(),
            other => {
                return Err(VwError::Catalog(format!(
                    "unknown system table '{}'",
                    other
                )))
            }
        };
        let scratch = Arc::new(SimDisk::new(SimDiskConfig::default()));
        let storage = if rows.is_empty() {
            TableStorage::new(schema, scratch)
        } else {
            let mut builder = TableBuilder::new(schema, scratch);
            for row in rows {
                builder.push_row(row)?;
            }
            builder.finish()?
        };
        let n = storage.n_rows();
        Ok(TableProvider {
            storage: Arc::new(RwLock::new(storage)),
            pdt: Arc::new(Pdt::new(n)),
        })
    }

    fn vw_queries_rows(&self) -> Vec<Vec<Value>> {
        self.history
            .lock()
            .iter()
            .map(|q| {
                vec![
                    Value::I64(q.id as i64),
                    q.sql.clone().map(Value::Str).unwrap_or(Value::Null),
                    Value::F64(q.wall.as_secs_f64() * 1e3),
                    Value::I64(q.rows as i64),
                    Value::I64(q.dop as i64),
                    Value::I64(q.peak_mem_bytes as i64),
                    Value::I64(q.spill_bytes as i64),
                    Value::I64(q.session as i64),
                    Value::F64(q.timeline.parse_ns as f64 / 1e6),
                    Value::F64(q.timeline.bind_ns as f64 / 1e6),
                    Value::F64(q.timeline.optimize_ns as f64 / 1e6),
                    Value::F64(q.timeline.admission_ns as f64 / 1e6),
                    Value::F64(q.timeline.checkpoint_ns as f64 / 1e6),
                    Value::F64(q.timeline.execute_ns as f64 / 1e6),
                ]
            })
            .collect()
    }

    /// One row per query × wait class with nonzero time (oldest query first,
    /// classes in declaration order).
    fn vw_waits_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for q in self.history.lock().iter() {
            for class in vw_common::ALL_WAIT_CLASSES {
                let ns = q.waits.ns(class);
                if ns == 0 {
                    continue;
                }
                rows.push(vec![
                    Value::I64(q.id as i64),
                    Value::Str(class.name().to_string()),
                    Value::F64(ns as f64 / 1e6),
                    Value::I64(q.waits.count(class) as i64),
                ]);
            }
        }
        rows
    }

    fn vw_log_rows(&self) -> Vec<Vec<Value>> {
        self.events
            .snapshot()
            .into_iter()
            .map(|e| {
                let detail = if e.fields.is_empty() {
                    Value::Null
                } else {
                    Value::Str(e.detail())
                };
                vec![
                    Value::I64(e.seq as i64),
                    Value::F64(e.ts_ms),
                    Value::Str(e.severity.name().to_string()),
                    Value::Str(e.event.to_string()),
                    Value::I64(e.query_id as i64),
                    Value::I64(e.session as i64),
                    detail,
                ]
            })
            .collect()
    }

    fn vw_operator_stats_rows(&self) -> Vec<Vec<Value>> {
        let mut rows = Vec::new();
        for q in self.history.lock().iter() {
            let Some(profile) = &q.profile else { continue };
            for node in profile.nodes() {
                let extras = node.extras_full();
                let extras = if extras.is_empty() {
                    Value::Null
                } else {
                    Value::Str(
                        extras
                            .iter()
                            .map(|(k, v)| format!("{}={}", k, v))
                            .collect::<Vec<_>>()
                            .join(", "),
                    )
                };
                rows.push(vec![
                    Value::I64(q.id as i64),
                    Value::Str(node.op_name().to_string()),
                    Value::Str(node.label().to_string()),
                    Value::F64(node.time().as_secs_f64() * 1e3),
                    Value::I64(node.next_calls() as i64),
                    Value::I64(node.vectors() as i64),
                    Value::I64(node.rows_out() as i64),
                    extras,
                ]);
            }
        }
        rows
    }

    fn vw_metrics_rows(&self) -> Vec<Vec<Value>> {
        self.metrics
            .snapshot()
            .into_iter()
            .map(|s| {
                vec![
                    Value::Str(s.name),
                    Value::Str(s.label),
                    Value::Str(s.kind.to_string()),
                    Value::F64(s.value),
                ]
            })
            .collect()
    }

    /// One `vw_io` row per device: the main disk first, then every table
    /// partition shard (each shard has independent counters even though the
    /// family shares one block space).
    fn vw_io_rows(&self) -> Vec<Vec<Value>> {
        let mut disks: Vec<Arc<SimDisk>> = vec![self.disk.clone()];
        for entry in self.tables.read().values() {
            for d in entry.storage.read().partition_disks() {
                disks.push(d.clone());
            }
        }
        disks
            .iter()
            .map(|disk| {
                let d = disk.stats();
                vec![
                    Value::Str(disk.label().to_string()),
                    Value::I64(d.reads as i64),
                    Value::I64(d.writes as i64),
                    Value::I64(d.bytes_read as i64),
                    Value::I64(d.bytes_written as i64),
                    Value::I64(d.bytes_skipped as i64),
                    Value::F64(d.virtual_read_ns as f64 / 1e6),
                ]
            })
            .collect()
    }

    fn vw_cache_rows(&self) -> Vec<Vec<Value>> {
        let d = self.decode_cache.stats();
        let mut rows = vec![vec![
            Value::Str("decode".to_string()),
            Value::I64(d.hits as i64),
            Value::I64(d.misses as i64),
            Value::I64(d.evictions as i64),
            Value::I64(d.resident_bytes as i64),
        ]];
        if let Some(abm) = self.buffer.read().as_ref() {
            let s = abm.stats();
            rows.push(vec![
                Value::Str("abm".to_string()),
                Value::I64(s.shared_hits as i64),
                Value::I64(s.loads as i64),
                Value::I64(0),
                Value::I64(0),
            ]);
        }
        rows
    }

    /// Execute one SQL statement (autocommit, no session).
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        self.execute_opts(sql, None)
    }

    /// Execute one SQL statement, optionally on behalf of a [`Session`]
    /// (which scopes config snapshots, `SET`, and profile/trace slots).
    pub(crate) fn execute_opts(&self, sql: &str, session: Option<&Session>) -> Result<QueryResult> {
        // Parse and bind separately so the lifecycle timeline can attribute
        // each phase; `epoch` anchors the whole query's timeline.
        let mut lifecycle = Lifecycle::start();
        let stmt = parse_statement(sql)?;
        lifecycle.parse_ns = lifecycle.epoch.elapsed().as_nanos() as u64;
        let bound = bind(&stmt, self)?;
        lifecycle.bind_ns =
            (lifecycle.epoch.elapsed().as_nanos() as u64).saturating_sub(lifecycle.parse_ns);
        // One config snapshot per statement, taken at admission.
        let config = session.map_or_else(|| self.config(), |s| s.config());
        let sid = session.map_or(0, |s| s.id());
        let store = |outcome: &QueryOutcome| {
            if let Some(s) = session {
                s.store_outcome(outcome.profile.clone(), outcome.trace.clone());
            }
        };
        match bound {
            BoundStatement::Query(plan) => {
                let outcome =
                    self.run_query(plan, None, false, Some(sql), config, sid, lifecycle)?;
                store(&outcome);
                Ok(outcome.result)
            }
            BoundStatement::Explain(plan) => {
                let optimized = self.optimize_plan_with(plan, &config);
                let text = optimized.explain();
                let schema = Schema::new(vec![vw_common::Field::new("plan", DataType::Str)]);
                let rows = text
                    .lines()
                    .map(|l| vec![Value::Str(l.to_string())])
                    .collect();
                Ok(QueryResult { schema, rows })
            }
            BoundStatement::ExplainAnalyze(plan) => {
                // Execute for real (profiling forced on) and return the
                // annotated plan tree instead of the result rows.
                let outcome =
                    self.run_query(plan, None, true, Some(sql), config, sid, lifecycle)?;
                store(&outcome);
                let profile = outcome
                    .profile
                    .expect("forced profiling always yields a profile");
                let schema = Schema::new(vec![vw_common::Field::new("plan", DataType::Str)]);
                let rows = profile
                    .render()
                    .lines()
                    .map(|l| vec![Value::Str(l.to_string())])
                    .collect();
                Ok(QueryResult { schema, rows })
            }
            BoundStatement::Trace(plan) => {
                // Execute for real with profiling (and thus tracing) forced
                // on; return the chrome://tracing JSON, one line per row, so
                // concatenating the rows reassembles the document. The JSON
                // comes from *this* query's collector — never a concurrent
                // session's.
                let outcome =
                    self.run_query(plan, None, true, Some(sql), config, sid, lifecycle)?;
                store(&outcome);
                let json = outcome
                    .trace
                    .as_ref()
                    .expect("forced profiling always records a trace")
                    .to_chrome_json();
                let schema = Schema::new(vec![vw_common::Field::new("trace", DataType::Str)]);
                let rows = json
                    .lines()
                    .map(|l| vec![Value::Str(l.to_string())])
                    .collect();
                Ok(QueryResult { schema, rows })
            }
            BoundStatement::CreateTable {
                name,
                schema,
                layout,
            } => {
                self.create_table_with_layout(&name, schema, layout)?;
                Ok(empty_result("created"))
            }
            BoundStatement::Insert { table, rows } => {
                check_writable(table)?;
                let mut txn = self.begin();
                let n = rows.len();
                for row in rows {
                    txn.append(table, row)?;
                }
                self.commit(txn)?;
                Ok(count_result("inserted", n))
            }
            BoundStatement::Update {
                table,
                assignments,
                predicate,
            } => {
                check_writable(table)?;
                let mut txn = self.begin();
                let n = self.apply_update(&mut txn, table, &assignments, predicate.as_ref())?;
                self.commit(txn)?;
                Ok(count_result("updated", n))
            }
            BoundStatement::Delete { table, predicate } => {
                check_writable(table)?;
                let mut txn = self.begin();
                let n = self.apply_delete(&mut txn, table, predicate.as_ref())?;
                self.commit(txn)?;
                Ok(count_result("deleted", n))
            }
            BoundStatement::Set { name, value, scope } => {
                match (scope, session) {
                    // No session: plain SET has always been global here.
                    (SetScope::Global, _) | (SetScope::Default, None) => {
                        self.apply_set(&name, &value)?
                    }
                    (SetScope::Local, None) => {
                        return Err(VwError::Invalid(
                            "SET LOCAL requires a session (use Database::session())".into(),
                        ))
                    }
                    // With a session, plain SET scopes to the session.
                    (SetScope::Default | SetScope::Local, Some(s)) => {
                        self.apply_set_session(s, &name, &value)?
                    }
                }
                Ok(empty_result("set"))
            }
        }
    }

    /// Apply a `SET <name> = <value>` option globally (database scope).
    fn apply_set(&self, name: &str, value: &Value) -> Result<()> {
        match name {
            "memory_budget" | "mem_budget" => self.set_mem_budget(set_byte_size(value)?),
            "decode_cache" | "decode_cache_bytes" => {
                let bytes = set_byte_size(value)?.unwrap_or(0);
                self.set_decode_cache_bytes(bytes);
            }
            "parallelism" | "dop" => self.set_parallelism(set_usize(value)?),
            "vector_size" => self.set_vector_size(set_usize(value)?),
            "profiling" => self.set_profiling(set_bool(value)?),
            "rewrite_nulls" => self.set_rewrite_nulls(set_bool(value)?),
            "agg_path" => self.config.write().agg_path = set_agg_path(value)?,
            "adaptivity" => self.config.write().adaptivity = set_bool(value)?,
            "log_min_duration" => self.config.write().log_min_duration_ns = set_duration_ns(value)?,
            "query_history" => self.set_query_history(set_usize(value)?),
            "event_log" => {
                let on = set_bool(value)?;
                self.config.write().event_log = on;
                self.events.set_enabled(on);
            }
            other => {
                return Err(VwError::Invalid(format!("unknown SET option '{}'", other)));
            }
        }
        Ok(())
    }

    /// Apply a `SET` option to one session's config. The decode cache is a
    /// shared object, so resizing it stays global even from a session.
    fn apply_set_session(&self, session: &Session, name: &str, value: &Value) -> Result<()> {
        match name {
            "memory_budget" | "mem_budget" => {
                let bytes = set_byte_size(value)?;
                session.update_config(|c| c.mem_budget_bytes = bytes);
            }
            "decode_cache" | "decode_cache_bytes" => {
                let bytes = set_byte_size(value)?.unwrap_or(0);
                self.set_decode_cache_bytes(bytes);
            }
            "parallelism" | "dop" => {
                let dop = set_usize(value)?;
                session.update_config(|c| c.parallelism = dop.max(1));
            }
            "vector_size" => {
                let vs = set_usize(value)?;
                session.update_config(|c| c.vector_size = vs.max(1));
            }
            "profiling" => {
                let on = set_bool(value)?;
                session.update_config(|c| c.profiling = on);
            }
            "rewrite_nulls" => {
                let on = set_bool(value)?;
                session.update_config(|c| c.rewrite_nulls = on);
            }
            "agg_path" => {
                let path = set_agg_path(value)?;
                session.update_config(|c| c.agg_path = path);
            }
            "adaptivity" => {
                let on = set_bool(value)?;
                session.update_config(|c| c.adaptivity = on);
            }
            "log_min_duration" => {
                let ns = set_duration_ns(value)?;
                session.update_config(|c| c.log_min_duration_ns = ns);
            }
            // The history ring is shared by every session, so its cap is
            // global even from a session-scoped SET.
            "query_history" => self.set_query_history(set_usize(value)?),
            // The event log is likewise one shared ring.
            "event_log" => {
                let on = set_bool(value)?;
                self.config.write().event_log = on;
                self.events.set_enabled(on);
            }
            other => {
                return Err(VwError::Invalid(format!("unknown SET option '{}'", other)));
            }
        }
        Ok(())
    }

    /// Resize the query-history ring (clamped to `1..=QUERY_HISTORY_MAX`),
    /// trimming oldest records immediately and counting each eviction.
    fn set_query_history(&self, n: usize) {
        let cap = n.clamp(1, QUERY_HISTORY_MAX);
        self.config.write().query_history = cap;
        let mut history = self.history.lock();
        while history.len() > cap {
            history.pop_front();
            self.core_metrics.history_evicted.inc();
        }
    }

    /// Execute a SQL statement inside an open transaction (DML + queries).
    pub fn execute_in(&self, txn: &mut Transaction, sql: &str) -> Result<QueryResult> {
        let mut lifecycle = Lifecycle::start();
        let stmt = parse_statement(sql)?;
        lifecycle.parse_ns = lifecycle.epoch.elapsed().as_nanos() as u64;
        let bound = bind(&stmt, self)?;
        lifecycle.bind_ns =
            (lifecycle.epoch.elapsed().as_nanos() as u64).saturating_sub(lifecycle.parse_ns);
        match bound {
            BoundStatement::Query(plan) => self
                .run_query(
                    plan,
                    Some(txn),
                    false,
                    Some(sql),
                    self.config(),
                    0,
                    lifecycle,
                )
                .map(|o| o.result),
            BoundStatement::Insert { table, rows } => {
                check_writable(table)?;
                let n = rows.len();
                for row in rows {
                    txn.append(table, row)?;
                }
                Ok(count_result("inserted", n))
            }
            BoundStatement::Update {
                table,
                assignments,
                predicate,
            } => {
                check_writable(table)?;
                let n = self.apply_update(txn, table, &assignments, predicate.as_ref())?;
                Ok(count_result("updated", n))
            }
            BoundStatement::Delete { table, predicate } => {
                check_writable(table)?;
                let n = self.apply_delete(txn, table, predicate.as_ref())?;
                Ok(count_result("deleted", n))
            }
            _ => Err(VwError::Txn(
                "only queries and DML are allowed inside a transaction".into(),
            )),
        }
    }

    /// Rows of a table as seen by a transaction (or the committed snapshot),
    /// in RID order — the reference row view for DML.
    fn current_rows_of(&self, txn: &Transaction, table: TableId) -> Result<Vec<Vec<Value>>> {
        let (_, storage) = self.entry_by_id(table)?;
        let storage = storage.read();
        let pdt = txn.effective_pdt(table)?;
        let cols = materialize_image(pdt, &storage)?;
        let schema = storage.schema();
        let n = cols.first().map_or(0, |c| c.len());
        Ok((0..n)
            .map(|i| {
                cols.iter()
                    .zip(schema.fields())
                    .map(|(c, f)| c.get_value(i, f.ty))
                    .collect()
            })
            .collect())
    }

    fn apply_update(
        &self,
        txn: &mut Transaction,
        table: TableId,
        assignments: &[(usize, vw_plan::Expr)],
        predicate: Option<&vw_plan::Expr>,
    ) -> Result<usize> {
        let rows = self.current_rows_of(txn, table)?;
        let mut n = 0usize;
        for (rid, row) in rows.iter().enumerate() {
            if let Some(p) = predicate {
                if p.eval_row(row)? != Value::Bool(true) {
                    continue;
                }
            }
            // All assignments see the pre-update row (SQL semantics).
            for (col, e) in assignments {
                let mut v = e.eval_row(row)?;
                let want = {
                    let (_, storage) = self.entry_by_id(table)?;
                    let s = storage.read().schema().field(*col).ty;
                    s
                };
                if !v.is_null() {
                    v = v
                        .cast_to(want)
                        .ok_or_else(|| VwError::Exec(format!("cannot store {} as {}", v, want)))?;
                }
                txn.modify_at(table, rid as u64, *col as u32, v)?;
            }
            n += 1;
        }
        Ok(n)
    }

    fn apply_delete(
        &self,
        txn: &mut Transaction,
        table: TableId,
        predicate: Option<&vw_plan::Expr>,
    ) -> Result<usize> {
        let rows = self.current_rows_of(txn, table)?;
        let mut rids: Vec<u64> = Vec::new();
        for (rid, row) in rows.iter().enumerate() {
            match predicate {
                Some(p) => {
                    if p.eval_row(row)? == Value::Bool(true) {
                        rids.push(rid as u64);
                    }
                }
                None => rids.push(rid as u64),
            }
        }
        // Descending order keeps earlier RIDs stable while deleting.
        for &rid in rids.iter().rev() {
            txn.delete_at(table, rid)?;
        }
        Ok(rids.len())
    }

    // ---------------------------------------------------------- transactions

    /// Begin an explicit transaction.
    pub fn begin(&self) -> Transaction {
        self.txn.read().begin()
    }

    /// Commit (may fail with `TxnConflict` under optimistic CC).
    pub fn commit(&self, txn: Transaction) -> Result<()> {
        self.txn.read().commit(txn)
    }

    /// Abort.
    pub fn abort(&self, txn: Transaction) {
        self.txn.read().abort(txn)
    }

    pub fn commit_count(&self) -> u64 {
        self.txn.read().commit_count()
    }

    pub fn abort_count(&self) -> u64 {
        self.txn.read().abort_count()
    }

    /// Control WAL flushing (group commit experiments).
    pub fn set_sync_on_commit(&self, sync: bool) {
        self.txn.read().set_sync_on_commit(sync);
    }

    // ---------------------------------------------------------- maintenance

    /// Fold a table's PDT into stable storage and truncate the WAL.
    ///
    /// While the checkpoint runs, [`Database::run_query`] holds new queries
    /// at the checkpoint gate and attributes the blocked time to the
    /// `checkpoint` lifecycle phase.
    pub fn checkpoint(&self, name: &str) -> Result<u64> {
        let (id, storage) = {
            let tables = self.tables.read();
            let entry = tables
                .get(name)
                .ok_or_else(|| VwError::Catalog(format!("unknown table '{}'", name)))?;
            (entry.id, entry.storage.clone())
        };
        let t0 = Instant::now();
        {
            let (lock, _) = &self.checkpoint_gate;
            *lock.lock() += 1;
        }
        let result = {
            let mgr = self.txn.read();
            let mut storage = storage.write();
            checkpoint_table(&mgr, id, &mut storage)
        };
        {
            let (lock, cv) = &self.checkpoint_gate;
            *lock.lock() -= 1;
            cv.notify_all();
        }
        self.events.emit(
            Severity::Info,
            "checkpoint",
            0,
            0,
            vec![
                ("table", name.to_string()),
                (
                    "wall_ms",
                    format!("{:.3}", t0.elapsed().as_secs_f64() * 1e3),
                ),
            ],
        );
        result
    }

    /// Build optimizer statistics for a table from a sample of its stable
    /// image.
    pub fn analyze(&self, name: &str) -> Result<()> {
        let (id, storage) = {
            let tables = self.tables.read();
            let entry = tables
                .get(name)
                .ok_or_else(|| VwError::Catalog(format!("unknown table '{}'", name)))?;
            (entry.id, entry.storage.clone())
        };
        let storage = storage.read();
        let schema = storage.schema().clone();
        let n_rows = self.txn.read().current_pdt(id)?.current_rows();
        // Sample up to ~4 row groups.
        let mut samples: Vec<Vec<Value>> = vec![Vec::new(); schema.len()];
        let step = (storage.group_count() / 4).max(1);
        for g in (0..storage.group_count()).step_by(step) {
            for (c, sample) in samples.iter_mut().enumerate() {
                let col = storage.read_column(g, c)?;
                let stride = (col.len() / 256).max(1);
                for i in (0..col.len()).step_by(stride) {
                    sample.push(col.get_value(i, schema.field(c).ty));
                }
            }
        }
        let types: Vec<DataType> = schema.fields().iter().map(|f| f.ty).collect();
        let stats = TableStats::build(n_rows, &types, &samples);
        self.stats.write().insert(id, stats);
        Ok(())
    }

    /// Simulate a crash: throw away all in-memory transaction state and
    /// recover it from the WAL (stable storage survives on the SimDisk).
    pub fn simulate_crash_and_recover(&self) -> Result<()> {
        let tables = self.tables.read();
        let table_rows: HashMap<TableId, u64> = tables
            .values()
            .map(|e| (e.id, e.storage.read().n_rows()))
            .collect();
        let recovered = TxnManager::recover(&self.wal_path, &table_rows)?;
        *self.txn.write() = recovered;
        Ok(())
    }
}

// ------------------------------------------------------ SET value parsing
// (shared by the global and the session-scoped apply paths)

/// Byte-size options accept integers (bytes) or strings ('16MiB');
/// 0, NULL, 'unbounded' and 'none' lift the memory budget.
fn set_byte_size(v: &Value) -> Result<Option<usize>> {
    match v {
        Value::Null => Ok(None),
        Value::I64(0) | Value::I32(0) => Ok(None),
        Value::I64(n) if *n > 0 => Ok(Some(*n as usize)),
        Value::I32(n) if *n > 0 => Ok(Some(*n as usize)),
        Value::Str(s) if s.eq_ignore_ascii_case("unbounded") => Ok(None),
        Value::Str(s) if s.eq_ignore_ascii_case("none") => Ok(None),
        Value::Str(s) => vw_common::config::parse_byte_size(s)
            .map(Some)
            .ok_or_else(|| VwError::Invalid(format!("cannot parse '{}' as a byte size", s))),
        other => Err(VwError::Invalid(format!(
            "expected a byte size, got {}",
            other
        ))),
    }
}

fn set_usize(v: &Value) -> Result<usize> {
    match v {
        Value::I64(n) if *n > 0 => Ok(*n as usize),
        Value::I32(n) if *n > 0 => Ok(*n as usize),
        other => Err(VwError::Invalid(format!(
            "expected a positive integer, got {}",
            other
        ))),
    }
}

fn set_bool(v: &Value) -> Result<bool> {
    match v {
        Value::Bool(b) => Ok(*b),
        Value::Str(s) if s.eq_ignore_ascii_case("on") => Ok(true),
        Value::Str(s) if s.eq_ignore_ascii_case("off") => Ok(false),
        Value::I64(n) => Ok(*n != 0),
        other => Err(VwError::Invalid(format!(
            "expected a boolean, got {}",
            other
        ))),
    }
}

fn set_agg_path(v: &Value) -> Result<AggPath> {
    match v {
        Value::Str(s) if s.eq_ignore_ascii_case("auto") => Ok(AggPath::Auto),
        Value::Str(s) if s.eq_ignore_ascii_case("generic") => Ok(AggPath::Generic),
        other => Err(VwError::Invalid(format!(
            "agg_path must be 'auto' or 'generic', got {}",
            other
        ))),
    }
}

/// Durations accept integers (nanoseconds) or strings with a unit
/// ('250ms', '1s'); 0, NULL and 'off' disable the threshold.
fn set_duration_ns(v: &Value) -> Result<Option<u64>> {
    match v {
        Value::Null => Ok(None),
        Value::I64(0) | Value::I32(0) => Ok(None),
        Value::I64(n) if *n > 0 => Ok(Some(*n as u64)),
        Value::I32(n) if *n > 0 => Ok(Some(*n as u64)),
        Value::Str(s) if s.eq_ignore_ascii_case("off") => Ok(None),
        Value::Str(s) => vw_common::config::parse_duration_ns(s)
            .map(Some)
            .ok_or_else(|| VwError::Invalid(format!("cannot parse '{}' as a duration", s))),
        other => Err(VwError::Invalid(format!(
            "expected a duration, got {}",
            other
        ))),
    }
}

/// Trim a SQL text for an event field: single line, at most ~80 chars.
fn truncate_sql(s: &str) -> String {
    let one_line: String = s.split_whitespace().collect::<Vec<_>>().join(" ");
    if one_line.len() <= 80 {
        one_line
    } else {
        let mut cut = 77;
        while !one_line.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}...", &one_line[..cut])
    }
}

/// Record observed cardinalities into the feedback store. The profile tree
/// is built from this very plan ([`OpProfile::from_plan`]), so the two trees
/// are walked in lockstep: each recordable node that actually ran pairs its
/// static estimate with the observed row count. Limit subtrees are skipped —
/// an early cut-off makes every downstream "actual" an artifact of the fetch
/// count, not of the data.
fn record_actuals(
    plan: &LogicalPlan,
    prof: &Arc<OpProfile>,
    stats: &HashMap<TableId, TableStats>,
    fb: &mut CardFeedback,
) {
    if matches!(plan, LogicalPlan::Limit { .. }) {
        return;
    }
    if recordable(plan) && prof.next_calls() > 0 {
        fb.record(
            fingerprint(plan),
            estimate_rows(plan, stats),
            prof.rows_out() as f64,
        );
    }
    for (i, c) in plan.children().into_iter().enumerate() {
        record_actuals(c, prof.child(i), stats, fb);
    }
}

// --------------------------------------------------- admission estimation

/// True if the plan holds materialized state (hash tables, sort buffers).
fn plan_is_stateful(plan: &LogicalPlan) -> bool {
    if matches!(
        plan,
        LogicalPlan::Join { .. } | LogicalPlan::Aggregate { .. } | LogicalPlan::Sort { .. }
    ) {
        return true;
    }
    for c in plan.children() {
        if plan_is_stateful(c) {
            return true;
        }
    }
    false
}

/// Admission estimate for a plan under a bounded ledger: stateful plans
/// declare half the ledger, scan-only plans a sliver — coarse on purpose.
/// The force-reserve protocol means an underestimate degrades to spilling,
/// never to a failed query; the estimate only shapes *queueing*.
fn admission_want(plan: &LogicalPlan, limit: Option<u64>) -> u64 {
    let Some(limit) = limit else { return 0 };
    let share = if plan_is_stateful(plan) {
        limit / 2
    } else {
        limit / 16
    };
    share.max((64 << 10u64).min(limit)).clamp(1, limit)
}

/// DML targets must be user tables: the `vw_` system tables are read-only
/// point-in-time views.
fn check_writable(table: TableId) -> Result<()> {
    if systab::is_system_table(table) {
        return Err(VwError::Invalid(format!(
            "system table '{}' is read-only",
            systab::system_table_name(table).unwrap_or("vw_?")
        )));
    }
    Ok(())
}

fn empty_result(tag: &str) -> QueryResult {
    QueryResult {
        schema: Schema::new(vec![vw_common::Field::new(tag, DataType::I64)]),
        rows: vec![],
    }
}

fn count_result(tag: &str, n: usize) -> QueryResult {
    QueryResult {
        schema: Schema::new(vec![vw_common::Field::new(tag, DataType::I64)]),
        rows: vec![vec![Value::I64(n as i64)]],
    }
}

impl CatalogView for Database {
    fn resolve_table(&self, name: &str) -> Option<(TableId, Schema)> {
        let tables = self.tables.read();
        tables
            .get(name)
            .map(|e| (e.id, e.storage.read().schema().clone()))
            .or_else(|| systab::system_table(name))
    }

    fn table_rows(&self, id: TableId) -> Option<u64> {
        if systab::is_system_table(id) {
            // Materialized fresh per query; no stable cardinality to report.
            return None;
        }
        self.txn
            .read()
            .current_pdt(id)
            .ok()
            .map(|p| p.current_rows())
    }
}

impl Drop for Database {
    fn drop(&mut self) {
        // best-effort cleanup of the WAL file for throwaway databases
        let _ = std::fs::remove_file(&self.wal_path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let db = Database::new().unwrap();
        db.execute(
            "CREATE TABLE items (id BIGINT NOT NULL, qty BIGINT NOT NULL, \
             price DOUBLE NOT NULL, tag VARCHAR)",
        )
        .unwrap();
        db.execute(
            "INSERT INTO items VALUES \
             (1, 5, 10.0, 'a'), (2, 3, 20.0, 'b'), (3, 8, 30.0, 'a'), \
             (4, 1, 40.0, NULL), (5, 9, 50.0, 'b')",
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_select() {
        let db = sample_db();
        let r = db
            .execute("SELECT id, price FROM items WHERE qty >= 5 ORDER BY id")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0], vec![Value::I64(1), Value::F64(10.0)]);
        assert_eq!(r.schema.field(1).name, "price");
    }

    #[test]
    fn aggregates_via_sql() {
        let db = sample_db();
        let r = db
            .execute(
                "SELECT tag, COUNT(*) AS n, SUM(price) AS total FROM items \
                 GROUP BY tag ORDER BY tag",
            )
            .unwrap();
        // NULL tag sorts first (nulls-first ordering)
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0][0], Value::Null);
        assert_eq!(
            r.rows[1],
            vec![Value::Str("a".into()), Value::I64(2), Value::F64(40.0)]
        );
        assert_eq!(r.rows[2][2], Value::F64(70.0));
    }

    #[test]
    fn update_and_delete() {
        let db = sample_db();
        let r = db
            .execute("UPDATE items SET price = price * 2 WHERE tag = 'a'")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::I64(2));
        let r = db.execute("SELECT SUM(price) FROM items").unwrap();
        assert_eq!(
            r.rows[0][0],
            Value::F64(10.0 + 20.0 + 30.0 + 40.0 + 50.0 + 40.0)
        );
        let r = db.execute("DELETE FROM items WHERE qty < 4").unwrap();
        assert_eq!(r.rows[0][0], Value::I64(2));
        assert_eq!(db.table_rows("items").unwrap(), 3);
        // deleted rows are gone from queries
        let r = db.execute("SELECT COUNT(*) FROM items").unwrap();
        assert_eq!(r.rows[0][0], Value::I64(3));
    }

    #[test]
    fn updates_visible_through_scans_with_pdt_merge() {
        let db = sample_db();
        db.execute("UPDATE items SET tag = 'z' WHERE id = 1")
            .unwrap();
        let r = db.execute("SELECT tag FROM items WHERE id = 1").unwrap();
        assert_eq!(r.rows[0][0], Value::Str("z".into()));
    }

    #[test]
    fn explicit_transaction_isolation_and_conflict() {
        let db = sample_db();
        let mut t1 = db.begin();
        db.execute_in(&mut t1, "UPDATE items SET qty = 100 WHERE id = 2")
            .unwrap();
        // Own writes visible inside txn:
        let r = db
            .execute_in(&mut t1, "SELECT qty FROM items WHERE id = 2")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::I64(100));
        // Not visible outside:
        let r = db.execute("SELECT qty FROM items WHERE id = 2").unwrap();
        assert_eq!(r.rows[0][0], Value::I64(3));
        // Conflicting concurrent txn:
        let mut t2 = db.begin();
        db.execute_in(&mut t2, "UPDATE items SET qty = 200 WHERE id = 2")
            .unwrap();
        db.commit(t1).unwrap();
        let err = db.commit(t2).unwrap_err();
        assert_eq!(err.kind(), "txn_conflict");
        // Committed value is t1's.
        let r = db.execute("SELECT qty FROM items WHERE id = 2").unwrap();
        assert_eq!(r.rows[0][0], Value::I64(100));
    }

    #[test]
    fn checkpoint_then_query() {
        let db = sample_db();
        db.execute("DELETE FROM items WHERE id = 1").unwrap();
        db.execute("INSERT INTO items VALUES (6, 2, 60.0, 'c')")
            .unwrap();
        let before = db.execute("SELECT id FROM items ORDER BY id").unwrap();
        db.checkpoint("items").unwrap();
        let after = db.execute("SELECT id FROM items ORDER BY id").unwrap();
        assert_eq!(before.rows, after.rows);
        // PDT is empty post-checkpoint; data served purely from storage.
        assert_eq!(db.table_rows("items").unwrap(), 5);
    }

    #[test]
    fn crash_recovery_preserves_committed_only() {
        let db = sample_db();
        db.execute("UPDATE items SET qty = 77 WHERE id = 3")
            .unwrap();
        // an uncommitted transaction...
        let mut t = db.begin();
        db.execute_in(&mut t, "DELETE FROM items WHERE id = 5")
            .unwrap();
        // ...lost in the crash (never committed)
        db.simulate_crash_and_recover().unwrap();
        let r = db.execute("SELECT qty FROM items WHERE id = 3").unwrap();
        assert_eq!(r.rows[0][0], Value::I64(77));
        assert_eq!(db.table_rows("items").unwrap(), 5);
        drop(t);
    }

    #[test]
    fn explain_output() {
        let db = sample_db();
        let r = db
            .execute("EXPLAIN SELECT tag, COUNT(*) FROM items WHERE qty > 1 GROUP BY tag")
            .unwrap();
        let text: Vec<String> = r
            .rows
            .iter()
            .map(|row| row[0].as_str().unwrap().to_string())
            .collect();
        let joined = text.join("\n");
        assert!(joined.contains("Aggregate"), "{}", joined);
        assert!(joined.contains("Scan items"), "{}", joined);
        // filter was pushed into the scan
        assert!(joined.contains("filter="), "{}", joined);
    }

    /// A table big enough to produce several vectors and morsels.
    fn wide_db(n: i64) -> Database {
        let db = Database::new().unwrap();
        db.execute("CREATE TABLE t (k BIGINT NOT NULL, v BIGINT NOT NULL)")
            .unwrap();
        db.bulk_load("t", (0..n).map(|i| vec![Value::I64(i % 10), Value::I64(i)]))
            .unwrap();
        db
    }

    fn find_node<'a>(
        node: &'a Arc<crate::profile::OpProfile>,
        op: &str,
    ) -> Option<&'a Arc<crate::profile::OpProfile>> {
        if node.op_name() == op {
            return Some(node);
        }
        node.children().iter().find_map(|c| find_node(c, op))
    }

    #[test]
    fn explain_analyze_serial_reports_true_cardinalities() {
        let db = wide_db(600);
        let r = db
            .execute("EXPLAIN ANALYZE SELECT k, COUNT(*) AS n FROM t GROUP BY k")
            .unwrap();
        let text: String = r
            .rows
            .iter()
            .map(|row| row[0].as_str().unwrap())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("Query:"), "{}", text);
        assert!(text.contains("Scan t"), "{}", text);
        assert!(text.contains("rows"), "{}", text);
        let prof = db.profile_last_query().unwrap();
        assert_eq!(prof.dop, 1);
        // Root emits one row per group; the scan emits the whole table.
        assert_eq!(prof.root.rows_out(), 10);
        let scan = find_node(&prof.root, "Scan").unwrap();
        assert_eq!(scan.rows_out(), 600);
        assert!(scan.extras().iter().any(|&(k, _)| k == "morsels"));
    }

    #[test]
    fn explain_analyze_dop4_merges_worker_stats_per_node() {
        let db = wide_db(600);
        db.set_parallelism(4);
        let result = db
            .execute("SELECT k, COUNT(*) AS n FROM t GROUP BY k")
            .unwrap();
        assert_eq!(result.rows.len(), 10);
        db.execute("EXPLAIN ANALYZE SELECT k, COUNT(*) AS n FROM t GROUP BY k")
            .unwrap();
        let prof = db.profile_last_query().unwrap();
        assert_eq!(prof.dop, 4);
        // Per-node merge: the profile must report the query's true
        // cardinalities once, NOT dop × them (per-thread duplication).
        assert_eq!(prof.root.rows_out(), result.rows.len() as u64);
        let scan = find_node(&prof.root, "Scan").unwrap();
        assert_eq!(scan.rows_out(), 600, "scan rows duplicated across workers");
        let exchange = find_node(&prof.root, "Exchange").unwrap();
        assert_eq!(exchange.rows_out(), prof.root.rows_in());
        assert!(
            exchange.extras().contains(&("workers", 4)),
            "{:?}",
            exchange.extras()
        );
        // The exchange's child (partial agg) feeds exactly what it produced.
        assert!(prof.morsels_claimed > 0);
    }

    #[test]
    fn profiling_can_be_disabled() {
        let db = sample_db();
        db.set_profiling(false);
        db.execute("SELECT COUNT(*) FROM items").unwrap();
        assert!(db.profile_last_query().is_none());
        // EXPLAIN ANALYZE forces profiling regardless.
        db.execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM items")
            .unwrap();
        assert!(db.profile_last_query().is_some());
    }

    #[test]
    fn plain_queries_record_profile_by_default() {
        let db = sample_db();
        let r = db.execute("SELECT id FROM items WHERE qty >= 5").unwrap();
        let prof = db.profile_last_query().unwrap();
        assert_eq!(prof.root.rows_out(), r.rows.len() as u64);
        // The scan saw all 5 rows; the pushed-down filter selected 3 of them.
        let scan = find_node(&prof.root, "Scan").unwrap();
        assert_eq!(scan.rows_out(), 3);
    }

    #[test]
    fn parallel_config_changes_plan_not_results() {
        let db = sample_db();
        let serial = db
            .execute("SELECT tag, SUM(qty) FROM items GROUP BY tag ORDER BY tag")
            .unwrap();
        db.set_parallelism(3);
        let parallel = db
            .execute("SELECT tag, SUM(qty) FROM items GROUP BY tag ORDER BY tag")
            .unwrap();
        assert_eq!(serial.rows, parallel.rows);
        let explain = db
            .execute("EXPLAIN SELECT tag, SUM(qty) FROM items GROUP BY tag")
            .unwrap();
        let text: String = explain
            .rows
            .iter()
            .map(|r| r[0].as_str().unwrap())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("Exchange"), "{}", text);
    }

    #[test]
    fn analyze_feeds_optimizer() {
        let db = sample_db();
        db.analyze("items").unwrap();
        // build-side selection now has stats; just verify queries still work
        let r = db.execute("SELECT COUNT(*) FROM items").unwrap();
        assert_eq!(r.rows[0][0], Value::I64(5));
    }

    #[test]
    fn bulk_load_requires_empty_and_counts() {
        let db = Database::new().unwrap();
        db.execute("CREATE TABLE t (a BIGINT NOT NULL)").unwrap();
        let n = db
            .bulk_load("t", (0..100).map(|i| vec![Value::I64(i)]))
            .unwrap();
        assert_eq!(n, 100);
        assert_eq!(db.table_rows("t").unwrap(), 100);
        assert!(db.bulk_load("t", vec![vec![Value::I64(1)]]).is_err());
        let r = db.execute("SELECT SUM(a) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::I64(4950));
    }

    #[test]
    fn errors_surface_cleanly() {
        let db = sample_db();
        assert!(db.execute("SELECT nosuch FROM items").is_err());
        assert!(db.execute("SELECT * FROM nosuch").is_err());
        assert!(db.execute("CREATE TABLE items (a BIGINT)").is_err());
        assert_eq!(
            db.execute("SELECT 1 FROM items WHERE qty / 0 > 1")
                .unwrap_err()
                .kind(),
            "exec"
        );
    }

    #[test]
    fn format_table_renders() {
        let db = sample_db();
        let r = db
            .execute("SELECT id, tag FROM items ORDER BY id LIMIT 2")
            .unwrap();
        let text = r.format_table();
        assert!(text.contains("| id | tag |"), "{}", text);
        assert!(text.contains("| 1  | a   |"), "{}", text);
    }

    #[test]
    fn set_statement_governs_memory_budget() {
        let db = wide_db(4000);
        let q = "SELECT k, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY k ORDER BY s DESC";
        let unbounded = db.execute(q).unwrap();
        db.execute("SET memory_budget = '32KiB'").unwrap();
        assert_eq!(db.config().mem_budget_bytes, Some(32 << 10));
        let tight = db.execute(q).unwrap();
        assert_eq!(tight.rows, unbounded.rows);
        let prof = db.profile_last_query().unwrap();
        assert_eq!(prof.mem.limit, Some(32 << 10));
        assert!(prof.mem.peak > 0);
        // EXPLAIN ANALYZE renders the memory line.
        let r = db.execute(&format!("EXPLAIN ANALYZE {}", q)).unwrap();
        let text: String = r
            .rows
            .iter()
            .map(|row| row[0].as_str().unwrap())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("Memory:"), "{}", text);
        assert!(text.contains("KiB budget"), "{}", text);
        // Lift the budget again (bare word works unquoted).
        db.execute("SET memory_budget = unbounded").unwrap();
        assert_eq!(db.config().mem_budget_bytes, None);
    }

    #[test]
    fn set_statement_other_options() {
        let db = sample_db();
        db.execute("SET parallelism = 3").unwrap();
        assert_eq!(db.config().parallelism, 3);
        db.execute("SET vector_size = 512").unwrap();
        assert_eq!(db.config().vector_size, 512);
        db.execute("SET profiling = off").unwrap();
        assert!(!db.config().profiling);
        db.execute("SET profiling = on").unwrap();
        db.execute("SET decode_cache = '1MiB'").unwrap();
        assert_eq!(db.decode_cache().capacity_bytes(), 1 << 20);
        db.execute("SET agg_path = generic").unwrap();
        assert_eq!(db.config().agg_path, AggPath::Generic);
        db.execute("SET agg_path = 'auto'").unwrap();
        assert_eq!(db.config().agg_path, AggPath::Auto);
        assert!(db.execute("SET agg_path = 'fast'").is_err());
        assert!(db.execute("SET nosuch_option = 1").is_err());
        assert!(db.execute("SET memory_budget = 'garbage'").is_err());
        // SET is session-level: rejected inside a transaction.
        let mut t = db.begin();
        assert!(db.execute_in(&mut t, "SET parallelism = 2").is_err());
        db.abort(t);
    }

    #[test]
    fn vw_queries_counts_session_queries() {
        let db = sample_db();
        db.execute("SELECT COUNT(*) FROM items").unwrap();
        db.execute("SELECT id FROM items WHERE qty >= 5").unwrap();
        // CREATE/INSERT are not queries; only the two SELECTs are in history.
        let r = db.execute("SELECT COUNT(*) FROM vw_queries").unwrap();
        assert_eq!(r.rows[0][0], Value::I64(2));
        // The count query recorded itself after running, so it shows up now.
        let r = db
            .execute("SELECT query_id, sql, rows FROM vw_queries ORDER BY query_id")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(
            r.rows[0][1],
            Value::Str("SELECT COUNT(*) FROM items".into())
        );
        assert_eq!(r.rows[0][2], Value::I64(1));
        assert_eq!(db.query_history().len(), 4);
    }

    #[test]
    fn system_tables_are_schema_correct_and_populated() {
        let db = sample_db();
        db.execute("SELECT tag, SUM(price) FROM items GROUP BY tag")
            .unwrap();
        for &name in crate::systab::SYSTEM_TABLE_NAMES {
            let r = db.execute(&format!("SELECT * FROM {}", name)).unwrap();
            assert_eq!(
                r.schema,
                crate::systab::system_schema(name),
                "schema mismatch for {}",
                name
            );
        }
        let ops = db.execute("SELECT * FROM vw_operator_stats").unwrap();
        assert!(!ops.rows.is_empty());
        // The extras column renders operator counters; the GROUP BY above
        // must report which aggregation path it took.
        let agg = db
            .execute("SELECT extras FROM vw_operator_stats WHERE op = 'Aggregate'")
            .unwrap();
        assert!(
            agg.rows.iter().any(|r| r[0]
                .as_str()
                .is_some_and(|s| s.contains("agg_path_perfect") || s.contains("agg_path_generic"))),
            "aggregate extras should name the chosen path: {:?}",
            agg.rows
        );
        let metrics = db
            .execute("SELECT value FROM vw_metrics WHERE name = 'queries_total'")
            .unwrap();
        assert_eq!(metrics.rows.len(), 1);
        assert!(matches!(metrics.rows[0][0], Value::F64(v) if v >= 2.0));
        // One row per device: always the main disk, plus one per table range
        // partition when a partitioned layout is in force (VW_PARTITIONS).
        let io = db.execute("SELECT disk FROM vw_io").unwrap();
        assert!(!io.rows.is_empty());
        assert!(
            io.rows.iter().any(|r| r[0] == Value::Str("main".into())),
            "main disk missing from vw_io: {:?}",
            io.rows
        );
        let cache = db.execute("SELECT cache FROM vw_cache").unwrap();
        assert_eq!(cache.rows[0][0], Value::Str("decode".into()));
    }

    #[test]
    fn system_tables_are_read_only_and_names_reserved() {
        let db = sample_db();
        let err = db
            .execute(
                "INSERT INTO vw_queries VALUES \
                 (1, 'x', 0.0, 0, 1, 0, 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)",
            )
            .unwrap_err();
        assert!(err.to_string().contains("read-only"), "{}", err);
        let err = db.execute("DELETE FROM vw_io").unwrap_err();
        assert!(err.to_string().contains("read-only"), "{}", err);
        let err = db.execute("CREATE TABLE vw_custom (a BIGINT)").unwrap_err();
        assert!(err.to_string().contains("reserved"), "{}", err);
    }

    #[test]
    fn trace_statement_returns_valid_chrome_json() {
        let db = sample_db();
        let r = db
            .execute("TRACE SELECT tag, COUNT(*) FROM items GROUP BY tag")
            .unwrap();
        assert_eq!(r.schema.field(0).name, "trace");
        let json: String = r
            .rows
            .iter()
            .map(|row| row[0].as_str().unwrap())
            .collect::<Vec<_>>()
            .join("\n");
        let n = crate::trace::validate_chrome_json(&json).expect("valid trace JSON");
        assert!(n > 0, "trace has no events");
        // export_trace returns the same timeline.
        assert_eq!(db.export_trace().unwrap(), json);
    }

    #[test]
    fn dop4_trace_has_spans_from_all_workers() {
        let db = wide_db(2000);
        db.set_parallelism(4);
        db.execute("SELECT k, SUM(v) FROM t GROUP BY k").unwrap();
        let trace = db.last_trace().unwrap();
        let workers = trace.worker_ids();
        for w in 1..=4 {
            assert!(
                workers.contains(&w),
                "no events from worker {w}: {workers:?}"
            );
        }
        let json = trace.to_chrome_json();
        crate::trace::validate_chrome_json(&json).expect("valid dop-4 trace");
        // Per-worker events carry spans (operator next() calls), not just
        // instants.
        for w in 1..=4 {
            assert!(
                trace
                    .events()
                    .iter()
                    .any(|e| e.worker == w && e.dur_ns.is_some()),
                "worker {w} recorded no spans"
            );
        }
    }

    #[test]
    fn profile_extras_key_order_is_deterministic_across_runs() {
        let db = wide_db(2000);
        db.set_parallelism(4);
        let q = "SELECT k, SUM(v) FROM t GROUP BY k";
        // Warm the decode cache so conditional extras (cache hits) appear in
        // both runs rather than only the second.
        db.execute(q).unwrap();
        let keys_of = |p: &Arc<QueryProfile>| -> Vec<Vec<&'static str>> {
            p.nodes()
                .iter()
                .map(|n| n.extras().iter().map(|&(k, _)| k).collect())
                .collect()
        };
        db.execute(q).unwrap();
        let first = keys_of(&db.profile_last_query().unwrap());
        db.execute(q).unwrap();
        let second = keys_of(&db.profile_last_query().unwrap());
        assert_eq!(first, second, "extras key order changed between runs");
        for keys in &first {
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(*keys, sorted, "extras keys not rendered in sorted order");
        }
    }

    #[test]
    fn query_history_is_a_ring_buffer() {
        let db = wide_db(50);
        let cap = vw_common::config::QUERY_HISTORY_DEFAULT;
        for _ in 0..(cap + 10) {
            db.execute("SELECT COUNT(*) FROM t").unwrap();
        }
        let history = db.query_history();
        assert_eq!(history.len(), cap);
        // Oldest entries were evicted: ids are contiguous and end at the
        // latest query.
        let first = history.first().unwrap().id;
        let last = history.last().unwrap().id;
        assert_eq!(last - first + 1, cap as u64);
        assert_eq!(last, (cap + 10) as u64);
    }

    #[test]
    fn set_query_history_resizes_ring_and_counts_evictions() {
        let db = wide_db(50);
        for _ in 0..10 {
            db.execute("SELECT COUNT(*) FROM t").unwrap();
        }
        // Shrinking trims oldest records immediately and counts them.
        db.execute("SET GLOBAL query_history = 4").unwrap();
        let history = db.query_history();
        assert_eq!(history.len(), 4);
        assert_eq!(history.last().unwrap().id, 10);
        let evicted = db
            .metrics()
            .snapshot()
            .into_iter()
            .find(|s| s.name == "history_evicted_total")
            .unwrap()
            .value;
        assert_eq!(evicted, 6.0);
        // The new cap governs subsequent inserts.
        for _ in 0..10 {
            db.execute("SELECT COUNT(*) FROM t").unwrap();
        }
        assert_eq!(db.query_history().len(), 4);
        // Out-of-range values clamp instead of erroring.
        db.execute("SET GLOBAL query_history = 99999999").unwrap();
        assert_eq!(db.config().query_history, QUERY_HISTORY_MAX);
    }

    #[test]
    fn transactional_inserts_then_scan_in_txn() {
        let db = sample_db();
        let mut t = db.begin();
        db.execute_in(&mut t, "INSERT INTO items VALUES (10, 1, 1.0, 'x')")
            .unwrap();
        let r = db.execute_in(&mut t, "SELECT COUNT(*) FROM items").unwrap();
        assert_eq!(r.rows[0][0], Value::I64(6));
        db.abort(t);
        let r = db.execute("SELECT COUNT(*) FROM items").unwrap();
        assert_eq!(r.rows[0][0], Value::I64(5));
    }

    #[test]
    fn session_set_scopes_config_per_session() {
        let db = Arc::new(sample_db());
        let s1 = db.session();
        let s2 = db.session();
        assert_ne!(s1.id(), s2.id());
        assert!(s1.id() > 0, "session ids start above the no-session 0");
        // Plain SET in a session is session-local.
        s1.execute("SET parallelism = 3").unwrap();
        assert_eq!(s1.config().parallelism, 3);
        assert_eq!(s2.config().parallelism, db.config().parallelism);
        assert_ne!(db.config().parallelism, 3);
        // SET LOCAL is explicit about the same thing.
        s2.execute("SET LOCAL vector_size = 512").unwrap();
        assert_eq!(s2.config().vector_size, 512);
        assert_ne!(s1.config().vector_size, 512);
        // SET GLOBAL from inside a session hits the database config but not
        // the other sessions' snapshots.
        s1.execute("SET GLOBAL profiling = off").unwrap();
        assert!(!db.config().profiling);
        assert!(s2.config().profiling);
        // Without a session, SET LOCAL has nothing to scope to.
        let err = db.execute("SET LOCAL parallelism = 2").unwrap_err();
        assert!(err.to_string().contains("requires a session"), "{}", err);
        // Session results match database results.
        let r = s1.execute("SELECT COUNT(*) FROM items").unwrap();
        assert_eq!(r.rows[0][0], Value::I64(5));
    }

    #[test]
    fn session_memory_budget_stays_local_but_global_resizes_ledger() {
        let db = Arc::new(sample_db());
        // The ledger starts at the process default (VW_MEM_BUDGET-sensitive).
        let initial = EngineConfig::default().mem_budget_bytes.map(|b| b as u64);
        let s = db.session();
        s.execute("SET memory_budget = '64KiB'").unwrap();
        assert_eq!(s.config().mem_budget_bytes, Some(64 << 10));
        // The shared admission ledger follows the GLOBAL config only.
        assert_eq!(db.ledger().limit(), initial);
        s.execute("SET GLOBAL memory_budget = '128KiB'").unwrap();
        assert_eq!(db.ledger().limit(), Some(128 << 10));
        assert_eq!(db.config().mem_budget_bytes, Some(128 << 10));
        // Session snapshot still holds its own value.
        assert_eq!(s.config().mem_budget_bytes, Some(64 << 10));
        db.execute("SET memory_budget = unbounded").unwrap();
        assert_eq!(db.ledger().limit(), None);
    }

    #[test]
    fn sessions_isolate_profiles_and_traces() {
        let db = Arc::new(sample_db());
        let s1 = db.session();
        let s2 = db.session();
        s1.execute("SELECT COUNT(*) FROM items").unwrap();
        s2.execute("SELECT id FROM items WHERE qty >= 5").unwrap();
        let p1 = s1.profile_last_query().unwrap();
        let p2 = s2.profile_last_query().unwrap();
        assert_eq!(p1.session, s1.id());
        assert_eq!(p2.session, s2.id());
        assert_ne!(p1.query_id, p2.query_id);
        // Each session's trace is tagged with its own (query, session) pair.
        let t1 = s1.last_trace().unwrap();
        assert_eq!(t1.meta(), Some((p1.query_id, s1.id())));
        let json = s2.export_trace().unwrap();
        assert!(
            json.contains(&format!("\"session\":{}", s2.id())),
            "{}",
            &json[..json.len().min(200)]
        );
        assert_eq!(s1.queries_run(), 1);
        assert_eq!(s2.queries_run(), 1);
    }

    #[test]
    fn vw_queries_attributes_sessions() {
        let db = Arc::new(sample_db());
        let s = db.session();
        db.execute("SELECT COUNT(*) FROM items").unwrap();
        s.execute("SELECT COUNT(*) FROM items").unwrap();
        let r = db
            .execute("SELECT session_id FROM vw_queries ORDER BY query_id")
            .unwrap();
        // First query ran sessionless (0), second under the session's id.
        assert_eq!(r.rows[0][0], Value::I64(0));
        assert_eq!(r.rows[1][0], Value::I64(s.id() as i64));
    }

    #[test]
    fn bounded_budget_queries_pass_admission() {
        let db = wide_db(2000);
        db.execute("SET memory_budget = '256KiB'").unwrap();
        let before = db.admission_stats();
        db.execute("SELECT k, SUM(v) AS s FROM t GROUP BY k ORDER BY s")
            .unwrap();
        let st = db.admission_stats();
        assert_eq!(st.admitted, before.admitted + 1);
        assert_eq!(st.violations, 0);
        assert!(st.peak_granted > 0, "bounded ledger grants real bytes");
        assert!(st.peak_granted <= 256 << 10);
        // All grants returned once the query finished.
        assert_eq!(db.sched.granted_now(), 0);
    }

    // ------------------------------------------------- lifecycle timelines

    #[test]
    fn timeline_phases_sum_to_wall_and_waits_fit_operator_time() {
        for dop in [1usize, 4] {
            let db = wide_db(4000);
            db.execute(&format!("SET GLOBAL parallelism = {dop}"))
                .unwrap();
            db.execute("SET GLOBAL profiling = on").unwrap();
            db.execute("SELECT k, SUM(v) FROM t WHERE v >= 10 GROUP BY k ORDER BY k")
                .unwrap();
            let p = db.profile_last_query().unwrap();
            let wall_ns = p.wall.as_nanos() as u64;
            let sum = p.timeline.total_ns();
            // The execute phase is defined as the remainder, so the phases
            // sum to wall exactly (well inside the 5% criterion).
            assert!(
                sum.abs_diff(wall_ns) * 20 <= wall_ns.max(20),
                "dop {dop}: timeline sums to {sum} ns but wall is {wall_ns} ns"
            );
            // Every phase the statement actually went through is recorded.
            assert!(p.timeline.parse_ns > 0, "parse phase not timed");
            assert!(p.timeline.execute_ns > 0, "execute phase not timed");
            // Per operator: waits are timed strictly inside next() calls, so
            // compute (time - wait) + wait stays within 5% of operator time.
            for node in p.nodes() {
                let time = node.time().as_nanos() as u64;
                let wait = node.wait_ns();
                assert!(
                    wait * 100 <= time.max(1) * 105,
                    "dop {dop}: node {} waited {wait} ns of {time} ns",
                    node.label()
                );
                assert_eq!(
                    node.compute_ns() + wait,
                    time.max(wait),
                    "compute + wait must reassemble operator time"
                );
            }
        }
    }

    #[test]
    fn explain_analyze_prints_timeline_line() {
        let db = sample_db();
        let r = db
            .execute("EXPLAIN ANALYZE SELECT tag, COUNT(*) FROM items GROUP BY tag")
            .unwrap();
        let text: Vec<String> = r
            .rows
            .iter()
            .map(|row| match &row[0] {
                Value::Str(s) => s.clone(),
                other => other.to_string(),
            })
            .collect();
        let tl = text
            .iter()
            .find(|l| l.contains("Timeline:"))
            .expect("EXPLAIN ANALYZE must print a Timeline line");
        for phase in [
            "parse",
            "bind",
            "optimize",
            "admission",
            "checkpoint",
            "execute",
        ] {
            assert!(tl.contains(phase), "Timeline line missing {phase}: {tl}");
        }
    }

    #[test]
    fn vw_queries_timeline_columns_sum_to_wall() {
        let db = sample_db();
        db.execute("SELECT COUNT(*) FROM items").unwrap();
        let r = db
            .execute(
                "SELECT wall_ms, parse_ms, bind_ms, optimize_ms, admission_ms, \
                 checkpoint_ms, execute_ms FROM vw_queries",
            )
            .unwrap();
        let row = r.rows.first().expect("history row");
        let as_f = |v: &Value| match v {
            Value::F64(f) => *f,
            other => panic!("expected F64, got {other}"),
        };
        let wall = as_f(&row[0]);
        let sum: f64 = row[1..].iter().map(as_f).sum();
        assert!(
            (sum - wall).abs() <= wall * 0.05 + 1e-3,
            "phase columns sum to {sum} ms but wall is {wall} ms"
        );
    }

    #[test]
    fn vw_waits_attributes_admission_for_every_query() {
        let db = wide_db(500);
        db.execute("SELECT COUNT(*) FROM t").unwrap();
        let r = db
            .execute(
                "SELECT query_id, wait_class, wait_ms, wait_count FROM vw_waits \
                 WHERE wait_class = 'admission'",
            )
            .unwrap();
        // Admission is timed for every query (even an immediate grant takes
        // measurable ns), so the first query must have a row.
        assert!(
            !r.rows.is_empty(),
            "vw_waits has no admission rows: {:?}",
            r.rows
        );
        assert_eq!(r.rows[0][0], Value::I64(1));
        assert_eq!(r.rows[0][3], Value::I64(1));
    }

    #[test]
    fn trace_includes_lifecycle_phase_spans() {
        let db = sample_db();
        db.execute("TRACE SELECT tag, COUNT(*) FROM items GROUP BY tag")
            .unwrap();
        let trace = db.last_trace().unwrap();
        let events = trace.events();
        for phase in [
            "parse",
            "bind",
            "optimize",
            "admission",
            "checkpoint",
            "execute",
        ] {
            assert!(
                events.iter().any(|e| e.name == phase && e.cat == "phase"),
                "trace missing lifecycle span '{phase}'"
            );
        }
        // Phase spans are back-to-back from the epoch: they must all end
        // before or at wall, and start at the previous phase's end.
        let mut phases: Vec<_> = events.iter().filter(|e| e.cat == "phase").collect();
        phases.sort_by_key(|e| e.ts_ns);
        for w in phases.windows(2) {
            assert_eq!(w[0].ts_ns + w[0].dur_ns.unwrap_or(0), w[1].ts_ns);
        }
    }

    // --------------------------------------------------- structured events

    #[test]
    fn event_log_records_query_start_and_finish() {
        let db = sample_db();
        let before = db.events().len();
        db.execute("SELECT COUNT(*) FROM items").unwrap();
        let events = db.events().snapshot();
        assert!(events.len() > before);
        let start = events
            .iter()
            .find(|e| e.event == "query_start")
            .expect("query_start event");
        assert!(start.detail().contains("SELECT COUNT(*)"));
        let finish = events
            .iter()
            .find(|e| e.event == "query_finish")
            .expect("query_finish event");
        assert_eq!(finish.query_id, start.query_id);
        assert!(finish.detail().contains("rows=1"));
    }

    #[test]
    fn set_event_log_toggles_recording() {
        let db = sample_db();
        db.execute("SET event_log = 'off'").unwrap();
        let before = db.events().len();
        db.execute("SELECT COUNT(*) FROM items").unwrap();
        assert_eq!(db.events().len(), before, "disabled log recorded events");
        db.execute("SET event_log = 'on'").unwrap();
        db.execute("SELECT COUNT(*) FROM items").unwrap();
        assert!(db.events().len() > before, "re-enabled log stayed silent");
    }

    #[test]
    fn slow_query_event_fires_on_log_min_duration() {
        let db = sample_db();
        // 1 ns threshold: everything is slow.
        db.execute("SET GLOBAL log_min_duration = 1").unwrap();
        db.execute("SELECT COUNT(*) FROM items").unwrap();
        let slow: Vec<_> = db
            .events()
            .snapshot()
            .into_iter()
            .filter(|e| e.event == "slow_query")
            .collect();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].severity, Severity::Warn);
        assert!(slow[0].detail().contains("wall_ms="));
        // 'off' disables it again.
        db.execute("SET GLOBAL log_min_duration = 'off'").unwrap();
        db.execute("SELECT COUNT(*) FROM items").unwrap();
        let slow_after = db
            .events()
            .snapshot()
            .into_iter()
            .filter(|e| e.event == "slow_query")
            .count();
        assert_eq!(slow_after, 1, "threshold off must stop slow_query events");
    }

    #[test]
    fn spill_event_fires_under_tiny_budget() {
        let db = wide_db(20_000);
        db.execute("SET GLOBAL memory_budget = '64KiB'").unwrap();
        db.execute("SELECT k, v FROM t ORDER BY v").unwrap();
        let spills: Vec<_> = db
            .events()
            .snapshot()
            .into_iter()
            .filter(|e| e.event == "spill")
            .collect();
        assert!(!spills.is_empty(), "tiny budget must emit a spill event");
        assert!(spills[0].detail().contains("bytes="));
        // The same query shows spill waits in vw_waits when profiled.
        db.execute("SET GLOBAL profiling = on").unwrap();
        db.execute("SELECT k, v FROM t ORDER BY v").unwrap();
        let r = db
            .execute("SELECT wait_class FROM vw_waits WHERE wait_class = 'spill_write'")
            .unwrap();
        assert!(!r.rows.is_empty(), "profiled spill must appear in vw_waits");
    }

    #[test]
    fn vw_log_is_queryable_and_drain_tails() {
        let db = sample_db();
        db.execute("SELECT COUNT(*) FROM items").unwrap();
        let r = db
            .execute("SELECT seq, severity, event, query_id FROM vw_log ORDER BY seq")
            .unwrap();
        assert!(!r.rows.is_empty());
        assert_eq!(r.rows[0][1], Value::Str("info".into()));
        // drain() is a tail -f cursor: first call returns everything so far
        // (including the vw_log query's own events), the next only news.
        let drained = db.drain_events();
        assert!(!drained.is_empty());
        assert!(db.drain_events().is_empty());
        db.execute("SELECT COUNT(*) FROM items").unwrap();
        let tail = db.drain_events();
        assert!(tail.iter().any(|e| e.event == "query_finish"));
    }

    #[test]
    fn checkpoint_emits_event() {
        let db = sample_db();
        db.checkpoint("items").unwrap();
        let ev = db
            .events()
            .snapshot()
            .into_iter()
            .find(|e| e.event == "checkpoint")
            .expect("checkpoint event");
        assert!(ev.detail().contains("table=items"));
    }
}
