//! Per-worker execution trace timelines.
//!
//! When profiling is on, the engine records scheduling-level events — morsel
//! claims, operator `next()` spans, shared-build waits, spill writes — tagged
//! with the worker thread that produced them. The collected timeline exports
//! as chrome://tracing JSON (load it in `chrome://tracing` or Perfetto), which
//! makes dop>1 behavior visually inspectable: work stealing shows up as
//! interleaved morsel claims, a build-once join as one worker building while
//! the others wait.
//!
//! Recording is vector-granular (one event per `next()` call / morsel /
//! spill, never per tuple), so a single mutex-guarded event vector is cheap
//! enough; the collector caps the event count so pathological queries cannot
//! hold unbounded memory, and counts what it drops.

use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default cap on retained events per query trace.
const DEFAULT_EVENT_CAP: usize = 262_144;

/// One timeline event. `dur_ns = Some` renders as a chrome "complete" span
/// (`ph:"X"`), `None` as an instant (`ph:"i"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    pub name: &'static str,
    /// Category: "op" (operator spans), "sched" (morsel claims, build waits),
    /// "spill".
    pub cat: &'static str,
    /// Worker thread id: 0 = the coordinating thread, 1..=dop = Exchange
    /// workers.
    pub worker: usize,
    /// Nanoseconds since the collector's epoch (query start).
    pub ts_ns: u64,
    pub dur_ns: Option<u64>,
    /// Optional single argument, rendered into the event's `args` object
    /// (e.g. `("bytes", 65536)` on a spill write).
    pub arg: Option<(&'static str, u64)>,
}

/// Collects one query's trace events from every worker thread.
pub struct TraceCollector {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    dropped: AtomicU64,
    cap: usize,
    /// (query_id, session) attribution, rendered as chrome `otherData`.
    meta: Mutex<Option<(u64, u64)>>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    pub fn new() -> TraceCollector {
        Self::with_epoch(Instant::now())
    }

    /// Collector whose timestamps are relative to `epoch`. The query path
    /// uses the instant the SQL text arrived, so lifecycle phase spans
    /// (parse/bind/optimize/admission) recorded *before* execution starts
    /// land at their true offsets instead of before time zero.
    pub fn with_epoch(epoch: Instant) -> TraceCollector {
        TraceCollector {
            epoch,
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            cap: DEFAULT_EVENT_CAP,
            meta: Mutex::new(None),
        }
    }

    /// Nanoseconds from the epoch to `t` (0 if `t` precedes the epoch).
    pub fn ns_since_epoch(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// Attribute this trace to a query (and session, 0 = none). Rendered
    /// into the chrome JSON header so a timeline opened in Perfetto says
    /// which query of which session it belongs to.
    pub fn set_meta(&self, query_id: u64, session: u64) {
        *self.meta.lock() = Some((query_id, session));
    }

    /// The (query_id, session) attribution, if set.
    pub fn meta(&self) -> Option<(u64, u64)> {
        *self.meta.lock()
    }

    /// Nanoseconds since the collector was created (query start).
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    pub fn record(&self, ev: TraceEvent) {
        let mut g = self.events.lock();
        if g.len() >= self.cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        g.push(ev);
    }

    /// Events recorded so far, in arrival order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    pub fn event_count(&self) -> usize {
        self.events.lock().len()
    }

    /// Events dropped after hitting the retention cap.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Distinct worker ids that recorded at least one event.
    pub fn worker_ids(&self) -> BTreeSet<usize> {
        self.events.lock().iter().map(|e| e.worker).collect()
    }

    /// Render as chrome://tracing "JSON Array Format" (object form), one
    /// event per line so the output can double as line-oriented rows for the
    /// `TRACE` SQL statement.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events.lock();
        let mut out = String::with_capacity(events.len() * 96 + 64);
        out.push_str("{\"displayTimeUnit\":\"ms\",");
        if let Some((qid, session)) = self.meta() {
            let _ = write!(
                out,
                "\"otherData\":{{\"query_id\":{},\"session\":{}}},",
                qid, session
            );
        }
        out.push_str("\"traceEvents\":[\n");
        for (i, e) in events.iter().enumerate() {
            let ts = e.ts_ns as f64 / 1e3;
            match e.dur_ns {
                Some(d) => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}",
                        e.name,
                        e.cat,
                        ts,
                        d as f64 / 1e3,
                        e.worker
                    );
                }
                None => {
                    let _ = write!(
                        out,
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":1,\"tid\":{}",
                        e.name, e.cat, ts, e.worker
                    );
                }
            }
            if let Some((k, v)) = e.arg {
                let _ = write!(out, ",\"args\":{{\"{}\":{}}}", k, v);
            }
            out.push('}');
            if i + 1 < events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]}");
        out
    }
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("events", &self.event_count())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// A worker's handle into the query trace: the shared collector plus the
/// recording thread's worker id. Cloned into operators at compile time;
/// Exchange re-tags the clone it hands each worker thread.
#[derive(Clone, Debug)]
pub struct TraceHandle {
    collector: Arc<TraceCollector>,
    worker: usize,
}

impl TraceHandle {
    pub fn new(collector: Arc<TraceCollector>, worker: usize) -> TraceHandle {
        TraceHandle { collector, worker }
    }

    /// The same collector, tagged with a different worker id.
    pub fn with_worker(&self, worker: usize) -> TraceHandle {
        TraceHandle {
            collector: self.collector.clone(),
            worker,
        }
    }

    pub fn worker(&self) -> usize {
        self.worker
    }

    pub fn collector(&self) -> &Arc<TraceCollector> {
        &self.collector
    }

    /// Timestamp to pass back into [`TraceHandle::span`] when the work ends.
    #[inline]
    pub fn start(&self) -> u64 {
        self.collector.now_ns()
    }

    /// Record a complete span running from `start_ns` (from [`Self::start`])
    /// until now.
    pub fn span(&self, name: &'static str, cat: &'static str, start_ns: u64) {
        self.span_arg(name, cat, start_ns, None)
    }

    pub fn span_arg(
        &self,
        name: &'static str,
        cat: &'static str,
        start_ns: u64,
        arg: Option<(&'static str, u64)>,
    ) {
        let now = self.collector.now_ns();
        self.collector.record(TraceEvent {
            name,
            cat,
            worker: self.worker,
            ts_ns: start_ns,
            dur_ns: Some(now.saturating_sub(start_ns)),
            arg,
        });
    }

    /// Record a span with an explicit start offset and duration (used for
    /// lifecycle phase spans reconstructed from timeline marks).
    pub fn span_at(&self, name: &'static str, cat: &'static str, ts_ns: u64, dur_ns: u64) {
        self.collector.record(TraceEvent {
            name,
            cat,
            worker: self.worker,
            ts_ns,
            dur_ns: Some(dur_ns),
            arg: None,
        });
    }

    /// Record an instant event (a point in time, no duration).
    pub fn instant(&self, name: &'static str, cat: &'static str, arg: Option<(&'static str, u64)>) {
        self.collector.record(TraceEvent {
            name,
            cat,
            worker: self.worker,
            ts_ns: self.collector.now_ns(),
            dur_ns: None,
            arg,
        });
    }
}

/// Minimal JSON syntax validation (no external deps in this workspace): used
/// by tests and the CI smoke example to assert exported traces parse. Returns
/// the number of objects in the top-level `traceEvents` array.
pub fn validate_chrome_json(s: &str) -> Result<usize, String> {
    let mut p = JsonParser {
        b: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing bytes at offset {}", p.i));
    }
    // Count events: find "traceEvents" array objects. Cheap second pass over
    // the (now known-valid) document.
    let needle = "\"traceEvents\"";
    let start = s
        .find(needle)
        .ok_or_else(|| "missing traceEvents key".to_string())?;
    let rest = &s[start + needle.len()..];
    let open = rest
        .find('[')
        .ok_or_else(|| "traceEvents is not an array".to_string())?;
    let mut depth = 0i32;
    let mut objects = 0usize;
    let mut in_str = false;
    let mut esc = false;
    for c in rest[open..].chars() {
        if in_str {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                if depth == 1 {
                    objects += 1;
                }
                depth += 1;
            }
            '}' => depth -= 1,
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
    }
    Ok(objects)
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found {:?}",
                c as char,
                self.i,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at offset {}", other, self.i)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("bad object separator {:?} at {}", other, self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("bad array separator {:?} at {}", other, self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    // Skip the escaped character (sufficient for validation
                    // of engine-generated names, which are ASCII).
                    self.i += 1;
                }
                _ => {}
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.i += 1;
            } else {
                break;
            }
        }
        if self.i == start {
            Err(format!("bad number at {}", start))
        } else {
            Ok(())
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at {}", self.i))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants_round_trip() {
        let c = Arc::new(TraceCollector::new());
        let h = TraceHandle::new(c.clone(), 0);
        let t0 = h.start();
        h.span("Scan.next", "op", t0);
        h.with_worker(3)
            .instant("morsel", "sched", Some(("unit", 7)));
        let events = c.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "Scan.next");
        assert_eq!(events[0].worker, 0);
        assert!(events[0].dur_ns.is_some());
        assert_eq!(events[1].worker, 3);
        assert_eq!(events[1].dur_ns, None);
        assert_eq!(events[1].arg, Some(("unit", 7)));
        assert_eq!(c.worker_ids().into_iter().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn chrome_json_is_valid_and_counts_events() {
        let c = Arc::new(TraceCollector::new());
        let h = TraceHandle::new(c.clone(), 1);
        for i in 0..5 {
            let t0 = h.start();
            h.span_arg("op.next", "op", t0, Some(("rows", i)));
        }
        h.instant("spill", "spill", Some(("bytes", 4096)));
        let json = c.to_chrome_json();
        assert_eq!(validate_chrome_json(&json).unwrap(), 6);
        // One event per line: rows of the TRACE statement reassemble the doc.
        assert!(json.lines().count() >= 8);
    }

    #[test]
    fn empty_trace_still_valid_json() {
        let c = TraceCollector::new();
        assert_eq!(validate_chrome_json(&c.to_chrome_json()).unwrap(), 0);
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_json("{\"traceEvents\":[").is_err());
        assert!(validate_chrome_json("{\"traceEvents\":[]}{}").is_err());
        assert!(validate_chrome_json("not json").is_err());
    }

    #[test]
    fn cap_drops_and_counts() {
        let c = TraceCollector {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            cap: 2,
            meta: Mutex::new(None),
        };
        let c = Arc::new(c);
        let h = TraceHandle::new(c.clone(), 0);
        for _ in 0..5 {
            h.instant("e", "op", None);
        }
        assert_eq!(c.event_count(), 2);
        assert_eq!(c.dropped(), 3);
    }
}
