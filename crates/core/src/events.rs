//! Structured event log: a bounded ring of typed engine events.
//!
//! The metrics registry answers "how much"; the trace answers "where did
//! this one query's time go"; the event log answers "what *happened*" —
//! queries starting and finishing, a query running past `log_min_duration`,
//! operators spilling, admission stalls, adaptive fallbacks, checkpoints.
//! Events are typed (`&'static str` names drawn from a fixed set), carry a
//! severity and key-value fields, and land in a fixed-capacity ring with
//! monotonically increasing sequence numbers — old events are dropped (and
//! counted), never reallocated.
//!
//! Recording is one short mutex hold per *event*, and events are per-query
//! (never per vector), so the log is always-on by default; `VW_LOG=off`
//! short-circuits `emit` before any allocation or locking.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Event severity (rendered lower-case in `vw_log`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Info,
    Warn,
}

impl Severity {
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
        }
    }
}

/// One structured event.
#[derive(Debug, Clone)]
pub struct LogEvent {
    /// Monotonically increasing sequence number (never reused; gaps only
    /// appear when the ring dropped events between two reads).
    pub seq: u64,
    /// Milliseconds since the database opened.
    pub ts_ms: f64,
    pub severity: Severity,
    /// Event type, from the fixed set: `query_start`, `query_finish`,
    /// `slow_query`, `spill`, `admission_wait`, `agg_fallback`, `agg_veto`,
    /// `plan_correction`, `checkpoint`, `reorganize`.
    pub event: &'static str,
    /// Query the event belongs to (0 = not query-scoped).
    pub query_id: u64,
    /// Session that ran the query (0 = none).
    pub session: u64,
    /// Key-value detail fields, in emission order.
    pub fields: Vec<(&'static str, String)>,
}

impl LogEvent {
    /// Render the fields as `k=v k=v` (the `detail` column of `vw_log`).
    pub fn detail(&self) -> String {
        let mut s = String::new();
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s
    }
}

struct Ring {
    buf: VecDeque<LogEvent>,
    next_seq: u64,
    dropped: u64,
}

/// Bounded, lock-light event ring shared by every session of one database.
pub struct EventLog {
    ring: Mutex<Ring>,
    cap: usize,
    epoch: Instant,
    enabled: AtomicBool,
    /// Internal cursor for the `tail -f`-style [`EventLog::drain`].
    drain_cursor: AtomicU64,
}

/// Default event-ring capacity.
pub const EVENT_LOG_CAP: usize = 4096;

impl EventLog {
    pub fn new(cap: usize, enabled: bool) -> EventLog {
        EventLog {
            ring: Mutex::new(Ring {
                buf: VecDeque::with_capacity(cap.min(EVENT_LOG_CAP)),
                next_seq: 1,
                dropped: 0,
            }),
            cap: cap.max(1),
            epoch: Instant::now(),
            enabled: AtomicBool::new(enabled),
            drain_cursor: AtomicU64::new(0),
        }
    }

    /// Whether events are being recorded (`VW_LOG=off` starts the database
    /// with this off; `SET event_log` flips it at runtime).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Toggle recording. Disabling keeps already-recorded events readable.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Append one event; returns its sequence number (0 when disabled).
    pub fn emit(
        &self,
        severity: Severity,
        event: &'static str,
        query_id: u64,
        session: u64,
        fields: Vec<(&'static str, String)>,
    ) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let ts_ms = self.epoch.elapsed().as_secs_f64() * 1e3;
        let mut g = self.ring.lock();
        let seq = g.next_seq;
        g.next_seq += 1;
        if g.buf.len() >= self.cap {
            g.buf.pop_front();
            g.dropped += 1;
        }
        g.buf.push_back(LogEvent {
            seq,
            ts_ms,
            severity,
            event,
            query_id,
            session,
            fields,
        });
        seq
    }

    /// All retained events, oldest first.
    pub fn snapshot(&self) -> Vec<LogEvent> {
        self.ring.lock().buf.iter().cloned().collect()
    }

    /// Events with `seq > after`, oldest first (resumable tail).
    pub fn events_since(&self, after: u64) -> Vec<LogEvent> {
        self.ring
            .lock()
            .buf
            .iter()
            .filter(|e| e.seq > after)
            .cloned()
            .collect()
    }

    /// `tail -f`-style drain: events appended since the previous `drain`
    /// call. Events evicted from the ring between calls are lost (visible
    /// as a gap in sequence numbers and in [`EventLog::dropped`]).
    pub fn drain(&self) -> Vec<LogEvent> {
        let g = self.ring.lock();
        let after = self.drain_cursor.load(Ordering::Relaxed);
        let out: Vec<LogEvent> = g.buf.iter().filter(|e| e.seq > after).cloned().collect();
        self.drain_cursor.store(g.next_seq - 1, Ordering::Relaxed);
        out
    }

    /// Events evicted by the ring so far.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(log: &EventLog, name: &'static str) -> u64 {
        log.emit(Severity::Info, name, 1, 0, vec![("k", "v".to_string())])
    }

    #[test]
    fn emit_and_snapshot() {
        let log = EventLog::new(8, true);
        ev(&log, "query_start");
        ev(&log, "query_finish");
        let s = log.snapshot();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].seq, 1);
        assert_eq!(s[1].seq, 2);
        assert_eq!(s[0].event, "query_start");
        assert_eq!(s[0].detail(), "k=v");
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn ring_wraparound_keeps_order_and_counts_drops() {
        let log = EventLog::new(4, true);
        for _ in 0..10 {
            ev(&log, "spill");
        }
        let s = log.snapshot();
        // Last 4 of 10, strictly ordered, seq never reused.
        assert_eq!(s.len(), 4);
        let seqs: Vec<u64> = s.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10]);
        assert!(s.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
        assert_eq!(log.dropped(), 6);
        // events_since respects the cursor across the wrap.
        assert_eq!(log.events_since(8).len(), 2);
        assert_eq!(log.events_since(10).len(), 0);
    }

    #[test]
    fn drain_is_tail_f() {
        let log = EventLog::new(16, true);
        ev(&log, "query_start");
        ev(&log, "query_finish");
        assert_eq!(log.drain().len(), 2);
        assert_eq!(log.drain().len(), 0, "second drain sees nothing new");
        ev(&log, "checkpoint");
        let d = log.drain();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].event, "checkpoint");
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = EventLog::new(16, false);
        assert_eq!(ev(&log, "query_start"), 0);
        assert!(log.is_empty());
        assert_eq!(log.drain().len(), 0);
    }
}
