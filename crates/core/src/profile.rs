//! Per-operator vectorized profiling.
//!
//! X100's observation (§I-A/§I-B of the paper) is that vector-at-a-time
//! execution makes detailed profiling essentially free: one timestamp pair
//! and a handful of counter increments per `next()` call are amortized over
//! a ~1K-tuple vector, so the engine can keep profiling always-on and expose
//! real per-operator breakdowns (`EXPLAIN ANALYZE`) instead of sampling.
//!
//! The design mirrors the plan: [`OpProfile`] is a tree of atomic counters
//! with exactly the shape of the optimized [`LogicalPlan`]. The compiler
//! wraps every physical operator in a [`ProfiledOp`] that records into the
//! profile node for its plan position. Exchange workers compile *clones* of
//! the same plan, but their `ExecContext` carries `Arc`s to the *same*
//! profile nodes — so dop>1 runs merge per plan node (atomic adds), never
//! per thread, and the profile of a parallel scan reports the table's true
//! cardinality rather than `dop ×` copies of it.

use crate::batch::Batch;
use crate::operators::{BoxedOperator, Operator};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vw_common::waits::{WaitSnapshot, WaitStats, ALL_WAIT_CLASSES};
use vw_common::{Result, Schema};
use vw_plan::LogicalPlan;

/// Profile counters for one plan node, shared (via `Arc`) by every worker
/// thread executing an instance of that node. All counters are monotonic
/// sums, so relaxed atomics are sufficient: the reader only looks after the
/// query has completed (workers joined).
pub struct OpProfile {
    label: String,
    op_name: &'static str,
    children: Vec<Arc<OpProfile>>,
    time_ns: AtomicU64,
    next_calls: AtomicU64,
    batches: AtomicU64,
    rows_out: AtomicU64,
    /// Operator-specific counters (morsels claimed, groups pruned, build
    /// reuse, …), flushed once per operator instance at end-of-stream.
    extras: Mutex<BTreeMap<&'static str, u64>>,
    /// Wait-state attribution for this node: blocked time inside `next()`
    /// (block I/O, decode, build waits, spill I/O, morsel starvation),
    /// shared by every worker instance like the counters above. Subtracting
    /// [`OpProfile::wait_ns`] from the inclusive time yields compute time.
    waits: Arc<WaitStats>,
}

impl OpProfile {
    /// Build a zeroed profile tree with the same shape as `plan`.
    pub fn from_plan(plan: &LogicalPlan) -> Arc<OpProfile> {
        Arc::new(OpProfile {
            label: plan.describe(),
            op_name: plan.op_name(),
            children: plan.children().into_iter().map(Self::from_plan).collect(),
            time_ns: AtomicU64::new(0),
            next_calls: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            rows_out: AtomicU64::new(0),
            extras: Mutex::new(BTreeMap::new()),
            waits: Arc::new(WaitStats::new()),
        })
    }

    /// The plan node's one-line description.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Short operator name ("Scan", "Join", …).
    pub fn op_name(&self) -> &'static str {
        self.op_name
    }

    pub fn children(&self) -> &[Arc<OpProfile>] {
        &self.children
    }

    /// Child profile node by plan-child index (panics if out of range: the
    /// profile tree is always built from the very plan being compiled).
    pub fn child(&self, i: usize) -> &Arc<OpProfile> {
        &self.children[i]
    }

    /// Total wall time spent inside this operator's `next()` calls,
    /// including its children (inclusive time). Summed across workers, so at
    /// dop>1 this can legitimately exceed the query's wall time.
    pub fn time(&self) -> Duration {
        Duration::from_nanos(self.time_ns.load(Ordering::Relaxed))
    }

    /// Exclusive time: inclusive time minus the children's inclusive time.
    pub fn self_time(&self) -> Duration {
        let kids: u64 = self
            .children
            .iter()
            .map(|c| c.time_ns.load(Ordering::Relaxed))
            .sum();
        Duration::from_nanos(self.time_ns.load(Ordering::Relaxed).saturating_sub(kids))
    }

    pub fn next_calls(&self) -> u64 {
        self.next_calls.load(Ordering::Relaxed)
    }

    /// Vectors (non-empty batches) produced.
    pub fn vectors(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    pub fn rows_out(&self) -> u64 {
        self.rows_out.load(Ordering::Relaxed)
    }

    /// Rows consumed = sum of the children's rows produced.
    pub fn rows_in(&self) -> u64 {
        self.children.iter().map(|c| c.rows_out()).sum()
    }

    /// Output/input row ratio as a percentage, if the node has input.
    pub fn selectivity(&self) -> Option<f64> {
        let rows_in = self.rows_in();
        (rows_in > 0).then(|| self.rows_out() as f64 * 100.0 / rows_in as f64)
    }

    /// Operator-specific counters, sorted by name.
    pub fn extras(&self) -> Vec<(&'static str, u64)> {
        self.extras.lock().iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// This node's wait accumulator (handed to operators at compile time).
    pub fn waits(&self) -> &Arc<WaitStats> {
        &self.waits
    }

    /// Total blocked nanoseconds inside this node's `next()` calls.
    pub fn wait_ns(&self) -> u64 {
        self.waits.total_ns()
    }

    /// Compute nanoseconds: inclusive time minus attributed waits. The two
    /// always satisfy `compute + wait == time` by construction (waits are
    /// timed strictly inside `next()` calls).
    pub fn compute_ns(&self) -> u64 {
        self.time_ns
            .load(Ordering::Relaxed)
            .saturating_sub(self.wait_ns())
    }

    /// Operator extras merged with the node's nonzero `wait_<class>_ns`
    /// counters, in one deterministic sorted order (for `EXPLAIN ANALYZE`
    /// and `vw_operator_stats`).
    pub fn extras_full(&self) -> Vec<(&'static str, u64)> {
        let mut m: BTreeMap<&'static str, u64> =
            self.extras.lock().iter().map(|(k, v)| (*k, *v)).collect();
        for c in ALL_WAIT_CLASSES {
            let ns = self.waits.ns(c);
            if ns > 0 {
                *m.entry(c.extra_key()).or_insert(0) += ns;
            }
        }
        m.into_iter().collect()
    }

    pub(crate) fn record_next(&self, elapsed: Duration, produced: Option<usize>) {
        self.time_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.next_calls.fetch_add(1, Ordering::Relaxed);
        if let Some(rows) = produced {
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.rows_out.fetch_add(rows as u64, Ordering::Relaxed);
        }
    }

    pub(crate) fn add_extra(&self, key: &'static str, n: u64) {
        *self.extras.lock().entry(key).or_insert(0) += n;
    }

    /// Roll this subtree's waits up into one per-class snapshot (used to
    /// build the query-level attribution for `vw_waits`).
    pub fn rollup_waits(&self) -> WaitSnapshot {
        let mut s = self.waits.snapshot();
        for c in &self.children {
            s.merge(&c.rollup_waits());
        }
        s
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&self.label);
        let ms = self.time().as_secs_f64() * 1e3;
        out.push_str(&format!(
            "  [{:.3} ms, {} vec, {} rows",
            ms,
            self.vectors(),
            self.rows_out()
        ));
        if let Some(pct) = self.selectivity() {
            out.push_str(&format!(", sel={:.1}%", pct));
        }
        for (k, v) in self.extras_full() {
            out.push_str(&format!(", {}={}", k, v));
        }
        out.push_str("]\n");
        for c in &self.children {
            c.render_into(depth + 1, out);
        }
    }
}

/// Transparent wrapper that times `next()` calls and counts vectors/rows
/// into the [`OpProfile`] node for this operator's plan position. At
/// end-of-stream (or on error) it flushes the wrapped operator's
/// [`Operator::profile_extras`] exactly once.
///
/// When a trace handle or a latency histogram is attached, each `next()`
/// additionally records a per-worker timeline span / a histogram sample —
/// both amortized over the vector like the timing itself.
pub struct ProfiledOp {
    inner: BoxedOperator,
    node: Arc<OpProfile>,
    flushed: bool,
    trace: Option<crate::trace::TraceHandle>,
    hist: Option<Arc<vw_common::Histogram>>,
}

impl ProfiledOp {
    pub fn new(inner: BoxedOperator, node: Arc<OpProfile>) -> ProfiledOp {
        ProfiledOp {
            inner,
            node,
            flushed: false,
            trace: None,
            hist: None,
        }
    }

    /// Record a timeline span per `next()` call into the query trace.
    pub fn set_trace(&mut self, trace: crate::trace::TraceHandle) {
        self.trace = Some(trace);
    }

    /// Record each `next()` duration into a registry latency histogram.
    pub fn set_histogram(&mut self, hist: Arc<vw_common::Histogram>) {
        self.hist = Some(hist);
    }
}

impl Operator for ProfiledOp {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn next(&mut self) -> Result<Option<Batch>> {
        let span = self.trace.as_ref().map(|t| t.start());
        let t0 = Instant::now();
        let r = self.inner.next();
        let elapsed = t0.elapsed();
        let produced = match &r {
            Ok(Some(b)) => Some(b.len()),
            _ => None,
        };
        self.node.record_next(elapsed, produced);
        if let Some(h) = &self.hist {
            h.record(elapsed.as_nanos() as u64);
        }
        if let (Some(t), Some(start)) = (&self.trace, span) {
            t.span_arg(
                self.node.op_name(),
                "op",
                start,
                produced.map(|rows| ("rows", rows as u64)),
            );
        }
        if !self.flushed && !matches!(r, Ok(Some(_))) {
            self.flushed = true;
            for (k, v) in self.inner.profile_extras() {
                self.node.add_extra(k, v);
            }
        }
        r
    }
}

impl Drop for ProfiledOp {
    fn drop(&mut self) {
        // Operators that are dropped before reaching end-of-stream (LIMIT
        // cut-off, error unwind) still contribute their extras.
        if !self.flushed {
            self.flushed = true;
            for (k, v) in self.inner.profile_extras() {
                self.node.add_extra(k, v);
            }
        }
    }
}

/// Per-query lifecycle timeline: contiguous phases from the moment the SQL
/// text arrived to the last result row. Each phase is measured as the delta
/// between consecutive `Instant` marks on the query path, so the phases sum
/// to the recorded wall time *by construction* (no sampling, no gaps).
///
/// Queries entering through the plan API (no SQL text) have zero
/// parse/bind/optimize phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Lexing + parsing the SQL text.
    pub parse_ns: u64,
    /// Binding names / building the logical plan.
    pub bind_ns: u64,
    /// Rewrites, ordering, feedback corrections, parallelization.
    pub optimize_ns: u64,
    /// Blocked in the admission controller before execution could start.
    pub admission_ns: u64,
    /// Blocked behind a checkpoint/reorganize (storage-lock interference).
    pub checkpoint_ns: u64,
    /// Compile + execute + drain (everything after admission).
    pub execute_ns: u64,
}

impl Timeline {
    /// Phases in lifecycle order, with stable names (used by the
    /// `Timeline:` render line, chrome-trace spans and `vw_queries`).
    pub fn phases(&self) -> [(&'static str, u64); 6] {
        [
            ("parse", self.parse_ns),
            ("bind", self.bind_ns),
            ("optimize", self.optimize_ns),
            ("admission", self.admission_ns),
            ("checkpoint", self.checkpoint_ns),
            ("execute", self.execute_ns),
        ]
    }

    /// Sum of all phases (equals wall time by construction).
    pub fn total_ns(&self) -> u64 {
        self.phases().iter().map(|(_, ns)| ns).sum()
    }

    /// One-line rendering for `EXPLAIN ANALYZE`. Phases that are zero are
    /// still shown — a 0.000 admission phase is information, not noise.
    pub fn render(&self) -> String {
        let mut s = String::from("Timeline:");
        for (i, (name, ns)) in self.phases().into_iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(" {} {:.3} ms", name, ns as f64 / 1e6));
        }
        s
    }
}

/// The complete profile of one executed query: the per-operator tree plus
/// query-wide execution and I/O counters.
#[derive(Clone)]
pub struct QueryProfile {
    /// Per-operator counters, mirroring the optimized plan.
    pub root: Arc<OpProfile>,
    /// End-to-end wall time (compile + execute + drain).
    pub wall: Duration,
    /// Degree of parallelism the query ran at.
    pub dop: usize,
    /// The query's id in the history ring (`vw_queries.query_id`).
    pub query_id: u64,
    /// Id of the session that ran the query (0 = no session).
    pub session: u64,
    /// Morsels claimed from shared scan queues (0 for serial plans).
    pub morsels_claimed: usize,
    /// Hash-join builds actually executed (shared builds count once).
    pub builds_executed: usize,
    /// Simulated-disk I/O attributable to this query.
    pub disk: vw_storage::DiskStats,
    /// Buffer-manager counters for this query, when an ABM is attached to
    /// the database (cooperative-scan workloads).
    pub buffer: Option<vw_bufman::AbmStats>,
    /// Decode-cache counters for this query (compressed execution), when the
    /// session shares a decoded-slice cache.
    pub decode: Option<vw_bufman::DecodeCacheStats>,
    /// Execution-memory accounting: budget, high-water mark and spill volume
    /// for this query (all operators, all workers).
    pub mem: crate::mem::MemStats,
    /// History-learned cardinality corrections the optimizer applied to this
    /// plan, one human-readable entry per corrected node (adaptivity on).
    pub plan_feedback: Option<String>,
    /// Lifecycle phase timeline (parse → bind → optimize → admission →
    /// checkpoint-interference → execute); phases sum to `wall`.
    pub timeline: Timeline,
    /// Query-wide wait attribution: all operator waits rolled up per class,
    /// plus the admission wait (which happens before any operator exists).
    pub waits: WaitSnapshot,
}

impl QueryProfile {
    /// Render the annotated plan tree, `EXPLAIN ANALYZE` style.
    pub fn render(&self) -> String {
        let mut s = format!(
            "Query: {:.3} ms, dop={}, {} rows, id={}",
            self.wall.as_secs_f64() * 1e3,
            self.dop,
            self.root.rows_out(),
            self.query_id
        );
        if self.session != 0 {
            s.push_str(&format!(", session={}", self.session));
        }
        if self.morsels_claimed > 0 || self.builds_executed > 0 {
            s.push_str(&format!(
                ", morsels={}, builds={}",
                self.morsels_claimed, self.builds_executed
            ));
        }
        s.push('\n');
        s.push_str(&self.timeline.render());
        s.push('\n');
        if self.waits.total_ns() > 0 {
            s.push_str("Waits:");
            let mut first = true;
            for c in ALL_WAIT_CLASSES {
                let ns = self.waits.ns(c);
                if ns == 0 {
                    continue;
                }
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str(&format!(
                    " {} {:.3} ms ({}x)",
                    c.name(),
                    ns as f64 / 1e6,
                    self.waits.count(c)
                ));
            }
            s.push('\n');
        }
        if self.disk.reads > 0 || self.disk.writes > 0 || self.disk.bytes_skipped > 0 {
            s.push_str(&format!(
                "I/O: {} reads ({} KiB), {} writes, {:.3} ms virtual read time",
                self.disk.reads,
                self.disk.bytes_read / 1024,
                self.disk.writes,
                self.disk.virtual_read_ns as f64 / 1e6
            ));
            if self.disk.bytes_skipped > 0 {
                s.push_str(&format!(", {} KiB skipped", self.disk.bytes_skipped / 1024));
            }
            s.push('\n');
        }
        if let Some(b) = &self.buffer {
            s.push_str(&format!(
                "Buffer: {} loads, {} shared hits\n",
                b.loads, b.shared_hits
            ));
        }
        if let Some(d) = &self.decode {
            if d.hits + d.misses > 0 {
                s.push_str(&format!(
                    "Decode-cache: {} hits, {} misses ({:.1}% hit rate), {} KiB resident\n",
                    d.hits,
                    d.misses,
                    d.hit_rate().unwrap_or(0.0) * 100.0,
                    d.resident_bytes / 1024
                ));
            }
        }
        if self.mem.peak > 0 || self.mem.limit.is_some() {
            let budget = match self.mem.limit {
                Some(l) => format!("{} KiB budget", l / 1024),
                None => "unbounded".to_string(),
            };
            s.push_str(&format!(
                "Memory: {} KiB peak ({})",
                self.mem.peak / 1024,
                budget
            ));
            if self.mem.spill_events > 0 {
                s.push_str(&format!(
                    ", spilled {} KiB in {} partitions/runs",
                    self.mem.spill_bytes / 1024,
                    self.mem.spill_events
                ));
            }
            s.push('\n');
        }
        if let Some(f) = &self.plan_feedback {
            s.push_str(&format!("vw_plan_feedback: {}\n", f));
        }
        self.root.render_into(0, &mut s);
        s
    }

    /// Flat preorder walk of the operator tree (for tabular dumps).
    pub fn nodes(&self) -> Vec<Arc<OpProfile>> {
        fn walk(n: &Arc<OpProfile>, out: &mut Vec<Arc<OpProfile>>) {
            out.push(n.clone());
            for c in n.children() {
                walk(c, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::BatchSource;
    use vw_common::{DataType, Field, Value};

    fn src(n: i64) -> (BoxedOperator, Schema) {
        let schema = Schema::new(vec![Field::new("x", DataType::I64)]);
        let rows: Vec<Vec<Value>> = (0..n).map(|i| vec![Value::I64(i)]).collect();
        (
            Box::new(BatchSource::from_rows(schema.clone(), &rows, 4).unwrap()),
            schema,
        )
    }

    #[test]
    fn profiled_op_counts_vectors_and_rows() {
        let plan = LogicalPlan::Scan {
            table: "t".into(),
            table_id: vw_common::TableId::new(1),
            schema: Schema::new(vec![Field::new("x", DataType::I64)]),
            projection: None,
            filter: None,
        };
        let node = OpProfile::from_plan(&plan);
        let (op, _) = src(10);
        let mut p = ProfiledOp::new(op, node.clone());
        let mut total = 0usize;
        while let Some(b) = p.next().unwrap() {
            total += b.len();
        }
        assert_eq!(total, 10);
        assert_eq!(node.rows_out(), 10);
        assert_eq!(node.vectors(), 3); // 4 + 4 + 2
        assert_eq!(node.next_calls(), 4); // 3 batches + end-of-stream
        assert!(node.selectivity().is_none()); // leaf: no input rows
    }

    #[test]
    fn merge_is_per_node_across_threads() {
        let plan = LogicalPlan::Scan {
            table: "t".into(),
            table_id: vw_common::TableId::new(1),
            schema: Schema::new(vec![Field::new("x", DataType::I64)]),
            projection: None,
            filter: None,
        };
        let node = OpProfile::from_plan(&plan);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let node = node.clone();
                s.spawn(move || {
                    let (op, _) = src(25);
                    let mut p = ProfiledOp::new(op, node);
                    while p.next().unwrap().is_some() {}
                });
            }
        });
        // 4 workers × 25 rows merge into one node's counters.
        assert_eq!(node.rows_out(), 100);
        assert_eq!(node.vectors(), 4 * 7);
    }
}
