//! The Positional Delta Tree structure itself.
//!
//! Entries are kept sorted by `(sid, seq)`; a rebuild pass precomputes, for
//! every entry, the RID it produces/affects and the cumulative insert-delete
//! balance before it. Both RID→location and SID→RID translation are then a
//! binary search — the role the counting inner nodes play in the paper's
//! B-tree formulation, flattened onto arrays since PDTs are rebuilt in bulk
//! at commit boundaries in this system.
//!
//! Key ordering facts the lookups rely on (invariants checked in tests):
//!
//! * per-entry RIDs are non-decreasing in entry order,
//! * within a run of equal RIDs, `Delete` entries form a prefix: a deleted
//!   position's "would-be" RID is reused by whatever follows it,
//! * at most one tuple entry (`Delete` or `Modify`) exists per SID, ordered
//!   after all inserts at that SID.

use crate::entry::{next_tag, Change, Entry, TUPLE_SEQ};
use std::collections::BTreeMap;
use vw_common::{Result, Value, VwError};

/// What occupies a given RID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// The tuple is a PDT insert; payload is at this entry index.
    Inserted(usize),
    /// The tuple is stable tuple `sid`, possibly patched by a modify entry.
    Stable { sid: u64, modify: Option<usize> },
}

/// A Positional Delta Tree over a stable image of `stable_rows` tuples.
#[derive(Debug, Clone, Default)]
pub struct Pdt {
    stable_rows: u64,
    entries: Vec<Entry>,
    /// rid of entry i (for a delete: the RID its stable tuple would occupy).
    rids: Vec<u64>,
    /// cumulative insert-delete balance of entries[0..i].
    delta_before: Vec<i64>,
    total_delta: i64,
}

impl Pdt {
    /// An empty PDT over a stable image of `stable_rows` tuples.
    pub fn new(stable_rows: u64) -> Pdt {
        Pdt {
            stable_rows,
            ..Default::default()
        }
    }

    /// Build from pre-sorted entries (deserialization, propagate).
    pub fn from_entries(stable_rows: u64, entries: Vec<Entry>) -> Result<Pdt> {
        let mut pdt = Pdt {
            stable_rows,
            entries,
            rids: Vec::new(),
            delta_before: Vec::new(),
            total_delta: 0,
        };
        pdt.validate()?;
        pdt.rebuild();
        Ok(pdt)
    }

    pub fn stable_rows(&self) -> u64 {
        self.stable_rows
    }

    /// Rows in the current logical image.
    pub fn current_rows(&self) -> u64 {
        (self.stable_rows as i64 + self.total_delta) as u64
    }

    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn insert_count(&self) -> usize {
        self.entries.iter().filter(|e| e.change.is_insert()).count()
    }

    pub fn delete_count(&self) -> usize {
        self.entries.iter().filter(|e| e.change.is_delete()).count()
    }

    pub fn modify_count(&self) -> usize {
        self.entries.iter().filter(|e| e.change.is_modify()).count()
    }

    /// The row payload of an `Inserted` location.
    pub fn inserted_row(&self, entry_idx: usize) -> &[Value] {
        match &self.entries[entry_idx].change {
            Change::Insert { row, .. } => row,
            _ => panic!("entry {} is not an insert", entry_idx),
        }
    }

    /// The column patches of a modify entry.
    pub fn mods_of(&self, entry_idx: usize) -> &BTreeMap<u32, Value> {
        match &self.entries[entry_idx].change {
            Change::Modify(m) => m,
            _ => panic!("entry {} is not a modify", entry_idx),
        }
    }

    fn rebuild(&mut self) {
        self.rids.clear();
        self.delta_before.clear();
        self.rids.reserve(self.entries.len());
        self.delta_before.reserve(self.entries.len());
        let mut delta = 0i64;
        for e in &self.entries {
            self.delta_before.push(delta);
            self.rids.push((e.sid as i64 + delta) as u64);
            delta += e.change.delta();
        }
        self.total_delta = delta;
    }

    fn validate(&self) -> Result<()> {
        let mut prev_key: Option<(u64, u32)> = None;
        for e in &self.entries {
            let k = e.key();
            if let Some(p) = prev_key {
                if k <= p {
                    return Err(VwError::Invalid(format!(
                        "PDT entries out of order at sid {}",
                        e.sid
                    )));
                }
            }
            prev_key = Some(k);
            match &e.change {
                Change::Insert { .. } => {
                    if e.sid > self.stable_rows || e.seq == TUPLE_SEQ {
                        return Err(VwError::Invalid(format!("bad insert at sid {}", e.sid)));
                    }
                }
                Change::Delete | Change::Modify(_) => {
                    if e.sid >= self.stable_rows || e.seq != TUPLE_SEQ {
                        return Err(VwError::Invalid(format!(
                            "bad tuple entry at sid {}",
                            e.sid
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Entry indexes `[lo, hi)` whose SID lies in `[sid_lo, sid_hi)`
    /// (scan-merge: fetch the changes relevant to one row group).
    pub fn entry_range_for_sids(&self, sid_lo: u64, sid_hi: u64) -> (usize, usize) {
        let lo = self.entries.partition_point(|e| e.key() < (sid_lo, 0));
        let hi = self.entries.partition_point(|e| e.key() < (sid_hi, 0));
        (lo, hi)
    }

    /// RID currently occupied by stable tuple `sid`, or `None` if deleted.
    pub fn rid_of_sid(&self, sid: u64) -> Option<u64> {
        assert!(sid < self.stable_rows, "sid out of range");
        let j = self.entries.partition_point(|e| e.key() < (sid, TUPLE_SEQ));
        if let Some(e) = self.entries.get(j) {
            if e.sid == sid && e.change.is_delete() {
                return None;
            }
        }
        let delta = self
            .delta_before
            .get(j)
            .copied()
            .unwrap_or(self.total_delta);
        Some((sid as i64 + delta) as u64)
    }

    /// What occupies `rid` in the current image.
    pub fn resolve(&self, rid: u64) -> Result<Loc> {
        if rid >= self.current_rows() {
            return Err(VwError::Invalid(format!(
                "rid {} out of range ({} rows)",
                rid,
                self.current_rows()
            )));
        }
        let n = self.entries.len();
        // First entry at `rid` that is not a delete (deletes are a prefix of
        // each equal-rid run and do not occupy their RID). The predicate is
        // monotone over entry order, so plain binary search applies.
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let before = self.rids[mid] < rid
                || (self.rids[mid] == rid && self.entries[mid].change.is_delete());
            if before {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let j = lo;
        if j < n && self.rids[j] == rid {
            match &self.entries[j].change {
                Change::Insert { .. } => return Ok(Loc::Inserted(j)),
                Change::Modify(_) => {
                    return Ok(Loc::Stable {
                        sid: self.entries[j].sid,
                        modify: Some(j),
                    })
                }
                Change::Delete => unreachable!("deletes skipped by predicate"),
            }
        }
        let delta = self
            .delta_before
            .get(j)
            .copied()
            .unwrap_or(self.total_delta);
        let sid = (rid as i64 - delta) as u64;
        debug_assert!(sid < self.stable_rows);
        Ok(Loc::Stable { sid, modify: None })
    }

    /// Insert `row` so that it occupies `rid` (current occupant and
    /// everything after shift right). `rid == current_rows()` appends.
    pub fn insert_at(&mut self, rid: u64, row: Vec<Value>) -> Result<()> {
        let len = self.current_rows();
        if rid > len {
            return Err(VwError::Invalid(format!(
                "insert rid {} > len {}",
                rid, len
            )));
        }
        let (sid, idx) = if rid == len {
            (self.stable_rows, self.entries.len())
        } else {
            match self.resolve(rid)? {
                Loc::Inserted(j) => (self.entries[j].sid, j),
                Loc::Stable { sid, .. } => {
                    // Before the stable tuple: after all existing inserts at sid.
                    let j = self.entries.partition_point(|e| e.key() < (sid, TUPLE_SEQ));
                    (sid, j)
                }
            }
        };
        self.entries
            .insert(idx, Entry::insert(sid, 0, next_tag(), row));
        self.renumber_inserts(sid);
        self.rebuild();
        Ok(())
    }

    /// Delete the tuple at `rid` (everything after shifts left).
    pub fn delete_at(&mut self, rid: u64) -> Result<()> {
        match self.resolve(rid)? {
            Loc::Inserted(j) => {
                let sid = self.entries[j].sid;
                self.entries.remove(j);
                self.renumber_inserts(sid);
            }
            Loc::Stable { sid, modify } => match modify {
                Some(j) => self.entries[j] = Entry::delete(sid),
                None => {
                    let j = self.entries.partition_point(|e| e.key() < (sid, TUPLE_SEQ));
                    self.entries.insert(j, Entry::delete(sid));
                }
            },
        }
        self.rebuild();
        Ok(())
    }

    /// Overwrite column `col` of the tuple at `rid`.
    pub fn modify_at(&mut self, rid: u64, col: u32, value: Value) -> Result<()> {
        match self.resolve(rid)? {
            Loc::Inserted(j) => match &mut self.entries[j].change {
                Change::Insert { row, .. } => {
                    let c = col as usize;
                    if c >= row.len() {
                        return Err(VwError::Invalid(format!("modify col {} out of range", col)));
                    }
                    row[c] = value;
                }
                _ => unreachable!(),
            },
            Loc::Stable { sid, modify } => match modify {
                Some(j) => match &mut self.entries[j].change {
                    Change::Modify(m) => {
                        m.insert(col, value);
                    }
                    _ => unreachable!(),
                },
                None => {
                    let j = self.entries.partition_point(|e| e.key() < (sid, TUPLE_SEQ));
                    let mut m = BTreeMap::new();
                    m.insert(col, value);
                    self.entries.insert(j, Entry::modify(sid, m));
                    self.rebuild();
                }
            },
        }
        // Modifies don't shift RIDs; rebuild only needed when an entry was
        // added, handled above. Rebuild unconditionally for simplicity of the
        // Inserted path too (cheap relative to the Vec insert).
        Ok(())
    }

    fn renumber_inserts(&mut self, sid: u64) {
        let lo = self.entries.partition_point(|e| e.key() < (sid, 0));
        let mut seq = 0u32;
        #[allow(clippy::explicit_counter_loop)]
        for e in &mut self.entries[lo..] {
            if e.sid != sid || !e.change.is_insert() {
                break;
            }
            e.seq = seq;
            seq += 1;
        }
    }

    /// Read the full row at `rid`, fetching stable tuples through `fetch`.
    /// Reference implementation for tests and the row-engine; columnar scans
    /// merge in bulk instead.
    pub fn row_at(&self, rid: u64, fetch: &mut dyn FnMut(u64) -> Vec<Value>) -> Result<Vec<Value>> {
        match self.resolve(rid)? {
            Loc::Inserted(j) => Ok(self.inserted_row(j).to_vec()),
            Loc::Stable { sid, modify } => {
                let mut row = fetch(sid);
                if let Some(j) = modify {
                    for (&c, v) in self.mods_of(j) {
                        row[c as usize] = v.clone();
                    }
                }
                Ok(row)
            }
        }
    }

    /// Debug/test invariant check: rebuild arrays are consistent and RIDs
    /// are non-decreasing with delete-prefix runs.
    pub fn check_invariants(&self) -> Result<()> {
        self.validate()?;
        let mut prev_rid = 0u64;
        let mut seen_non_delete_at_rid = false;
        for (i, e) in self.entries.iter().enumerate() {
            let rid = self.rids[i];
            if i > 0 {
                if rid < prev_rid {
                    return Err(VwError::Invalid("rids decreased".into()));
                }
                if rid > prev_rid {
                    seen_non_delete_at_rid = false;
                }
            }
            if e.change.is_delete() {
                if seen_non_delete_at_rid {
                    return Err(VwError::Invalid("delete after occupant in rid run".into()));
                }
            } else {
                seen_non_delete_at_rid = true;
            }
            prev_rid = rid;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: i64) -> Vec<Value> {
        vec![Value::I64(x)]
    }

    /// Oracle: a plain Vec of rows simulating the current image.
    struct Oracle {
        rows: Vec<Vec<Value>>,
    }

    impl Oracle {
        fn new(n: u64) -> Oracle {
            Oracle {
                rows: (0..n).map(|i| v(i as i64 * 10)).collect(),
            }
        }
        fn stable_fetch(n: u64) -> impl FnMut(u64) -> Vec<Value> {
            move |sid| {
                assert!(sid < n);
                v(sid as i64 * 10)
            }
        }
    }

    fn assert_image_matches(pdt: &Pdt, oracle: &Oracle, n_stable: u64) {
        pdt.check_invariants().unwrap();
        assert_eq!(pdt.current_rows() as usize, oracle.rows.len());
        let mut fetch = Oracle::stable_fetch(n_stable);
        for rid in 0..pdt.current_rows() {
            assert_eq!(
                pdt.row_at(rid, &mut fetch).unwrap(),
                oracle.rows[rid as usize],
                "rid {}",
                rid
            );
        }
    }

    #[test]
    fn empty_pdt_is_identity() {
        let pdt = Pdt::new(5);
        assert_eq!(pdt.current_rows(), 5);
        for s in 0..5 {
            assert_eq!(pdt.rid_of_sid(s), Some(s));
            assert_eq!(
                pdt.resolve(s).unwrap(),
                Loc::Stable {
                    sid: s,
                    modify: None
                }
            );
        }
        assert!(pdt.resolve(5).is_err());
    }

    #[test]
    fn insert_shifts_rids() {
        let mut pdt = Pdt::new(3); // stable: 0,10,20
        let mut o = Oracle::new(3);
        pdt.insert_at(1, v(99)).unwrap();
        o.rows.insert(1, v(99));
        assert_image_matches(&pdt, &o, 3);
        assert_eq!(pdt.rid_of_sid(0), Some(0));
        assert_eq!(pdt.rid_of_sid(1), Some(2));
        assert_eq!(pdt.rid_of_sid(2), Some(3));
        // append
        pdt.insert_at(4, v(77)).unwrap();
        o.rows.push(v(77));
        assert_image_matches(&pdt, &o, 3);
        // insert before an inserted tuple
        pdt.insert_at(1, v(88)).unwrap();
        o.rows.insert(1, v(88));
        assert_image_matches(&pdt, &o, 3);
    }

    #[test]
    fn delete_stable_and_inserted() {
        let mut pdt = Pdt::new(4);
        let mut o = Oracle::new(4);
        pdt.delete_at(1).unwrap();
        o.rows.remove(1);
        assert_image_matches(&pdt, &o, 4);
        assert_eq!(pdt.rid_of_sid(1), None);
        assert_eq!(pdt.rid_of_sid(2), Some(1));
        // insert then delete the insert: cancels
        pdt.insert_at(0, v(50)).unwrap();
        o.rows.insert(0, v(50));
        assert_image_matches(&pdt, &o, 4);
        pdt.delete_at(0).unwrap();
        o.rows.remove(0);
        assert_image_matches(&pdt, &o, 4);
        assert_eq!(pdt.insert_count(), 0);
        // delete run reusing the same rid
        pdt.delete_at(0).unwrap();
        o.rows.remove(0);
        pdt.delete_at(0).unwrap();
        o.rows.remove(0);
        assert_image_matches(&pdt, &o, 4);
        assert_eq!(pdt.current_rows(), 1);
    }

    #[test]
    fn modify_paths() {
        let mut pdt = Pdt::new(3);
        let mut o = Oracle::new(3);
        // modify stable
        pdt.modify_at(2, 0, Value::I64(-1)).unwrap();
        o.rows[2] = v(-1);
        assert_image_matches(&pdt, &o, 3);
        // re-modify same tuple merges into one entry
        pdt.modify_at(2, 0, Value::I64(-2)).unwrap();
        o.rows[2] = v(-2);
        assert_image_matches(&pdt, &o, 3);
        assert_eq!(pdt.modify_count(), 1);
        // modify an inserted tuple patches the insert payload
        pdt.insert_at(0, v(100)).unwrap();
        o.rows.insert(0, v(100));
        pdt.modify_at(0, 0, Value::I64(101)).unwrap();
        o.rows[0] = v(101);
        assert_image_matches(&pdt, &o, 3);
        assert_eq!(pdt.modify_count(), 1); // no new modify entry
                                           // delete a modified stable tuple: modify collapses into delete
        pdt.delete_at(3).unwrap();
        o.rows.remove(3);
        assert_image_matches(&pdt, &o, 3);
        assert_eq!(pdt.modify_count(), 0);
        assert_eq!(pdt.delete_count(), 1);
        // modify col out of range on insert errors
        assert!(pdt.modify_at(0, 5, Value::I64(0)).is_err());
    }

    #[test]
    fn interleaved_random_ops_match_oracle() {
        use vw_common::rng::Xoshiro256;
        let n_stable = 50u64;
        let mut pdt = Pdt::new(n_stable);
        let mut o = Oracle::new(n_stable);
        let mut r = Xoshiro256::seeded(2024);
        for step in 0..500 {
            let len = pdt.current_rows();
            match r.next_below(3) {
                0 => {
                    let rid = r.next_below(len + 1);
                    let row = v(1000 + step);
                    pdt.insert_at(rid, row.clone()).unwrap();
                    o.rows.insert(rid as usize, row);
                }
                1 if len > 0 => {
                    let rid = r.next_below(len);
                    pdt.delete_at(rid).unwrap();
                    o.rows.remove(rid as usize);
                }
                2 if len > 0 => {
                    let rid = r.next_below(len);
                    let val = Value::I64(-step);
                    pdt.modify_at(rid, 0, val.clone()).unwrap();
                    o.rows[rid as usize][0] = val;
                }
                _ => {}
            }
        }
        assert_image_matches(&pdt, &o, n_stable);
        // rid_of_sid consistency: every non-deleted sid maps to a rid whose
        // resolve() points back at it.
        for sid in 0..n_stable {
            if let Some(rid) = pdt.rid_of_sid(sid) {
                match pdt.resolve(rid).unwrap() {
                    Loc::Stable { sid: s2, .. } => assert_eq!(s2, sid),
                    other => panic!("sid {} rid {} resolved to {:?}", sid, rid, other),
                }
            }
        }
    }

    #[test]
    fn entry_range_for_sids() {
        let mut pdt = Pdt::new(100);
        pdt.delete_at(10).unwrap();
        pdt.modify_at(50, 0, Value::I64(0)).unwrap();
        pdt.insert_at(80, v(1)).unwrap();
        let (lo, hi) = pdt.entry_range_for_sids(0, 20);
        assert_eq!(hi - lo, 1);
        let (lo, hi) = pdt.entry_range_for_sids(0, 100);
        assert_eq!(hi - lo, 3);
        let (lo, hi) = pdt.entry_range_for_sids(60, 70);
        assert_eq!(hi - lo, 0);
    }

    #[test]
    fn from_entries_validates() {
        // out of order
        let es = vec![Entry::delete(5), Entry::delete(3)];
        assert!(Pdt::from_entries(10, es).is_err());
        // delete beyond stable
        assert!(Pdt::from_entries(3, vec![Entry::delete(3)]).is_err());
        // insert at stable_rows (append) is legal
        assert!(Pdt::from_entries(3, vec![Entry::insert(3, 0, 1, v(1))]).is_ok());
        // insert beyond is not
        assert!(Pdt::from_entries(3, vec![Entry::insert(4, 0, 1, v(1))]).is_err());
        // duplicate keys rejected
        let es = vec![Entry::delete(5), Entry::delete(5)];
        assert!(Pdt::from_entries(10, es).is_err());
    }

    #[test]
    fn bounds_errors() {
        let mut pdt = Pdt::new(2);
        assert!(pdt.resolve(2).is_err());
        assert!(pdt.delete_at(2).is_err());
        assert!(pdt.modify_at(2, 0, Value::I64(0)).is_err());
        assert!(pdt.insert_at(3, v(0)).is_err());
        pdt.insert_at(2, v(0)).unwrap(); // append ok
        assert_eq!(pdt.current_rows(), 3);
    }
}
