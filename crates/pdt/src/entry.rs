//! PDT entries: one positional change each.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use vw_common::Value;

/// Sequence number used by `Delete`/`Modify` entries: they affect the stable
/// tuple itself and therefore order *after* every insert at the same SID
/// (inserts go before the stable tuple).
pub const TUPLE_SEQ: u32 = u32::MAX;

static NEXT_TAG: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique identity tag for an inserted tuple. Tags let
/// later transactions (and crash recovery) refer to a PDT insert even after
/// its `(sid, seq)` coordinates were renumbered by neighbouring inserts.
pub fn next_tag() -> u64 {
    NEXT_TAG.fetch_add(1, Ordering::Relaxed)
}

/// Ensure future [`next_tag`] results exceed `floor` (used by WAL recovery
/// after replaying records that embed historical tags).
pub fn bump_tag_floor(floor: u64) {
    NEXT_TAG.fetch_max(floor + 1, Ordering::Relaxed);
}

/// The change a PDT entry records.
#[derive(Debug, Clone, PartialEq)]
pub enum Change {
    /// A new tuple, positioned immediately before stable tuple `sid`
    /// (or at end-of-table when `sid == stable_rows`).
    Insert {
        /// Process-unique identity (see [`next_tag`]).
        tag: u64,
        row: Vec<Value>,
    },
    /// The stable tuple `sid` is deleted.
    Delete,
    /// Some columns of stable tuple `sid` are overwritten.
    Modify(BTreeMap<u32, Value>),
}

impl Change {
    pub fn is_insert(&self) -> bool {
        matches!(self, Change::Insert { .. })
    }

    pub fn is_delete(&self) -> bool {
        matches!(self, Change::Delete)
    }

    pub fn is_modify(&self) -> bool {
        matches!(self, Change::Modify(_))
    }

    /// +1 for inserts, -1 for deletes, 0 for modifies: the RID shift this
    /// entry applies to everything after it.
    pub fn delta(&self) -> i64 {
        match self {
            Change::Insert { .. } => 1,
            Change::Delete => -1,
            Change::Modify(_) => 0,
        }
    }

    /// The identity tag, for inserts.
    pub fn tag(&self) -> Option<u64> {
        match self {
            Change::Insert { tag, .. } => Some(*tag),
            _ => None,
        }
    }
}

/// One positional change, keyed by `(sid, seq)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Stable position this entry precedes (insert) or affects (delete/modify).
    pub sid: u64,
    /// Order among inserts sharing a SID; [`TUPLE_SEQ`] for delete/modify.
    pub seq: u32,
    pub change: Change,
}

impl Entry {
    pub fn insert(sid: u64, seq: u32, tag: u64, row: Vec<Value>) -> Entry {
        debug_assert!(seq != TUPLE_SEQ);
        Entry {
            sid,
            seq,
            change: Change::Insert { tag, row },
        }
    }

    pub fn delete(sid: u64) -> Entry {
        Entry {
            sid,
            seq: TUPLE_SEQ,
            change: Change::Delete,
        }
    }

    pub fn modify(sid: u64, mods: BTreeMap<u32, Value>) -> Entry {
        Entry {
            sid,
            seq: TUPLE_SEQ,
            change: Change::Modify(mods),
        }
    }

    /// Ordering key: inserts at a SID precede the delete/modify of that SID.
    pub fn key(&self) -> (u64, u32) {
        (self.sid, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_inserts_before_tuple_entries() {
        let i = Entry::insert(5, 0, next_tag(), vec![Value::I64(1)]);
        let d = Entry::delete(5);
        assert!(i.key() < d.key());
        let m = Entry::modify(5, BTreeMap::new());
        assert_eq!(d.key(), m.key()); // mutually exclusive in one PDT
        let i2 = Entry::insert(5, 1, next_tag(), vec![]);
        assert!(i.key() < i2.key());
        assert!(i2.key() < d.key());
    }

    #[test]
    fn deltas() {
        assert_eq!(Entry::insert(0, 0, next_tag(), vec![]).change.delta(), 1);
        assert_eq!(Entry::delete(0).change.delta(), -1);
        assert_eq!(Entry::modify(0, BTreeMap::new()).change.delta(), 0);
    }

    #[test]
    fn tags_are_unique_and_floor_bumps() {
        let a = next_tag();
        let b = next_tag();
        assert!(b > a);
        bump_tag_floor(b + 1000);
        assert!(next_tag() > b + 1000);
        assert_eq!(Entry::delete(1).change.tag(), None);
        assert_eq!(Entry::insert(1, 0, 42, vec![]).change.tag(), Some(42));
    }
}
