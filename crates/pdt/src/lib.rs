//! `vw-pdt` — Positional Delta Trees.
//!
//! Vectorwise never updates its columnar stable storage in place: a single
//! updated record would cost one I/O per column plus recompression (§I-B).
//! Instead, updates accumulate in *Positional Delta Trees* [5]: differential
//! structures that record inserts, deletes and modifies **by position**
//! (stable ID / SID) rather than by key, so scans can merge them in without
//! ever reading key columns.
//!
//! Two coordinate systems (see `vw_common::ids`):
//!
//! * **SID** — position in the immutable stable table image,
//! * **RID** — position in the current logical image (stable + deltas).
//!
//! A [`Pdt`] stores an ordered list of [`Entry`]s keyed by `(sid, seq)` with
//! precomputed per-entry RIDs, giving `O(log n)` RID⇄SID translation. Layers
//! stack exactly as in the paper: a transaction's private PDT ("trans-PDT")
//! is expressed in the RID space of its snapshot image and is *translated*
//! into stable coordinates at commit ([`translate`]), checked for positional
//! conflicts ([`Footprint`]), then *propagated* into the master PDT
//! ([`propagate`]).

pub mod entry;
pub mod footprint;
pub mod pdt;
pub mod propagate;
pub mod serde;

pub use entry::{bump_tag_floor, next_tag, Change, Entry};
pub use footprint::Footprint;
pub use pdt::{Loc, Pdt};
pub use propagate::{propagate, translate, StableOp};
pub use serde::{deserialize_ops, max_tag, serialize_ops};
