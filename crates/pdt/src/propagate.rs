//! Translate and propagate: moving changes between PDT layers.
//!
//! A transaction works on a *working PDT* — a clone of its snapshot's master
//! PDT that it mutates privately (the paper's trans-PDT, expressed directly
//! in stable coordinates). At commit time:
//!
//! 1. [`translate`] diffs the working PDT against the snapshot, producing the
//!    transaction's own changes as a sorted list of [`StableOp`]s in stable
//!    coordinates. This list is what the WAL logs.
//! 2. The transaction manager checks the ops' [`Footprint`](crate::Footprint)
//!    against every commit that happened since the snapshot (optimistic CC).
//! 3. [`propagate`] merges the ops into the *current* master PDT, yielding
//!    the new master. PDT inserts are matched by identity tag, so the merge
//!    is exact even though `(sid, seq)` coordinates may have been renumbered
//!    by concurrent (non-conflicting) commits.

use crate::entry::{Change, Entry, TUPLE_SEQ};
use crate::pdt::Pdt;
use std::collections::BTreeMap;
use vw_common::{Result, Value, VwError};

/// One transaction-level change in stable coordinates.
#[derive(Debug, Clone, PartialEq)]
pub enum StableOp {
    /// Delete stable tuple `sid`.
    DeleteStable { sid: u64 },
    /// Overwrite columns of stable tuple `sid`.
    ModifyStable {
        sid: u64,
        mods: BTreeMap<u32, Value>,
    },
    /// Insert a new tuple before stable tuple `sid`. `before_tag` pins the
    /// position among existing PDT inserts at this SID: insert immediately
    /// before the insert carrying that tag, or after all of them if `None`.
    Insert {
        sid: u64,
        before_tag: Option<u64>,
        tag: u64,
        row: Vec<Value>,
    },
    /// Remove a PDT insert (identified by tag) — deleting an uncommitted-to-
    /// stable tuple cancels it.
    DeleteInserted { sid: u64, tag: u64 },
    /// Patch columns of a PDT insert.
    ModifyInserted {
        sid: u64,
        tag: u64,
        mods: BTreeMap<u32, Value>,
    },
}

impl StableOp {
    /// SID this op anchors to (for ordering and footprints).
    pub fn sid(&self) -> u64 {
        match self {
            StableOp::DeleteStable { sid }
            | StableOp::ModifyStable { sid, .. }
            | StableOp::Insert { sid, .. }
            | StableOp::DeleteInserted { sid, .. }
            | StableOp::ModifyInserted { sid, .. } => *sid,
        }
    }

    /// Sort key: insert-affecting ops before tuple ops at the same SID.
    fn order_key(&self) -> (u64, u8) {
        let kind = match self {
            StableOp::Insert { .. }
            | StableOp::DeleteInserted { .. }
            | StableOp::ModifyInserted { .. } => 0,
            StableOp::DeleteStable { .. } | StableOp::ModifyStable { .. } => 1,
        };
        (self.sid(), kind)
    }
}

/// Diff `working` (snapshot + this transaction's changes) against
/// `snapshot`, both over the same stable image. Returns the transaction's
/// changes as stable-coordinate ops, sorted.
pub fn translate(snapshot: &Pdt, working: &Pdt) -> Result<Vec<StableOp>> {
    if snapshot.stable_rows() != working.stable_rows() {
        return Err(VwError::Invalid(
            "snapshot/working stable size mismatch".into(),
        ));
    }
    let mut ops: Vec<StableOp> = Vec::new();
    let se = snapshot.entries();
    let we = working.entries();
    let (mut i, mut j) = (0usize, 0usize);
    // Sweep SIDs present in either entry list.
    while i < se.len() || j < we.len() {
        let sid = match (se.get(i), we.get(j)) {
            (Some(a), Some(b)) => a.sid.min(b.sid),
            (Some(a), None) => a.sid,
            (None, Some(b)) => b.sid,
            (None, None) => unreachable!(),
        };
        let si_end = advance(se, i, sid);
        let wi_end = advance(we, j, sid);
        diff_sid_group(&se[i..si_end], &we[j..wi_end], sid, &mut ops)?;
        i = si_end;
        j = wi_end;
    }
    debug_assert!(ops.windows(2).all(|w| w[0].order_key() <= w[1].order_key()));
    Ok(ops)
}

fn advance(entries: &[Entry], from: usize, sid: u64) -> usize {
    let mut k = from;
    while k < entries.len() && entries[k].sid == sid {
        k += 1;
    }
    k
}

/// Diff the entries of one SID. `s` = snapshot entries, `w` = working.
fn diff_sid_group(s: &[Entry], w: &[Entry], sid: u64, ops: &mut Vec<StableOp>) -> Result<()> {
    // --- Inserts: match by tag. Working-only tags are new inserts; their
    // position is pinned by the next surviving snapshot tag after them.
    let s_inserts: Vec<&Entry> = s.iter().filter(|e| e.change.is_insert()).collect();
    let w_inserts: Vec<&Entry> = w.iter().filter(|e| e.change.is_insert()).collect();
    let s_tags: Vec<u64> = s_inserts.iter().map(|e| e.change.tag().unwrap()).collect();

    // Deleted snapshot inserts.
    for e in &s_inserts {
        let tag = e.change.tag().unwrap();
        if !w_inserts.iter().any(|we| we.change.tag() == Some(tag)) {
            ops.push(StableOp::DeleteInserted { sid, tag });
        }
    }
    // New and modified inserts, in working order.
    for (k, e) in w_inserts.iter().enumerate() {
        let tag = e.change.tag().unwrap();
        let row = match &e.change {
            Change::Insert { row, .. } => row,
            _ => unreachable!(),
        };
        if let Some(se) = s_inserts.iter().find(|se| se.change.tag() == Some(tag)) {
            // Survived: payload may have been patched.
            let s_row = match &se.change {
                Change::Insert { row, .. } => row,
                _ => unreachable!(),
            };
            if s_row != row {
                let mut mods = BTreeMap::new();
                if s_row.len() != row.len() {
                    return Err(VwError::Invalid("insert arity changed".into()));
                }
                for (c, (a, b)) in s_row.iter().zip(row.iter()).enumerate() {
                    if a != b {
                        mods.insert(c as u32, b.clone());
                    }
                }
                ops.push(StableOp::ModifyInserted { sid, tag, mods });
            }
        } else {
            // New insert: pinned before the first surviving snapshot insert
            // that follows it in working order.
            let before_tag = w_inserts[k + 1..]
                .iter()
                .filter_map(|we| we.change.tag())
                .find(|t| s_tags.contains(t));
            ops.push(StableOp::Insert {
                sid,
                before_tag,
                tag,
                row: row.clone(),
            });
        }
    }

    // --- Tuple entry (Delete/Modify of the stable tuple).
    let s_tuple = s.iter().find(|e| e.seq == TUPLE_SEQ);
    let w_tuple = w.iter().find(|e| e.seq == TUPLE_SEQ);
    match (s_tuple.map(|e| &e.change), w_tuple.map(|e| &e.change)) {
        (None, None) => {}
        (None, Some(Change::Delete)) => ops.push(StableOp::DeleteStable { sid }),
        (None, Some(Change::Modify(m))) => ops.push(StableOp::ModifyStable {
            sid,
            mods: m.clone(),
        }),
        (Some(Change::Modify(_)), Some(Change::Delete)) => ops.push(StableOp::DeleteStable { sid }),
        (Some(Change::Modify(m1)), Some(Change::Modify(m2))) => {
            let mut mods = BTreeMap::new();
            for (c, v) in m2 {
                if m1.get(c) != Some(v) {
                    mods.insert(*c, v.clone());
                }
            }
            if !mods.is_empty() {
                ops.push(StableOp::ModifyStable { sid, mods });
            }
        }
        (Some(Change::Delete), Some(Change::Delete)) => {}
        (a, b) => {
            return Err(VwError::Invalid(format!(
                "impossible tuple-entry transition at sid {}: {:?} -> {:?}",
                sid,
                a.map(kind_name),
                b.map(kind_name),
            )))
        }
    }
    Ok(())
}

fn kind_name(c: &Change) -> &'static str {
    match c {
        Change::Insert { .. } => "insert",
        Change::Delete => "delete",
        Change::Modify(_) => "modify",
    }
}

/// Merge translated ops into `master`, yielding the new master PDT.
///
/// Positional conflicts (e.g. deleting a tuple another transaction already
/// deleted) surface as `TxnConflict` — the transaction manager's footprint
/// check should have caught them earlier; this is the backstop.
pub fn propagate(master: &Pdt, ops: &[StableOp]) -> Result<Pdt> {
    let me = master.entries();
    let mut out: Vec<Entry> = Vec::with_capacity(me.len() + ops.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < me.len() || j < ops.len() {
        let sid = match (me.get(i), ops.get(j)) {
            (Some(a), Some(b)) => a.sid.min(b.sid()),
            (Some(a), None) => a.sid,
            (None, Some(b)) => b.sid(),
            (None, None) => unreachable!(),
        };
        let mi_end = advance(me, i, sid);
        let mut oj_end = j;
        while oj_end < ops.len() && ops[oj_end].sid() == sid {
            oj_end += 1;
        }
        merge_sid_group(&me[i..mi_end], &ops[j..oj_end], sid, &mut out)?;
        i = mi_end;
        j = oj_end;
    }
    Pdt::from_entries(master.stable_rows(), out)
}

fn merge_sid_group(m: &[Entry], ops: &[StableOp], sid: u64, out: &mut Vec<Entry>) -> Result<()> {
    // Working list of insert entries at this SID.
    let mut inserts: Vec<Entry> = m.iter().filter(|e| e.change.is_insert()).cloned().collect();
    let mut tuple: Option<Entry> = m.iter().find(|e| e.seq == TUPLE_SEQ).cloned();

    for op in ops {
        match op {
            StableOp::Insert {
                before_tag,
                tag,
                row,
                ..
            } => {
                let pos = match before_tag {
                    Some(bt) => inserts
                        .iter()
                        .position(|e| e.change.tag() == Some(*bt))
                        .unwrap_or(inserts.len()),
                    None => inserts.len(),
                };
                inserts.insert(pos, Entry::insert(sid, 0, *tag, row.clone()));
            }
            StableOp::DeleteInserted { tag, .. } => {
                let pos = inserts
                    .iter()
                    .position(|e| e.change.tag() == Some(*tag))
                    .ok_or_else(|| VwError::TxnConflict(format!("insert tag {} vanished", tag)))?;
                inserts.remove(pos);
            }
            StableOp::ModifyInserted { tag, mods, .. } => {
                let e = inserts
                    .iter_mut()
                    .find(|e| e.change.tag() == Some(*tag))
                    .ok_or_else(|| VwError::TxnConflict(format!("insert tag {} vanished", tag)))?;
                if let Change::Insert { row, .. } = &mut e.change {
                    for (&c, v) in mods {
                        let c = c as usize;
                        if c >= row.len() {
                            return Err(VwError::Invalid("modify col out of range".into()));
                        }
                        row[c] = v.clone();
                    }
                }
            }
            StableOp::DeleteStable { .. } => match &tuple {
                Some(e) if e.change.is_delete() => {
                    return Err(VwError::TxnConflict(format!(
                        "stable tuple {} already deleted",
                        sid
                    )))
                }
                _ => tuple = Some(Entry::delete(sid)),
            },
            StableOp::ModifyStable { mods, .. } => match &mut tuple {
                Some(e) if e.change.is_delete() => {
                    return Err(VwError::TxnConflict(format!(
                        "stable tuple {} deleted by concurrent txn",
                        sid
                    )))
                }
                Some(e) => {
                    if let Change::Modify(m) = &mut e.change {
                        for (c, v) in mods {
                            m.insert(*c, v.clone());
                        }
                    }
                }
                None => tuple = Some(Entry::modify(sid, mods.clone())),
            },
        }
    }

    for (seq, mut e) in inserts.into_iter().enumerate() {
        e.seq = seq as u32;
        out.push(e);
    }
    if let Some(t) = tuple {
        out.push(t);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::next_tag;

    fn v(x: i64) -> Vec<Value> {
        vec![Value::I64(x)]
    }

    /// End-to-end sanity: working = snapshot + ops; translate + propagate on
    /// the same snapshot must reproduce the working PDT's image.
    fn roundtrip_image(snapshot: &Pdt, working: &Pdt) {
        let ops = translate(snapshot, working).unwrap();
        let rebuilt = propagate(snapshot, &ops).unwrap();
        assert_eq!(rebuilt.current_rows(), working.current_rows());
        let n = snapshot.stable_rows();
        let mut fetch_a = |sid: u64| vec![Value::I64(sid as i64 * 10)];
        let mut fetch_b = |sid: u64| vec![Value::I64(sid as i64 * 10)];
        assert!(n >= rebuilt.stable_rows());
        for rid in 0..working.current_rows() {
            assert_eq!(
                rebuilt.row_at(rid, &mut fetch_a).unwrap(),
                working.row_at(rid, &mut fetch_b).unwrap(),
                "rid {}",
                rid
            );
        }
    }

    #[test]
    fn translate_empty_diff() {
        let snap = Pdt::new(10);
        let work = snap.clone();
        assert!(translate(&snap, &work).unwrap().is_empty());
    }

    #[test]
    fn translate_and_propagate_basic_ops() {
        let snap = Pdt::new(5);
        let mut work = snap.clone();
        work.insert_at(2, v(100)).unwrap();
        work.delete_at(4).unwrap(); // stable sid 3
        work.modify_at(0, 0, Value::I64(-5)).unwrap();
        let ops = translate(&snap, &work).unwrap();
        assert_eq!(ops.len(), 3);
        roundtrip_image(&snap, &work);
    }

    #[test]
    fn insert_then_delete_cancels_in_diff() {
        let snap = Pdt::new(5);
        let mut work = snap.clone();
        work.insert_at(1, v(7)).unwrap();
        work.delete_at(1).unwrap();
        assert!(translate(&snap, &work).unwrap().is_empty());
    }

    #[test]
    fn modify_of_snapshot_insert_diffs_by_tag() {
        let mut snap = Pdt::new(3);
        snap.insert_at(1, v(50)).unwrap();
        let mut work = snap.clone();
        work.modify_at(1, 0, Value::I64(51)).unwrap();
        let ops = translate(&snap, &work).unwrap();
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0], StableOp::ModifyInserted { .. }));
        roundtrip_image(&snap, &work);
    }

    #[test]
    fn delete_of_snapshot_insert() {
        let mut snap = Pdt::new(3);
        snap.insert_at(0, v(9)).unwrap();
        let mut work = snap.clone();
        work.delete_at(0).unwrap();
        let ops = translate(&snap, &work).unwrap();
        assert!(matches!(ops[0], StableOp::DeleteInserted { .. }));
        roundtrip_image(&snap, &work);
    }

    #[test]
    fn interleaved_inserts_keep_order() {
        let mut snap = Pdt::new(3);
        snap.insert_at(1, v(100)).unwrap();
        snap.insert_at(2, v(200)).unwrap(); // before stable 1, after 100
        let mut work = snap.clone();
        // insert between the two snapshot inserts
        work.insert_at(2, v(150)).unwrap();
        // and one at the very front of sid 1's insert run
        work.insert_at(1, v(50)).unwrap();
        roundtrip_image(&snap, &work);
    }

    #[test]
    fn rebase_onto_advanced_master_disjoint() {
        // snapshot -> txn A deletes sid 1; txn B (same snapshot) modifies sid 3.
        let snap = Pdt::new(5);
        let mut wa = snap.clone();
        wa.delete_at(1).unwrap();
        let ops_a = translate(&snap, &wa).unwrap();
        let master2 = propagate(&snap, &ops_a).unwrap();

        let mut wb = snap.clone();
        wb.modify_at(3, 0, Value::I64(-3)).unwrap();
        let ops_b = translate(&snap, &wb).unwrap();
        // B rebases onto master2 (disjoint footprints).
        let master3 = propagate(&master2, &ops_b).unwrap();
        assert_eq!(master3.current_rows(), 4);
        let mut fetch = |sid: u64| vec![Value::I64(sid as i64)];
        // image: 0, 2, 3(modified), 4
        assert_eq!(master3.row_at(0, &mut fetch).unwrap(), v(0));
        assert_eq!(master3.row_at(1, &mut fetch).unwrap(), v(2));
        assert_eq!(master3.row_at(2, &mut fetch).unwrap(), v(-3));
        assert_eq!(master3.row_at(3, &mut fetch).unwrap(), v(4));
    }

    #[test]
    fn conflicting_double_delete_detected_by_backstop() {
        let snap = Pdt::new(5);
        let mut wa = snap.clone();
        wa.delete_at(1).unwrap();
        let ops_a = translate(&snap, &wa).unwrap();
        let master2 = propagate(&snap, &ops_a).unwrap();
        let mut wb = snap.clone();
        wb.delete_at(1).unwrap();
        let ops_b = translate(&snap, &wb).unwrap();
        let err = propagate(&master2, &ops_b).unwrap_err();
        assert_eq!(err.kind(), "txn_conflict");
    }

    #[test]
    fn vanished_insert_tag_is_conflict() {
        let mut snap = Pdt::new(3);
        snap.insert_at(0, v(9)).unwrap();
        // txn A deletes the insert; txn B modifies it.
        let mut wa = snap.clone();
        wa.delete_at(0).unwrap();
        let master2 = propagate(&snap, &translate(&snap, &wa).unwrap()).unwrap();
        let mut wb = snap.clone();
        wb.modify_at(0, 0, Value::I64(10)).unwrap();
        let err = propagate(&master2, &translate(&snap, &wb).unwrap()).unwrap_err();
        assert_eq!(err.kind(), "txn_conflict");
    }

    #[test]
    fn random_txn_stream_fast_path_equivalence() {
        use vw_common::rng::Xoshiro256;
        let mut r = Xoshiro256::seeded(77);
        let mut master = Pdt::new(40);
        for _txn in 0..30 {
            let snap = master.clone();
            let mut work = snap.clone();
            for _ in 0..r.next_below(8) {
                let len = work.current_rows();
                match r.next_below(3) {
                    0 => {
                        let rid = r.next_below(len + 1);
                        work.insert_at(rid, v(r.range_i64(0, 1000))).unwrap();
                    }
                    1 if len > 0 => {
                        work.delete_at(r.next_below(len)).unwrap();
                    }
                    2 if len > 0 => {
                        work.modify_at(r.next_below(len), 0, Value::I64(r.range_i64(-99, 0)))
                            .unwrap();
                    }
                    _ => {}
                }
            }
            roundtrip_image(&snap, &work);
            let ops = translate(&snap, &work).unwrap();
            master = propagate(&master, &ops).unwrap();
            master.check_invariants().unwrap();
            assert_eq!(master.current_rows(), work.current_rows());
        }
    }

    #[test]
    fn ops_order_key_sorts_inserts_first() {
        let a = StableOp::Insert {
            sid: 5,
            before_tag: None,
            tag: next_tag(),
            row: v(1),
        };
        let b = StableOp::DeleteStable { sid: 5 };
        assert!(a.order_key() < b.order_key());
    }
}
