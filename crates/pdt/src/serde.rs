//! Binary serialization of PDT ops and values, used by the write-ahead log.
//!
//! Format notes: little-endian throughout, length-prefixed strings, one tag
//! byte per value / op. The format is self-contained — recovery can decode a
//! commit record without any catalog context beyond the table id stored by
//! the WAL framing.

use crate::propagate::StableOp;
use std::collections::BTreeMap;
use vw_common::{Result, Value, VwError};

fn err(msg: &str) -> VwError {
    VwError::Wal(format!("corrupt record: {}", msg))
}

/// Append a value to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::I32(x) => {
            out.push(2);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::I64(x) => {
            out.push(3);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(4);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Date(x) => {
            out.push(5);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(6);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Decode one value, advancing `pos`.
pub fn decode_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let tag = *bytes.get(*pos).ok_or_else(|| err("value tag"))?;
    *pos += 1;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        let s = bytes.get(*pos..*pos + n).ok_or_else(|| err("value body"))?;
        *pos += n;
        Ok(s)
    };
    Ok(match tag {
        0 => Value::Null,
        1 => Value::Bool(take(pos, 1)?[0] != 0),
        2 => Value::I32(i32::from_le_bytes(take(pos, 4)?.try_into().unwrap())),
        3 => Value::I64(i64::from_le_bytes(take(pos, 8)?.try_into().unwrap())),
        4 => Value::F64(f64::from_le_bytes(take(pos, 8)?.try_into().unwrap())),
        5 => Value::Date(i32::from_le_bytes(take(pos, 4)?.try_into().unwrap())),
        6 => {
            let n = u32::from_le_bytes(take(pos, 4)?.try_into().unwrap()) as usize;
            let s = take(pos, n)?;
            Value::Str(String::from_utf8(s.to_vec()).map_err(|_| err("utf8"))?)
        }
        _ => return Err(err("unknown value tag")),
    })
}

fn encode_mods(mods: &BTreeMap<u32, Value>, out: &mut Vec<u8>) {
    out.extend_from_slice(&(mods.len() as u32).to_le_bytes());
    for (c, v) in mods {
        out.extend_from_slice(&c.to_le_bytes());
        encode_value(v, out);
    }
}

fn decode_mods(bytes: &[u8], pos: &mut usize) -> Result<BTreeMap<u32, Value>> {
    let n = read_u32(bytes, pos)? as usize;
    let mut mods = BTreeMap::new();
    for _ in 0..n {
        let c = read_u32(bytes, pos)?;
        let v = decode_value(bytes, pos)?;
        mods.insert(c, v);
    }
    Ok(mods)
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32> {
    let s = bytes.get(*pos..*pos + 4).ok_or_else(|| err("u32"))?;
    *pos += 4;
    Ok(u32::from_le_bytes(s.try_into().unwrap()))
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let s = bytes.get(*pos..*pos + 8).ok_or_else(|| err("u64"))?;
    *pos += 8;
    Ok(u64::from_le_bytes(s.try_into().unwrap()))
}

/// Serialize a translated op list (one table's changes in one commit).
pub fn serialize_ops(ops: &[StableOp]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        match op {
            StableOp::DeleteStable { sid } => {
                out.push(0);
                out.extend_from_slice(&sid.to_le_bytes());
            }
            StableOp::ModifyStable { sid, mods } => {
                out.push(1);
                out.extend_from_slice(&sid.to_le_bytes());
                encode_mods(mods, &mut out);
            }
            StableOp::Insert {
                sid,
                before_tag,
                tag,
                row,
            } => {
                out.push(2);
                out.extend_from_slice(&sid.to_le_bytes());
                out.extend_from_slice(&before_tag.unwrap_or(0).to_le_bytes());
                out.extend_from_slice(&tag.to_le_bytes());
                out.extend_from_slice(&(row.len() as u32).to_le_bytes());
                for v in row {
                    encode_value(v, &mut out);
                }
            }
            StableOp::DeleteInserted { sid, tag } => {
                out.push(3);
                out.extend_from_slice(&sid.to_le_bytes());
                out.extend_from_slice(&tag.to_le_bytes());
            }
            StableOp::ModifyInserted { sid, tag, mods } => {
                out.push(4);
                out.extend_from_slice(&sid.to_le_bytes());
                out.extend_from_slice(&tag.to_le_bytes());
                encode_mods(mods, &mut out);
            }
        }
    }
    out
}

/// Deserialize an op list written by [`serialize_ops`].
pub fn deserialize_ops(bytes: &[u8]) -> Result<Vec<StableOp>> {
    let mut pos = 0usize;
    let n = read_u32(bytes, &mut pos)? as usize;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = *bytes.get(pos).ok_or_else(|| err("op tag"))?;
        pos += 1;
        let op = match tag {
            0 => StableOp::DeleteStable {
                sid: read_u64(bytes, &mut pos)?,
            },
            1 => {
                let sid = read_u64(bytes, &mut pos)?;
                let mods = decode_mods(bytes, &mut pos)?;
                StableOp::ModifyStable { sid, mods }
            }
            2 => {
                let sid = read_u64(bytes, &mut pos)?;
                let bt = read_u64(bytes, &mut pos)?;
                let itag = read_u64(bytes, &mut pos)?;
                let nvals = read_u32(bytes, &mut pos)? as usize;
                let mut row = Vec::with_capacity(nvals);
                for _ in 0..nvals {
                    row.push(decode_value(bytes, &mut pos)?);
                }
                StableOp::Insert {
                    sid,
                    before_tag: if bt == 0 { None } else { Some(bt) },
                    tag: itag,
                    row,
                }
            }
            3 => {
                let sid = read_u64(bytes, &mut pos)?;
                let itag = read_u64(bytes, &mut pos)?;
                StableOp::DeleteInserted { sid, tag: itag }
            }
            4 => {
                let sid = read_u64(bytes, &mut pos)?;
                let itag = read_u64(bytes, &mut pos)?;
                let mods = decode_mods(bytes, &mut pos)?;
                StableOp::ModifyInserted {
                    sid,
                    tag: itag,
                    mods,
                }
            }
            _ => return Err(err("unknown op tag")),
        };
        ops.push(op);
    }
    if pos != bytes.len() {
        return Err(err("trailing bytes"));
    }
    Ok(ops)
}

/// Largest insert tag mentioned in an op list (recovery bumps the tag floor
/// past this so new inserts never collide with replayed ones).
pub fn max_tag(ops: &[StableOp]) -> u64 {
    ops.iter()
        .map(|op| match op {
            StableOp::Insert {
                tag, before_tag, ..
            } => (*tag).max(before_tag.unwrap_or(0)),
            StableOp::DeleteInserted { tag, .. } | StableOp::ModifyInserted { tag, .. } => *tag,
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::next_tag;

    #[test]
    fn value_roundtrip_all_types() {
        let vals = vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::I32(-7),
            Value::I64(i64::MIN),
            Value::F64(2.5),
            Value::F64(f64::NAN),
            Value::Date(9131),
            Value::Str("héllo".into()),
            Value::Str(String::new()),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            encode_value(v, &mut buf);
        }
        let mut pos = 0;
        for v in &vals {
            let back = decode_value(&buf, &mut pos).unwrap();
            assert_eq!(&back, v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn ops_roundtrip() {
        let t1 = next_tag();
        let t2 = next_tag();
        let mut mods = BTreeMap::new();
        mods.insert(2, Value::Str("x".into()));
        mods.insert(0, Value::Null);
        let ops = vec![
            StableOp::Insert {
                sid: 3,
                before_tag: Some(t1),
                tag: t2,
                row: vec![Value::I64(1), Value::Str("abc".into())],
            },
            StableOp::DeleteInserted { sid: 3, tag: t1 },
            StableOp::DeleteStable { sid: 4 },
            StableOp::ModifyStable {
                sid: 9,
                mods: mods.clone(),
            },
            StableOp::ModifyInserted {
                sid: 9,
                tag: t2,
                mods,
            },
        ];
        let bytes = serialize_ops(&ops);
        let back = deserialize_ops(&bytes).unwrap();
        assert_eq!(back, ops);
        assert_eq!(max_tag(&ops), t2);
    }

    #[test]
    fn corrupt_ops_fail() {
        let ops = vec![StableOp::DeleteStable { sid: 1 }];
        let bytes = serialize_ops(&ops);
        assert!(deserialize_ops(&bytes[..bytes.len() - 1]).is_err());
        assert!(deserialize_ops(&[]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(deserialize_ops(&extra).is_err());
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(deserialize_ops(&bad).is_err());
    }

    #[test]
    fn empty_ops() {
        let bytes = serialize_ops(&[]);
        assert_eq!(deserialize_ops(&bytes).unwrap(), vec![]);
        assert_eq!(max_tag(&[]), 0);
    }
}
