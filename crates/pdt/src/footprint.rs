//! Positional footprints for optimistic concurrency control.
//!
//! The paper (§I-B): Vectorwise "performs optimistic PDT-based concurrency
//! control" — transactions run against a snapshot, and at commit time their
//! positional write set is checked against concurrently committed ones.
//! A [`Footprint`] is that positional write set, derived from a transaction's
//! translated [`StableOp`](crate::propagate::StableOp) list.

use crate::propagate::StableOp;

/// The positions a transaction wrote, in stable coordinates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Stable tuples deleted or modified (sorted, deduped).
    pub stable_sids: Vec<u64>,
    /// SIDs before which new tuples were inserted (sorted, deduped).
    pub insert_sids: Vec<u64>,
    /// Identity tags of PDT inserts this transaction touched (deleted,
    /// modified, or used as a position anchor). Sorted, deduped.
    pub touched_tags: Vec<u64>,
}

impl Footprint {
    /// Compute the footprint of a translated op list.
    pub fn of(ops: &[StableOp]) -> Footprint {
        let mut fp = Footprint::default();
        for op in ops {
            match op {
                StableOp::DeleteStable { sid } | StableOp::ModifyStable { sid, .. } => {
                    fp.stable_sids.push(*sid)
                }
                StableOp::Insert {
                    sid, before_tag, ..
                } => {
                    fp.insert_sids.push(*sid);
                    if let Some(t) = before_tag {
                        fp.touched_tags.push(*t);
                    }
                }
                StableOp::DeleteInserted { tag, .. } | StableOp::ModifyInserted { tag, .. } => {
                    fp.touched_tags.push(*tag)
                }
            }
        }
        fp.stable_sids.sort_unstable();
        fp.stable_sids.dedup();
        fp.insert_sids.sort_unstable();
        fp.insert_sids.dedup();
        fp.touched_tags.sort_unstable();
        fp.touched_tags.dedup();
        fp
    }

    pub fn is_empty(&self) -> bool {
        self.stable_sids.is_empty() && self.insert_sids.is_empty() && self.touched_tags.is_empty()
    }

    /// Positional overlap test: true when committing both transactions could
    /// produce a lost update or a dangling reference. Deliberately a little
    /// conservative (same-SID concurrent inserts conflict) — the paper's
    /// system also resolves conflicts at coarse positional granularity.
    pub fn conflicts_with(&self, other: &Footprint) -> bool {
        sorted_intersect(&self.stable_sids, &other.stable_sids)
            || sorted_intersect(&self.insert_sids, &other.insert_sids)
            || sorted_intersect(&self.touched_tags, &other.touched_tags)
    }
}

fn sorted_intersect(a: &[u64], b: &[u64]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::next_tag;
    use std::collections::BTreeMap;
    use vw_common::Value;

    fn modify(sid: u64) -> StableOp {
        let mut m = BTreeMap::new();
        m.insert(0, Value::I64(0));
        StableOp::ModifyStable { sid, mods: m }
    }

    #[test]
    fn footprint_extraction() {
        let t = next_tag();
        let ops = vec![
            StableOp::DeleteStable { sid: 3 },
            modify(7),
            modify(3),
            StableOp::Insert {
                sid: 5,
                before_tag: Some(t),
                tag: next_tag(),
                row: vec![],
            },
            StableOp::DeleteInserted { sid: 9, tag: t },
        ];
        let fp = Footprint::of(&ops);
        assert_eq!(fp.stable_sids, vec![3, 7]);
        assert_eq!(fp.insert_sids, vec![5]);
        assert_eq!(fp.touched_tags, vec![t]);
        assert!(!fp.is_empty());
        assert!(Footprint::of(&[]).is_empty());
    }

    #[test]
    fn conflict_rules() {
        let a = Footprint {
            stable_sids: vec![1, 5, 9],
            insert_sids: vec![2],
            touched_tags: vec![100],
        };
        // disjoint
        let b = Footprint {
            stable_sids: vec![2, 6],
            insert_sids: vec![3],
            touched_tags: vec![101],
        };
        assert!(!a.conflicts_with(&b));
        assert!(!b.conflicts_with(&a));
        // same stable sid
        let c = Footprint {
            stable_sids: vec![5],
            ..Default::default()
        };
        assert!(a.conflicts_with(&c));
        // same insert point
        let d = Footprint {
            insert_sids: vec![2],
            ..Default::default()
        };
        assert!(a.conflicts_with(&d));
        // same touched tag
        let e = Footprint {
            touched_tags: vec![100],
            ..Default::default()
        };
        assert!(a.conflicts_with(&e));
        // delete vs insert at same sid does NOT conflict (insert lands
        // before the deleted tuple's position; both orders commute)
        let f = Footprint {
            insert_sids: vec![5],
            ..Default::default()
        };
        assert!(!a.conflicts_with(&f));
    }
}
