//! The transaction manager: snapshot isolation over versioned master PDTs
//! with optimistic positional concurrency control.
//!
//! Design (mirrors §I-B of the paper):
//!
//! * Each table has one **master PDT** in an `Arc` — an immutable snapshot of
//!   all committed changes since the last checkpoint. Readers just clone the
//!   `Arc`: consistent reads are free and never block writers.
//! * A [`Transaction`] captures the master of every table at `begin` and
//!   lazily clones a private **working PDT** per table it writes (the
//!   trans-PDT of [5]).
//! * `commit` translates each working PDT into stable-coordinate ops
//!   (`vw_pdt::translate`), checks their [`Footprint`] against every commit
//!   that happened after the snapshot (abort on positional overlap), logs one
//!   WAL record, then propagates the ops into the current masters.
//! * Recovery replays WAL commit records through exactly the same
//!   `propagate` path.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use vw_common::{Result, TableId, TxnId, Value, VwError};
use vw_pdt::{
    bump_tag_floor, deserialize_ops, max_tag, propagate, serialize_ops, translate, Footprint, Pdt,
    StableOp,
};

use crate::wal::Wal;

struct TableState {
    master: Arc<Pdt>,
    /// Bumped on every commit touching this table.
    version: u64,
    /// Footprints of recent commits: `(version_after_commit, footprint)`.
    /// Trimmed at checkpoint time.
    history: Vec<(u64, Footprint)>,
}

struct TmInner {
    tables: HashMap<TableId, TableState>,
    next_txn: u64,
    wal: Wal,
    commits: u64,
    aborts: u64,
}

/// The global transaction manager.
pub struct TxnManager {
    inner: Mutex<TmInner>,
}

impl TxnManager {
    /// Create a manager logging to `wal_path` (created if absent).
    pub fn new(wal_path: impl AsRef<Path>) -> Result<TxnManager> {
        Ok(TxnManager {
            inner: Mutex::new(TmInner {
                tables: HashMap::new(),
                next_txn: 1,
                wal: Wal::open(wal_path)?,
                commits: 0,
                aborts: 0,
            }),
        })
    }

    /// Toggle per-commit flushing (benchmarks compare both).
    pub fn set_sync_on_commit(&self, sync: bool) {
        self.inner.lock().wal.sync_on_commit = sync;
    }

    /// Register a table with its current stable row count. Idempotent for
    /// the same size; re-registering after a checkpoint resets the master.
    pub fn register_table(&self, table: TableId, stable_rows: u64) {
        let mut g = self.inner.lock();
        g.tables.insert(
            table,
            TableState {
                master: Arc::new(Pdt::new(stable_rows)),
                version: 0,
                history: Vec::new(),
            },
        );
    }

    /// The committed master PDT of a table (autocommit read snapshot).
    pub fn current_pdt(&self, table: TableId) -> Result<Arc<Pdt>> {
        let g = self.inner.lock();
        g.tables
            .get(&table)
            .map(|t| t.master.clone())
            .ok_or_else(|| VwError::Txn(format!("table {} not registered", table)))
    }

    pub fn commit_count(&self) -> u64 {
        self.inner.lock().commits
    }

    pub fn abort_count(&self) -> u64 {
        self.inner.lock().aborts
    }

    /// Begin a transaction: snapshot every registered table.
    pub fn begin(&self) -> Transaction {
        let mut g = self.inner.lock();
        let id = TxnId::new(g.next_txn);
        g.next_txn += 1;
        let snapshot = g
            .tables
            .iter()
            .map(|(tid, st)| (*tid, (st.master.clone(), st.version)))
            .collect();
        Transaction {
            id,
            snapshot,
            working: HashMap::new(),
        }
    }

    /// Commit: validate, log, propagate. Consumes the transaction.
    pub fn commit(&self, txn: Transaction) -> Result<()> {
        // Translate outside the lock — snapshots are immutable.
        let mut per_table: Vec<(TableId, Vec<StableOp>, Footprint, u64)> = Vec::new();
        for (tid, working) in &txn.working {
            let (snap, snap_version) = txn
                .snapshot
                .get(tid)
                .ok_or_else(|| VwError::Txn(format!("table {} not in snapshot", tid)))?;
            let ops = translate(snap, working)?;
            if ops.is_empty() {
                continue;
            }
            let fp = Footprint::of(&ops);
            per_table.push((*tid, ops, fp, *snap_version));
        }
        if per_table.is_empty() {
            return Ok(()); // read-only
        }

        let mut g = self.inner.lock();
        // Validation: any committed footprint newer than our snapshot that
        // overlaps ours aborts the transaction.
        let mut conflict: Option<VwError> = None;
        'outer: for (tid, _, fp, snap_version) in &per_table {
            let st = g
                .tables
                .get(tid)
                .ok_or_else(|| VwError::Txn(format!("table {} dropped", tid)))?;
            for (v, other) in &st.history {
                if v > snap_version && fp.conflicts_with(other) {
                    conflict = Some(VwError::TxnConflict(format!(
                        "positional conflict on table {} (snapshot v{}, conflicting commit v{})",
                        tid, snap_version, v
                    )));
                    break 'outer;
                }
            }
        }
        if let Some(err) = conflict {
            g.aborts += 1;
            return Err(err);
        }
        // Log first (WAL rule), then apply.
        let encoded: Vec<(TableId, Vec<u8>)> = per_table
            .iter()
            .map(|(tid, ops, _, _)| (*tid, serialize_ops(ops)))
            .collect();
        g.wal.append_commit(txn.id, &encoded)?;
        for (tid, ops, fp, _) in per_table {
            let st = g.tables.get_mut(&tid).unwrap();
            let new_master = propagate(&st.master, &ops)?;
            st.master = Arc::new(new_master);
            st.version += 1;
            let v = st.version;
            st.history.push((v, fp));
        }
        g.commits += 1;
        Ok(())
    }

    /// Abort: nothing was shared, so just count it.
    pub fn abort(&self, _txn: Transaction) {
        self.inner.lock().aborts += 1;
    }

    /// Rebuild manager state from the WAL (crash recovery). `tables` maps
    /// every known table to its stable row count.
    pub fn recover(
        wal_path: impl AsRef<Path>,
        tables: &HashMap<TableId, u64>,
    ) -> Result<TxnManager> {
        let records = Wal::replay(&wal_path)?;
        let mgr = TxnManager::new(&wal_path)?;
        {
            let mut g = mgr.inner.lock();
            for (tid, rows) in tables {
                g.tables.insert(
                    *tid,
                    TableState {
                        master: Arc::new(Pdt::new(*rows)),
                        version: 0,
                        history: Vec::new(),
                    },
                );
            }
            let mut max_txn = 0u64;
            for rec in records {
                max_txn = max_txn.max(rec.txn_id.as_u64());
                for (tid, ops_bytes) in rec.tables {
                    let ops = deserialize_ops(&ops_bytes)?;
                    bump_tag_floor(max_tag(&ops));
                    let st = g.tables.get_mut(&tid).ok_or_else(|| {
                        VwError::Wal(format!("WAL references unknown table {}", tid))
                    })?;
                    let new_master = propagate(&st.master, &ops)?;
                    st.master = Arc::new(new_master);
                    st.version += 1;
                    let v = st.version;
                    st.history.push((v, Footprint::of(&ops)));
                }
                g.commits += 1;
            }
            g.next_txn = max_txn + 1;
        }
        Ok(mgr)
    }

    /// Swap in a fresh (empty) master after a checkpoint rebuilt the stable
    /// image, and truncate the WAL. Called by `checkpoint_table`.
    pub(crate) fn reset_after_checkpoint(&self, table: TableId, stable_rows: u64) -> Result<()> {
        let mut g = self.inner.lock();
        let st = g
            .tables
            .get_mut(&table)
            .ok_or_else(|| VwError::Txn(format!("table {} not registered", table)))?;
        st.master = Arc::new(Pdt::new(stable_rows));
        st.version = 0;
        st.history.clear();
        g.wal.truncate()?;
        Ok(())
    }

    /// Direct access to the master for checkpointing.
    pub(crate) fn master_for_checkpoint(&self, table: TableId) -> Result<Arc<Pdt>> {
        self.current_pdt(table)
    }
}

/// An in-flight transaction.
pub struct Transaction {
    id: TxnId,
    snapshot: HashMap<TableId, (Arc<Pdt>, u64)>,
    working: HashMap<TableId, Pdt>,
}

impl Transaction {
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// The PDT this transaction sees for `table`: its working PDT if it has
    /// written the table, else its snapshot.
    pub fn effective_pdt(&self, table: TableId) -> Result<&Pdt> {
        if let Some(w) = self.working.get(&table) {
            return Ok(w);
        }
        self.snapshot
            .get(&table)
            .map(|(p, _)| p.as_ref())
            .ok_or_else(|| VwError::Txn(format!("table {} unknown to txn", table)))
    }

    fn working_mut(&mut self, table: TableId) -> Result<&mut Pdt> {
        if !self.working.contains_key(&table) {
            let (snap, _) = self
                .snapshot
                .get(&table)
                .ok_or_else(|| VwError::Txn(format!("table {} unknown to txn", table)))?;
            self.working.insert(table, (**snap).clone());
        }
        Ok(self.working.get_mut(&table).unwrap())
    }

    /// Insert `row` at position `rid` of the table's current image.
    pub fn insert_at(&mut self, table: TableId, rid: u64, row: Vec<Value>) -> Result<()> {
        self.working_mut(table)?.insert_at(rid, row)
    }

    /// Append `row` at the end of the table.
    pub fn append(&mut self, table: TableId, row: Vec<Value>) -> Result<()> {
        let rid = self.effective_pdt(table)?.current_rows();
        self.working_mut(table)?.insert_at(rid, row)
    }

    pub fn delete_at(&mut self, table: TableId, rid: u64) -> Result<()> {
        self.working_mut(table)?.delete_at(rid)
    }

    pub fn modify_at(&mut self, table: TableId, rid: u64, col: u32, value: Value) -> Result<()> {
        self.working_mut(table)?.modify_at(rid, col, value)
    }

    /// Tables this transaction has written.
    pub fn dirty_tables(&self) -> impl Iterator<Item = TableId> + '_ {
        self.working.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::temp_wal_path;

    const T: TableId = TableId(1);

    fn v(x: i64) -> Vec<Value> {
        vec![Value::I64(x)]
    }

    fn mgr_with_table(rows: u64, tag: &str) -> (TxnManager, std::path::PathBuf) {
        let path = temp_wal_path(tag);
        let mgr = TxnManager::new(&path).unwrap();
        mgr.register_table(T, rows);
        (mgr, path)
    }

    #[test]
    fn commit_becomes_visible_to_new_snapshots() {
        let (mgr, path) = mgr_with_table(10, "visible");
        let mut t1 = mgr.begin();
        t1.delete_at(T, 0).unwrap();
        t1.append(T, v(99)).unwrap();
        // Not visible before commit.
        assert_eq!(mgr.current_pdt(T).unwrap().current_rows(), 10);
        mgr.commit(t1).unwrap();
        let pdt = mgr.current_pdt(T).unwrap();
        assert_eq!(pdt.current_rows(), 10); // -1 +1
        assert_eq!(pdt.delete_count(), 1);
        assert_eq!(pdt.insert_count(), 1);
        assert_eq!(mgr.commit_count(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn snapshot_isolation_reads_are_stable() {
        let (mgr, path) = mgr_with_table(5, "si");
        let reader = mgr.begin();
        let mut writer = mgr.begin();
        writer.delete_at(T, 2).unwrap();
        mgr.commit(writer).unwrap();
        // Reader still sees 5 rows.
        assert_eq!(reader.effective_pdt(T).unwrap().current_rows(), 5);
        // New txn sees 4.
        assert_eq!(mgr.begin().effective_pdt(T).unwrap().current_rows(), 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn own_writes_visible_within_txn() {
        let (mgr, path) = mgr_with_table(3, "ownwrites");
        let mut t = mgr.begin();
        t.append(T, v(7)).unwrap();
        assert_eq!(t.effective_pdt(T).unwrap().current_rows(), 4);
        t.modify_at(T, 3, 0, Value::I64(8)).unwrap();
        let pdt = t.effective_pdt(T).unwrap();
        let mut fetch = |_sid: u64| v(0);
        assert_eq!(pdt.row_at(3, &mut fetch).unwrap(), v(8));
        mgr.abort(t);
        assert_eq!(mgr.abort_count(), 1);
        assert_eq!(mgr.current_pdt(T).unwrap().current_rows(), 3);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn write_write_conflict_aborts_second() {
        let (mgr, path) = mgr_with_table(10, "conflict");
        let mut a = mgr.begin();
        let mut b = mgr.begin();
        a.modify_at(T, 4, 0, Value::I64(1)).unwrap();
        b.modify_at(T, 4, 0, Value::I64(2)).unwrap();
        mgr.commit(a).unwrap();
        let err = mgr.commit(b).unwrap_err();
        assert_eq!(err.kind(), "txn_conflict");
        assert_eq!(mgr.abort_count(), 1);
        assert_eq!(mgr.commit_count(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn disjoint_concurrent_commits_both_succeed() {
        let (mgr, path) = mgr_with_table(10, "disjoint");
        let mut a = mgr.begin();
        let mut b = mgr.begin();
        a.modify_at(T, 1, 0, Value::I64(1)).unwrap();
        b.delete_at(T, 8).unwrap();
        mgr.commit(a).unwrap();
        mgr.commit(b).unwrap();
        let pdt = mgr.current_pdt(T).unwrap();
        assert_eq!(pdt.current_rows(), 9);
        assert_eq!(pdt.modify_count(), 1);
        assert_eq!(pdt.delete_count(), 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn read_only_commit_is_free() {
        let (mgr, path) = mgr_with_table(10, "ro");
        let t = mgr.begin();
        mgr.commit(t).unwrap();
        assert_eq!(mgr.commit_count(), 0); // nothing logged
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn recovery_replays_committed_state() {
        let path = temp_wal_path("recover");
        {
            let mgr = TxnManager::new(&path).unwrap();
            mgr.register_table(T, 10);
            let mut t1 = mgr.begin();
            t1.delete_at(T, 3).unwrap();
            t1.append(T, v(42)).unwrap();
            mgr.commit(t1).unwrap();
            let mut t2 = mgr.begin();
            t2.modify_at(T, 0, 0, Value::I64(-1)).unwrap();
            mgr.commit(t2).unwrap();
            // "crash": drop the manager without checkpointing
        }
        let tables: HashMap<TableId, u64> = [(T, 10u64)].into_iter().collect();
        let mgr2 = TxnManager::recover(&path, &tables).unwrap();
        let pdt = mgr2.current_pdt(T).unwrap();
        assert_eq!(pdt.current_rows(), 10);
        assert_eq!(pdt.delete_count(), 1);
        assert_eq!(pdt.insert_count(), 1);
        assert_eq!(pdt.modify_count(), 1);
        let mut fetch = |sid: u64| v(sid as i64);
        assert_eq!(pdt.row_at(0, &mut fetch).unwrap(), v(-1));
        // New txns continue with fresh ids and work normally.
        let mut t3 = mgr2.begin();
        t3.append(T, v(7)).unwrap();
        mgr2.commit(t3).unwrap();
        assert_eq!(mgr2.current_pdt(T).unwrap().current_rows(), 11);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn recovery_is_idempotent() {
        let path = temp_wal_path("recover2");
        {
            let mgr = TxnManager::new(&path).unwrap();
            mgr.register_table(T, 5);
            let mut t = mgr.begin();
            t.delete_at(T, 1).unwrap();
            mgr.commit(t).unwrap();
        }
        let tables: HashMap<TableId, u64> = [(T, 5u64)].into_iter().collect();
        let a = TxnManager::recover(&path, &tables).unwrap();
        drop(a);
        let b = TxnManager::recover(&path, &tables).unwrap();
        assert_eq!(b.current_pdt(T).unwrap().current_rows(), 4);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn concurrent_threads_commit_disjoint_rows() {
        let path = temp_wal_path("threads");
        let mgr = Arc::new(TxnManager::new(&path).unwrap());
        mgr.register_table(T, 100);
        let mut handles = Vec::new();
        for th in 0..4u64 {
            let m = mgr.clone();
            handles.push(std::thread::spawn(move || {
                let mut committed = 0;
                for k in 0..10 {
                    let mut t = m.begin();
                    // Each thread owns a disjoint sid range; conflicts can
                    // still happen via version races, so retry.
                    let rid_target = th * 25 + k;
                    let pdt = t.effective_pdt(T).unwrap();
                    if let Some(rid) = pdt.rid_of_sid(rid_target) {
                        t.modify_at(T, rid, 0, Value::I64(th as i64)).unwrap();
                        if m.commit(t).is_ok() {
                            committed += 1;
                        }
                    }
                }
                committed
            }));
        }
        let total: i32 = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect::<Vec<_>>()
            .iter()
            .sum();
        // Disjoint sids → no conflicts at all.
        assert_eq!(total, 40);
        assert_eq!(mgr.current_pdt(T).unwrap().modify_count(), 40);
        std::fs::remove_file(path).ok();
    }
}
