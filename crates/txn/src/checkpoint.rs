//! Checkpointing: fold the master PDT into the stable columnar image.
//!
//! PDTs keep updates cheap, but they grow and every scan pays a merge cost.
//! Periodically the system rewrites the stable table image with all deltas
//! applied, resets the master PDT to empty, and truncates the WAL. The paper
//! calls this propagating the deltas to the "stable table image" [5].

use crate::manager::TxnManager;
use vw_common::{Result, TableId, Value};
use vw_pdt::{Loc, Pdt};
use vw_storage::{read_all_columns, NullableColumn, TableStorage};

/// Materialize the current logical image (stable + PDT) as one column chunk
/// per schema column. Used by checkpointing and by tests that want to verify
/// the merged image.
pub fn materialize_image(pdt: &Pdt, storage: &TableStorage) -> Result<Vec<NullableColumn>> {
    let schema = storage.schema().clone();
    let stable = read_all_columns(storage)?;
    let n_rows = pdt.current_rows();
    // Build per-column value vectors by walking the image once.
    let mut out_vals: Vec<Vec<Value>> = vec![Vec::with_capacity(n_rows as usize); schema.len()];
    for rid in 0..n_rows {
        match pdt.resolve(rid)? {
            Loc::Inserted(e) => {
                for (c, v) in pdt.inserted_row(e).iter().enumerate() {
                    out_vals[c].push(v.clone());
                }
            }
            Loc::Stable { sid, modify } => {
                for c in 0..schema.len() {
                    let mut v = stable[c].get_value(sid as usize, schema.field(c).ty);
                    if let Some(m) = modify {
                        if let Some(nv) = pdt.mods_of(m).get(&(c as u32)) {
                            v = nv.clone();
                        }
                    }
                    out_vals[c].push(v);
                }
            }
        }
    }
    schema
        .fields()
        .iter()
        .zip(out_vals)
        .map(|(f, vals)| NullableColumn::from_values(f.ty, &vals))
        .collect()
}

/// Checkpoint one table: rebuild its stable image with the master PDT merged
/// in, reset the master, truncate the WAL. Returns the new stable row count.
///
/// Must not run concurrently with commits to the same table; the `Database`
/// facade serializes checkpoints.
pub fn checkpoint_table(
    mgr: &TxnManager,
    table: TableId,
    storage: &mut TableStorage,
) -> Result<u64> {
    let master = mgr.master_for_checkpoint(table)?;
    if master.is_empty() {
        // Nothing to fold; still truncate the log for bounded recovery.
        mgr.reset_after_checkpoint(table, storage.n_rows())?;
        return Ok(storage.n_rows());
    }
    let columns = materialize_image(&master, storage)?;
    let new_rows = columns.first().map_or(0, |c| c.len() as u64);
    storage.rebuild_from_chunks(&[columns])?;
    mgr.reset_after_checkpoint(table, new_rows)?;
    Ok(new_rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::temp_wal_path;
    use std::sync::Arc;
    use vw_common::{DataType, Field, Schema};
    use vw_storage::{SimDisk, SimDiskConfig, TableBuilder};

    const T: TableId = TableId(9);

    fn build_table(n: usize) -> TableStorage {
        let disk = Arc::new(SimDisk::new(SimDiskConfig::default()));
        let schema = Schema::new(vec![
            Field::new("k", DataType::I64),
            Field::nullable("s", DataType::Str),
        ]);
        let mut b = TableBuilder::with_group_size(schema, disk, 64);
        for i in 0..n {
            b.push_row(vec![Value::I64(i as i64), Value::Str(format!("r{}", i))])
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn checkpoint_folds_updates_into_storage() {
        let path = temp_wal_path("ckpt");
        let mut storage = build_table(100);
        let mgr = TxnManager::new(&path).unwrap();
        mgr.register_table(T, 100);

        let mut t = mgr.begin();
        t.delete_at(T, 10).unwrap();
        t.modify_at(T, 0, 0, Value::I64(-1)).unwrap();
        t.append(T, vec![Value::I64(500), Value::Null]).unwrap();
        mgr.commit(t).unwrap();

        let new_rows = checkpoint_table(&mgr, T, &mut storage).unwrap();
        assert_eq!(new_rows, 100); // -1 +1
        assert_eq!(storage.n_rows(), 100);
        // Master reset and WAL truncated.
        assert!(mgr.current_pdt(T).unwrap().is_empty());
        assert_eq!(crate::wal::Wal::replay(&path).unwrap().len(), 0);
        // Data landed: row 0 modified, old row 10 gone, appended row present.
        assert_eq!(storage.read_row(0).unwrap()[0], Value::I64(-1));
        assert_eq!(storage.read_row(10).unwrap()[0], Value::I64(11)); // shifted
        let last = storage.read_row(99).unwrap();
        assert_eq!(last[0], Value::I64(500));
        assert_eq!(last[1], Value::Null);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn checkpoint_empty_pdt_truncates_only() {
        let path = temp_wal_path("ckpt_empty");
        let mut storage = build_table(10);
        let mgr = TxnManager::new(&path).unwrap();
        mgr.register_table(T, 10);
        let rows = checkpoint_table(&mgr, T, &mut storage).unwrap();
        assert_eq!(rows, 10);
        assert_eq!(storage.read_row(3).unwrap()[0], Value::I64(3));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn post_checkpoint_txns_continue() {
        let path = temp_wal_path("ckpt_cont");
        let mut storage = build_table(20);
        let mgr = TxnManager::new(&path).unwrap();
        mgr.register_table(T, 20);
        let mut t = mgr.begin();
        t.delete_at(T, 0).unwrap();
        mgr.commit(t).unwrap();
        checkpoint_table(&mgr, T, &mut storage).unwrap();
        assert_eq!(storage.n_rows(), 19);
        // New txn on the checkpointed table.
        let mut t2 = mgr.begin();
        t2.modify_at(T, 0, 0, Value::I64(1000)).unwrap();
        mgr.commit(t2).unwrap();
        let image = materialize_image(&mgr.current_pdt(T).unwrap(), &storage).unwrap();
        assert_eq!(image[0].get_value(0, DataType::I64), Value::I64(1000));
        assert_eq!(image[0].len(), 19);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn materialize_image_with_interleaved_ops() {
        let path = temp_wal_path("ckpt_mat");
        let storage = build_table(5);
        let mgr = TxnManager::new(&path).unwrap();
        mgr.register_table(T, 5);
        let mut t = mgr.begin();
        t.insert_at(T, 2, vec![Value::I64(77), Value::Str("ins".into())])
            .unwrap();
        t.delete_at(T, 0).unwrap();
        mgr.commit(t).unwrap();
        let image = materialize_image(&mgr.current_pdt(T).unwrap(), &storage).unwrap();
        // original: 0,1,2,3,4 → insert 77 before rid2(=row2) → 0,1,77,2,3,4
        // → delete rid 0 → 1,77,2,3,4
        let ks: Vec<Value> = (0..image[0].len())
            .map(|i| image[0].get_value(i, DataType::I64))
            .collect();
        assert_eq!(
            ks,
            vec![
                Value::I64(1),
                Value::I64(77),
                Value::I64(2),
                Value::I64(3),
                Value::I64(4)
            ]
        );
        std::fs::remove_file(path).ok();
    }
}
