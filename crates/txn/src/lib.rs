//! `vw-txn` — transactions: WAL, snapshot isolation, optimistic CC,
//! checkpointing.
//!
//! §I-B of the paper: "In order to provide full ACID properties, Vectorwise
//! uses a Write Ahead Log that logs PDTs as they are committed and performs
//! optimistic PDT-based concurrency control." This crate is that machinery:
//!
//! * [`wal`] — a length-prefixed, CRC-checked redo log. Only *committed*
//!   transactions are logged (one record per commit, carrying the
//!   transaction's translated PDT ops per table), which is the natural WAL
//!   shape for optimistic CC.
//! * [`manager`] — [`TxnManager`]: per-table versioned master PDTs
//!   (immutable `Arc` snapshots = free consistent reads), transactions with
//!   private working PDTs, commit-time positional conflict detection via
//!   [`vw_pdt::Footprint`], and crash recovery by WAL replay.
//! * [`checkpoint`] — folds a table's master PDT into its stable columnar
//!   image (`vw_storage::TableStorage`) and truncates the log, bounding both
//!   PDT memory and recovery time.

pub mod checkpoint;
pub mod manager;
pub mod wal;

pub use checkpoint::{checkpoint_table, materialize_image};
pub use manager::{Transaction, TxnManager};
pub use wal::{Wal, WalRecord};
