//! The write-ahead log.
//!
//! Redo-only: a record is written for each *committed* transaction (there is
//! nothing to undo under optimistic CC — aborted transactions never touch
//! shared state). Records are length-prefixed and CRC-32 protected; recovery
//! stops cleanly at the first torn or corrupt record, which models a crash
//! mid-write.
//!
//! On-disk framing:
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload: len bytes]
//! ```
//! Payload: `[kind: u8][txn_id: u64][n_tables: u32]` then per table
//! `[table_id: u64][ops_len: u32][ops bytes]` (see `vw_pdt::serialize_ops`).

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use vw_common::{Result, TableId, TxnId, VwError};

const KIND_COMMIT: u8 = 1;

/// One recovered WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    pub txn_id: TxnId,
    /// Per-table serialized op lists (still encoded; the manager decodes).
    pub tables: Vec<(TableId, Vec<u8>)>,
}

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 (IEEE 802.3).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = crc_table();
    let mut c = !0u32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// An append-only write-ahead log backed by a file.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Flush (model fsync) on every commit. Off = group-commit style
    /// batching flushed by the OS / on drop; used by throughput benches.
    pub sync_on_commit: bool,
    records_written: u64,
}

impl Wal {
    /// Open (appending) or create the log at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Wal {
            path,
            writer: BufWriter::new(file),
            sync_on_commit: true,
            records_written: 0,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Append a commit record; durable once this returns (when
    /// `sync_on_commit` is set).
    pub fn append_commit(&mut self, txn_id: TxnId, tables: &[(TableId, Vec<u8>)]) -> Result<()> {
        let mut payload = Vec::with_capacity(64);
        payload.push(KIND_COMMIT);
        payload.extend_from_slice(&txn_id.as_u64().to_le_bytes());
        payload.extend_from_slice(&(tables.len() as u32).to_le_bytes());
        for (tid, ops) in tables {
            payload.extend_from_slice(&tid.as_u64().to_le_bytes());
            payload.extend_from_slice(&(ops.len() as u32).to_le_bytes());
            payload.extend_from_slice(ops);
        }
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&crc32(&payload).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        if self.sync_on_commit {
            self.writer.flush()?;
        }
        self.records_written += 1;
        Ok(())
    }

    /// Force buffered records to the file (group-commit boundary).
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        Ok(())
    }

    /// Truncate the log (after a checkpoint has made its contents redundant).
    pub fn truncate(&mut self) -> Result<()> {
        self.writer.flush()?;
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&self.path)?;
        self.writer = BufWriter::new(file);
        self.records_written = 0;
        Ok(())
    }

    /// Read all complete, uncorrupted records from a log file. A torn tail
    /// (partial final record or CRC mismatch) ends replay without error —
    /// that transaction never acknowledged its commit.
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<WalRecord>> {
        let mut bytes = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(vec![]),
            Err(e) => return Err(e.into()),
        }
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            let end = match start.checked_add(len) {
                Some(e) if e <= bytes.len() => e,
                _ => break, // torn tail
            };
            let payload = &bytes[start..end];
            if crc32(payload) != crc {
                break; // corrupt tail
            }
            match Self::parse_payload(payload) {
                Ok(rec) => records.push(rec),
                Err(_) => break,
            }
            pos = end;
        }
        Ok(records)
    }

    fn parse_payload(p: &[u8]) -> Result<WalRecord> {
        let corrupt = || VwError::Wal("bad record payload".into());
        if p.first() != Some(&KIND_COMMIT) {
            return Err(corrupt());
        }
        let mut pos = 1usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            let s = p.get(*pos..*pos + n).ok_or_else(corrupt)?;
            *pos += n;
            Ok(s)
        };
        let txn_id = TxnId::new(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
        let n_tables = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let tid = TableId::new(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
            let ops_len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().unwrap()) as usize;
            let ops = take(&mut pos, ops_len)?.to_vec();
            tables.push((tid, ops));
        }
        if pos != p.len() {
            return Err(corrupt());
        }
        Ok(WalRecord { txn_id, tables })
    }
}

#[cfg(test)]
pub(crate) fn temp_wal_path(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("vw_wal_{}_{}_{}.log", tag, std::process::id(), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_and_replay() {
        let path = temp_wal_path("roundtrip");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(TxnId::new(1), &[(TableId::new(7), vec![1, 2, 3])])
                .unwrap();
            wal.append_commit(
                TxnId::new(2),
                &[(TableId::new(7), vec![4]), (TableId::new(8), vec![])],
            )
            .unwrap();
        }
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].txn_id, TxnId::new(1));
        assert_eq!(recs[0].tables, vec![(TableId::new(7), vec![1, 2, 3])]);
        assert_eq!(recs[1].tables.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let recs = Wal::replay("/nonexistent/definitely/not/here.log").unwrap();
        assert!(recs.is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = temp_wal_path("torn");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(TxnId::new(1), &[(TableId::new(1), vec![9; 100])])
                .unwrap();
            wal.append_commit(TxnId::new(2), &[(TableId::new(1), vec![8; 100])])
                .unwrap();
        }
        // Chop the file mid-record 2.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 30]).unwrap();
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].txn_id, TxnId::new(1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_crc_stops_replay() {
        let path = temp_wal_path("crc");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(TxnId::new(1), &[(TableId::new(1), vec![1])])
                .unwrap();
            wal.append_commit(TxnId::new(2), &[(TableId::new(1), vec![2])])
                .unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one byte inside the first record's payload.
        let idx = 10;
        bytes[idx] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let recs = Wal::replay(&path).unwrap();
        assert!(recs.is_empty()); // first record corrupt → nothing replayed
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_empties_log() {
        let path = temp_wal_path("trunc");
        let mut wal = Wal::open(&path).unwrap();
        wal.append_commit(TxnId::new(1), &[]).unwrap();
        wal.truncate().unwrap();
        assert_eq!(Wal::replay(&path).unwrap().len(), 0);
        wal.append_commit(TxnId::new(2), &[]).unwrap();
        wal.flush().unwrap();
        let recs = Wal::replay(&path).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].txn_id, TxnId::new(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_appends() {
        let path = temp_wal_path("reopen");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(TxnId::new(1), &[]).unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_commit(TxnId::new(2), &[]).unwrap();
        }
        assert_eq!(Wal::replay(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
